//! The paper's five example analyses (§4.3, "Example Analyses").

use std::collections::HashMap;

use deepcontext_core::{FrameKind, MetricKind, OpPhase, StallReason};

use crate::issue::{Issue, Severity};
use crate::view::ProfileView;
use crate::Rule;

/// ① Hotspot Identification: flags kernels whose inclusive GPU time
/// exceeds a fraction of total GPU time.
///
/// ```text
/// total_time = call_tree.root.time
/// for n in call_tree.kernels:
///     if n.time / total_time > hotspot_threshold:
///         flag_hotspot(n)
/// ```
#[derive(Debug, Clone)]
pub struct HotspotRule {
    /// Fraction of total GPU time a kernel must exceed (default 0.10).
    pub threshold: f64,
}

impl Default for HotspotRule {
    fn default() -> Self {
        HotspotRule { threshold: 0.10 }
    }
}

impl Rule for HotspotRule {
    fn name(&self) -> &str {
        "hotspot"
    }

    fn description(&self) -> &str {
        "identifies GPU kernels consuming a large share of total GPU time"
    }

    fn analyze(&self, view: &ProfileView<'_>) -> Vec<Issue> {
        let total = view.total(MetricKind::GpuTime);
        if total <= 0.0 {
            return Vec::new();
        }
        // Aggregate per kernel *name* across calling contexts — the
        // paper's §6.2 hotspot (nchwToNhwcKernel at 15.4%) is the sum
        // over every conversion site, which the bottom-up view surfaces.
        let mut groups: HashMap<String, (f64, deepcontext_core::NodeId, f64)> = HashMap::new();
        for node in view.kernels() {
            let time = view.sum(node, MetricKind::GpuTime);
            let entry = groups
                .entry(view.short_label(node))
                .or_insert((0.0, node, 0.0));
            entry.0 += time;
            if time > entry.2 {
                entry.1 = node;
                entry.2 = time;
            }
        }
        let mut issues = Vec::new();
        for (time, node, _) in groups.into_values() {
            let share = time / total;
            if share > self.threshold {
                let label = view.label(node);
                let suggestion = if label.contains("nchwToNhwc") || label.contains("nhwcToNchw") {
                    "store tensors in channels_last layout to avoid repeated \
                     layout conversions around cuDNN kernels"
                        .to_owned()
                } else if label.contains("indexing_backward") {
                    "replace aten::index with aten::index_select if determinism \
                     is not required"
                        .to_owned()
                } else {
                    format!("inspect {label}: it dominates device time")
                };
                issues.push(Issue {
                    rule: self.name().to_owned(),
                    severity: if share > 0.3 {
                        Severity::Critical
                    } else {
                        Severity::Warning
                    },
                    node,
                    call_path: view.path_string(node),
                    message: format!("kernel {label} takes {:.1}% of GPU time", share * 100.0),
                    suggestion,
                    metrics: vec![
                        ("gpu_time_ns".to_owned(), time),
                        ("share".to_owned(), share),
                    ],
                    weight: time,
                });
            }
        }
        issues
    }
}

/// ② Kernel Fusion Analysis: flags frames launching many small kernels.
///
/// ```text
/// for n in bfs(call_tree.nodes):
///     if n.gpu_time / n.count < gpu_threshold:
///         flag_issue(n, "Small GPU kernels")
/// ```
#[derive(Debug, Clone)]
pub struct KernelFusionRule {
    /// Mean per-launch GPU time below which kernels count as "small"
    /// (ns; default 20µs).
    pub gpu_threshold_ns: f64,
    /// Minimum launches under the frame for it to matter.
    pub min_launches: u64,
}

impl Default for KernelFusionRule {
    fn default() -> Self {
        KernelFusionRule {
            gpu_threshold_ns: 20_000.0,
            min_launches: 3,
        }
    }
}

impl Rule for KernelFusionRule {
    fn name(&self) -> &str {
        "kernel-fusion"
    }

    fn description(&self) -> &str {
        "detects frames launching many small kernels that could be fused"
    }

    fn analyze(&self, view: &ProfileView<'_>) -> Vec<Issue> {
        let mut issues = Vec::new();
        for node in view.cct().bfs() {
            let kind = view.cct().node(node).frame().kind();
            if !matches!(kind, FrameKind::Python | FrameKind::Operator) {
                continue;
            }
            // Only flag frames that fan out into several distinct kernel
            // subtrees (the paper's loss_fn example); flagging every
            // ancestor would flood the report.
            fn subtree_has_kernel(view: &ProfileView<'_>, node: deepcontext_core::NodeId) -> bool {
                let n = view.cct().node(node);
                n.frame().kind() == FrameKind::GpuKernel
                    || n.children().iter().any(|c| subtree_has_kernel(view, *c))
            }
            let kernel_children = view
                .cct()
                .node(node)
                .children()
                .iter()
                .filter(|c| subtree_has_kernel(view, **c))
                .count();
            if kernel_children < 2 {
                continue;
            }
            let launches = view.count(node, MetricKind::GpuTime);
            let gpu_time = view.sum(node, MetricKind::GpuTime);
            let mean = gpu_time / launches.max(1) as f64;
            if launches >= self.min_launches && mean > 0.0 && mean < self.gpu_threshold_ns {
                issues.push(Issue {
                    rule: self.name().to_owned(),
                    severity: Severity::Warning,
                    node,
                    call_path: view.path_string(node),
                    message: format!(
                        "small GPU kernels: {launches} launches averaging {:.1}µs under {}",
                        gpu_time / launches as f64 / 1_000.0,
                        view.label(node)
                    ),
                    suggestion: "fuse small kernels (e.g. torch.compile or a fused \
                                 implementation) to reduce launch overhead"
                        .to_owned(),
                    metrics: vec![
                        ("launches".to_owned(), launches as f64),
                        ("mean_kernel_ns".to_owned(), gpu_time / launches as f64),
                    ],
                    weight: launches as f64,
                });
            }
        }
        issues
    }
}

/// ③ Forward/Backward Operator Analysis: flags operators whose backward
/// pass is disproportionately slower than their forward pass.
///
/// ```text
/// for n in call_tree.operators:
///     if n.backward.time / n.forward.time > 2:
///         flag_issue(n, "Backward abnormality")
/// ```
#[derive(Debug, Clone)]
pub struct FwdBwdRule {
    /// Backward/forward GPU-time ratio to flag. The paper's snippet uses
    /// 2.0; the default here is 2.5 because a matmul's backward is
    /// legitimately two matmuls (ratio exactly 2) and should not trip.
    pub ratio: f64,
}

impl Default for FwdBwdRule {
    fn default() -> Self {
        FwdBwdRule { ratio: 2.5 }
    }
}

impl Rule for FwdBwdRule {
    fn name(&self) -> &str {
        "fwd-bwd"
    }

    fn description(&self) -> &str {
        "finds operators whose backward pass dwarfs their forward pass"
    }

    fn analyze(&self, view: &ProfileView<'_>) -> Vec<Issue> {
        // Aggregate forward and backward GPU time per operator name.
        // Forward/backward association nests backward operator instances
        // *under* their forward operator's context, so a forward node's
        // inclusive time contains its backward time: subtract the
        // backward children to get the true forward cost.
        let mut fwd: HashMap<String, f64> = HashMap::new();
        let mut bwd: HashMap<String, (f64, deepcontext_core::NodeId)> = HashMap::new();
        for node in view.operators() {
            let Some(name) = view.operator_name(node) else {
                continue;
            };
            let time = view.sum(node, MetricKind::GpuTime);
            match view.operator_phase(node) {
                Some(OpPhase::Forward) => {
                    let bwd_children: f64 = view
                        .cct()
                        .node(node)
                        .children()
                        .iter()
                        .filter(|c| view.operator_phase(**c) == Some(OpPhase::Backward))
                        .map(|c| view.sum(*c, MetricKind::GpuTime))
                        .sum();
                    *fwd.entry(name).or_insert(0.0) += time - bwd_children;
                }
                Some(OpPhase::Backward) => {
                    let e = bwd.entry(name).or_insert((0.0, node));
                    e.0 += time;
                }
                None => {}
            }
        }
        let mut issues = Vec::new();
        for (name, (bwd_time, node)) in bwd {
            let fwd_time = fwd.get(&name).copied().unwrap_or(0.0);
            if fwd_time <= 0.0 || bwd_time <= 0.0 {
                continue;
            }
            let ratio = bwd_time / fwd_time;
            if ratio > self.ratio {
                let suggestion = if name == "aten::index" {
                    "replace aten::index with aten::index_select: its backward \
                     uses atomics instead of deterministic serialization"
                        .to_owned()
                } else {
                    format!("inspect the backward implementation of {name}")
                };
                issues.push(Issue {
                    rule: self.name().to_owned(),
                    severity: if ratio > 10.0 {
                        Severity::Critical
                    } else {
                        Severity::Warning
                    },
                    node,
                    call_path: view.path_string(node),
                    message: format!(
                        "backward abnormality: {name} backward is {ratio:.1}x its forward \
                         ({:.2}ms vs {:.2}ms)",
                        bwd_time / 1e6,
                        fwd_time / 1e6
                    ),
                    suggestion,
                    metrics: vec![
                        ("bwd_gpu_time_ns".to_owned(), bwd_time),
                        ("fwd_gpu_time_ns".to_owned(), fwd_time),
                        ("ratio".to_owned(), ratio),
                    ],
                    weight: bwd_time,
                });
            }
        }
        issues
    }
}

/// ④ Fine-grained Stall Analysis: within hotspot kernels, ranks the stall
/// reasons of sampled instructions.
///
/// ```text
/// hotspots = hotspot_analysis(call_tree)
/// for n in hotspots:
///     for c in n.children:
///         if c.stalls > stall_threshold: stalls.append(c)
/// stall_reasons = topk(stalls)
/// ```
#[derive(Debug, Clone)]
pub struct StallRule {
    /// Hotspot share prerequisite (default 0.05).
    pub hotspot_threshold: f64,
    /// Minimum share of a kernel's samples an instruction must hold.
    pub stall_threshold: f64,
    /// How many stall reasons to report.
    pub top_k: usize,
}

impl Default for StallRule {
    fn default() -> Self {
        StallRule {
            hotspot_threshold: 0.02,
            stall_threshold: 0.05,
            top_k: 3,
        }
    }
}

impl Rule for StallRule {
    fn name(&self) -> &str {
        "fine-grained-stall"
    }

    fn description(&self) -> &str {
        "ranks instruction stall reasons inside hotspot kernels"
    }

    fn analyze(&self, view: &ProfileView<'_>) -> Vec<Issue> {
        let total = view.total(MetricKind::GpuTime);
        if total <= 0.0 {
            return Vec::new();
        }
        // Aggregate per kernel *name*: a kernel called from many contexts
        // (e.g. the same cast in every decoder layer) is one hotspot, as
        // in the bottom-up view the paper's workflow starts from.
        struct Group {
            time: f64,
            samples: f64,
            by_reason: HashMap<StallReason, f64>,
            hottest: (deepcontext_core::NodeId, f64),
        }
        let mut groups: HashMap<String, Group> = HashMap::new();
        for kernel in view.kernels() {
            let time = view.sum(kernel, MetricKind::GpuTime);
            let kernel_samples = view.sum(kernel, MetricKind::InstructionSamples);
            let entry = groups
                .entry(view.short_label(kernel))
                .or_insert_with(|| Group {
                    time: 0.0,
                    samples: 0.0,
                    by_reason: HashMap::new(),
                    hottest: (kernel, time),
                });
            entry.time += time;
            entry.samples += kernel_samples;
            if time > entry.hottest.1 {
                entry.hottest = (kernel, time);
            }
            if kernel_samples <= 0.0 {
                continue;
            }
            for child in view.cct().node(kernel).children() {
                let node = view.cct().node(*child);
                if node.frame().kind() != FrameKind::Instruction {
                    continue;
                }
                let samples = node.metrics().sum(MetricKind::InstructionSamples);
                if samples / kernel_samples < self.stall_threshold {
                    continue;
                }
                for reason in StallReason::ALL {
                    if reason == StallReason::None {
                        continue;
                    }
                    let stalls = node.metrics().sum(MetricKind::Stall(reason));
                    if stalls > 0.0 {
                        *entry.by_reason.entry(reason).or_insert(0.0) += stalls;
                    }
                }
            }
        }

        let mut issues = Vec::new();
        for group in groups.into_values() {
            let time = group.time;
            if time / total <= self.hotspot_threshold || group.by_reason.is_empty() {
                continue;
            }
            let kernel = group.hottest.0;
            let kernel_samples = group.samples;
            let mut ranked: Vec<(StallReason, f64)> = group.by_reason.into_iter().collect();
            ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
            ranked.truncate(self.top_k);
            let reasons: Vec<String> = ranked
                .iter()
                .map(|(r, n)| format!("{r} ({:.0}% of samples)", n / kernel_samples * 100.0))
                .collect();
            let suggestion = match ranked.first().map(|(r, _)| *r) {
                Some(StallReason::ConstantMemory) => {
                    "minimise per-CTA constant loads; fuse the conversion with \
                     neighbouring operators"
                        .to_owned()
                }
                Some(StallReason::MathDependency) => {
                    "use vectorized data-type conversion instructions (load the \
                     minimum bytes per block required for vectorization)"
                        .to_owned()
                }
                Some(StallReason::MemoryDependency) | Some(StallReason::MemoryThrottle) => {
                    "improve memory coalescing or reduce bytes moved".to_owned()
                }
                _ => "inspect the kernel's hot instructions".to_owned(),
            };
            issues.push(Issue {
                rule: self.name().to_owned(),
                severity: Severity::Warning,
                node: kernel,
                call_path: view.path_string(kernel),
                message: format!(
                    "kernel {} is mainly stalled by {}",
                    view.label(kernel),
                    reasons.join(", ")
                ),
                suggestion,
                metrics: ranked
                    .iter()
                    .map(|(r, n)| (format!("stall.{r}"), *n))
                    .collect(),
                weight: time,
            });
        }
        issues
    }
}

/// ⑤ CPU Latency Analysis: top-down search for frames whose CPU time far
/// exceeds their GPU time.
///
/// ```text
/// for n in bfs(call_tree.nodes):
///     if n.cpu_time / n.gpu_time > cpu_threshold:
///         flag_issue(n, "CPU time abnormality")
/// ```
#[derive(Debug, Clone)]
pub struct CpuLatencyRule {
    /// CPU/GPU time ratio to flag (default 5.0).
    pub cpu_threshold: f64,
    /// Minimum CPU time (ns) for a frame to be considered.
    pub min_cpu_ns: f64,
}

impl Default for CpuLatencyRule {
    fn default() -> Self {
        CpuLatencyRule {
            cpu_threshold: 5.0,
            min_cpu_ns: 1e6,
        }
    }
}

impl Rule for CpuLatencyRule {
    fn name(&self) -> &str {
        "cpu-latency"
    }

    fn description(&self) -> &str {
        "finds frames where the CPU dominates while the GPU idles"
    }

    fn analyze(&self, view: &ProfileView<'_>) -> Vec<Issue> {
        let mut issues = Vec::new();
        // Top-down: once a frame is flagged, its subtree is skipped so the
        // report points at the outermost culprit.
        let mut queue = std::collections::VecDeque::from([view.cct().root()]);
        while let Some(node) = queue.pop_front() {
            let cpu = view.sum(node, MetricKind::CpuTime);
            let gpu = view.sum(node, MetricKind::GpuTime);
            let kind = view.cct().node(node).frame().kind();
            let eligible = matches!(kind, FrameKind::Python | FrameKind::Operator)
                && cpu >= self.min_cpu_ns
                && (gpu <= 0.0 || cpu / gpu > self.cpu_threshold);
            if eligible {
                let label = view.label(node);
                let suggestion = if label.contains("data") || label.contains("loader") {
                    "match the data-loader worker count to the number of \
                     physical CPU cores"
                        .to_owned()
                } else {
                    "overlap or parallelise this CPU work; the GPU is idle under it".to_owned()
                };
                issues.push(Issue {
                    rule: self.name().to_owned(),
                    severity: Severity::Warning,
                    node,
                    call_path: view.path_string(node),
                    message: format!(
                        "CPU time abnormality: {} spends {:.1}ms CPU vs {:.1}ms GPU",
                        label,
                        cpu / 1e6,
                        gpu / 1e6
                    ),
                    suggestion,
                    metrics: vec![
                        ("cpu_time_ns".to_owned(), cpu),
                        ("gpu_time_ns".to_owned(), gpu),
                    ],
                    weight: cpu,
                });
                continue; // don't descend
            }
            queue.extend(view.cct().node(node).children().iter().copied());
        }
        issues
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepcontext_core::{CallingContextTree, Frame, NodeId, ProfileDb, ProfileMeta};

    fn view_of(cct: CallingContextTree) -> ProfileDb {
        ProfileDb::new(ProfileMeta::default(), cct)
    }

    fn kernel_path(cct: &mut CallingContextTree, op: &str, kernel: &str, phase: OpPhase) -> NodeId {
        let i = cct.interner();
        let pc = 0x100 + kernel.bytes().map(u64::from).sum::<u64>();
        cct.insert_path(&[
            Frame::python("train.py", 3, "step", &i),
            Frame::operator_with(op, phase, Some(1), &i),
            Frame::gpu_kernel(kernel, "m.so", pc, &i),
        ])
    }

    #[test]
    fn hotspot_flags_dominant_kernel_only() {
        let mut cct = CallingContextTree::new();
        let hot = kernel_path(&mut cct, "aten::conv2d", "implicit_gemm", OpPhase::Forward);
        let cold = kernel_path(&mut cct, "aten::relu", "relu_kernel", OpPhase::Forward);
        cct.attribute(hot, MetricKind::GpuTime, 95.0e6);
        cct.attribute(cold, MetricKind::GpuTime, 5.0e6);
        let db = view_of(cct);
        let issues = HotspotRule::default().analyze(&ProfileView::new(&db));
        assert_eq!(issues.len(), 1);
        assert!(issues[0].message.contains("implicit_gemm"));
        assert_eq!(issues[0].severity, Severity::Critical);
    }

    #[test]
    fn hotspot_empty_profile_is_silent() {
        let db = view_of(CallingContextTree::new());
        assert!(HotspotRule::default()
            .analyze(&ProfileView::new(&db))
            .is_empty());
    }

    #[test]
    fn fusion_flags_frame_with_many_small_kernels() {
        let mut cct = CallingContextTree::new();
        let i = cct.interner();
        // loss_fn invoking three small kernels many times (paper §6.3).
        for kernel in ["softmax", "copy", "nll_loss"] {
            let pc = 0x100 + kernel.len() as u64;
            let leaf = cct.insert_path(&[
                Frame::python("train.py", 20, "loss_fn", &i),
                Frame::operator(&format!("aten::{kernel}"), &i),
                Frame::gpu_kernel(kernel, "m.so", pc, &i),
            ]);
            for _ in 0..10 {
                cct.attribute(leaf, MetricKind::GpuTime, 5_000.0); // 5µs
            }
        }
        let db = view_of(cct);
        let issues = KernelFusionRule::default().analyze(&ProfileView::new(&db));
        assert!(!issues.is_empty());
        assert!(issues.iter().any(|i| i.call_path.contains("loss_fn")));
        assert!(issues[0].suggestion.contains("fuse"));
    }

    #[test]
    fn fusion_ignores_large_kernels() {
        let mut cct = CallingContextTree::new();
        let hot = kernel_path(&mut cct, "aten::conv2d", "implicit_gemm", OpPhase::Forward);
        for _ in 0..10 {
            cct.attribute(hot, MetricKind::GpuTime, 5.0e6); // 5ms each
        }
        let db = view_of(cct);
        assert!(KernelFusionRule::default()
            .analyze(&ProfileView::new(&db))
            .is_empty());
    }

    #[test]
    fn fwd_bwd_flags_index_abnormality_with_suggestion() {
        let mut cct = CallingContextTree::new();
        let fwd = kernel_path(&mut cct, "aten::index", "index_kernel", OpPhase::Forward);
        let bwd = kernel_path(
            &mut cct,
            "aten::index",
            "indexing_backward_kernel",
            OpPhase::Backward,
        );
        cct.attribute(fwd, MetricKind::GpuTime, 0.6e9); // 0.8% like the paper
        cct.attribute(bwd, MetricKind::GpuTime, 30.5e9); // 39.6%
        let db = view_of(cct);
        let issues = FwdBwdRule::default().analyze(&ProfileView::new(&db));
        assert_eq!(issues.len(), 1);
        assert!(issues[0].message.contains("aten::index"));
        assert!(issues[0].suggestion.contains("index_select"));
        assert_eq!(issues[0].severity, Severity::Critical);
    }

    #[test]
    fn fwd_bwd_balanced_operator_not_flagged() {
        let mut cct = CallingContextTree::new();
        let fwd = kernel_path(&mut cct, "aten::matmul", "sgemm", OpPhase::Forward);
        let bwd = kernel_path(&mut cct, "aten::matmul", "sgemm_bwd", OpPhase::Backward);
        cct.attribute(fwd, MetricKind::GpuTime, 1.0e9);
        cct.attribute(bwd, MetricKind::GpuTime, 1.8e9);
        let db = view_of(cct);
        assert!(FwdBwdRule::default()
            .analyze(&ProfileView::new(&db))
            .is_empty());
    }

    #[test]
    fn stall_rule_ranks_reasons_in_hot_kernels() {
        let mut cct = CallingContextTree::new();
        let kernel = kernel_path(&mut cct, "aten::to", "to_copy", OpPhase::Forward);
        cct.attribute(kernel, MetricKind::GpuTime, 1.0e9);
        let i1 = cct.insert_child(kernel, &Frame::instruction(0x10));
        let i2 = cct.insert_child(kernel, &Frame::instruction(0x20));
        for _ in 0..60 {
            cct.attribute(i1, MetricKind::InstructionSamples, 1.0);
            cct.attribute(i1, MetricKind::Stall(StallReason::ConstantMemory), 1.0);
        }
        for _ in 0..40 {
            cct.attribute(i2, MetricKind::InstructionSamples, 1.0);
            cct.attribute(i2, MetricKind::Stall(StallReason::MathDependency), 1.0);
        }
        let db = view_of(cct);
        let issues = StallRule::default().analyze(&ProfileView::new(&db));
        assert_eq!(issues.len(), 1);
        assert!(issues[0].message.contains("constant_memory"));
        assert!(issues[0].message.contains("math_dependency"));
        // Constant-memory is the top reason, so the suggestion targets it.
        assert!(issues[0].suggestion.contains("constant"));
    }

    #[test]
    fn stall_rule_skips_kernels_without_samples() {
        let mut cct = CallingContextTree::new();
        let kernel = kernel_path(&mut cct, "aten::matmul", "sgemm", OpPhase::Forward);
        cct.attribute(kernel, MetricKind::GpuTime, 1.0e9);
        let db = view_of(cct);
        assert!(StallRule::default()
            .analyze(&ProfileView::new(&db))
            .is_empty());
    }

    #[test]
    fn cpu_latency_flags_outermost_culprit_only() {
        let mut cct = CallingContextTree::new();
        let i = cct.interner();
        // `train` calls both the loader (CPU-bound) and the model
        // (GPU-bound), so `train` itself is balanced and the rule should
        // descend to the loader frame — and stop there.
        let train = cct.insert_path(&[Frame::python("train.py", 2, "train", &i)]);
        let loader = cct.insert_child(
            train,
            &Frame::python("input_pipeline.py", 88, "data_selection", &i),
        );
        let inner = cct.insert_child(
            loader,
            &Frame::python("input_pipeline.py", 99, "decode", &i),
        );
        cct.attribute(inner, MetricKind::CpuTime, 69.0e9);
        let op = cct.insert_child(train, &Frame::operator("aten::conv2d", &i));
        let kernel = cct.insert_child(op, &Frame::gpu_kernel("implicit_gemm", "m.so", 0x100, &i));
        cct.attribute(kernel, MetricKind::GpuTime, 30.0e9);
        let db = view_of(cct);
        let issues = CpuLatencyRule::default().analyze(&ProfileView::new(&db));
        assert_eq!(issues.len(), 1);
        assert!(issues[0].call_path.contains("data_selection"));
        assert!(issues[0].suggestion.contains("worker"));
        // The nested decode frame is not separately flagged.
        assert!(!issues.iter().any(|i| i.call_path.contains("decode")));
    }

    #[test]
    fn cpu_latency_ignores_gpu_dominated_frames() {
        let mut cct = CallingContextTree::new();
        let node = kernel_path(&mut cct, "aten::conv2d", "implicit_gemm", OpPhase::Forward);
        cct.attribute(node, MetricKind::GpuTime, 50.0e9);
        let py = cct.path_to_root(node)[1];
        cct.attribute_exclusive(py, MetricKind::CpuTime, 2.0e6);
        let db = view_of(cct);
        assert!(CpuLatencyRule::default()
            .analyze(&ProfileView::new(&db))
            .is_empty());
    }
}
