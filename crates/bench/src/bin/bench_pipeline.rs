//! Emits `BENCH_pipeline.json`: producer-side enqueue cost and
//! end-to-end throughput of the asynchronous bounded-channel pipeline vs
//! inline synchronous attribution, over a coarse (kernel-records-only)
//! and a fine-grained (PC-sampling, paper §6.7) event stream.
//!
//! The headline number is `producer_speedup` — how much cheaper one
//! fine-grained event is for the monitored workload when attribution
//! moves to the worker pool. The issue's acceptance bar is ≥ 5x with
//! zero dropped events under the default `Block` policy.
//!
//! Run from the repo root: `cargo run --release -p deepcontext-bench
//! --bin bench_pipeline`.

use std::io::Write;

use deepcontext_bench::pipeline::{pipeline_matrix, PipelinePoint, SHARDS};

const OPS: usize = 30_000;
const SAMPLES_PER_KERNEL: usize = 24;
const REPEATS: usize = 5;

fn point<'a>(points: &'a [PipelinePoint], prefix: &str) -> &'a PipelinePoint {
    points
        .iter()
        .find(|p| p.scenario.starts_with(prefix))
        .expect("measured scenario")
}

fn main() {
    let parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    eprintln!(
        "measuring pipeline producer cost ({SHARDS} shards, {OPS} events, \
         {SAMPLES_PER_KERNEL} PC samples/kernel on the fine stream, host \
         parallelism {parallelism}, best of {REPEATS})..."
    );
    let points = pipeline_matrix(OPS, SAMPLES_PER_KERNEL, REPEATS);
    let coarse_sync = point(&points, "coarse_sync");
    let coarse_async = point(&points, "coarse_async");
    let fine_sync = point(&points, "fine_sync");
    let fine_async = point(&points, "fine_async");

    let fine_speedup = fine_sync.producer_ns_per_event / fine_async.producer_ns_per_event;
    let coarse_speedup = coarse_sync.producer_ns_per_event / coarse_async.producer_ns_per_event;
    let utilization = if fine_async.counters.worker_batches > 0 {
        fine_async.counters.worker_events as f64 / fine_async.counters.worker_batches as f64
    } else {
        0.0
    };

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"pipeline\",\n");
    json.push_str("  \"unit\": \"ns_per_event\",\n");
    json.push_str("  \"baseline\": \"inline synchronous attribution on the producer thread\",\n");
    json.push_str("  \"policy\": \"Block\",\n");
    json.push_str(&format!("  \"shards\": {SHARDS},\n"));
    json.push_str(&format!("  \"events\": {OPS},\n"));
    json.push_str(&format!(
        "  \"fine_samples_per_kernel\": {SAMPLES_PER_KERNEL},\n"
    ));
    json.push_str(&format!("  \"repeats\": {REPEATS},\n"));
    json.push_str(&format!("  \"host_parallelism\": {parallelism},\n"));
    json.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        let sep = if i + 1 == points.len() { "" } else { "," };
        json.push_str(&format!(
            "    {{\"scenario\": \"{}\", \"producer_ns_per_event\": {:.0}, \
             \"total_ns_per_event\": {:.0}, \"dropped_events\": {}, \
             \"max_queue_depth\": {}}}{}\n",
            p.scenario,
            p.producer_ns_per_event,
            p.total_ns_per_event,
            p.counters.dropped_events,
            p.counters.max_queue_depth,
            sep
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"producer_speedup_coarse\": {coarse_speedup:.2},\n"
    ));
    json.push_str(&format!("  \"producer_speedup\": {fine_speedup:.2},\n"));
    json.push_str(&format!(
        "  \"end_to_end_events_per_sec_sync\": {:.0},\n",
        1e9 / fine_sync.total_ns_per_event
    ));
    json.push_str(&format!(
        "  \"end_to_end_events_per_sec_async\": {:.0},\n",
        1e9 / fine_async.total_ns_per_event
    ));
    json.push_str(&format!(
        "  \"worker_events_per_wakeup\": {utilization:.1},\n"
    ));
    json.push_str(&format!(
        "  \"dropped_events\": {}\n",
        fine_async.counters.dropped_events + coarse_async.counters.dropped_events
    ));
    json.push_str("}\n");

    std::fs::File::create("BENCH_pipeline.json")
        .and_then(|mut f| f.write_all(json.as_bytes()))
        .expect("write BENCH_pipeline.json");
    print!("{json}");

    eprintln!(
        "fine-grained producer: sync {:.0} ns/event vs async enqueue {:.0} ns/event = {:.2}x \
         (target >= 5x); coarse: {:.0} vs {:.0} = {:.2}x; drops {}",
        fine_sync.producer_ns_per_event,
        fine_async.producer_ns_per_event,
        fine_speedup,
        coarse_sync.producer_ns_per_event,
        coarse_async.producer_ns_per_event,
        coarse_speedup,
        fine_async.counters.dropped_events
    );
}
