//! DLMonitor — the "shim" layer between profilers and deep learning
//! frameworks (paper §4.1).
//!
//! DLMonitor converts framework-specific data into a framework-agnostic
//! format and assembles **unified call paths** spanning Python frames,
//! framework operators, native C/C++ frames, GPU APIs and GPU kernels.
//! The public API mirrors the paper's:
//!
//! * [`DlMonitor::init`] — `dlmonitor_init`: creates the monitor
//!   (the `LD_PRELOAD`-time initialisation);
//! * [`DlMonitor::callback_register`] — `dlmonitor_callback_register`:
//!   registers profiler callbacks for a [`Domain`]
//!   (`DLMONITOR_FRAMEWORK` / `DLMONITOR_GPU`);
//! * [`DlMonitor::callpath_get`] — `dlmonitor_callpath_get`: builds the
//!   multi-layer call path for a thread, honouring the configured
//!   [`CallPathSources`];
//! * [`DlMonitor::finalize`] — `dlmonitor_finalize`: detaches every
//!   interception.
//!
//! Two paper optimisations are implemented and measurable:
//!
//! * **Forward/backward operator association** — forward operators record
//!   their Python/framework context under their autograd sequence id;
//!   backward operators executing on the dedicated backward thread (which
//!   has *no* Python stack) recover it by sequence-id lookup;
//! * **Call path caching** — the Python call path is cached in the shadow
//!   stack at operator entry; with caching on, kernel-launch call paths
//!   need only a partial native unwind (or none, if native collection is
//!   off). The unwinder's global step counter quantifies the savings.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod custom;
mod integrate;
mod monitor;

pub use custom::{CustomHook, CustomInterceptor};
pub use integrate::{integrate_call_path, IntegrationInput, ShadowOp};
pub use monitor::{
    CallPathSources, DlEvent, DlMonitor, Domain, EventOrigin, GpuCallbackEvent, MonitorStats,
    RegistrationId,
};
