//! Property tests for the kernel cost model: monotonicity and bound
//! invariants every experiment implicitly relies on.

use deepcontext_core::TimeNs;
use proptest::prelude::*;
use sim_gpu::{cost::kernel_cost, DeviceSpec, KernelDesc, LaunchConfig, MemoryPattern};

fn arb_kernel() -> impl Strategy<Value = KernelDesc> {
    (
        1u32..4096,                                                    // grid
        prop::sample::select(vec![32u32, 64, 128, 256, 512, 1024]),    // block
        0f64..1e12,                                                    // flops
        0f64..1e9,                                                     // bytes
        prop::sample::select(vec![16u32, 32, 64, 128, 255]),           // registers
        prop::sample::select(vec![0u64, 1 << 10, 16 << 10, 48 << 10]), // shared mem
        1f64..64.0,                                                    // serialization
        prop::bool::ANY,                                               // strided
    )
        .prop_map(|(grid, block, flops, bytes, regs, shared, ser, strided)| {
            KernelDesc::new("k", "m.so", 0x10, LaunchConfig::new(grid, block))
                .with_flops(flops)
                .with_bytes(bytes)
                .with_registers(regs)
                .with_shared_mem(shared)
                .with_serialization(ser)
                .with_memory_pattern(if strided {
                    MemoryPattern::Strided
                } else {
                    MemoryPattern::Coalesced
                })
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn cost_outputs_are_bounded(kernel in arb_kernel()) {
        for spec in [DeviceSpec::a100_sxm(), DeviceSpec::mi250()] {
            let cost = kernel_cost(&spec, &kernel);
            prop_assert!(cost.duration >= TimeNs(spec.kernel_latency_ns));
            prop_assert!((0.0..=1.0).contains(&cost.occupancy), "occupancy {}", cost.occupancy);
            prop_assert!((0.0..=1.0).contains(&cost.utilization));
            prop_assert_eq!(cost.blocks, kernel.config.grid);
            let warps_per_block = kernel.config.block.div_ceil(spec.warp_size);
            prop_assert_eq!(cost.warps, u64::from(kernel.config.grid) * u64::from(warps_per_block));
        }
    }

    #[test]
    fn duration_is_monotone_in_work(kernel in arb_kernel(), factor in 1.1f64..8.0) {
        let spec = DeviceSpec::a100_sxm();
        let base = kernel_cost(&spec, &kernel);
        let more_flops = kernel.clone().with_flops(kernel.flops * factor + 1.0);
        prop_assert!(kernel_cost(&spec, &more_flops).duration >= base.duration);
        let more_bytes = kernel.clone().with_bytes(kernel.bytes * factor + 1.0);
        prop_assert!(kernel_cost(&spec, &more_bytes).duration >= base.duration);
        let more_serial = kernel
            .clone()
            .with_serialization(kernel.serialization_factor * factor);
        prop_assert!(kernel_cost(&spec, &more_serial).duration >= base.duration);
    }

    #[test]
    fn strided_access_never_beats_coalesced(kernel in arb_kernel()) {
        for spec in [DeviceSpec::a100_sxm(), DeviceSpec::mi250()] {
            let coalesced = kernel.clone().with_memory_pattern(MemoryPattern::Coalesced);
            let strided = kernel.clone().with_memory_pattern(MemoryPattern::Strided);
            prop_assert!(
                kernel_cost(&spec, &strided).duration >= kernel_cost(&spec, &coalesced).duration
            );
        }
    }

    #[test]
    fn warp64_never_increases_warp_count(kernel in arb_kernel()) {
        let nv = kernel_cost(&DeviceSpec::a100_sxm(), &kernel);
        let amd = kernel_cost(&DeviceSpec::mi250(), &kernel);
        prop_assert!(amd.warps <= nv.warps);
    }

    #[test]
    fn sampling_respects_period_and_cap(
        duration_us in 1u64..100_000,
        period_us in 1u64..1_000,
        cap in 1usize..2_000,
    ) {
        use sim_gpu::{sampling::sample_kernel, CorrelationId, InstructionProfile, SamplingConfig};
        let profile = InstructionProfile::memory_bound();
        let config = SamplingConfig {
            period: TimeNs::from_us(period_us),
            max_samples_per_kernel: cap,
        };
        let samples = sample_kernel(
            &profile,
            TimeNs::from_us(duration_us),
            &config,
            CorrelationId(9),
        );
        prop_assert!(samples.len() <= cap);
        prop_assert!(samples.len() as u64 <= duration_us / period_us);
        // Every sampled PC belongs to the profile.
        let pcs: Vec<u64> = profile.instrs().iter().map(|i| i.pc).collect();
        prop_assert!(samples.iter().all(|s| pcs.contains(&s.pc)));
    }
}
