//! Timeline-backed latency analyses.
//!
//! The five aggregate rules ([`rules`](crate::rules)) ask *where the
//! time went*; these two ask *why the device waited* — questions that
//! need the interval tracks the timeline subsystem records (the
//! serialization / idle-gap workflows behind the paper's §6 case
//! studies, which XSP-style across-stack timelines make first-class).
//! Both rules are silent on views without an attached timeline
//! ([`ProfileView::with_timeline`]), so they can sit in the default
//! rule set without affecting aggregate-only analyses.

use std::collections::HashMap;

use deepcontext_core::NodeId;

use crate::issue::{Issue, Severity};
use crate::view::ProfileView;
use crate::Rule;

/// The label of a gap-bounding context, robust to unresolved ids.
fn context_label(view: &ProfileView<'_>, context: Option<NodeId>) -> String {
    match context.filter(|n| n.index() < view.cct().node_count()) {
        Some(node) => view.label(node),
        None => "<unknown context>".to_owned(),
    }
}

/// A context id usable as an [`Issue::node`] anchor (falls back to the
/// root for unresolved contexts).
fn anchor(view: &ProfileView<'_>, context: Option<NodeId>) -> NodeId {
    context
        .filter(|n| n.index() < view.cct().node_count())
        .unwrap_or_else(|| view.cct().root())
}

/// ⑥ GPU Idle Analysis: flags devices that sit idle for a large share
/// of their active span, charging each idle gap to the CCT context of
/// the launch that *closed* it — the kernel that arrived late is where
/// the pipeline stalled.
///
/// ```text
/// for device in timeline.devices:
///     if device.utilization < utilization_threshold:
///         charge each gap to gap.after.context; flag top offenders
/// ```
#[derive(Debug, Clone)]
pub struct GpuIdleRule {
    /// Utilization (busy / active span) below which a device is flagged
    /// (default 0.90).
    pub utilization_threshold: f64,
    /// Minimum total idle nanoseconds inside the span for the device to
    /// matter (default 1µs — below that the gaps are launch jitter).
    pub min_idle_ns: f64,
    /// How many charged contexts to list per device.
    pub top_k: usize,
}

impl Default for GpuIdleRule {
    fn default() -> Self {
        GpuIdleRule {
            utilization_threshold: 0.90,
            min_idle_ns: 1_000.0,
            top_k: 3,
        }
    }
}

impl Rule for GpuIdleRule {
    fn name(&self) -> &str {
        "gpu-idle"
    }

    fn description(&self) -> &str {
        "finds devices idling between launches and the contexts whose launches arrived late"
    }

    fn analyze(&self, view: &ProfileView<'_>) -> Vec<Issue> {
        let Some(timeline) = view.timeline() else {
            return Vec::new();
        };
        let mut issues = Vec::new();
        for device in &timeline.stats().devices {
            let idle = device.idle().as_nanos() as f64;
            if device.span().as_nanos() == 0
                || device.utilization() >= self.utilization_threshold
                || idle < self.min_idle_ns
            {
                continue;
            }
            // Charge every gap to the context that ended it.
            let mut charged: HashMap<Option<NodeId>, (f64, usize)> = HashMap::new();
            for gap in &device.gaps {
                let entry = charged.entry(gap.after).or_insert((0.0, 0));
                entry.0 += gap.duration().as_nanos() as f64;
                entry.1 += 1;
            }
            let mut ranked: Vec<(Option<NodeId>, (f64, usize))> = charged.into_iter().collect();
            ranked.sort_by(|a, b| b.1 .0.total_cmp(&a.1 .0));
            ranked.truncate(self.top_k.max(1));
            let worst = ranked.first().expect("a flagged device has gaps");
            let node = anchor(view, worst.0);
            let breakdown: Vec<String> = ranked
                .iter()
                .map(|(ctx, (ns, gaps))| {
                    format!(
                        "{} ({:.2}ms over {} gap{})",
                        context_label(view, *ctx),
                        ns / 1e6,
                        gaps,
                        if *gaps == 1 { "" } else { "s" }
                    )
                })
                .collect();
            issues.push(Issue {
                rule: self.name().to_owned(),
                severity: if device.utilization() < 0.5 {
                    Severity::Critical
                } else {
                    Severity::Warning
                },
                node,
                call_path: view.path_string(node),
                message: format!(
                    "device {} idle {:.1}% of its active span ({:.2}ms over {} gaps); \
                     late launches charged to {}",
                    device.device,
                    (1.0 - device.utilization()) * 100.0,
                    idle / 1e6,
                    device.gaps.len(),
                    breakdown.join(", ")
                ),
                suggestion: "overlap the CPU work ahead of the charged launches with device \
                             execution (pipeline launches, prefetch inputs, or move host-side \
                             pre-processing off the critical path)"
                    .to_owned(),
                metrics: vec![
                    ("utilization".to_owned(), device.utilization()),
                    ("idle_ns".to_owned(), idle),
                    ("gaps".to_owned(), device.gaps.len() as f64),
                ],
                weight: idle,
            });
        }
        issues
    }
}

/// ⑦ Stream Serialization Analysis: flags devices whose streams never
/// execute concurrently — multi-stream code paying single-stream
/// latency.
///
/// ```text
/// for device in timeline.devices:
///     if device.streams >= 2 and device.summed / device.busy < overlap_threshold:
///         flag_issue(device, "Streams serialize")
/// ```
#[derive(Debug, Clone)]
pub struct StreamSerializationRule {
    /// Minimum active streams for the device to count as multi-stream
    /// (default 2).
    pub min_streams: usize,
    /// Overlap factor (summed / union busy; 1.0 = zero concurrency)
    /// below which the streams count as serialized (default 1.2).
    pub overlap_threshold: f64,
    /// Minimum device busy nanoseconds for the verdict to be meaningful
    /// (default 1µs).
    pub min_busy_ns: f64,
}

impl Default for StreamSerializationRule {
    fn default() -> Self {
        StreamSerializationRule {
            min_streams: 2,
            overlap_threshold: 1.2,
            min_busy_ns: 1_000.0,
        }
    }
}

impl Rule for StreamSerializationRule {
    fn name(&self) -> &str {
        "stream-serialization"
    }

    fn description(&self) -> &str {
        "detects multi-stream devices whose streams execute one after another"
    }

    fn analyze(&self, view: &ProfileView<'_>) -> Vec<Issue> {
        let Some(timeline) = view.timeline() else {
            return Vec::new();
        };
        let mut issues = Vec::new();
        for device in &timeline.stats().devices {
            if device.streams < self.min_streams.max(2)
                || (device.busy.as_nanos() as f64) < self.min_busy_ns
                || device.overlap_factor() >= self.overlap_threshold
            {
                continue;
            }
            // Anchor at the context of the device's longest interval —
            // the work most affected by the serialization.
            let longest = timeline
                .tracks()
                .iter()
                .filter(|t| t.key().device == device.device)
                .flat_map(|t| t.intervals().iter())
                .max_by_key(|iv| iv.duration().as_nanos());
            let node = anchor(view, longest.and_then(|iv| iv.context));
            issues.push(Issue {
                rule: self.name().to_owned(),
                severity: Severity::Warning,
                node,
                call_path: view.path_string(node),
                message: format!(
                    "device {} runs {} streams but they serialize: overlap factor {:.2} \
                     (1.0 = no concurrency, {} = perfect overlap)",
                    device.device,
                    device.streams,
                    device.overlap_factor(),
                    device.streams
                ),
                suggestion: "look for implicit synchronization between the streams: \
                             default-stream work, synchronous memcpys or allocations, or \
                             kernels large enough to saturate the device on their own"
                    .to_owned(),
                metrics: vec![
                    ("streams".to_owned(), device.streams as f64),
                    ("overlap_factor".to_owned(), device.overlap_factor()),
                    ("busy_ns".to_owned(), device.busy.as_nanos() as f64),
                ],
                weight: device.busy.as_nanos() as f64,
            });
        }
        issues
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepcontext_core::{
        CallingContextTree, Frame, Interner, Interval, IntervalKind, MetricKind, ProfileDb,
        ProfileMeta, TimeNs, TrackKey,
    };
    use deepcontext_timeline::{ring::TimelineCounters, TimelineSnapshot};
    use std::sync::{Arc, OnceLock};

    fn interval(
        device: u32,
        stream: u32,
        start: u64,
        end: u64,
        corr: u64,
        context: Option<NodeId>,
    ) -> Interval {
        static INTERNER: OnceLock<Arc<Interner>> = OnceLock::new();
        Interval {
            track: TrackKey { device, stream },
            start: TimeNs(start),
            end: TimeNs(end),
            kind: IntervalKind::Kernel,
            name: INTERNER.get_or_init(Interner::new).intern("k"),
            correlation: corr,
            context,
        }
    }

    fn snapshot(intervals: Vec<Interval>) -> TimelineSnapshot {
        let counters = TimelineCounters {
            recorded: intervals.len() as u64,
            dropped: 0,
        };
        TimelineSnapshot::from_intervals(intervals, counters)
    }

    fn db_with_kernel() -> (ProfileDb, NodeId) {
        let mut cct = CallingContextTree::new();
        let i = cct.interner();
        let node = cct.insert_path(&[
            Frame::python("train.py", 3, "step", &i),
            Frame::operator("aten::relu", &i),
            Frame::gpu_kernel("relu_kernel", "m.so", 0x10, &i),
        ]);
        cct.attribute(node, MetricKind::GpuTime, 100.0);
        (ProfileDb::new(ProfileMeta::default(), cct), node)
    }

    #[test]
    fn rules_are_silent_without_a_timeline() {
        let (db, _) = db_with_kernel();
        let view = ProfileView::new(&db);
        assert!(GpuIdleRule::default().analyze(&view).is_empty());
        assert!(StreamSerializationRule::default().analyze(&view).is_empty());
    }

    #[test]
    fn idle_rule_charges_gaps_to_the_closing_context() {
        let (db, node) = db_with_kernel();
        // 10µs busy, then a 90µs gap closed by the same context: 10%
        // utilization — critical.
        let timeline = snapshot(vec![
            interval(0, 0, 0, 10_000, 1, Some(node)),
            interval(0, 0, 100_000, 110_000, 2, Some(node)),
        ]);
        let view = ProfileView::new(&db).with_timeline(&timeline);
        let issues = GpuIdleRule::default().analyze(&view);
        assert_eq!(issues.len(), 1);
        let issue = &issues[0];
        assert_eq!(issue.severity, Severity::Critical);
        assert_eq!(issue.node, node);
        assert!(issue.message.contains("device 0"), "{}", issue.message);
        assert!(issue.message.contains("relu_kernel"), "{}", issue.message);
        assert!(issue.call_path.contains("aten::relu"));
        assert!(issues[0]
            .metrics
            .iter()
            .any(|(k, v)| k == "idle_ns" && *v == 90_000.0));
    }

    #[test]
    fn idle_rule_ignores_busy_devices() {
        let (db, node) = db_with_kernel();
        let timeline = snapshot(vec![
            interval(0, 0, 0, 50_000, 1, Some(node)),
            interval(0, 0, 50_000, 100_000, 2, Some(node)),
        ]);
        let view = ProfileView::new(&db).with_timeline(&timeline);
        assert!(GpuIdleRule::default().analyze(&view).is_empty());
    }

    #[test]
    fn serialization_rule_flags_back_to_back_streams() {
        let (db, node) = db_with_kernel();
        // Two streams, zero overlap: factor exactly 1.0.
        let timeline = snapshot(vec![
            interval(0, 0, 0, 50_000, 1, Some(node)),
            interval(0, 1, 50_000, 100_000, 2, Some(node)),
        ]);
        let view = ProfileView::new(&db).with_timeline(&timeline);
        let issues = StreamSerializationRule::default().analyze(&view);
        assert_eq!(issues.len(), 1);
        assert!(issues[0].message.contains("2 streams"));
        assert!(issues[0].message.contains("1.00"));
        assert_eq!(issues[0].node, node);
    }

    #[test]
    fn serialization_rule_accepts_overlapping_streams() {
        let (db, node) = db_with_kernel();
        let timeline = snapshot(vec![
            interval(0, 0, 0, 80_000, 1, Some(node)),
            interval(0, 1, 10_000, 90_000, 2, Some(node)),
        ]);
        let view = ProfileView::new(&db).with_timeline(&timeline);
        assert!(StreamSerializationRule::default().analyze(&view).is_empty());
        // Single-stream devices are never "serialized".
        let single = snapshot(vec![interval(1, 0, 0, 10_000, 1, Some(node))]);
        let view = ProfileView::new(&db).with_timeline(&single);
        assert!(StreamSerializationRule::default().analyze(&view).is_empty());
    }

    #[test]
    fn unresolved_contexts_fall_back_to_the_root() {
        let (db, _) = db_with_kernel();
        let timeline = snapshot(vec![
            interval(0, 0, 0, 1_000, 1, None),
            interval(0, 0, 100_000, 101_000, 2, None),
        ]);
        let view = ProfileView::new(&db).with_timeline(&timeline);
        let issues = GpuIdleRule::default().analyze(&view);
        assert_eq!(issues.len(), 1);
        assert_eq!(issues[0].node, db.cct().root());
        assert!(issues[0].message.contains("<unknown context>"));
    }
}
