//! Simulated OS threads.
//!
//! Each simulated thread owns a Python stack and a native stack (the two
//! sources DLMonitor unwinds), plus CPU-time and hardware-counter
//! accounting. A [`ThreadRegistry`] tracks all threads of the simulated
//! process and binds one as "current" per real OS thread — the analogue of
//! `gettid()` + thread-local state. The eager framework's backward thread
//! is a *real* `std::thread` bound to its own [`ThreadCtx`], faithfully
//! reproducing the paper's lost-context problem.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use crate::cpu::CpuWork;
use crate::native::NativeStack;
use crate::python::PythonStack;
use deepcontext_core::{ThreadRole, TimeNs};

/// State of one simulated thread.
#[derive(Debug)]
pub struct ThreadCtx {
    tid: u64,
    role: ThreadRole,
    python: Arc<PythonStack>,
    native: Arc<NativeStack>,
    cpu_time_ns: AtomicU64,
    instructions: AtomicU64,
    cache_misses: AtomicU64,
    branch_misses: AtomicU64,
}

impl ThreadCtx {
    fn new(tid: u64, role: ThreadRole) -> Self {
        ThreadCtx {
            tid,
            role,
            python: Arc::new(PythonStack::new()),
            native: Arc::new(NativeStack::new()),
            cpu_time_ns: AtomicU64::new(0),
            instructions: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            branch_misses: AtomicU64::new(0),
        }
    }

    /// Simulated thread id.
    pub fn tid(&self) -> u64 {
        self.tid
    }

    /// The thread's role.
    pub fn role(&self) -> ThreadRole {
        self.role
    }

    /// The thread's Python interpreter stack.
    pub fn python(&self) -> &Arc<PythonStack> {
        &self.python
    }

    /// The thread's native stack.
    pub fn native(&self) -> &Arc<NativeStack> {
        &self.native
    }

    /// Accumulated CPU time.
    pub fn cpu_time(&self) -> TimeNs {
        TimeNs(self.cpu_time_ns.load(Ordering::SeqCst))
    }

    /// Accumulated retired instructions.
    pub fn instructions(&self) -> u64 {
        self.instructions.load(Ordering::SeqCst)
    }

    /// Accumulated cache misses.
    pub fn cache_misses(&self) -> u64 {
        self.cache_misses.load(Ordering::SeqCst)
    }

    /// Accumulated branch misses.
    pub fn branch_misses(&self) -> u64 {
        self.branch_misses.load(Ordering::SeqCst)
    }

    /// Adds a chunk of work to the counters (called by
    /// [`RuntimeEnv::do_cpu_work`](crate::RuntimeEnv::do_cpu_work)).
    pub(crate) fn account(&self, work: &CpuWork) {
        self.cpu_time_ns
            .fetch_add(work.time.as_nanos(), Ordering::SeqCst);
        self.instructions
            .fetch_add(work.instructions, Ordering::SeqCst);
        self.cache_misses
            .fetch_add(work.cache_misses, Ordering::SeqCst);
        self.branch_misses
            .fetch_add(work.branch_misses, Ordering::SeqCst);
    }
}

thread_local! {
    static CURRENT: RefCell<Option<Arc<ThreadCtx>>> = const { RefCell::new(None) };
}

/// Registry of all simulated threads in a process.
#[derive(Default)]
pub struct ThreadRegistry {
    threads: RwLock<HashMap<u64, Arc<ThreadCtx>>>,
    next_tid: AtomicU64,
}

impl ThreadRegistry {
    /// Creates an empty registry.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Creates a new simulated thread with the given role.
    pub fn spawn(&self, role: ThreadRole) -> Arc<ThreadCtx> {
        let tid = self.next_tid.fetch_add(1, Ordering::SeqCst) + 1;
        let ctx = Arc::new(ThreadCtx::new(tid, role));
        self.threads.write().insert(tid, Arc::clone(&ctx));
        ctx
    }

    /// Looks up a thread by id.
    pub fn get(&self, tid: u64) -> Option<Arc<ThreadCtx>> {
        self.threads.read().get(&tid).cloned()
    }

    /// All threads, in tid order.
    pub fn snapshot(&self) -> Vec<Arc<ThreadCtx>> {
        let mut v: Vec<_> = self.threads.read().values().cloned().collect();
        v.sort_by_key(|t| t.tid());
        v
    }

    /// Number of simulated threads.
    pub fn len(&self) -> usize {
        self.threads.read().len()
    }

    /// Whether no threads exist.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Binds `ctx` as the current simulated thread for this real OS
    /// thread, returning a guard that restores the previous binding.
    pub fn bind_current(ctx: &Arc<ThreadCtx>) -> CurrentThreadGuard {
        let previous = CURRENT.with(|c| c.replace(Some(Arc::clone(ctx))));
        CurrentThreadGuard { previous }
    }

    /// The simulated thread bound to this real OS thread, if any.
    pub fn current() -> Option<Arc<ThreadCtx>> {
        CURRENT.with(|c| c.borrow().clone())
    }
}

impl std::fmt::Debug for ThreadRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadRegistry")
            .field("threads", &self.len())
            .finish()
    }
}

/// Guard restoring the previous "current thread" binding on drop.
#[derive(Debug)]
pub struct CurrentThreadGuard {
    previous: Option<Arc<ThreadCtx>>,
}

impl Drop for CurrentThreadGuard {
    fn drop(&mut self) {
        let previous = self.previous.take();
        CURRENT.with(|c| *c.borrow_mut() = previous);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spawn_assigns_unique_tids() {
        let reg = ThreadRegistry::new();
        let a = reg.spawn(ThreadRole::Main);
        let b = reg.spawn(ThreadRole::Backward);
        assert_ne!(a.tid(), b.tid());
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.get(a.tid()).unwrap().role(), ThreadRole::Main);
        assert_eq!(reg.get(b.tid()).unwrap().role(), ThreadRole::Backward);
    }

    #[test]
    fn account_accumulates() {
        let reg = ThreadRegistry::new();
        let t = reg.spawn(ThreadRole::Main);
        t.account(&CpuWork {
            time: TimeNs(100),
            instructions: 300,
            cache_misses: 2,
            branch_misses: 1,
        });
        t.account(&CpuWork {
            time: TimeNs(50),
            instructions: 150,
            cache_misses: 1,
            branch_misses: 0,
        });
        assert_eq!(t.cpu_time(), TimeNs(150));
        assert_eq!(t.instructions(), 450);
        assert_eq!(t.cache_misses(), 3);
        assert_eq!(t.branch_misses(), 1);
    }

    #[test]
    fn bind_current_is_scoped_and_restores() {
        let reg = ThreadRegistry::new();
        let a = reg.spawn(ThreadRole::Main);
        let b = reg.spawn(ThreadRole::Worker);
        assert!(ThreadRegistry::current().is_none());
        {
            let _ga = ThreadRegistry::bind_current(&a);
            assert_eq!(ThreadRegistry::current().unwrap().tid(), a.tid());
            {
                let _gb = ThreadRegistry::bind_current(&b);
                assert_eq!(ThreadRegistry::current().unwrap().tid(), b.tid());
            }
            assert_eq!(ThreadRegistry::current().unwrap().tid(), a.tid());
        }
        assert!(ThreadRegistry::current().is_none());
    }

    #[test]
    fn bindings_are_per_real_thread() {
        let reg = ThreadRegistry::new();
        let main_ctx = reg.spawn(ThreadRole::Main);
        let _g = ThreadRegistry::bind_current(&main_ctx);
        let reg2 = Arc::clone(&reg);
        let handle = std::thread::spawn(move || {
            // Fresh OS thread: no binding inherited.
            assert!(ThreadRegistry::current().is_none());
            let bw = reg2.spawn(ThreadRole::Backward);
            let _g = ThreadRegistry::bind_current(&bw);
            ThreadRegistry::current().unwrap().tid()
        });
        let bw_tid = handle.join().unwrap();
        assert_ne!(bw_tid, main_ctx.tid());
        assert_eq!(ThreadRegistry::current().unwrap().tid(), main_ctx.tid());
    }

    #[test]
    fn snapshot_is_tid_ordered() {
        let reg = ThreadRegistry::new();
        for _ in 0..5 {
            reg.spawn(ThreadRole::Worker);
        }
        let tids: Vec<_> = reg.snapshot().iter().map(|t| t.tid()).collect();
        let mut sorted = tids.clone();
        sorted.sort();
        assert_eq!(tids, sorted);
    }
}
