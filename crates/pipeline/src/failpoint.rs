//! Fault injection for the pipeline, re-exported from
//! [`deepcontext_core::failpoint`].
//!
//! The registry itself lives in `deepcontext-core` so every crate in the
//! workspace can check points without a dependency cycle; this module is
//! the pipeline-facing door, documenting which sites this crate actually
//! wires up:
//!
//! | site (see [`sites`])       | where it fires                          | effect            |
//! |----------------------------|------------------------------------------|------------------|
//! | [`sites::WORKER_PANIC`]    | worker applying a message to its shard   | panic → quarantine |
//! | [`sites::QUEUE_STALL`]     | producer-side bounded-channel send       | brief stall       |
//! | [`sites::DIR_BIND_STALL`]  | correlation-directory bind               | brief stall       |
//! | [`sites::FOLD_STALL`]      | incremental snapshot fold                | brief stall       |
//!
//! (The `STORE_IO_ERR` / `STORE_READ_ERR` sites fire in
//! `deepcontext-analyzer`'s `ProfileStore`.)
//!
//! Tests inject through [`PipelineConfig::failpoints`]
//! (`Failpoints::parse("worker_panic@shard0")`); CI injects through the
//! `DEEPCONTEXT_FAILPOINTS` environment variable, which
//! [`PipelineConfig::default`] picks up via [`Failpoints::from_env`].
//!
//! [`PipelineConfig::failpoints`]: crate::PipelineConfig::failpoints
//! [`PipelineConfig::default`]: crate::PipelineConfig

pub use deepcontext_core::failpoint::{sites, Failpoints};
