//! String interning.
//!
//! Frames reference file paths, symbol names, operator names and library
//! paths. Interning keeps the calling context tree compact (the paper's
//! memory-overhead result depends on contexts, not strings, dominating
//! profile size) and makes frame comparison an integer compare.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use parking_lot::RwLock;

/// An interned string handle.
///
/// `Sym` is a cheap, copyable index into an [`Interner`]. Two `Sym`s from the
/// same interner are equal iff the strings they denote are equal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Sym(pub(crate) u32);

impl Sym {
    /// Raw index of this symbol within its interner.
    pub fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sym#{}", self.0)
    }
}

#[derive(Default)]
struct Inner {
    map: HashMap<Arc<str>, Sym>,
    strings: Vec<Arc<str>>,
    bytes: usize,
}

/// A thread-safe string interner.
///
/// Shared (via [`Arc`]) between every component of a profiling session so
/// that frames produced by the framework shim, the GPU runtime and the CPU
/// sampler all agree on symbol identity.
///
/// # Examples
///
/// ```
/// use deepcontext_core::Interner;
///
/// let interner = Interner::new();
/// let a = interner.intern("aten::matmul");
/// let b = interner.intern("aten::matmul");
/// assert_eq!(a, b);
/// assert_eq!(interner.resolve(a).as_ref(), "aten::matmul");
/// ```
#[derive(Default)]
pub struct Interner {
    inner: RwLock<Inner>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Interns `s`, returning its symbol. Idempotent.
    pub fn intern(&self, s: &str) -> Sym {
        if let Some(&sym) = self.inner.read().map.get(s) {
            return sym;
        }
        let mut inner = self.inner.write();
        if let Some(&sym) = inner.map.get(s) {
            return sym;
        }
        let arc: Arc<str> = Arc::from(s);
        let sym = Sym(inner.strings.len() as u32);
        inner.bytes += s.len();
        inner.strings.push(Arc::clone(&arc));
        inner.map.insert(arc, sym);
        sym
    }

    /// Resolves a symbol back to its string.
    ///
    /// # Panics
    ///
    /// Panics if `sym` was produced by a different interner and is out of
    /// range for this one.
    pub fn resolve(&self, sym: Sym) -> Arc<str> {
        Arc::clone(&self.inner.read().strings[sym.0 as usize])
    }

    /// Looks up a string without interning it.
    pub fn lookup(&self, s: &str) -> Option<Sym> {
        self.inner.read().map.get(s).copied()
    }

    /// Number of distinct strings interned.
    pub fn len(&self) -> usize {
        self.inner.read().strings.len()
    }

    /// Whether the interner is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate heap bytes held by interned strings (for the
    /// memory-overhead accounting of Figure 6c/6d).
    pub fn approx_bytes(&self) -> usize {
        let inner = self.inner.read();
        // String payload + one Arc pointer per map and vec slot + map entry.
        inner.bytes + inner.strings.len() * (2 * std::mem::size_of::<Arc<str>>() + 16)
    }

    /// All interned strings in symbol order (used by the profile database
    /// writer).
    pub fn snapshot(&self) -> Vec<Arc<str>> {
        self.inner.read().strings.clone()
    }
}

impl fmt::Debug for Interner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Interner")
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let i = Interner::new();
        let a = i.intern("foo");
        let b = i.intern("foo");
        let c = i.intern("bar");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn resolve_round_trips() {
        let i = Interner::new();
        let strings = ["train.py", "aten::conv2d", "libcudart.so", ""];
        let syms: Vec<_> = strings.iter().map(|s| i.intern(s)).collect();
        for (s, sym) in strings.iter().zip(&syms) {
            assert_eq!(i.resolve(*sym).as_ref(), *s);
        }
    }

    #[test]
    fn lookup_does_not_intern() {
        let i = Interner::new();
        assert_eq!(i.lookup("missing"), None);
        let s = i.intern("present");
        assert_eq!(i.lookup("present"), Some(s));
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn concurrent_interning_agrees() {
        let i = Interner::new();
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let i = Arc::clone(&i);
                std::thread::spawn(move || {
                    (0..100)
                        .map(|n| i.intern(&format!("s{n}")))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let results: Vec<Vec<Sym>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for w in results.windows(2) {
            assert_eq!(w[0], w[1]);
        }
        assert_eq!(i.len(), 100);
    }

    #[test]
    fn approx_bytes_grows() {
        let i = Interner::new();
        let before = i.approx_bytes();
        i.intern("a fairly long interned string for accounting purposes");
        assert!(i.approx_bytes() > before);
    }
}
