//! The Table 1 capability matrix.
//!
//! "Comparison of DeepContext (our tool) with existing profiling tools."

/// Capabilities a profiling tool may have (Table 1 columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProfilerFeatures {
    /// Tool name.
    pub name: &'static str,
    /// Captures Python call context.
    pub python_context: bool,
    /// Captures framework (operator) context.
    pub framework_context: bool,
    /// Captures C++ native context.
    pub cpp_context: bool,
    /// Captures device (GPU kernel/instruction) context.
    pub device_context: bool,
    /// Works across GPU vendors.
    pub cross_gpus: bool,
    /// Works across frameworks.
    pub cross_frameworks: bool,
    /// Profiles CPU activity.
    pub cpu_profiling: bool,
}

impl ProfilerFeatures {
    /// Number of supported capabilities.
    pub fn score(&self) -> usize {
        [
            self.python_context,
            self.framework_context,
            self.cpp_context,
            self.device_context,
            self.cross_gpus,
            self.cross_frameworks,
            self.cpu_profiling,
        ]
        .into_iter()
        .filter(|b| *b)
        .count()
    }
}

/// The paper's Table 1 rows.
pub fn table1() -> Vec<ProfilerFeatures> {
    vec![
        ProfilerFeatures {
            name: "Nsight Systems",
            python_context: true,
            framework_context: false,
            cpp_context: true,
            device_context: false,
            cross_gpus: false,
            cross_frameworks: true,
            cpu_profiling: true,
        },
        ProfilerFeatures {
            name: "RocTracer",
            python_context: false,
            framework_context: false,
            cpp_context: false,
            device_context: false,
            cross_gpus: false,
            cross_frameworks: false,
            cpu_profiling: false,
        },
        ProfilerFeatures {
            name: "JAX profiler",
            python_context: true,
            framework_context: false,
            cpp_context: false,
            device_context: false,
            cross_gpus: true,
            cross_frameworks: false,
            cpu_profiling: true,
        },
        ProfilerFeatures {
            name: "PyTorch profiler",
            python_context: true,
            framework_context: true,
            cpp_context: false,
            device_context: false,
            cross_gpus: true,
            cross_frameworks: false,
            cpu_profiling: true,
        },
        ProfilerFeatures {
            name: "DeepContext",
            python_context: true,
            framework_context: true,
            cpp_context: true,
            device_context: true,
            cross_gpus: true,
            cross_frameworks: true,
            cpu_profiling: true,
        },
    ]
}

/// Renders the matrix as an aligned text table (the Table 1
/// regeneration target).
pub fn render_table1() -> String {
    let rows = table1();
    let headers = [
        "Profiling Tool",
        "Python",
        "Framework",
        "C++",
        "Device",
        "Cross GPUs",
        "Cross Frameworks",
        "CPU Profiling",
    ];
    let mut out = String::new();
    out.push_str(&format!(
        "{:<18}{:<8}{:<11}{:<6}{:<8}{:<12}{:<18}{:<14}\n",
        headers[0],
        headers[1],
        headers[2],
        headers[3],
        headers[4],
        headers[5],
        headers[6],
        headers[7]
    ));
    let mark = |b: bool| if b { "yes" } else { "-" };
    for r in rows {
        out.push_str(&format!(
            "{:<18}{:<8}{:<11}{:<6}{:<8}{:<12}{:<18}{:<14}\n",
            r.name,
            mark(r.python_context),
            mark(r.framework_context),
            mark(r.cpp_context),
            mark(r.device_context),
            mark(r.cross_gpus),
            mark(r.cross_frameworks),
            mark(r.cpu_profiling),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deepcontext_supports_everything() {
        let rows = table1();
        let dc = rows.iter().find(|r| r.name == "DeepContext").unwrap();
        assert_eq!(dc.score(), 7);
        // And strictly dominates every other tool.
        for other in rows.iter().filter(|r| r.name != "DeepContext") {
            assert!(other.score() < dc.score(), "{}", other.name);
        }
    }

    #[test]
    fn paper_values_spot_checks() {
        let rows = table1();
        let nsight = rows.iter().find(|r| r.name == "Nsight Systems").unwrap();
        assert!(nsight.python_context && nsight.cpp_context);
        assert!(!nsight.framework_context && !nsight.device_context && !nsight.cross_gpus);
        let torch = rows.iter().find(|r| r.name == "PyTorch profiler").unwrap();
        assert!(torch.framework_context && !torch.cpp_context && !torch.cross_frameworks);
    }

    #[test]
    fn table_renders_all_rows() {
        let text = render_table1();
        for name in [
            "Nsight Systems",
            "RocTracer",
            "JAX profiler",
            "PyTorch profiler",
            "DeepContext",
        ] {
            assert!(text.contains(name));
        }
        assert_eq!(text.lines().count(), 6);
    }
}
