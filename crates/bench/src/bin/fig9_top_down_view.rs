//! Regenerates **Figure 9**: the top-down view of Transformer-Big with
//! the kernel-fusion analysis flags on the loss function's small kernels.

use deepcontext_analyzer::Analyzer;
use deepcontext_bench::{deepcontext_profile, EngineKind};
use deepcontext_core::MetricKind;
use deepcontext_flamegraph::{AsciiOptions, FlameGraph};
use dl_models::{TransformerBig, WorkloadOptions};
use sim_gpu::DeviceSpec;

fn main() {
    let db = deepcontext_profile(
        &DeviceSpec::a100_sxm(),
        &TransformerBig,
        &WorkloadOptions::default(),
        EngineKind::Eager,
        3,
    );
    let report = Analyzer::with_default_rules().analyze(&db);

    println!("Figure 9: top-down view of Transformer-Big (GPU time)\n");
    let mut graph = FlameGraph::top_down(db.cct(), MetricKind::GpuTime);
    graph.highlight_hotspots(0.15);
    graph.annotate(&report);
    print!(
        "{}",
        graph.to_ascii(&AsciiOptions {
            min_share: 0.01,
            max_depth: 4,
            ..Default::default()
        })
    );

    println!("\nkernel-fusion findings:");
    for issue in report.by_rule("kernel-fusion").iter().take(3) {
        println!("  {}", issue.message);
        println!("    -> {}", issue.suggestion);
    }
}
