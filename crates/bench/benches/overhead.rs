//! End-to-end per-run profiling overhead (the criterion companion to the
//! `fig6_overhead` harness): real host time of a profiled workload run
//! under each profiler configuration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use deepcontext_bench::{measure, EngineKind, ProfilerKind};
use dl_models::{workload_by_name, WorkloadOptions};
use sim_gpu::DeviceSpec;

fn bench_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("overhead");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    let opts = WorkloadOptions::default();
    // One compute-heavy and one launch-heavy workload: the two ends of
    // the Figure 6 spectrum.
    for workload_name in ["dlrm-small", "llama3-8b"] {
        let workload = workload_by_name(workload_name).expect("workload");
        for kind in [
            ProfilerKind::None,
            ProfilerKind::FrameworkTrace,
            ProfilerKind::DeepContext,
            ProfilerKind::DeepContextNative,
        ] {
            let id = BenchmarkId::new(workload_name, kind.label());
            group.bench_with_input(id, &kind, |b, kind| {
                b.iter(|| {
                    measure(
                        &DeviceSpec::a100_sxm(),
                        workload.as_ref(),
                        &opts,
                        EngineKind::Eager,
                        *kind,
                        2,
                    )
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_overhead);
criterion_main!(benches);
