//! Trace-based profiling (the framework-profiler model).

use std::io::Write;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use deepcontext_core::TimeNs;
use dl_framework::{CallbackRegistry, FrameworkCallbackId, Site};
use sim_gpu::{Activity, ActivityKind, GpuRuntime};

/// Which framework profiler is being modelled (affects per-event
/// metadata volume; the PyTorch profiler records input shapes and stack
/// strings per op, JAX's is leaner).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceStyle {
    /// PyTorch-profiler-like: rich per-event metadata.
    Torch,
    /// JAX-profiler-like: leaner events.
    Jax,
}

/// What a trace event records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEventKind {
    /// Operator begin.
    OpBegin,
    /// Operator end.
    OpEnd,
    /// Kernel execution (with device timing).
    Kernel,
    /// Memory copy.
    Memcpy,
    /// Allocation.
    Malloc,
}

/// One recorded trace event. Every field is retained per event — this is
/// the storage model whose growth the paper measures.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Event kind.
    pub kind: TraceEventKind,
    /// Name (operator or kernel).
    pub name: Arc<str>,
    /// Timestamp.
    pub ts: TimeNs,
    /// Duration (kernels/memcpys).
    pub dur: Option<TimeNs>,
    /// Thread id.
    pub tid: u64,
    /// Correlation id for GPU events.
    pub correlation: Option<u64>,
    /// Framework metadata (input shapes, layouts, ...), retained verbatim.
    pub metadata: String,
}

impl TraceEvent {
    fn approx_bytes(&self) -> usize {
        std::mem::size_of::<TraceEvent>() + self.name.len() + self.metadata.len()
    }
}

/// Error from exporting a trace.
#[derive(Debug)]
pub enum ExportError {
    /// The trace outgrew the configured memory budget — the paper's
    /// "PyTorch profiler encountered out-of-memory issues when exporting
    /// the profiling database to disk".
    OutOfMemory {
        /// Bytes the trace held.
        used: usize,
        /// The configured budget.
        budget: usize,
    },
    /// Underlying write failure.
    Io(std::io::Error),
}

impl std::fmt::Display for ExportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExportError::OutOfMemory { used, budget } => {
                write!(
                    f,
                    "trace export out of memory: {used} bytes used, budget {budget}"
                )
            }
            ExportError::Io(e) => write!(f, "trace export failed: {e}"),
        }
    }
}

impl std::error::Error for ExportError {}

impl From<std::io::Error> for ExportError {
    fn from(e: std::io::Error) -> Self {
        ExportError::Io(e)
    }
}

/// A trace-recording profiler in the mould of the PyTorch/JAX profilers.
pub struct TraceProfiler {
    style: TraceStyle,
    events: Arc<Mutex<Vec<TraceEvent>>>,
    bytes: Arc<AtomicUsize>,
    memory_budget: Option<usize>,
    framework: Option<(Arc<CallbackRegistry>, FrameworkCallbackId)>,
    gpu: Option<Arc<GpuRuntime>>,
}

impl TraceProfiler {
    /// Creates an unattached trace profiler.
    pub fn new(style: TraceStyle) -> Self {
        TraceProfiler {
            style,
            events: Arc::new(Mutex::new(Vec::new())),
            bytes: Arc::new(AtomicUsize::new(0)),
            memory_budget: None,
            framework: None,
            gpu: None,
        }
    }

    /// Caps the trace's memory; exports past the cap fail with
    /// [`ExportError::OutOfMemory`].
    pub fn with_memory_budget(mut self, bytes: usize) -> Self {
        self.memory_budget = Some(bytes);
        self
    }

    /// Attaches to a framework's operator callbacks: every op enter/exit
    /// becomes a trace event with metadata.
    pub fn attach_framework(
        &mut self,
        callbacks: &Arc<CallbackRegistry>,
        clock: deepcontext_core::VirtualClock,
    ) {
        let events = Arc::clone(&self.events);
        let bytes = Arc::clone(&self.bytes);
        let style = self.style;
        let id = callbacks.on_op(move |op| {
            let metadata = match style {
                TraceStyle::Torch => {
                    // Record per-op input shapes (what the PyTorch
                    // profiler's record_shapes does), built cheaply.
                    let mut m = String::with_capacity(64);
                    m.push_str(if op.phase == deepcontext_core::OpPhase::Forward {
                        "fwd seq="
                    } else {
                        "bwd seq="
                    });
                    m.push_str(&op.seq_id.unwrap_or(0).to_string());
                    for t in &op.inputs {
                        m.push_str(" [");
                        for d in &t.shape {
                            m.push_str(&d.to_string());
                            m.push(',');
                        }
                        m.push(']');
                    }
                    m
                }
                TraceStyle::Jax => format!("phase={}", op.phase),
            };
            let event = TraceEvent {
                kind: if op.site == Site::Enter {
                    TraceEventKind::OpBegin
                } else {
                    TraceEventKind::OpEnd
                },
                name: Arc::clone(&op.name),
                ts: clock.now(),
                dur: None,
                tid: op.thread.tid(),
                correlation: op.seq_id,
                metadata,
            };
            bytes.fetch_add(event.approx_bytes(), Ordering::Relaxed);
            events.lock().push(event);
        });
        self.framework = Some((Arc::clone(callbacks), id));
    }

    /// Attaches to a GPU runtime's activity stream: every kernel/memcpy/
    /// malloc becomes a trace event.
    pub fn attach_gpu(&mut self, gpu: &Arc<GpuRuntime>) {
        let events = Arc::clone(&self.events);
        let bytes = Arc::clone(&self.bytes);
        gpu.set_activity_handler(move |batch: Vec<Activity>| {
            for activity in batch {
                let (kind, name, ts, dur) = match &activity.kind {
                    ActivityKind::Kernel {
                        name, start, end, ..
                    } => (
                        TraceEventKind::Kernel,
                        Arc::clone(name),
                        *start,
                        Some(*end - *start),
                    ),
                    ActivityKind::Memcpy {
                        bytes: b,
                        start,
                        end,
                        ..
                    } => (
                        TraceEventKind::Memcpy,
                        Arc::from(format!("memcpy {b}B").as_str()),
                        *start,
                        Some(*end - *start),
                    ),
                    ActivityKind::Malloc { bytes: b, at } => (
                        TraceEventKind::Malloc,
                        Arc::from(format!("malloc {b}B").as_str()),
                        *at,
                        None,
                    ),
                    _ => continue,
                };
                let event = TraceEvent {
                    kind,
                    name,
                    ts,
                    dur,
                    tid: 0,
                    correlation: Some(activity.correlation_id.0),
                    metadata: String::new(),
                };
                bytes.fetch_add(event.approx_bytes(), Ordering::Relaxed);
                events.lock().push(event);
            }
        });
        self.gpu = Some(Arc::clone(gpu));
    }

    /// Drains completed GPU activities into the trace.
    pub fn flush(&self) {
        if let Some(gpu) = &self.gpu {
            // Delivery happens through the installed activity handler.
            let batch = gpu.flush_completed();
            if !batch.is_empty() {
                // Handler was replaced? Record directly as a fallback.
                self.record_batch(batch);
            }
        }
    }

    fn record_batch(&self, batch: Vec<Activity>) {
        for activity in batch {
            if let ActivityKind::Kernel {
                name, start, end, ..
            } = &activity.kind
            {
                let event = TraceEvent {
                    kind: TraceEventKind::Kernel,
                    name: Arc::clone(name),
                    ts: *start,
                    dur: Some(*end - *start),
                    tid: 0,
                    correlation: Some(activity.correlation_id.0),
                    metadata: String::new(),
                };
                self.bytes
                    .fetch_add(event.approx_bytes(), Ordering::Relaxed);
                self.events.lock().push(event);
            }
        }
    }

    /// Number of recorded events.
    pub fn event_count(&self) -> usize {
        self.events.lock().len()
    }

    /// Approximate trace memory (the Figure 6c/6d quantity).
    pub fn approx_bytes(&self) -> usize {
        self.bytes.load(Ordering::Relaxed)
            + self.events.lock().capacity() * std::mem::size_of::<TraceEvent>()
    }

    /// The recording style.
    pub fn style(&self) -> TraceStyle {
        self.style
    }

    /// Exports a Chrome-trace-format JSON document.
    ///
    /// # Errors
    ///
    /// Fails with [`ExportError::OutOfMemory`] when the trace exceeded the
    /// configured budget (reproducing the paper's observed export OOMs),
    /// or [`ExportError::Io`] on write failure.
    pub fn export_chrome_trace<W: Write>(&self, mut w: W) -> Result<(), ExportError> {
        if let Some(budget) = self.memory_budget {
            let used = self.approx_bytes();
            if used > budget {
                return Err(ExportError::OutOfMemory { used, budget });
            }
        }
        writeln!(w, "{{\"traceEvents\":[")?;
        let events = self.events.lock();
        for (idx, e) in events.iter().enumerate() {
            let comma = if idx + 1 < events.len() { "," } else { "" };
            let ph = match e.kind {
                TraceEventKind::OpBegin => "B",
                TraceEventKind::OpEnd => "E",
                _ => "X",
            };
            let dur = e
                .dur
                .map(|d| format!(",\"dur\":{}", d.as_nanos() / 1000))
                .unwrap_or_default();
            writeln!(
                w,
                "{{\"name\":\"{}\",\"ph\":\"{ph}\",\"ts\":{},\"tid\":{}{dur}}}{comma}",
                e.name.replace('"', "'"),
                e.ts.as_nanos() / 1000,
                e.tid
            )?;
        }
        writeln!(w, "]}}")?;
        Ok(())
    }

    /// Detaches from the framework (GPU handlers are replaced by the next
    /// attachment).
    pub fn detach(&mut self) {
        if let Some((registry, id)) = self.framework.take() {
            registry.remove(id);
        }
        if let Some(gpu) = self.gpu.take() {
            gpu.set_activity_handler(|_| {});
        }
    }
}

impl Drop for TraceProfiler {
    fn drop(&mut self) {
        self.detach();
    }
}

impl std::fmt::Debug for TraceProfiler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceProfiler")
            .field("style", &self.style)
            .field("events", &self.event_count())
            .field("bytes", &self.approx_bytes())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepcontext_core::{ThreadRole, TimeNs};
    use dl_framework::{EagerEngine, FrameworkCore, Op, OpKind, TensorMeta};
    use sim_gpu::{DeviceId, DeviceSpec};
    use sim_runtime::{RuntimeEnv, ThreadRegistry};

    struct Rig {
        env: RuntimeEnv,
        gpu: Arc<GpuRuntime>,
        engine: Arc<EagerEngine>,
    }

    fn rig() -> Rig {
        let env = RuntimeEnv::new();
        let gpu = GpuRuntime::new(env.clock().clone(), vec![DeviceSpec::a100_sxm()]);
        let core = FrameworkCore::new(
            env.clone(),
            Arc::clone(&gpu),
            DeviceId(0),
            "/lib/libtorch_cpu.so",
            "libtorch_cuda.so",
            TimeNs(3_000),
        );
        let engine = EagerEngine::new(core);
        Rig { env, gpu, engine }
    }

    fn run(rig: &Rig, iters: usize) {
        let main = rig.env.threads().spawn(ThreadRole::Main);
        let _bind = ThreadRegistry::bind_current(&main);
        for _ in 0..iters {
            rig.engine
                .op(Op::new(OpKind::Relu), &[TensorMeta::new([1 << 16])])
                .unwrap();
        }
        rig.gpu.synchronize(DeviceId(0)).unwrap();
    }

    #[test]
    fn records_every_op_and_kernel_event() {
        let rig = rig();
        let mut profiler = TraceProfiler::new(TraceStyle::Torch);
        profiler.attach_framework(rig.engine.core().callbacks(), rig.env.clock().clone());
        profiler.attach_gpu(&rig.gpu);
        run(&rig, 5);
        profiler.flush();
        // 5 ops x (begin+end) + 5 kernels.
        assert_eq!(profiler.event_count(), 15);
    }

    #[test]
    fn trace_memory_grows_linearly_with_iterations() {
        let rig = rig();
        let mut profiler = TraceProfiler::new(TraceStyle::Torch);
        profiler.attach_framework(rig.engine.core().callbacks(), rig.env.clock().clone());
        profiler.attach_gpu(&rig.gpu);
        run(&rig, 10);
        profiler.flush();
        let b10 = profiler.approx_bytes();
        run(&rig, 90);
        profiler.flush();
        let b100 = profiler.approx_bytes();
        assert!(
            b100 as f64 > b10 as f64 * 5.0,
            "trace must grow ~linearly: {b10} -> {b100}"
        );
    }

    #[test]
    fn torch_style_records_fatter_events_than_jax_style() {
        let rig = rig();
        let mut torch = TraceProfiler::new(TraceStyle::Torch);
        torch.attach_framework(rig.engine.core().callbacks(), rig.env.clock().clone());
        run(&rig, 10);
        let torch_bytes = torch.approx_bytes();
        torch.detach();

        let mut jax = TraceProfiler::new(TraceStyle::Jax);
        jax.attach_framework(rig.engine.core().callbacks(), rig.env.clock().clone());
        run(&rig, 10);
        let jax_bytes = jax.approx_bytes();
        assert!(torch_bytes > jax_bytes);
    }

    #[test]
    fn export_produces_chrome_trace_and_respects_budget() {
        let rig = rig();
        let mut profiler = TraceProfiler::new(TraceStyle::Torch).with_memory_budget(64);
        profiler.attach_framework(rig.engine.core().callbacks(), rig.env.clock().clone());
        profiler.attach_gpu(&rig.gpu);
        run(&rig, 3);
        profiler.flush();
        // Budget blown: the export OOMs like the paper's observation.
        let err = profiler.export_chrome_trace(Vec::new()).unwrap_err();
        assert!(matches!(err, ExportError::OutOfMemory { .. }));

        let mut unbudgeted = TraceProfiler::new(TraceStyle::Jax);
        unbudgeted.attach_framework(rig.engine.core().callbacks(), rig.env.clock().clone());
        run(&rig, 2);
        let mut out = Vec::new();
        unbudgeted.export_chrome_trace(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("{\"traceEvents\":["));
        assert!(text.contains("aten::relu"));
        assert!(text.trim_end().ends_with("]}"));
    }

    #[test]
    fn detach_stops_recording() {
        let rig = rig();
        let mut profiler = TraceProfiler::new(TraceStyle::Torch);
        profiler.attach_framework(rig.engine.core().callbacks(), rig.env.clock().clone());
        run(&rig, 1);
        let before = profiler.event_count();
        profiler.detach();
        run(&rig, 5);
        assert_eq!(profiler.event_count(), before);
    }
}
