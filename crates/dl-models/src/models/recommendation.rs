//! DLRM-small (Criteo) and GNN (OGBG-MOLPCBA): the `aten::index`
//! workloads of case studies §6.1.

use dl_framework::{DType, FrameworkError, Op, OpKind, TensorMeta};

use super::{linear, loss, optimizer_step};
use crate::{ModelCtx, Workload};

/// Emits a table lookup: `aten::index` by default (deterministic,
/// serialized backward) or `aten::index_select` with the §6.1 fix.
fn lookup(
    ctx: &mut ModelCtx<'_>,
    table: &TensorMeta,
    indices: &TensorMeta,
    duplicates: f64,
) -> Result<TensorMeta, FrameworkError> {
    let kind = if ctx.opts.use_index_select {
        OpKind::IndexSelect
    } else {
        OpKind::Index
    };
    ctx.op(
        Op::new(kind).with_duplicates(duplicates),
        &[table.clone(), indices.clone()],
    )
}

/// DLRM-small on a Criteo-like click log: embedding lookups with heavily
/// duplicated indices (hot items), bottom/top MLPs, pairwise feature
/// interaction.
#[derive(Debug, Clone, Copy, Default)]
pub struct DlrmSmall;

impl DlrmSmall {
    const TABLES: usize = 8;
    const ROWS: usize = 100_000;
    const DIM: usize = 64;
}

impl Workload for DlrmSmall {
    fn name(&self) -> &'static str {
        "dlrm-small"
    }

    fn dataset(&self) -> &'static str {
        "criteo-1tb"
    }

    fn training(&self) -> bool {
        true
    }

    fn param_bytes(&self) -> u64 {
        (Self::TABLES * Self::ROWS * Self::DIM * 4) as u64
    }

    fn iteration(&self, ctx: &mut ModelCtx<'_>) -> Result<(), FrameworkError> {
        let batch = 8192 * ctx.opts.scale;
        let _model = ctx.scope("dlrm.py", 10, "forward");

        // Sparse features: Criteo click logs concentrate on hot items, so
        // each lookup batch hits the same rows ~48 times on average.
        let mut sparse = Vec::new();
        {
            let _scope = ctx.scope("dlrm.py", 24, "embedding_lookup");
            for _ in 0..Self::TABLES {
                let table = TensorMeta::new([Self::ROWS, Self::DIM]);
                let idx = TensorMeta::new([batch]).with_dtype(DType::I64);
                sparse.push(lookup(ctx, &table, &idx, 32.0)?);
            }
        }

        // Dense features through the bottom MLP (512-256-64, AlgoPerf
        // DLRM-small shape).
        let dense = {
            let _scope = ctx.scope("dlrm.py", 31, "bottom_mlp");
            let x = TensorMeta::new([batch, 13]);
            let h = linear(ctx, &x, 512)?;
            let h = ctx.op(Op::new(OpKind::Relu), &[h])?;
            let h = linear(ctx, &h, 256)?;
            let h = ctx.op(Op::new(OpKind::Relu), &[h])?;
            linear(ctx, &h, Self::DIM)?
        };

        // Pairwise interaction: concat + self-similarity matmul.
        let interactions = {
            let _scope = ctx.scope("dlrm.py", 40, "interact_features");
            let mut features = sparse;
            features.push(dense);
            let stacked = ctx.op(
                Op::new(OpKind::Concat).with_out_shape([batch, (Self::TABLES + 1) * Self::DIM]),
                &features,
            )?;
            let t = TensorMeta::new([(Self::TABLES + 1) * Self::DIM, Self::TABLES + 1]);
            ctx.op(Op::new(OpKind::MatMul), &[stacked, t])?
        };

        // Top MLP (1024-512-256) + loss.
        let logits = {
            let _scope = ctx.scope("dlrm.py", 52, "top_mlp");
            let h = linear(ctx, &interactions, 1024)?;
            let h = ctx.op(Op::new(OpKind::Relu), &[h])?;
            let h = linear(ctx, &h, 512)?;
            let h = ctx.op(Op::new(OpKind::Relu), &[h])?;
            let h = linear(ctx, &h, 256)?;
            let h = ctx.op(Op::new(OpKind::Relu), &[h])?;
            linear(ctx, &h, 2)?
        };
        loss(ctx, &logits)?;
        optimizer_step(ctx, self.param_bytes() / 64)
    }
}

/// A message-passing GNN on an OGBG-MOLPCBA-like molecular graph batch:
/// gather/scatter over node tables with degree-driven duplicate indices.
#[derive(Debug, Clone, Copy, Default)]
pub struct Gnn;

impl Gnn {
    const NODES: usize = 8_192;
    const EDGES: usize = 32_768;
    const DIM: usize = 128;
    const LAYERS: usize = 5;
}

impl Workload for Gnn {
    fn name(&self) -> &'static str {
        "gnn"
    }

    fn dataset(&self) -> &'static str {
        "ogbg-molpcba"
    }

    fn training(&self) -> bool {
        true
    }

    fn param_bytes(&self) -> u64 {
        (Self::LAYERS * Self::DIM * Self::DIM * 4) as u64
    }

    fn iteration(&self, ctx: &mut ModelCtx<'_>) -> Result<(), FrameworkError> {
        let _model = ctx.scope("gnn.py", 8, "forward");
        let mut nodes = TensorMeta::new([Self::NODES, Self::DIM]);
        for layer in 0..Self::LAYERS {
            let _scope = ctx.scope("gnn.py", 20 + layer as u32, "message_passing_layer");
            // Gather source-node features along edges (mean degree ≈ 4
            // duplicates per node).
            let edge_index = TensorMeta::new([Self::EDGES * ctx.opts.scale]).with_dtype(DType::I64);
            let messages = lookup(ctx, &nodes, &edge_index, 4.0)?;
            let transformed = linear(ctx, &messages, Self::DIM)?;
            let activated = ctx.op(Op::new(OpKind::Relu), &[transformed])?;
            // Aggregate messages back onto nodes.
            let aggregated = ctx.op(
                Op::new(OpKind::ScatterAdd)
                    .with_out_shape([Self::NODES, Self::DIM])
                    .with_duplicates(4.0),
                &[activated, edge_index],
            )?;
            nodes = ctx.op(Op::new(OpKind::Add), &[aggregated, nodes])?;
        }
        let pooled = {
            let _scope = ctx.scope("gnn.py", 61, "readout");
            ctx.op(
                Op::new(OpKind::Mean).with_out_shape([1, Self::DIM]),
                &[nodes],
            )?
        };
        let logits = linear(ctx, &pooled, 128)?;
        loss(ctx, &logits)?;
        optimizer_step(ctx, self.param_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::testutil::smoke_eager;
    use crate::WorkloadOptions;

    #[test]
    fn dlrm_index_fix_reduces_gpu_time() {
        // The §6.1 headline: index -> index_select is ~1.66x on GPU time.
        let slow = smoke_eager(&DlrmSmall, &WorkloadOptions::default());
        let fast = smoke_eager(
            &DlrmSmall,
            &WorkloadOptions {
                use_index_select: true,
                ..Default::default()
            },
        );
        let speedup = slow.gpu_busy.as_nanos() as f64 / fast.gpu_busy.as_nanos() as f64;
        assert!(
            speedup > 1.2,
            "index_select should speed up DLRM GPU time, got {speedup:.2}x"
        );
        // Same number of kernels either way (1:1 replacement).
        assert_eq!(slow.kernels, fast.kernels);
    }

    #[test]
    fn gnn_index_fix_gives_modest_speedup() {
        // §6.1: GNN sees 3.97s -> 3.71s (~1.07x) — smaller duplicates.
        let slow = smoke_eager(&Gnn, &WorkloadOptions::default());
        let fast = smoke_eager(
            &Gnn,
            &WorkloadOptions {
                use_index_select: true,
                ..Default::default()
            },
        );
        let speedup = slow.gpu_busy.as_nanos() as f64 / fast.gpu_busy.as_nanos() as f64;
        assert!(speedup > 1.0, "got {speedup:.2}x");
        // And the effect is smaller than DLRM's.
        let dlrm_slow = smoke_eager(&DlrmSmall, &WorkloadOptions::default());
        let dlrm_fast = smoke_eager(
            &DlrmSmall,
            &WorkloadOptions {
                use_index_select: true,
                ..Default::default()
            },
        );
        let dlrm_speedup =
            dlrm_slow.gpu_busy.as_nanos() as f64 / dlrm_fast.gpu_busy.as_nanos() as f64;
        assert!(dlrm_speedup > speedup);
    }

    #[test]
    fn workload_metadata() {
        assert_eq!(DlrmSmall.dataset(), "criteo-1tb");
        assert!(DlrmSmall.training());
        assert!(DlrmSmall.param_bytes() > 0);
        assert_eq!(Gnn.dataset(), "ogbg-molpcba");
    }
}
