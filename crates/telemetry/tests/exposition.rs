//! Prometheus exposition contract tests: deterministic ordering (the
//! property goldens and scrape diffing rely on), metric-name/label
//! sanitization and value escaping, and a byte-for-byte golden-file
//! round-trip for both exporters.
//!
//! The goldens live in `tests/goldens/`. After an intentional format
//! change, regenerate them with:
//!
//! ```text
//! cargo test -p deepcontext-telemetry --test exposition -- --ignored regenerate
//! ```

use deepcontext_core::Interner;
use deepcontext_telemetry::{escape_label_value, Journal, JournalSeverity, Telemetry};

const PROM_GOLDEN: &str = include_str!("goldens/exposition.prom");
const JSON_GOLDEN: &str = include_str!("goldens/exposition.json");

/// A fixed registry exercising every metric kind, multi-series labels,
/// and every sanitization/escaping path. Values are constants, so the
/// renderings are fully reproducible.
fn golden_registry() -> Telemetry {
    let t = Telemetry::new();
    t.counter("deepcontext_events_enqueued", &[("shard", "0")])
        .add(10);
    t.counter("deepcontext_events_enqueued", &[("shard", "1")])
        .add(32);
    // Illegal metric-name characters and a digit-leading label name.
    t.counter("weird.events-seen", &[("9lives", "cat")]).add(1);
    t.gauge("deepcontext_queue_capacity", &[]).set(4096);
    // Label values carrying every escaped character.
    t.gauge(
        "deepcontext_max_queue_depth",
        &[("note", "quote\" back\\slash\nnewline")],
    )
    .set(7);
    // Labels registered out of key order: the series must come out
    // sorted regardless.
    let h = t.histogram(
        "deepcontext_flush_latency_ns",
        &[("mode", "async"), ("kind", "fine")],
    );
    for v in [1, 2, 3, 5, 8, 13, 100, 1000] {
        h.record(v);
    }
    // The incident journal mirrors its conservation counters into the
    // registry. A capacity-2 ring stripes one slot per stripe, so ten
    // sequential events deterministically wrap two stripes:
    // `deepcontext_journal_recorded_total` 10, `..._evicted_total` 2.
    let journal = Journal::new(Interner::new(), 2).with_telemetry(&t);
    for i in 0..10u32 {
        journal.record(
            JournalSeverity::Info,
            "golden.site",
            &[("i", &i.to_string())],
        );
    }
    t
}

#[test]
fn exposition_matches_the_committed_golden() {
    assert_eq!(
        golden_registry().snapshot().to_prometheus(),
        PROM_GOLDEN,
        "Prometheus exposition drifted from tests/goldens/exposition.prom; \
         if the change is intentional, regenerate with \
         `cargo test -p deepcontext-telemetry --test exposition -- --ignored regenerate`"
    );
}

#[test]
fn json_matches_the_committed_golden() {
    assert_eq!(
        golden_registry().snapshot().to_json(),
        JSON_GOLDEN,
        "JSON export drifted from tests/goldens/exposition.json; \
         if the change is intentional, regenerate with \
         `cargo test -p deepcontext-telemetry --test exposition -- --ignored regenerate`"
    );
}

#[test]
fn exposition_is_deterministic_and_label_order_invariant() {
    // Two snapshots of the same idle registry render identically.
    let t = golden_registry();
    assert_eq!(t.snapshot().to_prometheus(), t.snapshot().to_prometheus());
    assert_eq!(t.snapshot().to_json(), t.snapshot().to_json());

    // Registering the same labels in a different order neither splits
    // the series nor changes the rendering.
    let a = Telemetry::new();
    a.counter("m_total", &[("x", "1"), ("y", "2")]).add(3);
    let b = Telemetry::new();
    b.counter("m_total", &[("y", "2"), ("x", "1")]).add(3);
    let text = a.snapshot().to_prometheus();
    assert_eq!(text, b.snapshot().to_prometheus());
    assert!(text.contains("m_total{x=\"1\",y=\"2\"} 3\n"));
}

#[test]
fn names_are_sanitized_and_values_escape_round_trip() {
    let text = golden_registry().snapshot().to_prometheus();
    // Illegal metric/label-name characters are rewritten, digit-leading
    // names gain a `_` prefix.
    assert!(text.contains("# TYPE weird_events_seen counter\n"));
    assert!(text.contains("weird_events_seen{_9lives=\"cat\"} 1\n"));
    // Every emitted metric name stays inside the Prometheus alphabet.
    for line in text.lines().filter(|l| !l.starts_with('#')) {
        let name = line
            .split(['{', ' '])
            .next()
            .expect("sample line has a name");
        assert!(
            name.chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "illegal metric name in exposition: {name:?}"
        );
        assert!(
            !name.starts_with(|c: char| c.is_ascii_digit()),
            "digit-leading metric name in exposition: {name:?}"
        );
    }
    // The escaped label value unescapes back to the original.
    let raw = "quote\" back\\slash\nnewline";
    let escaped = escape_label_value(raw);
    assert!(text.contains(&format!("note=\"{escaped}\"")));
    let unescaped = escaped
        .replace("\\n", "\n")
        .replace("\\\"", "\"")
        .replace("\\\\", "\\");
    assert_eq!(unescaped, raw, "escaping must round-trip");
    // And the exposition itself stays one-sample-per-line: no raw
    // newline survives inside a label value.
    for line in text.lines().filter(|l| !l.starts_with('#')) {
        assert!(
            line.ends_with(|c: char| c.is_ascii_digit() || c == 'f'), // "+Inf" buckets end in f
            "sample line split by an unescaped newline: {line:?}"
        );
    }
}

/// Rewrites the goldens from the current exporters. Ignored by default;
/// run explicitly after an intentional format change.
#[test]
#[ignore = "golden regeneration helper, run explicitly"]
fn regenerate() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/goldens");
    std::fs::create_dir_all(&dir).expect("goldens dir");
    let snapshot = golden_registry().snapshot();
    std::fs::write(dir.join("exposition.prom"), snapshot.to_prometheus()).expect("write prom");
    std::fs::write(dir.join("exposition.json"), snapshot.to_json()).expect("write json");
}
