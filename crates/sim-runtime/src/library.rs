//! `LD_AUDIT`-style library map.
//!
//! DeepContext records the address space of every loaded library using
//! `LD_AUDIT` (paper §4.1): this is how the call-path integrator recognises
//! that a native frame belongs to `libpython.so` and must be replaced by
//! the Python call path, and how user-configured custom driver libraries
//! are intercepted. The simulation keeps an explicit map with load
//! callbacks.

use std::sync::Arc;

use parking_lot::RwLock;

/// A loaded simulated shared library.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LibraryInfo {
    /// Library path, e.g. `/usr/lib/libpython3.11.so`.
    pub path: Arc<str>,
    /// Base load address.
    pub base: u64,
    /// Mapping size in bytes.
    pub size: u64,
}

impl LibraryInfo {
    /// Whether `pc` falls inside this library's mapping.
    pub fn contains(&self, pc: u64) -> bool {
        pc >= self.base && pc < self.base + self.size
    }

    /// Final path component, e.g. `libpython3.11.so`.
    pub fn basename(&self) -> &str {
        self.path.rsplit('/').next().unwrap_or(&self.path)
    }
}

type LoadCallback = Box<dyn Fn(&LibraryInfo) + Send + Sync>;

/// Registry of loaded libraries with PC lookup and load-time callbacks
/// (the `la_objopen` analogue).
#[derive(Default)]
pub struct LibraryMap {
    libs: RwLock<Vec<LibraryInfo>>,
    callbacks: RwLock<Vec<LoadCallback>>,
}

impl LibraryMap {
    /// Creates an empty map.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Registers a library load, firing load callbacks. Returns the info.
    pub fn register(&self, path: &str, base: u64, size: u64) -> LibraryInfo {
        let info = LibraryInfo {
            path: Arc::from(path),
            base,
            size,
        };
        self.libs.write().push(info.clone());
        for cb in self.callbacks.read().iter() {
            cb(&info);
        }
        info
    }

    /// Registers an audit callback invoked for every *future* library load.
    pub fn on_load(&self, cb: impl Fn(&LibraryInfo) + Send + Sync + 'static) {
        self.callbacks.write().push(Box::new(cb));
    }

    /// Finds the library containing `pc`.
    pub fn find(&self, pc: u64) -> Option<LibraryInfo> {
        self.libs.read().iter().find(|l| l.contains(pc)).cloned()
    }

    /// Finds a library by exact path.
    pub fn by_path(&self, path: &str) -> Option<LibraryInfo> {
        self.libs
            .read()
            .iter()
            .find(|l| l.path.as_ref() == path)
            .cloned()
    }

    /// Finds a library whose basename matches, e.g. `libpython3.11.so`.
    pub fn by_basename(&self, basename: &str) -> Option<LibraryInfo> {
        self.libs
            .read()
            .iter()
            .find(|l| l.basename() == basename)
            .cloned()
    }

    /// Whether `pc` belongs to a library whose basename starts with
    /// `libpython` — the cutover test of the paper's integration algorithm.
    pub fn is_python_pc(&self, pc: u64) -> bool {
        self.libs
            .read()
            .iter()
            .any(|l| l.contains(pc) && l.basename().starts_with("libpython"))
    }

    /// All registered libraries.
    pub fn snapshot(&self) -> Vec<LibraryInfo> {
        self.libs.read().clone()
    }

    /// Number of registered libraries.
    pub fn len(&self) -> usize {
        self.libs.read().len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl std::fmt::Debug for LibraryMap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LibraryMap")
            .field("libraries", &self.libs.read().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn register_and_find_by_pc() {
        let map = LibraryMap::new();
        map.register("/lib/libfoo.so", 0x1000, 0x100);
        map.register("/lib/libbar.so", 0x2000, 0x100);
        assert_eq!(map.find(0x1050).unwrap().basename(), "libfoo.so");
        assert_eq!(map.find(0x2000).unwrap().basename(), "libbar.so");
        assert!(map.find(0x20ff + 1).is_none());
        assert!(map.find(0xfff).is_none());
    }

    #[test]
    fn python_pc_detection() {
        let map = LibraryMap::new();
        map.register("/usr/lib/libpython3.11.so", 0x7000, 0x1000);
        map.register("/usr/lib/libtorch.so", 0x9000, 0x1000);
        assert!(map.is_python_pc(0x7123));
        assert!(!map.is_python_pc(0x9123));
        assert!(!map.is_python_pc(0x0));
    }

    #[test]
    fn load_callbacks_fire_for_future_loads() {
        let map = LibraryMap::new();
        let count = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&count);
        map.on_load(move |info| {
            assert!(info.size > 0);
            c.fetch_add(1, Ordering::SeqCst);
        });
        map.register("/lib/a.so", 0x1, 0x10);
        map.register("/lib/b.so", 0x100, 0x10);
        assert_eq!(count.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn lookup_by_path_and_basename() {
        let map = LibraryMap::new();
        map.register("/opt/cuda/libcudart.so", 0x5000, 0x500);
        assert!(map.by_path("/opt/cuda/libcudart.so").is_some());
        assert!(map.by_basename("libcudart.so").is_some());
        assert!(map.by_basename("libmissing.so").is_none());
    }
}
