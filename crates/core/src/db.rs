//! Persistent profile database.
//!
//! DeepContext aggregates online, so the on-disk profile is a compact
//! calling context tree rather than a trace. The format is a line-oriented
//! text format (version-tagged) with an interned string table followed by
//! nodes in topological order; it needs no external serialization crates.

use std::io::{BufRead, BufReader, Read, Write};
use std::sync::Arc;

use crate::cct::{CallingContextTree, NodeId};
use crate::error::CoreError;
use crate::frame::Frame;
use crate::interner::Interner;
use crate::metrics::{MetricKind, MetricStat, MetricStore};

const MAGIC: &str = "deepcontext-profile v1";

/// Metadata describing one profiling run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProfileMeta {
    /// Workload name (e.g. `unet-fastmri`).
    pub workload: String,
    /// Framework used (e.g. `eager` / `jit`).
    pub framework: String,
    /// Platform / device (e.g. `nvidia-a100`).
    pub platform: String,
    /// Number of profiled iterations.
    pub iterations: u64,
    /// Free-form extra key/value pairs.
    pub extra: Vec<(String, String)>,
}

/// A complete stored profile: metadata plus the calling context tree.
///
/// # Examples
///
/// ```
/// use deepcontext_core::{CallingContextTree, Frame, MetricKind, ProfileDb, ProfileMeta};
///
/// let mut cct = CallingContextTree::new();
/// let i = cct.interner();
/// let leaf = cct.insert_path(&[Frame::operator("aten::relu", &i)]);
/// cct.attribute(leaf, MetricKind::GpuTime, 9.0);
///
/// let db = ProfileDb::new(ProfileMeta { workload: "demo".into(), ..Default::default() }, cct);
/// let mut buf = Vec::new();
/// db.save(&mut buf)?;
/// let back = ProfileDb::load(&buf[..])?;
/// assert_eq!(back.meta().workload, "demo");
/// assert_eq!(back.cct().total(MetricKind::GpuTime), 9.0);
/// # Ok::<(), deepcontext_core::CoreError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ProfileDb {
    meta: ProfileMeta,
    cct: CallingContextTree,
}

impl ProfileDb {
    /// Bundles metadata with a finished tree.
    pub fn new(meta: ProfileMeta, cct: CallingContextTree) -> Self {
        ProfileDb { meta, cct }
    }

    /// Run metadata.
    pub fn meta(&self) -> &ProfileMeta {
        &self.meta
    }

    /// The calling context tree.
    pub fn cct(&self) -> &CallingContextTree {
        &self.cct
    }

    /// Mutable access to the tree (e.g. for post-load annotation).
    pub fn cct_mut(&mut self) -> &mut CallingContextTree {
        &mut self.cct
    }

    /// Consumes the database, returning its parts.
    pub fn into_parts(self) -> (ProfileMeta, CallingContextTree) {
        (self.meta, self.cct)
    }

    /// Writes the profile to `w`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Io`] if writing fails.
    pub fn save<W: Write>(&self, mut w: W) -> Result<(), CoreError> {
        writeln!(w, "{MAGIC}")?;
        writeln!(w, "meta\tworkload\t{}", escape(&self.meta.workload))?;
        writeln!(w, "meta\tframework\t{}", escape(&self.meta.framework))?;
        writeln!(w, "meta\tplatform\t{}", escape(&self.meta.platform))?;
        writeln!(w, "meta\titerations\t{}", self.meta.iterations)?;
        for (k, v) in &self.meta.extra {
            writeln!(w, "meta\textra.{}\t{}", escape(k), escape(v))?;
        }
        let strings = self.cct.interner().snapshot();
        writeln!(w, "strings\t{}", strings.len())?;
        for s in &strings {
            writeln!(w, "{}", escape(s))?;
        }
        let nodes = self.cct.nodes_raw();
        writeln!(w, "nodes\t{}", nodes.len())?;
        for node in nodes {
            let parent = match node.parent() {
                Some(p) => p.index().to_string(),
                None => "-".to_owned(),
            };
            write!(w, "{parent}\t{}", node.frame().to_record())?;
            write!(w, "\t{}", node.metrics().len())?;
            for (kind, stat) in node.metrics().iter() {
                write!(w, "\t{}\t{}", kind.to_record(), stat.to_record())?;
            }
            writeln!(w)?;
        }
        writeln!(w, "end")?;
        Ok(())
    }

    /// Reads a profile previously written by [`ProfileDb::save`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Parse`] for malformed input and
    /// [`CoreError::Io`] for read failures.
    pub fn load<R: Read>(r: R) -> Result<Self, CoreError> {
        let mut lines = BufReader::new(r).lines();
        let mut next_line = move || -> Result<String, CoreError> {
            lines
                .next()
                .ok_or_else(|| CoreError::parse("unexpected end of profile".into()))?
                .map_err(CoreError::from)
        };

        if next_line()? != MAGIC {
            return Err(CoreError::parse("bad magic header".into()));
        }

        let mut meta = ProfileMeta::default();
        let line = loop {
            let line = next_line()?;
            if let Some(rest) = line.strip_prefix("meta\t") {
                let (key, value) = rest
                    .split_once('\t')
                    .ok_or_else(|| CoreError::parse("malformed meta line".into()))?;
                match key {
                    "workload" => meta.workload = unescape(value)?,
                    "framework" => meta.framework = unescape(value)?,
                    "platform" => meta.platform = unescape(value)?,
                    "iterations" => {
                        meta.iterations = value
                            .parse()
                            .map_err(|e| CoreError::parse(format!("bad iterations: {e}")))?
                    }
                    other => {
                        let k = other.strip_prefix("extra.").unwrap_or(other);
                        meta.extra.push((unescape(k)?, unescape(value)?));
                    }
                }
            } else {
                break line;
            }
        };

        let count: usize = line
            .strip_prefix("strings\t")
            .ok_or_else(|| CoreError::parse("expected strings section".into()))?
            .parse()
            .map_err(|e| CoreError::parse(format!("bad string count: {e}")))?;
        let interner = Interner::new();
        for _ in 0..count {
            let s = unescape(&next_line()?)?;
            interner.intern(&s);
        }

        let line = next_line()?;
        let node_count: usize = line
            .strip_prefix("nodes\t")
            .ok_or_else(|| CoreError::parse("expected nodes section".into()))?
            .parse()
            .map_err(|e| CoreError::parse(format!("bad node count: {e}")))?;

        let mut raw = Vec::with_capacity(node_count);
        for _ in 0..node_count {
            let line = next_line()?;
            raw.push(parse_node_line(&line)?);
        }
        if next_line()? != "end" {
            return Err(CoreError::parse("missing end marker".into()));
        }

        let cct = CallingContextTree::from_raw(Arc::clone(&interner), raw)?;
        Ok(ProfileDb { meta, cct })
    }
}

fn frame_field_count(tag: &str) -> Result<usize, CoreError> {
    Ok(match tag {
        "R" => 1,
        "I" => 2,
        "T" => 3,
        "P" | "O" | "N" | "A" | "K" => 4,
        other => return Err(CoreError::parse(format!("unknown frame tag {other:?}"))),
    })
}

type RawNode = (Option<NodeId>, Frame, MetricStore);

fn parse_node_line(line: &str) -> Result<RawNode, CoreError> {
    let fields: Vec<&str> = line.split('\t').collect();
    if fields.len() < 2 {
        return Err(CoreError::parse("truncated node line".into()));
    }
    let parent = match fields[0] {
        "-" => None,
        idx => Some(NodeId(
            idx.parse::<u32>()
                .map_err(|e| CoreError::parse(format!("bad parent: {e}")))?,
        )),
    };
    let tag = fields[1];
    let nf = frame_field_count(tag)?;
    if fields.len() < 1 + nf + 1 {
        return Err(CoreError::parse("node line too short for frame".into()));
    }
    let frame = Frame::from_record(&fields[1..1 + nf].join("\t"))?;
    let metric_count: usize = fields[1 + nf]
        .parse()
        .map_err(|e| CoreError::parse(format!("bad metric count: {e}")))?;
    let mut metrics = MetricStore::new();
    let mut pos = 1 + nf + 1;
    for _ in 0..metric_count {
        if fields.len() < pos + 7 {
            return Err(CoreError::parse("node line too short for metrics".into()));
        }
        let kind = MetricKind::from_record(fields[pos])?;
        let stat = MetricStat::from_record_fields(fields[pos + 1..pos + 7].iter().copied())?;
        metrics.merge_stat(kind, &stat);
        pos += 7;
    }
    Ok((parent, frame, metrics))
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            other => out.push(other),
        }
    }
    out
}

fn unescape(s: &str) -> Result<String, CoreError> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            other => return Err(CoreError::parse(format!("bad escape \\{other:?}"))),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::OpPhase;
    use crate::metrics::StallReason;

    fn sample_db() -> ProfileDb {
        let mut cct = CallingContextTree::new();
        let i = cct.interner();
        let leaf1 = cct.insert_path(&[
            Frame::python("train.py", 10, "train", &i),
            Frame::operator_with("aten::index", OpPhase::Forward, Some(1), &i),
            Frame::gpu_kernel("index_kernel", "libtorch_cuda.so", 0x44, &i),
        ]);
        let leaf2 = cct.insert_path(&[
            Frame::python("train.py", 10, "train", &i),
            Frame::operator_with("aten::index", OpPhase::Backward, Some(1), &i),
            Frame::gpu_kernel("indexing_backward_kernel", "libtorch_cuda.so", 0x55, &i),
        ]);
        cct.attribute(leaf1, MetricKind::GpuTime, 100.0);
        cct.attribute(leaf2, MetricKind::GpuTime, 900.0);
        cct.attribute(
            leaf2,
            MetricKind::Stall(StallReason::MemoryDependency),
            17.0,
        );
        cct.attribute_exclusive(leaf2, MetricKind::Warps, 64.0);
        ProfileDb::new(
            ProfileMeta {
                workload: "dlrm-small".into(),
                framework: "eager".into(),
                platform: "nvidia-a100".into(),
                iterations: 100,
                extra: vec![("note".into(), "tab\there".into())],
            },
            cct,
        )
    }

    #[test]
    fn save_load_round_trip_preserves_everything() {
        let db = sample_db();
        let mut buf = Vec::new();
        db.save(&mut buf).unwrap();
        let back = ProfileDb::load(&buf[..]).unwrap();

        assert_eq!(back.meta(), db.meta());
        assert_eq!(back.cct().node_count(), db.cct().node_count());
        assert_eq!(
            back.cct().total(MetricKind::GpuTime),
            db.cct().total(MetricKind::GpuTime)
        );
        // Same render implies same structure, labels and metric sums.
        assert_eq!(
            back.cct().render(MetricKind::GpuTime),
            db.cct().render(MetricKind::GpuTime)
        );
    }

    #[test]
    fn load_rejects_bad_magic() {
        let err = ProfileDb::load(&b"not a profile\n"[..]).unwrap_err();
        assert!(err.to_string().contains("magic"));
    }

    #[test]
    fn load_rejects_truncation() {
        let db = sample_db();
        let mut buf = Vec::new();
        db.save(&mut buf).unwrap();
        let cut = buf.len() / 2;
        assert!(ProfileDb::load(&buf[..cut]).is_err());
    }

    #[test]
    fn escape_round_trips() {
        for s in ["plain", "with\ttab", "with\nnewline", "back\\slash", ""] {
            assert_eq!(unescape(&escape(s)).unwrap(), s);
        }
    }

    #[test]
    fn empty_tree_round_trips() {
        let db = ProfileDb::new(ProfileMeta::default(), CallingContextTree::new());
        let mut buf = Vec::new();
        db.save(&mut buf).unwrap();
        let back = ProfileDb::load(&buf[..]).unwrap();
        assert_eq!(back.cct().node_count(), 1);
    }
}
