//! Simulated deep learning frameworks.
//!
//! DeepContext profiles PyTorch (eager) and JAX (JIT) workloads; this
//! crate provides both execution models against the simulated substrates,
//! with exactly the interception surfaces DLMonitor needs (paper §4.1):
//!
//! * [`EagerEngine`] — a PyTorch-like eager dispatcher with
//!   [`EagerEngine::add_global_callback`] (the `aten::addGlobalCallback`
//!   analogue), an autograd tape assigning **sequence ids** to forward
//!   operators, and a dedicated **real backward thread** per engine that
//!   replays the tape with no Python context — faithfully reproducing the
//!   forward/backward association problem the paper solves;
//! * [`JitEngine`] — a JAX-like tracing/compiling engine whose compilation
//!   passes (canonicalize → elementwise fusion → DCE) fire compile
//!   callbacks and record the **fused→original operator mapping** with
//!   trace-time call paths (paper Figure 4);
//! * a framework-agnostic operator vocabulary ([`Op`], [`OpKind`]) — the
//!   concrete realisation of DLMonitor's "framework-specific data into a
//!   framework-agnostic format" conversion;
//! * [`DataLoader`] — a worker-pool input pipeline with a CPU
//!   oversubscription model (paper §6.4).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod callbacks;
mod core;
mod dataloader;
mod eager;
mod error;
mod jit;
mod ops;
mod pyscope;
mod registry;
mod tensor;

pub use crate::core::FrameworkCore;
pub use callbacks::{CallbackRegistry, FrameworkCallbackId, GraphEvent, MemEvent, OpEvent, Site};
pub use dataloader::{DataLoader, DataLoaderConfig};
pub use eager::EagerEngine;
pub use error::FrameworkError;
pub use jit::{
    CompiledGraph, FusionMapping, Graph, GraphNode, JitEngine, NodeId as GraphNodeId, Tracer,
};
pub use ops::{backward_ops, Op, OpAttrs, OpKind};
pub use pyscope::{PyScope, PythonSim};
pub use registry::KernelRegistry;
pub use tensor::{DType, Layout, TensorMeta};
