//! A complete simulated evaluation platform: one device, both engines.

use std::sync::Arc;

use deepcontext_core::{ThreadRole, TimeNs};
use dl_framework::{DataLoader, EagerEngine, FrameworkCore, FrameworkError, JitEngine};
use sim_gpu::{DeviceId, DeviceSpec, GpuRuntime};
use sim_runtime::{RuntimeEnv, ThreadCtx, ThreadRegistry};

use crate::sink::{EagerSink, TraceSink};
use crate::{ModelCtx, Workload, WorkloadOptions};

/// Statistics from one workload run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunStats {
    /// Virtual wall-clock time of the run.
    pub wall: TimeNs,
    /// Accumulated device busy time.
    pub gpu_busy: TimeNs,
    /// Kernels launched.
    pub kernels: u64,
    /// Iterations executed.
    pub iterations: u32,
}

/// One evaluation platform (paper Table 2 rows): a device plus the eager
/// and JIT engines wired to it.
pub struct TestBed {
    env: RuntimeEnv,
    gpu: Arc<GpuRuntime>,
    eager: Arc<EagerEngine>,
    jit: Arc<JitEngine>,
    main: Arc<ThreadCtx>,
    device: DeviceId,
}

impl TestBed {
    /// Builds a test bed on a device model.
    pub fn new(spec: DeviceSpec) -> TestBed {
        let env = RuntimeEnv::new();
        let gpu = GpuRuntime::new(env.clock().clone(), vec![spec]);
        let device = DeviceId(0);
        let eager_core = FrameworkCore::new(
            env.clone(),
            Arc::clone(&gpu),
            device,
            "/lib/libtorch_cpu.so",
            "libtorch_cuda.so",
            TimeNs(3_000),
        );
        let jit_core = FrameworkCore::new(
            env.clone(),
            Arc::clone(&gpu),
            device,
            "/lib/libjax.so",
            "libxla.so",
            TimeNs(1_000),
        );
        let eager = EagerEngine::new(Arc::clone(&eager_core));
        let jit = JitEngine::new(jit_core);
        let main = env.threads().spawn(ThreadRole::Main);
        TestBed {
            env,
            gpu,
            eager,
            jit,
            main,
            device,
        }
    }

    /// The process environment.
    pub fn env(&self) -> &RuntimeEnv {
        &self.env
    }

    /// The GPU runtime.
    pub fn gpu(&self) -> &Arc<GpuRuntime> {
        &self.gpu
    }

    /// The eager engine.
    pub fn eager(&self) -> &Arc<EagerEngine> {
        &self.eager
    }

    /// The JIT engine.
    pub fn jit(&self) -> &Arc<JitEngine> {
        &self.jit
    }

    /// The main simulated thread.
    pub fn main_thread(&self) -> &Arc<ThreadCtx> {
        &self.main
    }

    /// The device under test.
    pub fn device(&self) -> DeviceId {
        self.device
    }

    /// Runs `iterations` of `workload` on the eager engine.
    ///
    /// # Errors
    ///
    /// Propagates framework/GPU failures.
    pub fn run_eager(
        &self,
        workload: &dyn Workload,
        opts: &WorkloadOptions,
        iterations: u32,
    ) -> Result<RunStats, FrameworkError> {
        let _bind = ThreadRegistry::bind_current(&self.main);
        self.eager.set_grad_enabled(workload.training());
        let core = Arc::clone(self.eager.core());
        let loader = workload
            .dataloader(opts)
            .map(|config| DataLoader::new(&self.env, core.python(), config));

        let start_wall = self.env.clock().now();
        let start_busy = self.gpu.device_busy_time(self.device)?;
        let start_kernels = self.gpu.kernel_count(self.device)?;

        for _ in 0..iterations {
            let _step = core
                .python()
                .frame(&self.main, "train.py", 30, "train_step");
            if let Some(loader) = &loader {
                let _load = core
                    .python()
                    .frame(&self.main, "input_pipeline.py", 40, "next_batch");
                loader.load_batch();
            }
            let mut sink = EagerSink::new(Arc::clone(&self.eager));
            let mut ctx = ModelCtx::new(
                &mut sink,
                Arc::clone(core.python()),
                Arc::clone(&self.main),
                opts.clone(),
            );
            workload.iteration(&mut ctx)?;
            if workload.training() {
                ctx.backward()?;
            }
        }
        self.gpu.synchronize(self.device)?;

        Ok(RunStats {
            wall: self.env.clock().now() - start_wall,
            gpu_busy: self.gpu.device_busy_time(self.device)? - start_busy,
            kernels: self.gpu.kernel_count(self.device)? - start_kernels,
            iterations,
        })
    }

    /// Runs `iterations` of `workload` on the JIT engine: trace + compile
    /// once, execute per iteration (the JAX execution model).
    ///
    /// # Errors
    ///
    /// Propagates framework/GPU failures.
    pub fn run_jit(
        &self,
        workload: &dyn Workload,
        opts: &WorkloadOptions,
        iterations: u32,
    ) -> Result<RunStats, FrameworkError> {
        let _bind = ThreadRegistry::bind_current(&self.main);
        let core = Arc::clone(self.jit.core());
        let loader = workload
            .dataloader(opts)
            .map(|config| DataLoader::new(&self.env, core.python(), config));

        let start_wall = self.env.clock().now();
        let start_busy = self.gpu.device_busy_time(self.device)?;
        let start_kernels = self.gpu.kernel_count(self.device)?;

        let graph = {
            let _trace_scope = core.python().frame(&self.main, "train.py", 22, "jit_step");
            self.jit.trace(workload.name(), |tracer| {
                let mut sink = TraceSink::new(tracer);
                let mut ctx = ModelCtx::new(
                    &mut sink,
                    Arc::clone(core.python()),
                    Arc::clone(&self.main),
                    opts.clone(),
                );
                workload.iteration(&mut ctx)?;
                if workload.training() {
                    ctx.backward()?;
                }
                Ok(())
            })?
        };
        let compiled = self.jit.compile(&graph)?;

        for _ in 0..iterations {
            let _step = core
                .python()
                .frame(&self.main, "train.py", 30, "train_step");
            if let Some(loader) = &loader {
                let _load = core
                    .python()
                    .frame(&self.main, "input_pipeline.py", 40, "next_batch");
                loader.load_batch();
            }
            compiled.execute()?;
        }
        self.gpu.synchronize(self.device)?;

        Ok(RunStats {
            wall: self.env.clock().now() - start_wall,
            gpu_busy: self.gpu.device_busy_time(self.device)? - start_busy,
            kernels: self.gpu.kernel_count(self.device)? - start_kernels,
            iterations,
        })
    }
}

impl std::fmt::Debug for TestBed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TestBed")
            .field("device", &self.device)
            .finish()
    }
}
