//! Persistent profile store: a directory of runs with cross-run queries.
//!
//! A [`ProfileStore`] is a plain directory of `.dcprof` files, one per
//! run, written atomically (tmp + rename) so a crashed writer never
//! leaves a half-visible run. Listings read only each file's metadata
//! header ([`ProfileDb::load_meta`]), so browsing a store of large
//! profiles stays cheap; [`load`](ProfileStore::load) materializes the
//! full tree + timeline on demand.
//!
//! On top of the store sit the cross-run queries the fleet workflow
//! needs: [`list_filtered`](ProfileStore::list_filtered) by metadata
//! axes ([`RunFilter`]), [`trend`](ProfileStore::trend) of one metric
//! across runs in wall-clock order,
//! [`meta_trend`](ProfileStore::meta_trend) of a numeric metadata key
//! (e.g. the `telemetry.*` self-telemetry embeds) across runs, and
//! [`RegressionRule`] — an analyzer [`Rule`](crate::Rule) whose
//! baseline is the mean of stored runs, flagging both whole-run and
//! per-context regressions.
//!
//! A store can itself be instrumented: pass a self-telemetry handle to
//! [`with_telemetry`](ProfileStore::with_telemetry) and every
//! [`save`](ProfileStore::save) / [`load`](ProfileStore::load) records
//! its latency into the shared registry's store histograms.

use std::collections::HashMap;
use std::fs::{self, File};
use std::io::{BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

use deepcontext_core::failpoint::{sites as fp_sites, Failpoints};
use deepcontext_core::{
    CoreError, MetricKind, NodeId, ProfileDb, ProfileMeta, StoredJournalEvent, TimeNs,
};
use deepcontext_telemetry::{journal_sites, names, Histogram, Journal, JournalSeverity, Telemetry};

use crate::issue::{Issue, Severity};
use crate::view::ProfileView;
use crate::Rule;

/// File extension of stored runs.
const EXT: &str = "dcprof";

/// Total attempts a store I/O operation makes before a transient error
/// is treated as persistent.
const IO_ATTEMPTS: u32 = 3;

/// Backoff before retry `attempt` (1-based): 1ms, then 2ms — long
/// enough to outlive a signal storm or a momentarily contended file,
/// short enough that a save barely notices.
fn backoff(attempt: u32) -> Duration {
    Duration::from_millis(1u64 << attempt.saturating_sub(1).min(4))
}

/// Whether this error is worth retrying: the kinds the OS hands back
/// for interruptions that resolve by themselves. Anything else (missing
/// directory, permissions, full disk, corrupt record) is persistent.
fn is_transient(err: &CoreError) -> bool {
    use std::io::ErrorKind;
    matches!(
        err,
        CoreError::Io(e) if matches!(
            e.kind(),
            ErrorKind::Interrupted | ErrorKind::WouldBlock | ErrorKind::TimedOut
        )
    )
}

/// One run as seen in a store listing: its id plus the metadata header.
#[derive(Debug, Clone)]
pub struct RunRecord {
    /// Store-unique run id (the file stem).
    pub id: String,
    /// The run's metadata header.
    pub meta: ProfileMeta,
}

/// Metadata predicate for store queries. Empty (`default()`) matches
/// every run; each set field must match exactly.
#[derive(Debug, Clone, Default)]
pub struct RunFilter {
    /// Match this workload name.
    pub workload: Option<String>,
    /// Match this framework.
    pub framework: Option<String>,
    /// Match this platform.
    pub platform: Option<String>,
    /// Match this host.
    pub host: Option<String>,
    /// Match this model identity.
    pub model: Option<String>,
    /// Match runs whose journal recorded an event at this site (the
    /// `journal.sites` metadata stamp, e.g. `shard.quarantine`).
    pub incident: Option<String>,
}

impl RunFilter {
    /// A filter matching every run.
    pub fn any() -> Self {
        Self::default()
    }

    /// Requires `workload` to match.
    pub fn workload(mut self, workload: impl Into<String>) -> Self {
        self.workload = Some(workload.into());
        self
    }

    /// Requires `framework` to match.
    pub fn framework(mut self, framework: impl Into<String>) -> Self {
        self.framework = Some(framework.into());
        self
    }

    /// Requires `platform` to match.
    pub fn platform(mut self, platform: impl Into<String>) -> Self {
        self.platform = Some(platform.into());
        self
    }

    /// Requires `host` to match.
    pub fn host(mut self, host: impl Into<String>) -> Self {
        self.host = Some(host.into());
        self
    }

    /// Requires `model` to match.
    pub fn model(mut self, model: impl Into<String>) -> Self {
        self.model = Some(model.into());
        self
    }

    /// Requires the run's journal to have recorded an event at `site`
    /// (e.g. [`journal_sites::SHARD_QUARANTINE`]). Matching reads only
    /// the `journal.sites` metadata stamp the profiler embeds at
    /// `finish`, so incident filtering stays header-only; runs without a
    /// journal never match.
    pub fn incident(mut self, site: impl Into<String>) -> Self {
        self.incident = Some(site.into());
        self
    }

    /// Whether `meta` satisfies every set field.
    pub fn matches(&self, meta: &ProfileMeta) -> bool {
        let field = |want: &Option<String>, have: &str| want.as_deref().is_none_or(|w| w == have);
        field(&self.workload, &meta.workload)
            && field(&self.framework, &meta.framework)
            && field(&self.platform, &meta.platform)
            && field(&self.host, &meta.host)
            && field(&self.model, &meta.model)
            && self.incident.as_deref().is_none_or(|want| {
                meta.extra
                    .iter()
                    .find(|(k, _)| k == "journal.sites")
                    .is_some_and(|(_, v)| v.split(',').any(|site| site == want))
            })
    }
}

/// One sample of a metric trend across stored runs.
#[derive(Debug, Clone, PartialEq)]
pub struct TrendPoint {
    /// The run's store id.
    pub id: String,
    /// The run's wall-clock start (trend x-axis).
    pub started: TimeNs,
    /// The queried value: a metric's whole-run inclusive total
    /// ([`trend`](ProfileStore::trend)) or a metadata key parsed as a
    /// number ([`meta_trend`](ProfileStore::meta_trend)).
    pub total: f64,
}

/// The store's slice of the self-telemetry registry: save/load latency
/// histograms, registered once when the handle is attached.
#[derive(Debug, Clone)]
struct StoreTelemetry {
    save_latency: Arc<Histogram>,
    load_latency: Arc<Histogram>,
}

/// A directory of stored profile runs.
#[derive(Debug, Clone)]
pub struct ProfileStore {
    dir: PathBuf,
    telemetry: Option<StoreTelemetry>,
    failpoints: Failpoints,
    journal: Option<Arc<Journal>>,
}

impl ProfileStore {
    /// Opens (creating if needed) the store rooted at `dir`.
    pub fn open(dir: impl AsRef<Path>) -> Result<ProfileStore, CoreError> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        Ok(ProfileStore {
            dir,
            telemetry: None,
            failpoints: Failpoints::from_env(),
            journal: None,
        })
    }

    /// Replaces the store's fault-injection registry (tests; production
    /// stores inherit the `DEEPCONTEXT_FAILPOINTS` environment spec).
    /// The `store_io_err` point fires on the save path, `store_read_err`
    /// on the load path.
    pub fn with_failpoints(mut self, failpoints: Failpoints) -> Self {
        self.failpoints = failpoints;
        self
    }

    /// Attaches a self-telemetry handle: subsequent [`save`](Self::save)
    /// and [`load`](Self::load) calls record their wall-clock latency
    /// into the registry's `deepcontext_store_*_latency_ns` histograms.
    /// Header-only reads ([`load_meta`](Self::load_meta) and listings)
    /// stay unrecorded — they run per stored file and would drown the
    /// full-materialization signal.
    pub fn with_telemetry(mut self, telemetry: &Telemetry) -> Self {
        self.telemetry = Some(StoreTelemetry {
            save_latency: telemetry.histogram(names::STORE_SAVE_LATENCY_NS, &[]),
            load_latency: telemetry.histogram(names::STORE_LOAD_LATENCY_NS, &[]),
        });
        self
    }

    /// Attaches the incident journal: every transient I/O error a
    /// [`save`](Self::save) or [`load`](Self::load) retries past is then
    /// recorded as a `store.retry` event (fields: `op`, `attempt`,
    /// `error`), so a flaky disk shows up in the run's causal record and
    /// not just as latency.
    pub fn with_journal(mut self, journal: Arc<Journal>) -> Self {
        self.journal = Some(journal);
        self
    }

    /// Journals one retried transient error (no-op without a journal).
    fn journal_retry(&self, op: &str, attempt: u32, err: &CoreError) {
        if let Some(journal) = &self.journal {
            journal.record(
                JournalSeverity::Warn,
                journal_sites::STORE_RETRY,
                &[
                    ("op", op),
                    ("attempt", &attempt.to_string()),
                    ("error", &err.to_string()),
                ],
            );
        }
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path_of(&self, id: &str) -> PathBuf {
        self.dir.join(format!("{id}.{EXT}"))
    }

    /// Saves `db` as a new run, returning its store id.
    ///
    /// Ids are derived from the run's start stamp and workload
    /// (`run-<started>-<workload>`), uniquified with a numeric suffix on
    /// collision. The file appears atomically: it is written to a
    /// `.tmp` sibling and renamed into place.
    ///
    /// Transient I/O errors (`Interrupted` / `WouldBlock` / `TimedOut`)
    /// are retried up to two times with a short backoff. A persistent
    /// error is returned as-is — with whatever bytes were written left
    /// in the `.tmp` sibling, so a run that cost hours to collect is
    /// never silently deleted on a flaky disk (listings skip `.tmp`
    /// files; re-saving the id overwrites it).
    pub fn save(&self, db: &ProfileDb) -> Result<String, CoreError> {
        let start = self.telemetry.as_ref().map(|_| Instant::now());
        let base = format!(
            "run-{:020}-{}",
            db.meta().started.0,
            sanitize(&db.meta().workload)
        );
        let mut id = base.clone();
        let mut n = 1u32;
        while self.path_of(&id).exists() {
            n += 1;
            id = format!("{base}-{n}");
        }
        let tmp = self.dir.join(format!("{id}.{EXT}.tmp"));
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            match self.try_save(db, &tmp, &id) {
                Ok(()) => break,
                Err(e) if is_transient(&e) && attempt < IO_ATTEMPTS => {
                    self.journal_retry("save", attempt, &e);
                    std::thread::sleep(backoff(attempt));
                }
                Err(e) => return Err(e),
            }
        }
        if let (Some(t), Some(start)) = (&self.telemetry, start) {
            t.save_latency.record(elapsed_ns(start));
        }
        Ok(id)
    }

    /// One write-and-rename attempt. A fresh attempt re-creates the tmp
    /// sibling from scratch (truncating any partial previous attempt).
    fn try_save(&self, db: &ProfileDb, tmp: &Path, id: &str) -> Result<(), CoreError> {
        let mut w = BufWriter::new(File::create(tmp)?);
        db.save(&mut w)?;
        w.flush()?;
        drop(w);
        // Injected between write and publish: the failure mode where the
        // bytes are on disk but the run never became visible — exactly
        // what the preserved tmp sibling exists for.
        if let Some(e) = self.failpoints.io_error(fp_sites::STORE_IO_ERR) {
            return Err(CoreError::Io(e));
        }
        fs::rename(tmp, self.path_of(id))?;
        Ok(())
    }

    /// Whether a run with this id exists.
    pub fn contains(&self, id: &str) -> bool {
        self.path_of(id).exists()
    }

    /// Loads the full profile (tree + timeline) of a stored run.
    /// Transient I/O errors are retried like [`save`](Self::save)'s.
    pub fn load(&self, id: &str) -> Result<ProfileDb, CoreError> {
        let start = self.telemetry.as_ref().map(|_| Instant::now());
        let mut attempt = 0u32;
        let db = loop {
            attempt += 1;
            match self.try_load(id) {
                Ok(db) => break db,
                Err(e) if is_transient(&e) && attempt < IO_ATTEMPTS => {
                    self.journal_retry("load", attempt, &e);
                    std::thread::sleep(backoff(attempt));
                }
                Err(e) => return Err(e),
            }
        };
        if let (Some(t), Some(start)) = (&self.telemetry, start) {
            t.load_latency.record(elapsed_ns(start));
        }
        Ok(db)
    }

    /// One full-materialization read attempt.
    fn try_load(&self, id: &str) -> Result<ProfileDb, CoreError> {
        if let Some(e) = self.failpoints.io_error(fp_sites::STORE_READ_ERR) {
            return Err(CoreError::Io(e));
        }
        ProfileDb::load(BufReader::new(File::open(self.path_of(id))?))
    }

    /// Loads only the metadata header of a stored run.
    pub fn load_meta(&self, id: &str) -> Result<ProfileMeta, CoreError> {
        ProfileDb::load_meta(BufReader::new(File::open(self.path_of(id))?))
    }

    /// Lists every run, sorted by (start stamp, id).
    ///
    /// Only each file's metadata header is read. Files that are not
    /// valid stored profiles (foreign files, interrupted writes) are
    /// skipped — [`load`](Self::load) on a known id is the place where
    /// corruption surfaces as a [`CoreError`].
    pub fn list(&self) -> Result<Vec<RunRecord>, CoreError> {
        let mut runs = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let path = entry?.path();
            if path.extension().and_then(|e| e.to_str()) != Some(EXT) {
                continue;
            }
            let Some(id) = path.file_stem().and_then(|s| s.to_str()) else {
                continue;
            };
            let Ok(meta) = ProfileDb::load_meta(BufReader::new(File::open(&path)?)) else {
                continue;
            };
            runs.push(RunRecord {
                id: id.to_string(),
                meta,
            });
        }
        runs.sort_by(|a, b| (a.meta.started, &a.id).cmp(&(b.meta.started, &b.id)));
        Ok(runs)
    }

    /// Lists the runs matching `filter`, sorted by (start stamp, id).
    pub fn list_filtered(&self, filter: &RunFilter) -> Result<Vec<RunRecord>, CoreError> {
        Ok(self
            .list()?
            .into_iter()
            .filter(|r| filter.matches(&r.meta))
            .collect())
    }

    /// The trend of `metric`'s whole-run total across the runs matching
    /// `filter`, in wall-clock start order.
    pub fn trend(
        &self,
        filter: &RunFilter,
        metric: MetricKind,
    ) -> Result<Vec<TrendPoint>, CoreError> {
        let mut points = Vec::new();
        for run in self.list_filtered(filter)? {
            let db = self.load(&run.id)?;
            points.push(TrendPoint {
                id: run.id,
                started: run.meta.started,
                total: db.cct().total(metric),
            });
        }
        Ok(points)
    }

    /// The trend of a numeric metadata key across the runs matching
    /// `filter`, in wall-clock start order.
    ///
    /// This is how the self-telemetry embeds become trendable: the
    /// profiler's `finish` stamps `telemetry.*` keys (drop rate, max
    /// queue depth, flush p99, …) into each run's metadata, and
    /// `meta_trend(&filter, "telemetry.flush_p99_ns")` charts that
    /// overhead figure across stored runs. Only each file's metadata
    /// header is read; runs without the key (or with a non-numeric
    /// value) are skipped, so pre-telemetry runs simply don't plot.
    pub fn meta_trend(&self, filter: &RunFilter, key: &str) -> Result<Vec<TrendPoint>, CoreError> {
        let mut points = Vec::new();
        for run in self.list_filtered(filter)? {
            let Some(value) = run
                .meta
                .extra
                .iter()
                .find(|(k, _)| k == key)
                .and_then(|(_, v)| v.parse::<f64>().ok())
            else {
                continue;
            };
            points.push(TrendPoint {
                id: run.id,
                started: run.meta.started,
                total: value,
            });
        }
        Ok(points)
    }
}

/// Nanoseconds since `start`, saturating at `u64::MAX`.
fn elapsed_ns(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Lowercases `name` to `[a-z0-9-]`, for use inside a run id / filename.
fn sanitize(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| {
            let c = c.to_ascii_lowercase();
            if c.is_ascii_alphanumeric() || c == '-' {
                c
            } else {
                '-'
            }
        })
        .collect();
    out.truncate(48);
    if out.is_empty() {
        out.push_str("run");
    }
    out
}

/// Flags a run that regresses against a stored baseline (paper-style
/// cross-run analysis, rule name `store-regression`).
///
/// The baseline is the per-path mean of `metric` over a set of stored
/// runs (typically [`from_store`](Self::from_store) with a
/// [`RunFilter`] selecting the same workload/platform). Analysis flags:
///
/// - the **whole run** (Critical, at the root) when its total exceeds
///   `ratio ×` the baseline mean total, and
/// - each **outermost context** whose inclusive value exceeds `ratio ×`
///   its baseline mean — descendants of a flagged context are not
///   re-reported, so a regressed subtree yields one issue at its top.
#[derive(Debug, Clone)]
pub struct RegressionRule {
    metric: MetricKind,
    ratio: f64,
    min_value: f64,
    baseline_runs: usize,
    baseline_total: f64,
    baseline_paths: HashMap<String, f64>,
}

impl RegressionRule {
    /// Builds the baseline from in-memory profiles. Returns `None` when
    /// `baselines` is empty (no baseline — nothing can regress).
    pub fn from_profiles(metric: MetricKind, baselines: &[ProfileDb]) -> Option<RegressionRule> {
        if baselines.is_empty() {
            return None;
        }
        let n = baselines.len() as f64;
        let mut paths: HashMap<String, f64> = HashMap::new();
        let mut total = 0.0;
        for db in baselines {
            total += db.cct().total(metric);
            let view = ProfileView::new(db);
            for node in db.cct().dfs() {
                if node == db.cct().root() {
                    continue;
                }
                let value = view.sum(node, metric);
                if value > 0.0 {
                    *paths.entry(short_path(&view, node)).or_insert(0.0) += value;
                }
            }
        }
        // Missing-in-a-run counts as zero, so means are over all runs.
        for v in paths.values_mut() {
            *v /= n;
        }
        Some(RegressionRule {
            metric,
            ratio: 1.25,
            min_value: 0.0,
            baseline_runs: baselines.len(),
            baseline_total: total / n,
            baseline_paths: paths,
        })
    }

    /// Builds the baseline from the stored runs matching `filter`.
    /// `Ok(None)` when the store has no matching runs.
    pub fn from_store(
        store: &ProfileStore,
        filter: &RunFilter,
        metric: MetricKind,
    ) -> Result<Option<RegressionRule>, CoreError> {
        let mut dbs = Vec::new();
        for run in store.list_filtered(filter)? {
            dbs.push(store.load(&run.id)?);
        }
        Ok(Self::from_profiles(metric, &dbs))
    }

    /// Sets the regression threshold (default 1.25 — flag anything 25%
    /// over baseline).
    pub fn with_ratio(mut self, ratio: f64) -> Self {
        self.ratio = ratio;
        self
    }

    /// Ignores contexts below this absolute value (noise floor;
    /// default 0).
    pub fn with_min_value(mut self, min_value: f64) -> Self {
        self.min_value = min_value;
        self
    }

    /// Number of runs the baseline averages over.
    pub fn baseline_runs(&self) -> usize {
        self.baseline_runs
    }

    /// Baseline mean of the whole-run total.
    pub fn baseline_total(&self) -> f64 {
        self.baseline_total
    }

    fn regressed(&self, value: f64, base: f64) -> bool {
        value >= self.min_value && value > base && value > self.ratio * base
    }
}

fn short_path(view: &ProfileView<'_>, node: NodeId) -> String {
    let interner = view.interner();
    view.cct()
        .frames_to_root(node)
        .frames()
        .iter()
        .map(|f| f.short_label(&interner))
        .collect::<Vec<_>>()
        .join(" > ")
}

impl Rule for RegressionRule {
    fn name(&self) -> &str {
        "store-regression"
    }

    fn description(&self) -> &str {
        "flags runs and contexts regressing against the profile store's baseline"
    }

    fn analyze(&self, view: &ProfileView<'_>) -> Vec<Issue> {
        let mut issues = Vec::new();
        let cct = view.cct();
        let total = view.total(self.metric);
        if self.baseline_total > 0.0 && self.regressed(total, self.baseline_total) {
            issues.push(Issue {
                rule: self.name().to_string(),
                severity: Severity::Critical,
                node: cct.root(),
                call_path: "<whole run>".to_string(),
                message: format!(
                    "run total {} = {:.3e} is {:.2}x the baseline mean {:.3e} (over {} runs)",
                    self.metric.name(),
                    total,
                    total / self.baseline_total,
                    self.baseline_total,
                    self.baseline_runs,
                ),
                suggestion: "bisect against the most recent non-regressed stored run \
                             (ProfileDiff::compare_mapped pinpoints the changed contexts)"
                    .to_string(),
                metrics: vec![
                    (self.metric.name().to_string(), total),
                    ("baseline_mean".to_string(), self.baseline_total),
                ],
                weight: total - self.baseline_total,
            });
        }

        // Top-down, flag-outermost: a flagged context swallows its
        // descendants (their regression is already counted in the
        // ancestor's inclusive sum).
        let mut stack: Vec<NodeId> = cct.node(cct.root()).children().to_vec();
        while let Some(node) = stack.pop() {
            let value = view.sum(node, self.metric);
            if value <= 0.0 {
                continue;
            }
            let path = short_path(view, node);
            let base = self.baseline_paths.get(&path).copied().unwrap_or(0.0);
            if self.regressed(value, base) {
                let severity = if base == 0.0 || value > 2.0 * self.ratio * base {
                    Severity::Critical
                } else {
                    Severity::Warning
                };
                let message = if base == 0.0 {
                    format!(
                        "new context: {} = {:.3e}, absent from all {} baseline runs",
                        self.metric.name(),
                        value,
                        self.baseline_runs,
                    )
                } else {
                    format!(
                        "{} = {:.3e} is {:.2}x the baseline mean {:.3e}",
                        self.metric.name(),
                        value,
                        value / base,
                        base,
                    )
                };
                issues.push(Issue {
                    rule: self.name().to_string(),
                    severity,
                    node,
                    call_path: view.path_string(node),
                    message,
                    suggestion: "diff this run against a stored baseline run to see which \
                                 descendants moved"
                        .to_string(),
                    metrics: vec![
                        (self.metric.name().to_string(), value),
                        ("baseline_mean".to_string(), base),
                    ],
                    weight: value - base,
                });
                continue;
            }
            stack.extend_from_slice(cct.node(node).children());
        }
        issues
    }
}

/// Flags profiles collected under supervisor degradation (rule name
/// `degraded-run`).
///
/// The profiler stamps `supervisor.*` keys into [`ProfileMeta::extra`]
/// when the pipeline's `SupervisorSink` guarded ingestion. This rule
/// reads them back at analysis time so nobody mistakes a sampled or
/// bypassed profile for a complete one:
///
/// - **Bypass** evidence (`supervisor.bypassed_events > 0`, or the run
///   finished in state 2) is Critical — events were discarded outright
///   and the profile is a partial record;
/// - **Degraded** evidence (sampled/rejected events, or finishing in
///   state 1) is a Warning — estimates are unbiased once multiplied by
///   the recorded `supervisor.sample_rate`;
/// - transitions that round-tripped without touching any event are
///   Info.
///
/// Profiles without `supervisor.*` metadata (unsupervised runs, older
/// stores) produce no issues, so the rule is safe in every default rule
/// set.
#[derive(Debug, Clone, Copy, Default)]
pub struct DegradedRunRule;

impl DegradedRunRule {
    fn meta_u64(meta: &ProfileMeta, key: &str) -> Option<u64> {
        meta.extra
            .iter()
            .find(|(k, _)| k == key)
            .and_then(|(_, v)| v.parse::<u64>().ok())
    }
}

impl Rule for DegradedRunRule {
    fn name(&self) -> &str {
        "degraded-run"
    }

    fn description(&self) -> &str {
        "flags profiles whose ingestion was sampled or bypassed by the pipeline supervisor"
    }

    fn analyze(&self, view: &ProfileView<'_>) -> Vec<Issue> {
        let Some(meta) = view.db().map(|db| db.meta()) else {
            return Vec::new();
        };
        let Some(state) = Self::meta_u64(meta, "supervisor.state") else {
            return Vec::new();
        };
        let journal = view.journal();
        let transitions = Self::meta_u64(meta, "supervisor.transitions").unwrap_or(0);
        let windows = Self::meta_u64(meta, "supervisor.degraded_windows").unwrap_or(0);
        let sample_rate = Self::meta_u64(meta, "supervisor.sample_rate").unwrap_or(1);
        let sampled = Self::meta_u64(meta, "supervisor.sampled_events").unwrap_or(0);
        let rejected = Self::meta_u64(meta, "supervisor.rejected_events").unwrap_or(0);
        let bypassed = Self::meta_u64(meta, "supervisor.bypassed_events").unwrap_or(0);
        if state == 0 && transitions == 0 && sampled == 0 && rejected == 0 && bypassed == 0 {
            // Supervised, but the run never left Healthy: nothing to say.
            return Vec::new();
        }
        let (severity, mut message, suggestion) = if bypassed > 0 || state == 2 {
            (
                Severity::Critical,
                format!(
                    "ingestion was bypassed under overload: {bypassed} events were discarded \
                     outright (plus {rejected} rejected while sampling); this profile is a \
                     partial record of the run"
                ),
                "treat totals as lower bounds; raise queue capacity / worker count or relax \
                 the supervisor's bypass edge, then re-profile"
                    .to_string(),
            )
        } else if sampled > 0 || rejected > 0 || state == 1 {
            (
                Severity::Warning,
                format!(
                    "ingestion degraded to 1-in-{sample_rate} sampled admission for {windows} \
                     health window(s): {sampled} events admitted, {rejected} rejected; \
                     per-context estimates are unbiased after multiplying by \
                     supervisor.sample_rate = {sample_rate}"
                ),
                "multiply sampled-window metric estimates by the recorded sample rate; if \
                 full fidelity is needed, raise queue capacity or worker count"
                    .to_string(),
            )
        } else {
            (
                Severity::Info,
                format!(
                    "the supervisor transitioned {transitions} time(s) but no event was \
                     sampled or discarded; the profile is complete"
                ),
                "no action needed; the pipeline brushed against its overload edges".to_string(),
            )
        };
        // When the run carries its journal, cite the actual transition
        // times: metadata says the run degraded, the journal says when.
        if let Some(journal) = journal {
            let cited: Vec<String> = journal
                .events_at(journal_sites::SUPERVISOR_TRANSITION)
                .map(|e| {
                    format!(
                        "{}\u{2192}{} at {}",
                        event_field(e, "from").unwrap_or("?"),
                        event_field(e, "to").unwrap_or("?"),
                        format_ts(e.ts_ns),
                    )
                })
                .collect();
            if !cited.is_empty() {
                message.push_str(&format!("; journaled transitions: {}", cited.join(", ")));
            }
        }
        let cct = view.cct();
        vec![Issue {
            rule: self.name().to_string(),
            severity,
            node: cct.root(),
            call_path: "<whole run>".to_string(),
            message,
            suggestion,
            metrics: vec![
                ("supervisor_state".to_string(), state as f64),
                ("sample_rate".to_string(), sample_rate as f64),
                ("sampled_events".to_string(), sampled as f64),
                ("rejected_events".to_string(), rejected as f64),
                ("bypassed_events".to_string(), bypassed as f64),
            ],
            weight: (rejected + bypassed) as f64,
        }]
    }
}

/// Renders a journal timestamp as milliseconds since the run's epoch
/// (the shared telemetry clock when both were on).
fn format_ts(ts_ns: u64) -> String {
    format!("t=+{:.3}ms", ts_ns as f64 / 1e6)
}

/// One structured field of a journaled event, by key.
fn event_field<'a>(event: &'a StoredJournalEvent, key: &str) -> Option<&'a str> {
    event
        .fields
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v.as_str())
}

/// Correlates the run's incident journal with the profile's artifacts
/// (rule name `incident`).
///
/// Where [`DegradedRunRule`] reads the supervisor's aggregate metadata
/// stamps, this rule reads the journal itself — the causal flight
/// record [`ProfileDb`] persists with the run — and ties each incident
/// kind to the artifact it left in the tree:
///
/// - **Quarantines** (`shard.quarantine` / `worker.restart` events) are
///   tied to the `<poisoned>` synthetic context's event mass: Critical
///   when in-flight events were actually poisoned, Warning when every
///   worker recovered without losing work;
/// - **Drop storms** (`drop.storm.start` / `drop.storm.end`) are tied
///   to the `<dropped>` synthetic context's mass: Critical when the
///   last storm was still open at snapshot time (its losses have no end
///   marker), Warning otherwise;
/// - **Store retries** (`store.retry`) warn that persistence rode out
///   transient I/O errors, citing the attempts;
/// - **Failpoint fires** (`failpoint.fire`) are Info — faults were
///   injected, so the incidents above are at least partly synthetic.
///
/// Profiles without a journal (journaling off, pre-v3 stores, live
/// previews) produce no issues, so the rule is safe in every default
/// rule set.
#[derive(Debug, Clone, Copy, Default)]
pub struct IncidentRule;

impl Rule for IncidentRule {
    fn name(&self) -> &str {
        "incident"
    }

    fn description(&self) -> &str {
        "correlates journaled lifecycle incidents with the profile artifacts they produced"
    }

    fn analyze(&self, view: &ProfileView<'_>) -> Vec<Issue> {
        let Some(journal) = view.journal() else {
            return Vec::new();
        };
        if journal.is_empty() {
            return Vec::new();
        }
        let mut issues = Vec::new();
        let cct = view.cct();
        // Anchor an incident at its synthetic context when the tree has
        // one (`<poisoned>`, `<dropped>`), at the root otherwise.
        let synthetic = |name: &str| {
            view.operators()
                .into_iter()
                .find(|&n| view.operator_name(n).as_deref() == Some(name))
        };

        let quarantines: Vec<&StoredJournalEvent> =
            journal.events_at(journal_sites::SHARD_QUARANTINE).collect();
        let restarts = journal.events_at(journal_sites::WORKER_RESTART).count();
        if !quarantines.is_empty() || restarts > 0 {
            let poisoned = view.total(MetricKind::PoisonedEvents);
            let first_ts = quarantines
                .iter()
                .map(|e| e.ts_ns)
                .chain(
                    journal
                        .events_at(journal_sites::WORKER_RESTART)
                        .map(|e| e.ts_ns),
                )
                .min()
                .unwrap_or(0);
            let shards: Vec<&str> = quarantines
                .iter()
                .filter_map(|e| event_field(e, "shard"))
                .collect();
            let (severity, message) = if poisoned > 0.0 {
                (
                    Severity::Critical,
                    format!(
                        "worker panic(s) quarantined shard(s) [{}] (first incident at {}, \
                         {restarts} worker restart(s)); {poisoned} in-flight events were \
                         poisoned and attributed under <poisoned>",
                        shards.join(", "),
                        format_ts(first_ts),
                    ),
                )
            } else {
                (
                    Severity::Warning,
                    format!(
                        "{} shard quarantine(s) and {restarts} worker restart(s) (first \
                         incident at {}); no in-flight events were poisoned",
                        quarantines.len(),
                        format_ts(first_ts),
                    ),
                )
            };
            let node = synthetic("<poisoned>");
            issues.push(Issue {
                rule: self.name().to_string(),
                severity,
                node: node.unwrap_or_else(|| cct.root()),
                call_path: node
                    .map(|n| view.path_string(n))
                    .unwrap_or_else(|| "<whole run>".to_string()),
                message,
                suggestion: "the journal cites each quarantine's shard and time; exclude the \
                             <poisoned> subtree from totals and fix the panicking \
                             instrumentation path before trusting this run"
                    .to_string(),
                metrics: vec![
                    ("quarantined_shards".to_string(), quarantines.len() as f64),
                    ("worker_restarts".to_string(), restarts as f64),
                    ("poisoned_events".to_string(), poisoned),
                ],
                weight: poisoned + (quarantines.len() + restarts) as f64,
            });
        }

        let storms = journal.events_at(journal_sites::DROP_STORM_START).count();
        if storms > 0 {
            let ends = journal.events_at(journal_sites::DROP_STORM_END).count();
            let open = storms > ends;
            let dropped_mass = view.total(MetricKind::DroppedEvents);
            let journal_dropped: u64 = journal
                .events_at(journal_sites::DROP_STORM_END)
                .filter_map(|e| event_field(e, "dropped").and_then(|v| v.parse::<u64>().ok()))
                .sum();
            let first_ts = journal
                .events_at(journal_sites::DROP_STORM_START)
                .map(|e| e.ts_ns)
                .min()
                .unwrap_or(0);
            let mut message = format!(
                "{storms} drop storm(s) (first onset at {}) evicted {journal_dropped} \
                 event(s) at their end barriers; {dropped_mass} of dropped mass is \
                 attributed under <dropped>",
                format_ts(first_ts),
            );
            if open {
                message.push_str(
                    " — the last storm was still open at snapshot time, so its losses \
                     have no journaled end marker",
                );
            }
            let node = synthetic("<dropped>");
            issues.push(Issue {
                rule: self.name().to_string(),
                severity: if open {
                    Severity::Critical
                } else {
                    Severity::Warning
                },
                node: node.unwrap_or_else(|| cct.root()),
                call_path: node
                    .map(|n| view.path_string(n))
                    .unwrap_or_else(|| "<whole run>".to_string()),
                message,
                suggestion: "treat totals as lower bounds over the journaled storm windows; \
                             raise queue capacity or switch the backpressure policy, then \
                             re-profile"
                    .to_string(),
                metrics: vec![
                    ("drop_storms".to_string(), storms as f64),
                    ("journal_dropped".to_string(), journal_dropped as f64),
                    ("dropped_mass".to_string(), dropped_mass),
                ],
                weight: dropped_mass.max(journal_dropped as f64),
            });
        }

        let retries: Vec<&StoredJournalEvent> =
            journal.events_at(journal_sites::STORE_RETRY).collect();
        if !retries.is_empty() {
            let mut ops: Vec<&str> = retries
                .iter()
                .filter_map(|e| event_field(e, "op"))
                .collect();
            ops.sort_unstable();
            ops.dedup();
            issues.push(Issue {
                rule: self.name().to_string(),
                severity: Severity::Warning,
                node: cct.root(),
                call_path: "<whole run>".to_string(),
                message: format!(
                    "the profile store retried transient I/O {} time(s) (op(s): {}, first \
                     at {}) before succeeding",
                    retries.len(),
                    ops.join(", "),
                    format_ts(retries[0].ts_ns),
                ),
                suggestion: "no data was lost, but check the store volume's health if \
                             retries recur across runs"
                    .to_string(),
                metrics: vec![("store_retries".to_string(), retries.len() as f64)],
                weight: retries.len() as f64,
            });
        }

        let fires: Vec<&StoredJournalEvent> =
            journal.events_at(journal_sites::FAILPOINT_FIRE).collect();
        if !fires.is_empty() {
            let mut names: Vec<&str> = fires
                .iter()
                .filter_map(|e| event_field(e, "name"))
                .collect();
            names.sort_unstable();
            names.dedup();
            issues.push(Issue {
                rule: self.name().to_string(),
                severity: Severity::Info,
                node: cct.root(),
                call_path: "<whole run>".to_string(),
                message: format!(
                    "{} injected fault(s) fired ({}); incidents in this run are at least \
                     partly synthetic",
                    fires.len(),
                    names.join(", "),
                ),
                suggestion: "expected under fault injection; unset DEEPCONTEXT_FAILPOINTS \
                             for production profiling"
                    .to_string(),
                metrics: vec![("failpoint_fires".to_string(), fires.len() as f64)],
                weight: fires.len() as f64,
            });
        }
        issues
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepcontext_core::{CallingContextTree, Frame, StoredJournal};
    use std::sync::atomic::{AtomicU32, Ordering};

    fn temp_store() -> (PathBuf, ProfileStore) {
        static NEXT: AtomicU32 = AtomicU32::new(0);
        let dir = std::env::temp_dir().join(format!(
            "deepcontext-store-test-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        let store = ProfileStore::open(&dir).unwrap();
        (dir, store)
    }

    fn profile(workload: &str, host: &str, started: u64, gpu_time: f64) -> ProfileDb {
        let mut cct = CallingContextTree::new();
        let i = cct.interner();
        let leaf = cct.insert_path(&[
            Frame::operator("aten::conv2d", &i),
            Frame::gpu_kernel("implicit_gemm", "m.so", 0x10, &i),
        ]);
        cct.attribute(leaf, MetricKind::GpuTime, gpu_time);
        ProfileDb::new(
            ProfileMeta {
                workload: workload.to_string(),
                framework: "eager".to_string(),
                platform: "sim".to_string(),
                host: host.to_string(),
                started: TimeNs(started),
                ended: TimeNs(started + 1_000),
                ..Default::default()
            },
            cct,
        )
    }

    #[test]
    fn save_load_list_round_trip() {
        let (dir, store) = temp_store();
        let a = profile("unet", "host-a", 200, 10.0);
        let b = profile("bert", "host-b", 100, 20.0);
        let id_a = store.save(&a).unwrap();
        let id_b = store.save(&b).unwrap();
        assert!(store.contains(&id_a));
        let back = store.load(&id_a).unwrap();
        assert_eq!(back.meta(), a.meta());
        assert_eq!(back.cct().node_count(), a.cct().node_count());
        assert_eq!(
            back.cct().total(MetricKind::GpuTime),
            a.cct().total(MetricKind::GpuTime)
        );
        assert_eq!(back.timeline(), a.timeline());
        assert_eq!(store.load_meta(&id_b).unwrap(), *b.meta());

        let runs = store.list().unwrap();
        assert_eq!(runs.len(), 2);
        // Sorted by start stamp: b (100) before a (200).
        assert_eq!(runs[0].id, id_b);
        assert_eq!(runs[1].id, id_a);
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn colliding_ids_are_uniquified() {
        let (dir, store) = temp_store();
        let p = profile("unet", "h", 7, 1.0);
        let id1 = store.save(&p).unwrap();
        let id2 = store.save(&p).unwrap();
        assert_ne!(id1, id2);
        assert_eq!(store.list().unwrap().len(), 2);
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn filters_and_trend_select_by_metadata() {
        let (dir, store) = temp_store();
        store.save(&profile("unet", "host-a", 1, 10.0)).unwrap();
        store.save(&profile("unet", "host-a", 2, 12.0)).unwrap();
        store.save(&profile("bert", "host-b", 3, 99.0)).unwrap();

        let unet = RunFilter::any().workload("unet");
        assert_eq!(store.list_filtered(&unet).unwrap().len(), 2);
        assert_eq!(
            store
                .list_filtered(&RunFilter::any().host("host-b"))
                .unwrap()
                .len(),
            1
        );
        assert!(store
            .list_filtered(&RunFilter::any().workload("unet").host("host-b"))
            .unwrap()
            .is_empty());

        let trend = store.trend(&unet, MetricKind::GpuTime).unwrap();
        assert_eq!(trend.len(), 2);
        assert_eq!(trend[0].total, 10.0);
        assert_eq!(trend[1].total, 12.0);
        assert!(trend[0].started < trend[1].started);
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn meta_trend_reads_embedded_telemetry_keys() {
        let (dir, store) = temp_store();
        let mut early = profile("unet", "h", 1, 10.0);
        early
            .meta_mut()
            .extra
            .push(("telemetry.flush_p99_ns".to_string(), "2048".to_string()));
        let mut late = profile("unet", "h", 2, 10.0);
        late.meta_mut()
            .extra
            .push(("telemetry.flush_p99_ns".to_string(), "4096".to_string()));
        // No key at all: a pre-telemetry run that must not plot.
        let plain = profile("unet", "h", 3, 10.0);
        store.save(&early).unwrap();
        store.save(&late).unwrap();
        store.save(&plain).unwrap();

        let trend = store
            .meta_trend(&RunFilter::any().workload("unet"), "telemetry.flush_p99_ns")
            .unwrap();
        assert_eq!(trend.len(), 2);
        assert_eq!(trend[0].total, 2048.0);
        assert_eq!(trend[1].total, 4096.0);
        assert!(trend[0].started < trend[1].started);
        assert!(store
            .meta_trend(&RunFilter::any(), "telemetry.absent")
            .unwrap()
            .is_empty());
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn telemetry_records_save_and_load_latency() {
        use deepcontext_telemetry::TelemetryConfig;
        let telemetry = Telemetry::from_config(&TelemetryConfig::enabled()).unwrap();
        let (dir, store) = temp_store();
        let store = store.with_telemetry(&telemetry);
        let id = store.save(&profile("unet", "h", 1, 1.0)).unwrap();
        store.load(&id).unwrap();
        store.load_meta(&id).unwrap();

        let snapshot = telemetry.snapshot();
        assert_eq!(
            snapshot
                .histogram_merged(names::STORE_SAVE_LATENCY_NS)
                .count,
            1
        );
        // load_meta is header-only and intentionally unrecorded.
        assert_eq!(
            snapshot
                .histogram_merged(names::STORE_LOAD_LATENCY_NS)
                .count,
            1
        );
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn listing_skips_foreign_and_truncated_files() {
        let (dir, store) = temp_store();
        store.save(&profile("unet", "h", 1, 1.0)).unwrap();
        fs::write(dir.join("notes.txt"), "not a profile").unwrap();
        fs::write(dir.join("bad.dcprof"), "garbage header").unwrap();
        assert_eq!(store.list().unwrap().len(), 1);
        assert!(store.load("bad").is_err());
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn regression_rule_flags_total_and_context() {
        let baselines = vec![
            profile("unet", "h", 1, 100.0),
            profile("unet", "h", 2, 110.0),
            profile("unet", "h", 3, 90.0),
        ];
        let rule = RegressionRule::from_profiles(MetricKind::GpuTime, &baselines)
            .unwrap()
            .with_ratio(1.25);
        assert_eq!(rule.baseline_runs(), 3);
        assert_eq!(rule.baseline_total(), 100.0);

        let regressed = profile("unet", "h", 4, 200.0);
        let issues = rule.analyze(&ProfileView::new(&regressed));
        assert!(issues
            .iter()
            .any(|i| i.severity == Severity::Critical && i.call_path == "<whole run>"));
        // Flag-outermost: one context issue at the conv operator, not
        // also at the kernel below it.
        let context_issues: Vec<_> = issues
            .iter()
            .filter(|i| i.call_path != "<whole run>")
            .collect();
        assert_eq!(context_issues.len(), 1);
        assert!(context_issues[0].call_path.contains("aten::conv2d"));
        assert!(!context_issues[0].call_path.contains("implicit_gemm"));

        let healthy = profile("unet", "h", 5, 105.0);
        assert!(rule.analyze(&ProfileView::new(&healthy)).is_empty());
    }

    #[test]
    fn regression_rule_from_store_and_empty_store() {
        let (dir, store) = temp_store();
        assert!(
            RegressionRule::from_store(&store, &RunFilter::any(), MetricKind::GpuTime)
                .unwrap()
                .is_none()
        );

        store.save(&profile("unet", "h", 1, 50.0)).unwrap();
        store.save(&profile("unet", "h", 2, 50.0)).unwrap();
        let rule = RegressionRule::from_store(
            &store,
            &RunFilter::any().workload("unet"),
            MetricKind::GpuTime,
        )
        .unwrap()
        .unwrap();
        assert_eq!(rule.baseline_total(), 50.0);
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn save_retries_transient_io_errors_and_succeeds() {
        let (dir, store) = temp_store();
        let store = store.with_failpoints(Failpoints::parse("store_io_err@first").unwrap());
        let id = store.save(&profile("unet", "h", 1, 1.0)).unwrap();
        assert!(store.contains(&id));
        assert_eq!(store.failpoints.fired(fp_sites::STORE_IO_ERR), 1);
        assert!(
            store.failpoints.hits(fp_sites::STORE_IO_ERR) >= 2,
            "a retry must have re-checked the site"
        );
        // The successful retry renamed the tmp sibling away.
        assert!(!dir.join(format!("{id}.{EXT}.tmp")).exists());
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn exhausted_retries_fail_with_the_run_preserved_in_tmp() {
        let (dir, store) = temp_store();
        let store = store.with_failpoints(Failpoints::parse("store_io_err@always").unwrap());
        let err = store.save(&profile("unet", "h", 1, 1.0)).unwrap_err();
        assert!(matches!(err, CoreError::Io(_)), "got {err:?}");
        assert_eq!(store.failpoints.fired(fp_sites::STORE_IO_ERR), 3);
        // Nothing became visible, but the written bytes were kept: the
        // tmp sibling holds a complete, loadable profile.
        assert!(store.list().unwrap().is_empty());
        let tmp: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .filter(|p| p.extension().and_then(|e| e.to_str()) == Some("tmp"))
            .collect();
        assert_eq!(tmp.len(), 1, "the tmp sibling must survive the failure");
        let back = ProfileDb::load(BufReader::new(File::open(&tmp[0]).unwrap())).unwrap();
        assert_eq!(back.meta().workload, "unet");
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn load_retries_transient_read_errors() {
        let (dir, store) = temp_store();
        let id = store.save(&profile("unet", "h", 1, 1.0)).unwrap();
        let store = store.with_failpoints(Failpoints::parse("store_read_err@first").unwrap());
        let back = store.load(&id).unwrap();
        assert_eq!(back.meta().workload, "unet");
        assert_eq!(store.failpoints.fired(fp_sites::STORE_READ_ERR), 1);
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn degraded_run_rule_reads_supervisor_stamps() {
        let rule = DegradedRunRule;
        // Unsupervised profile: silent.
        let plain = profile("unet", "h", 1, 1.0);
        assert!(rule.analyze(&ProfileView::new(&plain)).is_empty());

        // Supervised but never degraded: still silent.
        let mut healthy = profile("unet", "h", 2, 1.0);
        for (k, v) in [("supervisor.state", "0"), ("supervisor.transitions", "0")] {
            healthy
                .meta_mut()
                .extra
                .push((k.to_string(), v.to_string()));
        }
        assert!(rule.analyze(&ProfileView::new(&healthy)).is_empty());

        // Sampled ingestion: a warning naming the scale factor.
        let mut sampled = profile("unet", "h", 3, 1.0);
        for (k, v) in [
            ("supervisor.state", "0"),
            ("supervisor.transitions", "2"),
            ("supervisor.degraded_windows", "3"),
            ("supervisor.sample_rate", "8"),
            ("supervisor.sampled_events", "100"),
            ("supervisor.rejected_events", "700"),
            ("supervisor.bypassed_events", "0"),
        ] {
            sampled
                .meta_mut()
                .extra
                .push((k.to_string(), v.to_string()));
        }
        let issues = rule.analyze(&ProfileView::new(&sampled));
        assert_eq!(issues.len(), 1);
        assert_eq!(issues[0].severity, Severity::Warning);
        assert!(issues[0].message.contains("1-in-8"));

        // Bypassed ingestion: critical — the profile is partial.
        let mut bypassed = profile("unet", "h", 4, 1.0);
        for (k, v) in [
            ("supervisor.state", "2"),
            ("supervisor.sample_rate", "8"),
            ("supervisor.bypassed_events", "5000"),
        ] {
            bypassed
                .meta_mut()
                .extra
                .push((k.to_string(), v.to_string()));
        }
        let issues = rule.analyze(&ProfileView::new(&bypassed));
        assert_eq!(issues.len(), 1);
        assert_eq!(issues[0].severity, Severity::Critical);
        assert!(issues[0].weight >= 5000.0);
    }

    #[test]
    fn min_value_floor_suppresses_noise() {
        let baselines = vec![profile("unet", "h", 1, 1.0)];
        let rule = RegressionRule::from_profiles(MetricKind::GpuTime, &baselines)
            .unwrap()
            .with_min_value(10.0);
        let small = profile("unet", "h", 2, 2.0);
        assert!(rule.analyze(&ProfileView::new(&small)).is_empty());
    }

    /// A journal-event fixture: `(site, severity, ts_ns, fields)`.
    type EventSpec<'a> = (&'a str, u8, u64, &'a [(&'a str, &'a str)]);

    /// Builds a stored journal from [`EventSpec`] tuples, assigning
    /// ascending seqs and a compact name table.
    fn stored_journal(events: &[EventSpec<'_>]) -> StoredJournal {
        let mut names: Vec<Arc<str>> = Vec::new();
        let mut out = Vec::new();
        for (i, (site, severity, ts_ns, fields)) in events.iter().enumerate() {
            let idx = match names.iter().position(|n| n.as_ref() == *site) {
                Some(idx) => idx,
                None => {
                    names.push(Arc::from(*site));
                    names.len() - 1
                }
            };
            out.push(StoredJournalEvent {
                seq: (i + 1) as u64,
                ts_ns: *ts_ns,
                severity: *severity,
                site: idx as u32,
                fields: fields
                    .iter()
                    .map(|(k, v)| (k.to_string(), v.to_string()))
                    .collect(),
            });
        }
        let recorded = out.len() as u64;
        StoredJournal {
            events: out,
            names,
            recorded,
            evicted: 0,
        }
    }

    #[test]
    fn run_filter_incident_reads_the_journal_sites_stamp() {
        let mut incident = profile("unet", "h", 1, 1.0);
        incident.meta_mut().extra.push((
            "journal.sites".to_string(),
            "pipeline.epoch,shard.quarantine".to_string(),
        ));
        let plain = profile("unet", "h", 2, 1.0);
        let want = RunFilter::any().incident(journal_sites::SHARD_QUARANTINE);
        assert!(want.matches(incident.meta()));
        assert!(!want.matches(plain.meta()));
        assert!(!RunFilter::any()
            .incident(journal_sites::DROP_STORM_START)
            .matches(incident.meta()));
        // Composes with the other axes.
        assert!(!RunFilter::any()
            .workload("bert")
            .incident(journal_sites::SHARD_QUARANTINE)
            .matches(incident.meta()));

        // Header-only store listings filter the same way.
        let (dir, store) = temp_store();
        store.save(&incident).unwrap();
        store.save(&plain).unwrap();
        let hits = store.list_filtered(&want).unwrap();
        assert_eq!(hits.len(), 1);
        assert!(store
            .list_filtered(&RunFilter::any().incident("drop.storm.start"))
            .unwrap()
            .is_empty());
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn store_journal_records_retry_attempts() {
        use deepcontext_core::Interner;
        use deepcontext_telemetry::JournalConfig;
        let journal = Journal::from_config(&JournalConfig::enabled(), &Interner::new(), None)
            .expect("enabled config builds");
        let (dir, store) = temp_store();
        let store = store
            .with_failpoints(Failpoints::parse("store_io_err@first;store_read_err@first").unwrap())
            .with_journal(Arc::clone(&journal));
        let id = store.save(&profile("unet", "h", 1, 1.0)).unwrap();
        store.load(&id).unwrap();
        let snap = journal.snapshot();
        let retries: Vec<_> = snap.events_at(journal_sites::STORE_RETRY).collect();
        assert_eq!(retries.len(), 2, "one retried save, one retried load");
        assert_eq!(retries[0].fields[0], ("op".to_string(), "save".to_string()));
        assert_eq!(retries[1].fields[0], ("op".to_string(), "load".to_string()));
        assert!(retries
            .iter()
            .all(|e| e.fields.iter().any(|(k, v)| k == "attempt" && v == "1")));
        assert!(retries.iter().all(|e| e.severity == 1), "retries warn");
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn incident_rule_is_silent_without_a_journal() {
        let db = profile("unet", "h", 1, 1.0);
        assert!(IncidentRule.analyze(&ProfileView::new(&db)).is_empty());
        // An attached-but-empty journal is equally silent.
        let mut empty = profile("unet", "h", 2, 1.0);
        empty.set_journal(Some(StoredJournal::default()));
        assert!(IncidentRule.analyze(&ProfileView::new(&empty)).is_empty());
    }

    #[test]
    fn incident_rule_ties_quarantine_to_poisoned_mass() {
        let mut cct = CallingContextTree::new();
        let i = cct.interner();
        let node = cct.insert_path(&[Frame::operator("<poisoned>", &i)]);
        cct.attribute(node, MetricKind::PoisonedEvents, 5.0);
        let mut db = ProfileDb::new(ProfileMeta::default(), cct);
        db.set_journal(Some(stored_journal(&[
            ("shard.quarantine", 2, 1_500_000, &[("shard", "3")]),
            ("worker.restart", 2, 1_600_000, &[("worker", "1")]),
        ])));
        let issues = IncidentRule.analyze(&ProfileView::new(&db));
        assert_eq!(issues.len(), 1);
        let q = &issues[0];
        assert_eq!(q.severity, Severity::Critical);
        assert!(q.call_path.contains("<poisoned>"), "got {}", q.call_path);
        assert!(q.message.contains("shard(s) [3]"), "got {}", q.message);
        assert!(q.message.contains("t=+1.500ms"), "cites the journaled time");
        assert!(q.message.contains("5 in-flight events were poisoned"));
        assert!(q
            .metrics
            .iter()
            .any(|(k, v)| k == "poisoned_events" && *v == 5.0));
    }

    #[test]
    fn incident_rule_flags_drop_storms_and_open_storms_escalate() {
        // A storm bracketed by its end barrier: Warning at <dropped>.
        let mut cct = CallingContextTree::new();
        let i = cct.interner();
        let node = cct.insert_path(&[Frame::operator("<dropped>", &i)]);
        cct.attribute(node, MetricKind::DroppedEvents, 7.0);
        let mut db = ProfileDb::new(ProfileMeta::default(), cct);
        db.set_journal(Some(stored_journal(&[
            ("drop.storm.start", 1, 2_000_000, &[("weight", "1")]),
            ("drop.storm.end", 1, 3_000_000, &[("dropped", "7")]),
        ])));
        let issues = IncidentRule.analyze(&ProfileView::new(&db));
        assert_eq!(issues.len(), 1);
        assert_eq!(issues[0].severity, Severity::Warning);
        assert!(issues[0].call_path.contains("<dropped>"));
        assert!(issues[0].message.contains("evicted 7"));
        assert!(issues[0].message.contains("t=+2.000ms"));

        // A storm with no end marker: Critical, anchored at the root
        // when the tree has no <dropped> context.
        let mut open = profile("unet", "h", 1, 1.0);
        open.set_journal(Some(stored_journal(&[(
            "drop.storm.start",
            1,
            2_000_000,
            &[("weight", "1")],
        )])));
        let issues = IncidentRule.analyze(&ProfileView::new(&open));
        assert_eq!(issues.len(), 1);
        assert_eq!(issues[0].severity, Severity::Critical);
        assert_eq!(issues[0].call_path, "<whole run>");
        assert!(issues[0].message.contains("still open"));
    }

    #[test]
    fn incident_rule_reports_store_retries_and_failpoint_fires() {
        let mut db = profile("unet", "h", 1, 1.0);
        db.set_journal(Some(stored_journal(&[
            (
                "failpoint.fire",
                2,
                90_000,
                &[("name", "store_io_err"), ("at", "1")],
            ),
            (
                "store.retry",
                1,
                100_000,
                &[("op", "save"), ("attempt", "1"), ("error", "interrupted")],
            ),
        ])));
        let issues = IncidentRule.analyze(&ProfileView::new(&db));
        assert_eq!(issues.len(), 2);
        let retry = issues
            .iter()
            .find(|i| i.message.contains("retried transient I/O"))
            .unwrap();
        assert_eq!(retry.severity, Severity::Warning);
        assert!(retry.message.contains("op(s): save"));
        let fire = issues
            .iter()
            .find(|i| i.message.contains("injected fault"))
            .unwrap();
        assert_eq!(fire.severity, Severity::Info);
        assert!(fire.message.contains("store_io_err"));
    }

    #[test]
    fn degraded_run_rule_cites_journaled_transition_times() {
        let mut db = profile("unet", "h", 1, 1.0);
        for (k, v) in [
            ("supervisor.state", "1"),
            ("supervisor.sample_rate", "8"),
            ("supervisor.sampled_events", "10"),
        ] {
            db.meta_mut().extra.push((k.to_string(), v.to_string()));
        }
        db.set_journal(Some(stored_journal(&[
            (
                "supervisor.transition",
                1,
                4_200_000,
                &[
                    ("from", "Healthy"),
                    ("to", "Degraded"),
                    ("drop_rate", "0.5"),
                    ("queue_saturation", "0.9"),
                ],
            ),
            (
                "supervisor.transition",
                0,
                9_000_000,
                &[("from", "Degraded"), ("to", "Healthy"), ("forced", "true")],
            ),
        ])));
        let issues = DegradedRunRule.analyze(&ProfileView::new(&db));
        assert_eq!(issues.len(), 1);
        assert!(
            issues[0]
                .message
                .contains("journaled transitions: Healthy\u{2192}Degraded at t=+4.200ms"),
            "got {}",
            issues[0].message
        );
        assert!(issues[0]
            .message
            .contains("Degraded\u{2192}Healthy at t=+9.000ms"));
    }
}
