//! Offline stand-in for the `crossbeam` crate.
//!
//! Only the `channel` module subset used by this workspace is provided:
//! `unbounded()` and `bounded()` multi-producer channels whose `Sender`
//! and `Receiver` are both `Clone + Send + Sync`. Both flavors share one
//! implementation — a `VecDeque` behind a mutex with two condition
//! variables — so bounded channels get real blocking `send` backpressure
//! and both get non-blocking `try_send` / `try_recv` plus queue-depth
//! introspection (`len`), which the ingestion pipeline's backpressure
//! policies and drain barriers rely on.

#![forbid(unsafe_code)]

/// Multi-producer channels (crossbeam-channel API subset).
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex, PoisonError};

    /// Error returned by [`Sender::send`] when the channel is disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Sender::try_send`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel is bounded and at capacity.
        Full(T),
        /// All receivers are gone.
        Disconnected(T),
    }

    impl<T> TrySendError<T> {
        /// Recovers the message that failed to send.
        pub fn into_inner(self) -> T {
            match self {
                TrySendError::Full(v) | TrySendError::Disconnected(v) => v,
            }
        }

        /// Whether the failure was a full channel (vs a disconnected one).
        pub fn is_full(&self) -> bool {
            matches!(self, TrySendError::Full(_))
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T> fmt::Display for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => f.write_str("sending on a full channel"),
                TrySendError::Disconnected(_) => f.write_str("sending on a disconnected channel"),
            }
        }
    }

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
        /// Receivers blocked in `recv` — senders skip the condvar notify
        /// entirely when nobody is waiting, keeping the uncontended send
        /// path to one lock round-trip.
        recv_waiters: usize,
        /// Senders blocked in a bounded `send`.
        send_waiters: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        not_empty: Condvar,
        not_full: Condvar,
        /// `usize::MAX` for unbounded channels.
        cap: usize,
    }

    impl<T> Shared<T> {
        fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
            self.state.lock().unwrap_or_else(PoisonError::into_inner)
        }
    }

    /// The sending half of a channel.
    pub struct Sender<T>(Arc<Shared<T>>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.lock().senders += 1;
            Sender(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.0.lock();
            state.senders -= 1;
            if state.senders == 0 {
                // Wake receivers blocked on an empty queue so they can
                // observe the disconnect.
                drop(state);
                self.0.not_empty.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        /// Sends a message, blocking while a bounded channel is at
        /// capacity. Fails only if all receivers are gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.0.lock();
            loop {
                if state.receivers == 0 {
                    return Err(SendError(value));
                }
                if state.queue.len() < self.0.cap {
                    state.queue.push_back(value);
                    let wake = state.recv_waiters > 0;
                    drop(state);
                    if wake {
                        self.0.not_empty.notify_one();
                    }
                    return Ok(());
                }
                state.send_waiters += 1;
                state = self
                    .0
                    .not_full
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
                state.send_waiters -= 1;
            }
        }

        /// Sends a run of messages under **one** lock acquisition with at
        /// most one receiver notify — the batched-producer fast path: a
        /// flush of N queued messages costs one lock round-trip instead
        /// of N. Blocks (in chunks) while a bounded channel is at
        /// capacity, exactly like [`send`](Self::send); on disconnect the
        /// not-yet-queued remainder is returned inside the error. Returns
        /// the number of messages sent.
        pub fn send_batch(
            &self,
            values: impl IntoIterator<Item = T>,
        ) -> Result<usize, SendError<Vec<T>>> {
            let mut values = values.into_iter();
            let mut next = values.next();
            let mut sent = 0usize;
            // Whether messages were queued since the last notify — a full
            // queue forces an interim notify before blocking, so the
            // receiver can make the space we are waiting for.
            let mut unannounced = false;
            let mut state = self.0.lock();
            while let Some(value) = next.take() {
                if state.receivers == 0 {
                    let mut rest = vec![value];
                    rest.extend(values);
                    return Err(SendError(rest));
                }
                if state.queue.len() < self.0.cap {
                    state.queue.push_back(value);
                    sent += 1;
                    unannounced = true;
                    next = values.next();
                } else {
                    next = Some(value);
                    if unannounced && state.recv_waiters > 0 {
                        // A run carries many messages: wake every blocked
                        // receiver (`notify_one` would leave all but one
                        // asleep with messages still queued — per-message
                        // `send` wakes one receiver per message).
                        self.0.not_empty.notify_all();
                        unannounced = false;
                    }
                    state.send_waiters += 1;
                    state = self
                        .0
                        .not_full
                        .wait(state)
                        .unwrap_or_else(PoisonError::into_inner);
                    state.send_waiters -= 1;
                }
            }
            let wake = unannounced && state.recv_waiters > 0;
            drop(state);
            if wake {
                self.0.not_empty.notify_all();
            }
            Ok(sent)
        }

        /// Sends without blocking, failing with [`TrySendError::Full`]
        /// when a bounded channel is at capacity.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let mut state = self.0.lock();
            if state.receivers == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            if state.queue.len() >= self.0.cap {
                return Err(TrySendError::Full(value));
            }
            state.queue.push_back(value);
            let wake = state.recv_waiters > 0;
            drop(state);
            if wake {
                self.0.not_empty.notify_one();
            }
            Ok(())
        }

        /// Messages currently queued.
        pub fn len(&self) -> usize {
            self.0.lock().queue.len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// The channel capacity (`None` for unbounded channels).
        pub fn capacity(&self) -> Option<usize> {
            (self.0.cap != usize::MAX).then_some(self.0.cap)
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    /// The receiving half of a channel.
    pub struct Receiver<T>(Arc<Shared<T>>);

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0.lock().receivers += 1;
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = self.0.lock();
            state.receivers -= 1;
            if state.receivers == 0 {
                drop(state);
                self.0.not_full.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.0.lock();
            loop {
                if let Some(value) = state.queue.pop_front() {
                    let wake = state.send_waiters > 0;
                    drop(state);
                    if wake {
                        self.0.not_full.notify_one();
                    }
                    return Ok(value);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state.recv_waiters += 1;
                state = self
                    .0
                    .not_empty
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
                state.recv_waiters -= 1;
            }
        }

        /// Returns a message if one is ready, without blocking.
        pub fn try_recv(&self) -> Result<T, RecvError> {
            let mut state = self.0.lock();
            match state.queue.pop_front() {
                Some(value) => {
                    let wake = state.send_waiters > 0;
                    drop(state);
                    if wake {
                        self.0.not_full.notify_one();
                    }
                    Ok(value)
                }
                None => Err(RecvError),
            }
        }

        /// Messages currently queued.
        pub fn len(&self) -> usize {
            self.0.lock().queue.len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// The channel capacity (`None` for unbounded channels).
        pub fn capacity(&self) -> Option<usize> {
            (self.0.cap != usize::MAX).then_some(self.0.cap)
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    fn with_cap<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        // Bounded channels preallocate their ring (capped so pathological
        // capacities don't reserve gigabytes), keeping reallocation
        // memcpys off the send path.
        let prealloc = if cap == usize::MAX {
            0
        } else {
            cap.min(1 << 16)
        };
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::with_capacity(prealloc),
                senders: 1,
                receivers: 1,
                recv_waiters: 0,
                send_waiters: 0,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            cap,
        });
        (Sender(Arc::clone(&shared)), Receiver(shared))
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_cap(usize::MAX)
    }

    /// Creates a bounded channel holding at most `cap` messages (clamped
    /// to at least one so `send` can always make progress).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_cap(cap.max(1))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_roundtrip() {
            let (tx, rx) = unbounded();
            tx.send(7).unwrap();
            assert_eq!(rx.recv(), Ok(7));
        }

        #[test]
        fn recv_errors_when_senders_dropped() {
            let (tx, rx) = unbounded::<i32>();
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn cloned_senders_feed_one_receiver() {
            let (tx, rx) = unbounded();
            let tx2 = tx.clone();
            std::thread::spawn(move || tx2.send(1).unwrap())
                .join()
                .unwrap();
            tx.send(2).unwrap();
            let mut got = vec![rx.recv().unwrap(), rx.recv().unwrap()];
            got.sort();
            assert_eq!(got, vec![1, 2]);
        }

        #[test]
        fn bounded_try_send_reports_full() {
            let (tx, rx) = bounded(2);
            tx.try_send(1).unwrap();
            tx.try_send(2).unwrap();
            assert_eq!(tx.try_send(3), Err(TrySendError::Full(3)));
            assert_eq!(tx.len(), 2);
            assert_eq!(rx.try_recv(), Ok(1));
            tx.try_send(3).unwrap();
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(rx.recv(), Ok(3));
        }

        #[test]
        fn bounded_send_blocks_until_space() {
            let (tx, rx) = bounded(1);
            tx.send(1).unwrap();
            let t = std::thread::spawn(move || {
                // Blocks until the main thread drains the slot.
                tx.send(2).unwrap();
            });
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            t.join().unwrap();
        }

        #[test]
        fn send_batch_queues_everything_in_order() {
            let (tx, rx) = unbounded();
            assert_eq!(tx.send_batch(0..5), Ok(5));
            for want in 0..5 {
                assert_eq!(rx.recv(), Ok(want));
            }
            // Empty batches are a no-op.
            assert_eq!(tx.send_batch(std::iter::empty::<i32>()), Ok(0));
        }

        #[test]
        fn send_batch_blocks_in_chunks_on_a_bounded_channel() {
            let (tx, rx) = bounded(2);
            let t = std::thread::spawn(move || tx.send_batch(0..6));
            let mut got = Vec::new();
            for _ in 0..6 {
                got.push(rx.recv().unwrap());
            }
            assert_eq!(t.join().unwrap(), Ok(6));
            assert_eq!(got, vec![0, 1, 2, 3, 4, 5]);
        }

        #[test]
        fn send_batch_wakes_every_blocked_receiver() {
            let (tx, rx) = unbounded();
            let rx2 = rx.clone();
            let t1 = std::thread::spawn(move || rx.recv().unwrap());
            let t2 = std::thread::spawn(move || rx2.recv().unwrap());
            // Give both receivers a chance to block; the batch push must
            // wake them all, not just one.
            std::thread::sleep(std::time::Duration::from_millis(30));
            assert_eq!(tx.send_batch([1, 2]), Ok(2));
            let mut got = vec![t1.join().unwrap(), t2.join().unwrap()];
            got.sort_unstable();
            assert_eq!(got, vec![1, 2]);
        }

        #[test]
        fn send_batch_returns_the_remainder_on_disconnect() {
            let (tx, rx) = bounded(8);
            drop(rx);
            assert_eq!(tx.send_batch(0..3), Err(SendError(vec![0, 1, 2])));
        }

        #[test]
        fn send_errors_when_receivers_dropped() {
            let (tx, rx) = bounded(1);
            drop(rx);
            assert_eq!(tx.send(9), Err(SendError(9)));
            assert!(matches!(tx.try_send(9), Err(TrySendError::Disconnected(9))));
        }

        #[test]
        fn capacity_and_len_introspection() {
            let (tx, rx) = bounded::<u8>(4);
            assert_eq!(tx.capacity(), Some(4));
            assert_eq!(rx.capacity(), Some(4));
            assert!(tx.is_empty());
            tx.send(1).unwrap();
            assert_eq!(rx.len(), 1);
            let (utx, _urx) = unbounded::<u8>();
            assert_eq!(utx.capacity(), None);
        }
    }
}
