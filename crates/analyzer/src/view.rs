//! Read-side helpers over a stored profile.

use std::sync::Arc;

use deepcontext_core::{
    CallingContextTree, Frame, FrameKind, Interner, MetricKind, NodeId, OpPhase, ProfileDb,
    StoredJournal,
};
use deepcontext_timeline::TimelineSnapshot;

/// A convenience view over a profile for rules: label rendering, semantic
/// lookups, and common metric projections.
///
/// Rules only ever need the calling context tree, so a view can wrap
/// either a stored [`ProfileDb`] ([`new`](Self::new)) or a borrowed
/// in-progress tree ([`live`](Self::live)) — the latter is how analysis
/// previews run inside `Profiler::with_cct` against the profiler's
/// cached snapshot, without serializing a database first. Latency rules
/// additionally need the recorded timeline; attach one with
/// [`with_timeline`](Self::with_timeline) (views without one simply
/// yield no timeline issues).
#[derive(Debug, Clone, Copy)]
pub struct ProfileView<'a> {
    cct: &'a CallingContextTree,
    db: Option<&'a ProfileDb>,
    timeline: Option<&'a TimelineSnapshot>,
}

impl<'a> ProfileView<'a> {
    /// Wraps a stored profile.
    pub fn new(db: &'a ProfileDb) -> Self {
        ProfileView {
            cct: db.cct(),
            db: Some(db),
            timeline: None,
        }
    }

    /// Wraps a live (in-progress) calling context tree, e.g. the cached
    /// snapshot a running profiler exposes through `with_cct`.
    pub fn live(cct: &'a CallingContextTree) -> Self {
        ProfileView {
            cct,
            db: None,
            timeline: None,
        }
    }

    /// Attaches the timeline recorded alongside this profile, enabling
    /// the latency rules ([`GpuIdleRule`](crate::GpuIdleRule),
    /// [`StreamSerializationRule`](crate::StreamSerializationRule)).
    /// The timeline's interval context ids must have been resolved
    /// against this view's tree (`Profiler::timeline` paired with the
    /// same profiler's `with_cct`/`finish` snapshot).
    pub fn with_timeline(mut self, timeline: &'a TimelineSnapshot) -> Self {
        self.timeline = Some(timeline);
        self
    }

    /// The attached timeline, if any.
    pub fn timeline(&self) -> Option<&'a TimelineSnapshot> {
        self.timeline
    }

    /// The underlying stored profile, when this view wraps one (`None`
    /// for live previews).
    pub fn db(&self) -> Option<&'a ProfileDb> {
        self.db
    }

    /// The incident journal persisted with this profile (`None` for
    /// live previews and for runs collected without journaling). The
    /// [`IncidentRule`](crate::IncidentRule) correlates its events with
    /// the profile's artifacts.
    pub fn journal(&self) -> Option<&'a StoredJournal> {
        self.db.and_then(|db| db.journal())
    }

    /// The calling context tree.
    pub fn cct(&self) -> &'a CallingContextTree {
        self.cct
    }

    /// The interner.
    pub fn interner(&self) -> Arc<Interner> {
        self.cct().interner()
    }

    /// All GPU kernel nodes (`call_tree.kernels` in the paper snippets).
    pub fn kernels(&self) -> Vec<NodeId> {
        self.cct().nodes_of_kind(FrameKind::GpuKernel)
    }

    /// All operator nodes (`call_tree.operators`).
    pub fn operators(&self) -> Vec<NodeId> {
        self.cct().nodes_of_kind(FrameKind::Operator)
    }

    /// Total (root-inclusive) value of a metric.
    pub fn total(&self, kind: MetricKind) -> f64 {
        self.cct().total(kind)
    }

    /// Inclusive metric sum at a node.
    pub fn sum(&self, node: NodeId, kind: MetricKind) -> f64 {
        self.cct().node(node).metrics().sum(kind)
    }

    /// Sample count of a metric at a node.
    pub fn count(&self, node: NodeId, kind: MetricKind) -> u64 {
        self.cct().node(node).metrics().count(kind)
    }

    /// Short label of a node's frame (flame-graph style).
    pub fn short_label(&self, node: NodeId) -> String {
        let interner = self.interner();
        self.cct().node(node).frame().short_label(&interner)
    }

    /// Full human-readable label of a node's frame (includes Python
    /// function names and native libraries).
    pub fn label(&self, node: NodeId) -> String {
        let interner = self.interner();
        self.cct().node(node).frame().label(&interner)
    }

    /// Renders the root→node call path as ` > `-joined full labels.
    pub fn path_string(&self, node: NodeId) -> String {
        let interner = self.interner();
        self.cct()
            .frames_to_root(node)
            .frames()
            .iter()
            .map(|f| f.label(&interner))
            .collect::<Vec<_>>()
            .join(" > ")
    }

    /// Operator name (resolved) if the node is an operator frame.
    pub fn operator_name(&self, node: NodeId) -> Option<String> {
        match self.cct().node(node).frame() {
            Frame::Operator { name, .. } => Some(self.interner().resolve(*name).to_string()),
            _ => None,
        }
    }

    /// Operator phase if the node is an operator frame.
    pub fn operator_phase(&self, node: NodeId) -> Option<OpPhase> {
        match self.cct().node(node).frame() {
            Frame::Operator { phase, .. } => Some(*phase),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepcontext_core::ProfileMeta;

    fn sample() -> ProfileDb {
        let mut cct = CallingContextTree::new();
        let i = cct.interner();
        let leaf = cct.insert_path(&[
            Frame::python("a.py", 1, "f", &i),
            Frame::operator("aten::relu", &i),
            Frame::gpu_kernel("relu_kernel", "m.so", 0x10, &i),
        ]);
        cct.attribute(leaf, MetricKind::GpuTime, 42.0);
        ProfileDb::new(ProfileMeta::default(), cct)
    }

    #[test]
    fn live_view_answers_the_same_queries_without_a_db() {
        let db = sample();
        let stored = ProfileView::new(&db);
        let live = ProfileView::live(db.cct());
        assert!(live.db().is_none());
        assert!(stored.db().is_some());
        assert_eq!(live.kernels(), stored.kernels());
        assert_eq!(
            live.total(MetricKind::GpuTime),
            stored.total(MetricKind::GpuTime)
        );
        assert_eq!(
            live.path_string(live.kernels()[0]),
            stored.path_string(stored.kernels()[0])
        );
    }

    #[test]
    fn lookups_and_labels() {
        let db = sample();
        let v = ProfileView::new(&db);
        assert_eq!(v.kernels().len(), 1);
        assert_eq!(v.operators().len(), 1);
        assert_eq!(v.total(MetricKind::GpuTime), 42.0);
        let k = v.kernels()[0];
        assert_eq!(v.short_label(k), "relu_kernel");
        assert!(v.label(k).contains("relu_kernel"));
        let path = v.path_string(k);
        assert!(path.contains("a.py:1 (f)"));
        assert!(path.contains("aten::relu"));
        assert!(path.contains("relu_kernel"));
        let op = v.operators()[0];
        assert_eq!(v.operator_name(op).unwrap(), "aten::relu");
        assert_eq!(v.operator_phase(op).unwrap(), OpPhase::Forward);
        assert_eq!(v.operator_name(k), None);
    }
}
