//! Per-thread/per-stream calling-context-tree shards.
//!
//! DeepContext aggregates metrics online (paper §4.2), which makes the
//! attribution path the ingestion bottleneck: one global tree behind one
//! lock serializes every kernel launch, activity record and CPU sample. A
//! [`CctShard`] is the unit of the sharded alternative — a private
//! [`CallingContextTree`] plus the correlation state needed to resolve
//! asynchronous GPU activity records, owned by one ingestion shard and
//! locked independently of its siblings. Shards share one [`Interner`], so
//! frames collapse identically everywhere and folding shards together is
//! pure [`CallingContextTree::merge`].
//!
//! The shard also owns the correlation lifecycle:
//!
//! * [`bind`](CctShard::bind) associates a correlation id with the context
//!   node at launch time;
//! * [`resolve`](CctShard::resolve) finds it again when the asynchronous
//!   activity record arrives;
//! * [`defer_prune`](CctShard::defer_prune) / [`end_batch`](CctShard::end_batch)
//!   implement two-phase pruning: ids attributed in the *previous* batch
//!   are dropped at the end of the current one, so records that straddle a
//!   buffer boundary (e.g. PC-sampling batches) still resolve;
//! * [`orphan_node`](CctShard::orphan_node) is the hoisted `<unattributed>`
//!   catch-all context, created once per shard instead of re-interned per
//!   orphaned record.

use std::sync::Arc;

use crate::cct::{CallingContextTree, NodeId};
use crate::frame::{CallPath, Frame};
use crate::fx::{FxHashMap, FxHashSet};
use crate::interner::Interner;
use crate::metrics::MetricKind;

/// One shard of a sharded calling-context-tree ingestion pipeline: a
/// private tree plus its correlation map and prune queue.
///
/// Correlation keys are raw `u64`s so the core stays independent of any
/// particular GPU runtime's id type.
#[derive(Debug, Clone)]
pub struct CctShard {
    tree: CallingContextTree,
    // Fx-hashed: hit once per activity record on plain counter keys.
    corr: FxHashMap<u64, NodeId>,
    orphan: Option<NodeId>,
    dropped: Option<NodeId>,
    poisoned: Option<NodeId>,
    prev_batch: Vec<u64>,
    curr_batch: Vec<u64>,
    generation: u64,
}

impl CctShard {
    /// Creates an empty shard sharing `interner` with its siblings.
    pub fn new(interner: Arc<Interner>) -> Self {
        CctShard {
            tree: CallingContextTree::with_interner(interner),
            corr: FxHashMap::default(),
            orphan: None,
            dropped: None,
            poisoned: None,
            prev_batch: Vec::new(),
            curr_batch: Vec::new(),
            generation: 0,
        }
    }

    /// The shard's dirty generation: a counter advanced by every
    /// operation that may have changed the shard's *tree* (inserting
    /// contexts, attributing metrics, folding another shard in).
    /// Snapshot caches remember the generation they folded and skip the
    /// shard entirely while it has not advanced. Correlation-only
    /// bookkeeping (`bind`, `defer_prune`, `end_batch`) does not bump it,
    /// because snapshots fold trees only.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Read access to the shard's tree.
    pub fn tree(&self) -> &CallingContextTree {
        &self.tree
    }

    /// Mutable access to the shard's tree (inserting paths, attributing
    /// metrics). Conservatively bumps the dirty generation: callers take
    /// this to mutate, and a spurious bump only costs one no-op re-fold.
    pub fn tree_mut(&mut self) -> &mut CallingContextTree {
        self.generation += 1;
        &mut self.tree
    }

    /// Inserts a call path and returns its leaf (convenience passthrough).
    pub fn insert_call_path(&mut self, path: &CallPath) -> NodeId {
        self.generation += 1;
        self.tree.insert_call_path(path)
    }

    /// Associates a correlation id with a context node at launch time.
    pub fn bind(&mut self, correlation: u64, node: NodeId) {
        self.corr.insert(correlation, node);
    }

    /// Looks up the context bound to `correlation`, if still live.
    pub fn resolve(&self, correlation: u64) -> Option<NodeId> {
        self.corr.get(&correlation).copied()
    }

    /// Drops a correlation binding immediately, bypassing the two-phase
    /// prune — for ingestion pipelines discarding a correlation whose
    /// remaining records will never arrive (e.g. evicted by a drop
    /// policy). Returns whether the binding existed. Does not touch the
    /// tree (and so does not dirty the snapshot generation).
    pub fn unbind(&mut self, correlation: u64) -> bool {
        self.corr.remove(&correlation).is_some()
    }

    /// Number of live correlation entries.
    pub fn correlation_len(&self) -> usize {
        self.corr.len()
    }

    /// The hoisted catch-all context for records whose correlation was
    /// pruned or never seen. Created on first use and reused thereafter,
    /// so orphaned records cost one hash lookup instead of an intern plus
    /// a path insertion.
    pub fn orphan_node(&mut self) -> NodeId {
        match self.orphan {
            Some(node) => node,
            None => {
                self.generation += 1;
                let interner = self.tree.interner();
                let frame = Frame::gpu_kernel("<unattributed>", "<none>", 0, &interner);
                let node = self.tree.insert_path(std::slice::from_ref(&frame));
                self.orphan = Some(node);
                node
            }
        }
    }

    /// The hoisted synthetic `<dropped>` context: overload telemetry for
    /// ingestion pipelines whose drop policy discarded events. Created on
    /// first use, like [`orphan_node`](Self::orphan_node).
    pub fn dropped_node(&mut self) -> NodeId {
        match self.dropped {
            Some(node) => node,
            None => {
                self.generation += 1;
                let interner = self.tree.interner();
                let frame = Frame::operator("<dropped>", &interner);
                let node = self.tree.insert_path(std::slice::from_ref(&frame));
                self.dropped = Some(node);
                node
            }
        }
    }

    /// Records `count` events discarded by an overloaded pipeline under
    /// the synthetic `<dropped>` context
    /// ([`MetricKind::DroppedEvents`]), so `DropOldest` overload is
    /// visible inside the profile rather than only in side counters.
    pub fn attribute_dropped(&mut self, count: u64) {
        let node = self.dropped_node();
        self.generation += 1;
        self.tree
            .attribute(node, MetricKind::DroppedEvents, count as f64);
    }

    /// The hoisted synthetic `<poisoned>` context: fault-isolation
    /// telemetry for ingestion pipelines that quarantined this shard
    /// after a worker panic. Created on first use, like
    /// [`orphan_node`](Self::orphan_node).
    pub fn poisoned_node(&mut self) -> NodeId {
        match self.poisoned {
            Some(node) => node,
            None => {
                self.generation += 1;
                let interner = self.tree.interner();
                let frame = Frame::operator("<poisoned>", &interner);
                let node = self.tree.insert_path(std::slice::from_ref(&frame));
                self.poisoned = Some(node);
                node
            }
        }
    }

    /// Records `count` events discarded because the shard was
    /// quarantined after a worker panic, under the synthetic
    /// `<poisoned>` context ([`MetricKind::PoisonedEvents`]) — so fault
    /// isolation is visible inside the profile and event conservation
    /// (attributed + poisoned + dropped == produced) can be audited from
    /// the profile alone.
    pub fn attribute_poisoned(&mut self, count: u64) {
        let node = self.poisoned_node();
        self.generation += 1;
        self.tree
            .attribute(node, MetricKind::PoisonedEvents, count as f64);
    }

    /// Records a *sampled* drop victim: `count` estimated events evicted
    /// from the context `path`, attributed **exclusively** (no root-ward
    /// propagation) at a child of the synthetic `<dropped>` node. The
    /// `<dropped>` node itself keeps carrying the exact total via
    /// [`attribute_dropped`](Self::attribute_dropped); the sampled
    /// children are scaled estimates (sample stride × samples) of *which*
    /// contexts the overload hit, so the two must not double-count.
    pub fn attribute_dropped_sample(&mut self, path: &CallPath, count: f64) {
        let mut node = self.dropped_node();
        self.generation += 1;
        for frame in path.frames() {
            node = self.tree.insert_child(node, frame);
        }
        self.tree
            .attribute_exclusive(node, MetricKind::DroppedEvents, count);
    }

    /// Resolves `correlation` to its bound context, falling back to the
    /// hoisted catch-all. Returns the node and whether it was the orphan
    /// fallback — the resolution step ingestion workers run per activity
    /// record before folding its metrics.
    pub fn resolve_or_orphan(&mut self, correlation: u64) -> (NodeId, bool) {
        match self.resolve(correlation) {
            Some(node) => (node, false),
            None => (self.orphan_node(), true),
        }
    }

    /// Marks `correlation` as attributed in the current batch; it becomes
    /// prunable once the *next* batch completes.
    pub fn defer_prune(&mut self, correlation: u64) {
        self.curr_batch.push(correlation);
    }

    /// Ends an activity batch: correlations deferred in the previous batch
    /// and not re-attributed in this one are dropped from the correlation
    /// map. Returns the pruned ids so callers can clean up routing state.
    pub fn end_batch(&mut self) -> Vec<u64> {
        let keep: FxHashSet<u64> = self.curr_batch.iter().copied().collect();
        let mut pruned = Vec::new();
        for id in self.prev_batch.drain(..) {
            if !keep.contains(&id) && self.corr.remove(&id).is_some() {
                pruned.push(id);
            }
        }
        std::mem::swap(&mut self.prev_batch, &mut self.curr_batch);
        pruned
    }

    /// Releases correlation scratch capacity that a large batch left
    /// behind (the map and prune queues retain their high-water capacity
    /// after draining). Called at quiescent points — e.g. after a flush
    /// boundary has retired all deferred correlations — so resident
    /// profile memory tracks *live* state, not the largest batch ever
    /// seen. Does not touch the tree (and so does not dirty the shard's
    /// snapshot generation).
    pub fn trim(&mut self) {
        fn oversized(capacity: usize, len: usize) -> bool {
            capacity > 64 && capacity / 4 > len
        }
        if oversized(self.corr.capacity(), self.corr.len()) {
            self.corr.shrink_to_fit();
        }
        if oversized(self.prev_batch.capacity(), self.prev_batch.len()) {
            self.prev_batch.shrink_to_fit();
        }
        if oversized(self.curr_batch.capacity(), self.curr_batch.len()) {
            self.curr_batch.shrink_to_fit();
        }
    }

    /// Folds `other` into this shard: trees merge by collapse keys, and
    /// `other`'s correlation state (live bindings, prune queues, orphan
    /// node) is remapped through the merge's node mapping so asynchronous
    /// records bound in `other` still resolve here.
    pub fn merge_from(&mut self, other: &CctShard) {
        self.generation += 1;
        let mapping = self.tree.merge(&other.tree);
        for (corr, node) in &other.corr {
            self.corr.insert(*corr, mapping[node.index()]);
        }
        self.prev_batch.extend_from_slice(&other.prev_batch);
        self.curr_batch.extend_from_slice(&other.curr_batch);
        if self.orphan.is_none() {
            self.orphan = other.orphan.map(|node| mapping[node.index()]);
        }
        if self.dropped.is_none() {
            self.dropped = other.dropped.map(|node| mapping[node.index()]);
        }
        if self.poisoned.is_none() {
            self.poisoned = other.poisoned.map(|node| mapping[node.index()]);
        }
    }

    /// Consumes the shard, yielding its tree.
    pub fn into_tree(self) -> CallingContextTree {
        self.tree
    }

    /// Approximate resident bytes of tree (interner excluded) plus
    /// correlation state.
    pub fn approx_bytes(&self) -> usize {
        let entry = std::mem::size_of::<u64>() + std::mem::size_of::<NodeId>() + 16;
        self.tree.approx_tree_bytes()
            + self.corr.capacity() * entry
            + (self.prev_batch.capacity() + self.curr_batch.capacity()) * std::mem::size_of::<u64>()
    }

    /// Whether the shard recorded nothing (empty tree, no correlations).
    pub fn is_empty(&self) -> bool {
        self.tree.node_count() == 1 && self.corr.is_empty()
    }

    /// Attributes `value` of `kind` at the context bound to `correlation`,
    /// falling back to the orphan context. Returns the node attributed to
    /// and whether it was an orphan.
    pub fn attribute_correlated(
        &mut self,
        correlation: u64,
        kind: MetricKind,
        value: f64,
    ) -> (NodeId, bool) {
        let (node, orphaned) = match self.resolve(correlation) {
            Some(node) => (node, false),
            None => (self.orphan_node(), true),
        };
        self.generation += 1;
        self.tree.attribute(node, kind, value);
        (node, orphaned)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricKind;

    fn interner() -> Arc<Interner> {
        Interner::new()
    }

    fn path(i: &Arc<Interner>, op: &str) -> Vec<Frame> {
        vec![
            Frame::python("t.py", 1, "f", i),
            Frame::operator(op, i),
            Frame::gpu_kernel(&format!("k_{op}"), "m.so", 0x100, i),
        ]
    }

    #[test]
    fn bind_resolve_roundtrip() {
        let i = interner();
        let mut shard = CctShard::new(Arc::clone(&i));
        let node = shard.tree_mut().insert_path(&path(&i, "aten::relu"));
        shard.bind(7, node);
        assert_eq!(shard.resolve(7), Some(node));
        assert_eq!(shard.resolve(8), None);
        assert_eq!(shard.correlation_len(), 1);
    }

    #[test]
    fn orphan_node_is_created_once() {
        let i = interner();
        let mut shard = CctShard::new(i);
        let a = shard.orphan_node();
        let b = shard.orphan_node();
        assert_eq!(a, b);
        assert_eq!(shard.tree().node_count(), 2, "root + one catch-all");
    }

    #[test]
    fn attribute_correlated_counts_orphans() {
        let i = interner();
        let mut shard = CctShard::new(Arc::clone(&i));
        let node = shard.tree_mut().insert_path(&path(&i, "aten::gelu"));
        shard.bind(1, node);
        let (n, orphaned) = shard.attribute_correlated(1, MetricKind::GpuTime, 5.0);
        assert_eq!((n, orphaned), (node, false));
        let (n, orphaned) = shard.attribute_correlated(99, MetricKind::GpuTime, 3.0);
        assert_eq!(n, shard.orphan_node());
        assert!(orphaned);
        assert_eq!(shard.tree().total(MetricKind::GpuTime), 8.0);
    }

    #[test]
    fn two_phase_prune_drops_only_previous_batch() {
        let i = interner();
        let mut shard = CctShard::new(Arc::clone(&i));
        let node = shard.tree_mut().insert_path(&path(&i, "aten::relu"));
        for c in [1u64, 2, 3] {
            shard.bind(c, node);
        }
        // Batch 1 attributes correlations 1 and 2.
        shard.defer_prune(1);
        shard.defer_prune(2);
        assert!(
            shard.end_batch().is_empty(),
            "nothing deferred before batch 1"
        );
        assert_eq!(
            shard.resolve(1),
            Some(node),
            "still live across the boundary"
        );
        // Batch 2 re-attributes 2 (straddling record) and touches 3.
        shard.defer_prune(2);
        shard.defer_prune(3);
        let pruned = shard.end_batch();
        assert_eq!(pruned, vec![1], "1 was deferred last batch and not renewed");
        assert_eq!(shard.resolve(1), None);
        assert_eq!(shard.resolve(2), Some(node));
        // Batch 3: nothing new; 2 and 3 now age out.
        let mut pruned = shard.end_batch();
        pruned.sort_unstable();
        assert_eq!(pruned, vec![2, 3]);
        assert_eq!(shard.correlation_len(), 0);
    }

    #[test]
    fn merge_from_remaps_correlation_state() {
        let i = interner();
        let mut a = CctShard::new(Arc::clone(&i));
        let mut b = CctShard::new(Arc::clone(&i));
        // Same logical context in both shards gets different local ids
        // because `a` inserts another path first.
        a.tree_mut().insert_path(&path(&i, "aten::conv2d"));
        let nb = b.tree_mut().insert_path(&path(&i, "aten::relu"));
        b.tree_mut().attribute(nb, MetricKind::GpuTime, 4.0);
        b.bind(42, nb);
        b.defer_prune(42);

        a.merge_from(&b);
        let resolved = a.resolve(42).expect("binding survives the fold");
        assert_ne!(resolved, nb, "id was remapped into a's id space");
        // Attributing through the remapped binding lands on the relu leaf.
        a.tree_mut().attribute(resolved, MetricKind::GpuTime, 6.0);
        let relu_leaf = a.tree_mut().insert_path(&path(&i, "aten::relu"));
        assert_eq!(
            a.tree().metric(relu_leaf, MetricKind::GpuTime).unwrap().sum,
            10.0
        );
        // Prune queue followed the merge.
        a.end_batch();
        let pruned = a.end_batch();
        assert_eq!(pruned, vec![42]);
    }

    #[test]
    fn merge_from_adopts_orphan_node() {
        let i = interner();
        let mut a = CctShard::new(Arc::clone(&i));
        let mut b = CctShard::new(Arc::clone(&i));
        let orphan_b = b.orphan_node();
        b.tree_mut().attribute(orphan_b, MetricKind::GpuTime, 1.0);
        a.merge_from(&b);
        // a's orphan collapses onto the merged catch-all: no duplicate node.
        let before = a.tree().node_count();
        let orphan_a = a.orphan_node();
        assert_eq!(a.tree().node_count(), before);
        assert_eq!(
            a.tree().metric(orphan_a, MetricKind::GpuTime).unwrap().sum,
            1.0
        );
    }

    #[test]
    fn dropped_node_is_created_once_and_aggregates_counts() {
        let i = interner();
        let mut shard = CctShard::new(i);
        shard.attribute_dropped(3);
        shard.attribute_dropped(4);
        let node = shard.dropped_node();
        assert_eq!(shard.dropped_node(), node);
        assert_eq!(shard.tree().node_count(), 2, "root + one <dropped>");
        let stat = shard
            .tree()
            .metric(node, MetricKind::DroppedEvents)
            .expect("dropped metric present");
        assert_eq!(stat.sum, 7.0);
        assert_eq!(stat.count, 2);
    }

    #[test]
    fn poisoned_node_is_created_once_and_aggregates_counts() {
        let i = interner();
        let mut shard = CctShard::new(i);
        shard.attribute_poisoned(5);
        shard.attribute_poisoned(2);
        let node = shard.poisoned_node();
        assert_eq!(shard.poisoned_node(), node);
        assert_eq!(shard.tree().node_count(), 2, "root + one <poisoned>");
        let stat = shard
            .tree()
            .metric(node, MetricKind::PoisonedEvents)
            .expect("poisoned metric present");
        assert_eq!(stat.sum, 7.0);
        assert_eq!(stat.count, 2);
        assert_eq!(shard.tree().total(MetricKind::PoisonedEvents), 7.0);
    }

    #[test]
    fn merge_from_adopts_poisoned_node() {
        let i = interner();
        let mut a = CctShard::new(Arc::clone(&i));
        let mut b = CctShard::new(Arc::clone(&i));
        b.attribute_poisoned(3);
        a.merge_from(&b);
        let before = a.tree().node_count();
        let node = a.poisoned_node();
        assert_eq!(a.tree().node_count(), before, "no duplicate <poisoned>");
        assert_eq!(
            a.tree()
                .metric(node, MetricKind::PoisonedEvents)
                .unwrap()
                .sum,
            3.0
        );
    }

    #[test]
    fn dropped_samples_nest_under_dropped_without_double_counting() {
        let i = interner();
        let mut shard = CctShard::new(Arc::clone(&i));
        // Exact total: 32 events dropped.
        shard.attribute_dropped(32);
        // Two sampled victims at stride 16 → estimates of 16 each.
        let mut victim = CallPath::new();
        victim.push(Frame::operator("aten::relu", &i));
        shard.attribute_dropped_sample(&victim, 16.0);
        shard.attribute_dropped_sample(&victim, 16.0);
        let dropped = shard.dropped_node();
        // The exact total at <dropped> (and the tree total) is untouched
        // by the exclusive sample estimates...
        assert_eq!(
            shard
                .tree()
                .metric(dropped, MetricKind::DroppedEvents)
                .unwrap()
                .sum,
            32.0
        );
        assert_eq!(shard.tree().total(MetricKind::DroppedEvents), 32.0);
        // ...while the victim child carries the scaled estimate.
        let child = {
            let node = shard.dropped_node();
            let frame = Frame::operator("aten::relu", &i);
            shard.tree_mut().insert_child(node, &frame)
        };
        assert_eq!(
            shard
                .tree()
                .metric(child, MetricKind::DroppedEvents)
                .unwrap()
                .sum,
            32.0,
            "two stride-16 samples"
        );
    }

    #[test]
    fn generation_advances_on_tree_mutations_only() {
        let i = interner();
        let mut shard = CctShard::new(Arc::clone(&i));
        assert_eq!(shard.generation(), 0);
        let node = shard.tree_mut().insert_path(&path(&i, "aten::relu"));
        let after_insert = shard.generation();
        assert!(after_insert > 0);
        // Correlation-only bookkeeping leaves the tree untouched.
        shard.bind(1, node);
        shard.defer_prune(1);
        shard.end_batch();
        let _ = shard.resolve(1);
        assert_eq!(shard.generation(), after_insert);
        // Attribution dirties the tree again.
        shard.attribute_correlated(1, MetricKind::GpuTime, 1.0);
        assert!(shard.generation() > after_insert);
        let g = shard.generation();
        let other = CctShard::new(Arc::clone(&i));
        shard.merge_from(&other);
        assert!(shard.generation() > g);
    }

    #[test]
    fn approx_bytes_grows_with_state() {
        let i = interner();
        let mut shard = CctShard::new(Arc::clone(&i));
        let empty = shard.approx_bytes();
        let node = shard.tree_mut().insert_path(&path(&i, "aten::matmul"));
        for c in 0..64 {
            shard.bind(c, node);
        }
        assert!(shard.approx_bytes() > empty);
        assert!(!shard.is_empty());
    }
}
