//! Baseline profilers DeepContext is compared against (paper §5, Table 1).
//!
//! [`TraceProfiler`] models the framework profilers (PyTorch profiler /
//! JAX profiler): it records **every** operator and kernel event into an
//! in-memory trace, so its memory grows linearly with iteration count —
//! the behaviour behind the paper's Figure 6c/6d memory-overhead
//! comparison (up to 27× / out-of-memory for trace-based tools, vs
//! DeepContext's bounded online aggregation). Per-event CPU cost is low
//! (no unwinding), matching their low time overhead in Figure 6a/6b.
//!
//! [`features`] reproduces Table 1's capability matrix.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod features;
mod trace;

pub use trace::{ExportError, TraceEvent, TraceEventKind, TraceProfiler, TraceStyle};
