//! String interning.
//!
//! Frames reference file paths, symbol names, operator names and library
//! paths. Interning keeps the calling context tree compact (the paper's
//! memory-overhead result depends on contexts, not strings, dominating
//! profile size) and makes frame comparison an integer compare.
//!
//! The intern map is **lock-striped**: `intern` hashes the string to one
//! of [`STRIPES`] independent `RwLock`ed maps, so concurrent producers
//! interning *different* strings — the common case once ingestion is
//! sharded and attribution runs on a worker pool — no longer serialize on
//! one global lock. The hot path (interning an already-known string) is
//! one striped read lock. Symbol ids stay dense and stable: a shared
//! append-only symbol table assigns ids in insertion order, and a string
//! is only ever inserted once (the stripe's write lock makes the
//! check-then-append atomic per string).

use std::collections::HashMap;
use std::fmt;

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

/// Intern-map stripes. A power of two so the stripe pick is a mask; 16
/// matches the default ingestion shard count.
const STRIPES: usize = 16;

/// An interned string handle.
///
/// `Sym` is a cheap, copyable index into an [`Interner`]. Two `Sym`s from the
/// same interner are equal iff the strings they denote are equal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Sym(pub(crate) u32);

impl Sym {
    /// Raw index of this symbol within its interner.
    pub fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sym#{}", self.0)
    }
}

/// A thread-safe, lock-striped string interner.
///
/// Shared (via [`Arc`]) between every component of a profiling session so
/// that frames produced by the framework shim, the GPU runtime and the CPU
/// sampler all agree on symbol identity.
///
/// # Examples
///
/// ```
/// use deepcontext_core::Interner;
///
/// let interner = Interner::new();
/// let a = interner.intern("aten::matmul");
/// let b = interner.intern("aten::matmul");
/// assert_eq!(a, b);
/// assert_eq!(interner.resolve(a).as_ref(), "aten::matmul");
/// ```
pub struct Interner {
    /// string → symbol, striped by string hash.
    stripes: Vec<RwLock<HashMap<Arc<str>, Sym>>>,
    /// symbol → string, append-only, ids dense in insertion order.
    strings: RwLock<Vec<Arc<str>>>,
    /// Total interned string payload bytes.
    bytes: AtomicUsize,
}

impl Default for Interner {
    fn default() -> Self {
        Interner {
            stripes: (0..STRIPES).map(|_| RwLock::new(HashMap::new())).collect(),
            strings: RwLock::new(Vec::new()),
            bytes: AtomicUsize::new(0),
        }
    }
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    fn stripe_of(&self, s: &str) -> &RwLock<HashMap<Arc<str>, Sym>> {
        // FNV-1a over the bytes: the stripe pick only needs a few
        // well-mixed bits, and the stripe's own map re-hashes the full
        // string anyway — a second SipHash pass here would double the
        // string-hashing cost of the profiler's hottest path.
        let h = s.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3)
        });
        &self.stripes[(h as usize) & (STRIPES - 1)]
    }

    /// Interns `s`, returning its symbol. Idempotent.
    pub fn intern(&self, s: &str) -> Sym {
        let stripe = self.stripe_of(s);
        if let Some(&sym) = stripe.read().get(s) {
            return sym;
        }
        // The stripe write lock makes check-then-append atomic for every
        // string hashing here; strings on other stripes proceed in
        // parallel and only rendezvous on the symbol-table append.
        let mut map = stripe.write();
        if let Some(&sym) = map.get(s) {
            return sym;
        }
        let arc: Arc<str> = Arc::from(s);
        let sym = {
            let mut strings = self.strings.write();
            let sym = Sym(strings.len() as u32);
            strings.push(Arc::clone(&arc));
            sym
        };
        self.bytes.fetch_add(s.len(), Ordering::Relaxed);
        map.insert(arc, sym);
        sym
    }

    /// Resolves a symbol back to its string.
    ///
    /// # Panics
    ///
    /// Panics if `sym` was produced by a different interner and is out of
    /// range for this one.
    pub fn resolve(&self, sym: Sym) -> Arc<str> {
        Arc::clone(&self.strings.read()[sym.0 as usize])
    }

    /// Looks up a string without interning it.
    pub fn lookup(&self, s: &str) -> Option<Sym> {
        self.stripe_of(s).read().get(s).copied()
    }

    /// Number of distinct strings interned.
    pub fn len(&self) -> usize {
        self.strings.read().len()
    }

    /// Whether the interner is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate heap bytes held by interned strings (for the
    /// memory-overhead accounting of Figure 6c/6d).
    pub fn approx_bytes(&self) -> usize {
        // String payload + one Arc pointer per map and vec slot + map entry.
        self.bytes.load(Ordering::Relaxed) + self.len() * (2 * std::mem::size_of::<Arc<str>>() + 16)
    }

    /// All interned strings in symbol order (used by the profile database
    /// writer).
    pub fn snapshot(&self) -> Vec<Arc<str>> {
        self.strings.read().clone()
    }
}

impl fmt::Debug for Interner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Interner")
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let i = Interner::new();
        let a = i.intern("foo");
        let b = i.intern("foo");
        let c = i.intern("bar");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn resolve_round_trips() {
        let i = Interner::new();
        let strings = ["train.py", "aten::conv2d", "libcudart.so", ""];
        let syms: Vec<_> = strings.iter().map(|s| i.intern(s)).collect();
        for (s, sym) in strings.iter().zip(&syms) {
            assert_eq!(i.resolve(*sym).as_ref(), *s);
        }
    }

    #[test]
    fn lookup_does_not_intern() {
        let i = Interner::new();
        assert_eq!(i.lookup("missing"), None);
        let s = i.intern("present");
        assert_eq!(i.lookup("present"), Some(s));
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn symbol_ids_are_dense_and_stable() {
        let i = Interner::new();
        let syms: Vec<Sym> = (0..100).map(|n| i.intern(&format!("sym{n}"))).collect();
        // Dense: every id in 0..len assigned exactly once.
        let mut indices: Vec<u32> = syms.iter().map(|s| s.index()).collect();
        indices.sort_unstable();
        assert_eq!(indices, (0..100).collect::<Vec<u32>>());
        // Stable: re-interning returns the original id, snapshot order
        // matches id order.
        for (n, sym) in syms.iter().enumerate() {
            assert_eq!(i.intern(&format!("sym{n}")), *sym);
        }
        let snap = i.snapshot();
        for sym in &syms {
            assert_eq!(i.resolve(*sym), snap[sym.index() as usize]);
        }
    }

    #[test]
    fn concurrent_interning_agrees() {
        let i = Interner::new();
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let i = Arc::clone(&i);
                std::thread::spawn(move || {
                    (0..100)
                        .map(|n| i.intern(&format!("s{n}")))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let results: Vec<Vec<Sym>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for w in results.windows(2) {
            assert_eq!(w[0], w[1]);
        }
        assert_eq!(i.len(), 100);
    }

    #[test]
    fn contended_stripes_stay_consistent() {
        // Contention smoke test for the lock striping: 8 threads hammer a
        // mix of (a) the same hot strings — repeated read-path hits on
        // shared stripes — and (b) thread-private strings that race fresh
        // inserts on the shared symbol table. Every thread must observe
        // identical ids for shared strings, ids must stay dense, and every
        // resolve must round-trip.
        let i = Interner::new();
        let threads = 8;
        let hot = 32;
        let rounds = 50;
        let results: Vec<Vec<(String, Sym)>> = std::thread::scope(|scope| {
            (0..threads)
                .map(|t| {
                    let i = Arc::clone(&i);
                    scope.spawn(move || {
                        let mut seen = Vec::new();
                        for round in 0..rounds {
                            for n in 0..hot {
                                let s = format!("hot{n}");
                                let sym = i.intern(&s);
                                if round == 0 {
                                    seen.push((s, sym));
                                }
                            }
                            let s = format!("private-{t}-{round}");
                            let sym = i.intern(&s);
                            seen.push((s, sym));
                        }
                        seen
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        // Shared strings agree across threads; all ids resolve back.
        let mut by_string: HashMap<String, Sym> = HashMap::new();
        for thread in &results {
            for (s, sym) in thread {
                assert_eq!(i.resolve(*sym).as_ref(), s.as_str());
                assert_eq!(*by_string.entry(s.clone()).or_insert(*sym), *sym);
            }
        }
        // Dense ids: exactly hot + threads×rounds distinct strings.
        assert_eq!(i.len(), hot + threads * rounds);
        let snap = i.snapshot();
        assert_eq!(snap.len(), i.len());
    }

    #[test]
    fn approx_bytes_grows() {
        let i = Interner::new();
        let before = i.approx_bytes();
        i.intern("a fairly long interned string for accounting purposes");
        assert!(i.approx_bytes() > before);
    }
}
