//! Emits `BENCH_snapshot.json`: repeated-`with_cct` snapshot latency —
//! cold full fold vs the warm generation-tracked cache — under 0, 1 and
//! all-16 dirty shards.
//!
//! The headline number is `speedup_warm_1_dirty_vs_cold`: the issue's
//! acceptance bar is ≥ 5x when at most one of 16 shards is dirty
//! between snapshots.
//!
//! Run from the repo root: `cargo run --release -p deepcontext-bench
//! --bin bench_snapshot`.

use std::io::Write;

use deepcontext_bench::snapshot::{snapshot_matrix, SnapshotPoint, POPULATE_TIDS, SHARDS};

const CONTEXTS_PER_TID: u64 = 40;
const REPEATS: usize = 60;

fn point<'a>(points: &'a [SnapshotPoint], scenario: &str) -> &'a SnapshotPoint {
    points
        .iter()
        .find(|p| p.scenario == scenario)
        .expect("measured scenario")
}

fn main() {
    eprintln!(
        "measuring snapshot latency ({SHARDS} shards, {POPULATE_TIDS} producers x \
         {CONTEXTS_PER_TID} contexts, median of {REPEATS})..."
    );
    let points = snapshot_matrix(CONTEXTS_PER_TID, REPEATS);

    let cold = point(&points, "cold_full_fold").nanos;
    let warm0 = point(&points, "warm_0_dirty").nanos;
    let warm1 = point(&points, "warm_1_dirty").nanos;
    let warm_all = point(&points, "warm_all_dirty").nanos;

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"snapshot\",\n");
    json.push_str("  \"unit\": \"ns_per_snapshot\",\n");
    json.push_str("  \"baseline\": \"uncached full fold of all shards per snapshot\",\n");
    json.push_str(&format!("  \"shards\": {SHARDS},\n"));
    json.push_str(&format!("  \"producers\": {POPULATE_TIDS},\n"));
    json.push_str(&format!(
        "  \"contexts_per_producer\": {CONTEXTS_PER_TID},\n"
    ));
    json.push_str(&format!("  \"repeats\": {REPEATS},\n"));
    json.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        let sep = if i + 1 == points.len() { "" } else { "," };
        json.push_str(&format!(
            "    {{\"scenario\": \"{}\", \"dirty_producer_tids\": {}, \"ns_per_snapshot\": {:.0}}}{}\n",
            p.scenario, p.dirty_tids, p.nanos, sep
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"speedup_warm_0_dirty_vs_cold\": {:.2},\n",
        cold / warm0
    ));
    json.push_str(&format!(
        "  \"speedup_warm_1_dirty_vs_cold\": {:.2},\n",
        cold / warm1
    ));
    json.push_str(&format!(
        "  \"speedup_warm_all_dirty_vs_cold\": {:.2}\n",
        cold / warm_all
    ));
    json.push_str("}\n");

    std::fs::File::create("BENCH_snapshot.json")
        .and_then(|mut f| f.write_all(json.as_bytes()))
        .expect("write BENCH_snapshot.json");
    print!("{json}");

    eprintln!(
        "warm(≤1 dirty) vs cold: {:.2}x / {:.2}x (target ≥ 5x); all-dirty: {:.2}x",
        cold / warm0,
        cold / warm1,
        cold / warm_all
    );
}
