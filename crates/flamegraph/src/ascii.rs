//! Terminal renderer.

use crate::graph::{FlameGraph, FlameNode};

/// Options for the ASCII renderer.
#[derive(Debug, Clone)]
pub struct AsciiOptions {
    /// Total character width of the bar column.
    pub width: usize,
    /// Hide boxes below this share of the total.
    pub min_share: f64,
    /// Maximum depth rendered (0 = unlimited).
    pub max_depth: usize,
}

impl Default for AsciiOptions {
    fn default() -> Self {
        AsciiOptions {
            width: 60,
            min_share: 0.002,
            max_depth: 0,
        }
    }
}

impl FlameGraph {
    /// Renders an indented bar view, one box per line:
    ///
    /// ```text
    /// <root> 100.0% |############################|
    ///   train.py:1 82.0% |#######################     | *
    /// ```
    ///
    /// Hot boxes get a trailing `*`; boxes with analyzer issues get `!`.
    pub fn to_ascii(&self, options: &AsciiOptions) -> String {
        let mut out = String::new();
        let total = self.root().value.max(f64::MIN_POSITIVE);
        render(self.root(), 0, total, options, &mut out);
        out
    }
}

fn render(node: &FlameNode, depth: usize, total: f64, options: &AsciiOptions, out: &mut String) {
    let share = node.value / total;
    if share < options.min_share {
        return;
    }
    if options.max_depth > 0 && depth >= options.max_depth {
        return;
    }
    let bar_len = ((share * options.width as f64).round() as usize).min(options.width);
    for _ in 0..depth {
        out.push_str("  ");
    }
    out.push_str(&node.label);
    out.push_str(&format!(" {:.1}% |", share * 100.0));
    for i in 0..options.width {
        out.push(if i < bar_len { '#' } else { ' ' });
    }
    out.push('|');
    if node.hot {
        out.push_str(" *");
    }
    if !node.issues.is_empty() {
        out.push_str(" !");
        for (severity, message) in &node.issues {
            out.push_str(&format!(" [{severity}] {message}"));
        }
    }
    out.push('\n');
    for child in &node.children {
        render(child, depth + 1, total, options, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepcontext_core::{CallingContextTree, Frame, MetricKind};

    fn graph() -> FlameGraph {
        let mut cct = CallingContextTree::new();
        let i = cct.interner();
        let a = cct.insert_path(&[
            Frame::python("a.py", 1, "main", &i),
            Frame::gpu_kernel("big_kernel", "m.so", 0x10, &i),
        ]);
        let b = cct.insert_path(&[
            Frame::python("a.py", 1, "main", &i),
            Frame::gpu_kernel("tiny_kernel", "m.so", 0x20, &i),
        ]);
        cct.attribute(a, MetricKind::GpuTime, 999.0);
        cct.attribute(b, MetricKind::GpuTime, 1.0);
        FlameGraph::top_down(&cct, MetricKind::GpuTime)
    }

    #[test]
    fn renders_bars_and_percentages() {
        let fg = graph();
        let text = fg.to_ascii(&AsciiOptions::default());
        assert!(text.contains("big_kernel"));
        assert!(text.contains("99.9%"));
        assert!(text.contains('#'));
        // Lines are indented by depth.
        let kernel_line = text.lines().find(|l| l.contains("big_kernel")).unwrap();
        assert!(kernel_line.starts_with("    "));
    }

    #[test]
    fn min_share_prunes_tiny_boxes() {
        let fg = graph();
        let text = fg.to_ascii(&AsciiOptions {
            min_share: 0.01,
            ..Default::default()
        });
        assert!(!text.contains("tiny_kernel"));
    }

    #[test]
    fn max_depth_truncates() {
        let fg = graph();
        let text = fg.to_ascii(&AsciiOptions {
            max_depth: 2,
            ..Default::default()
        });
        assert!(text.contains("a.py:1"));
        assert!(!text.contains("big_kernel"));
    }

    #[test]
    fn hot_and_issue_markers_appear() {
        let mut fg = graph();
        fg.highlight_hotspots(0.5);
        let text = fg.to_ascii(&AsciiOptions::default());
        let hot_line = text.lines().find(|l| l.contains("big_kernel")).unwrap();
        assert!(hot_line.ends_with('*'));
    }
}
