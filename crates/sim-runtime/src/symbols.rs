//! Symbol and line-number resolution (the ELF-symtab / DWARF substitute).
//!
//! The performance analyzer "initializes the analysis environment by
//! retrieving function symbols from binaries ... and maps GPU/CPU
//! instructions back to the source code using the DWARF information"
//! (paper §4.3). [`SymbolTable`] plays the symtab role; [`LineMap`] plays
//! DWARF's line table role.

use std::sync::Arc;

use parking_lot::RwLock;

/// A function registered in the simulated symbol table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FunctionInfo {
    /// Demangled function name.
    pub name: Arc<str>,
    /// Containing library path.
    pub library: Arc<str>,
    /// Entry address.
    pub addr: u64,
    /// Size in bytes.
    pub size: u64,
}

impl FunctionInfo {
    /// Whether `pc` falls inside this function.
    pub fn contains(&self, pc: u64) -> bool {
        pc >= self.addr && pc < self.addr + self.size
    }
}

/// Process-wide function symbol table.
#[derive(Default)]
pub struct SymbolTable {
    functions: RwLock<Vec<FunctionInfo>>,
}

impl SymbolTable {
    /// Creates an empty table.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Registers a function symbol and returns its info.
    pub fn register(&self, name: &str, library: &str, addr: u64, size: u64) -> FunctionInfo {
        let info = FunctionInfo {
            name: Arc::from(name),
            library: Arc::from(library),
            addr,
            size,
        };
        self.functions.write().push(info.clone());
        info
    }

    /// Resolves a PC to the containing function.
    pub fn resolve(&self, pc: u64) -> Option<FunctionInfo> {
        self.functions
            .read()
            .iter()
            .find(|f| f.contains(pc))
            .cloned()
    }

    /// Finds a function by exact name.
    pub fn by_name(&self, name: &str) -> Option<FunctionInfo> {
        self.functions
            .read()
            .iter()
            .find(|f| f.name.as_ref() == name)
            .cloned()
    }

    /// Number of registered functions.
    pub fn len(&self) -> usize {
        self.functions.read().len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl std::fmt::Debug for SymbolTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SymbolTable")
            .field("functions", &self.len())
            .finish()
    }
}

/// One line-table row: PC range start/end, source file, line.
type LineEntry = (u64, u64, Arc<str>, u32);

/// DWARF-like mapping from PC ranges to source file/line.
#[derive(Default)]
pub struct LineMap {
    entries: RwLock<Vec<LineEntry>>,
}

impl LineMap {
    /// Creates an empty map.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Maps `[addr, addr+size)` to `file:line`.
    pub fn add(&self, addr: u64, size: u64, file: &str, line: u32) {
        self.entries
            .write()
            .push((addr, size, Arc::from(file), line));
    }

    /// Resolves a PC to (file, line).
    pub fn resolve(&self, pc: u64) -> Option<(Arc<str>, u32)> {
        self.entries
            .read()
            .iter()
            .find(|(a, s, _, _)| pc >= *a && pc < *a + *s)
            .map(|(_, _, f, l)| (Arc::clone(f), *l))
    }

    /// Number of line entries.
    pub fn len(&self) -> usize {
        self.entries.read().len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl std::fmt::Debug for LineMap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LineMap")
            .field("entries", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_finds_containing_function() {
        let t = SymbolTable::new();
        t.register("conv2d_forward", "/lib/libtorch.so", 0x100, 0x40);
        t.register("relu_forward", "/lib/libtorch.so", 0x140, 0x20);
        assert_eq!(t.resolve(0x100).unwrap().name.as_ref(), "conv2d_forward");
        assert_eq!(t.resolve(0x13f).unwrap().name.as_ref(), "conv2d_forward");
        assert_eq!(t.resolve(0x140).unwrap().name.as_ref(), "relu_forward");
        assert!(t.resolve(0x160).is_none());
    }

    #[test]
    fn by_name_lookup() {
        let t = SymbolTable::new();
        t.register("memcpy", "/lib/libc.so", 0x10, 0x10);
        assert!(t.by_name("memcpy").is_some());
        assert!(t.by_name("memmove").is_none());
    }

    #[test]
    fn line_map_resolution() {
        let m = LineMap::new();
        m.add(0x100, 0x10, "conv.cpp", 42);
        m.add(0x110, 0x10, "conv.cpp", 57);
        let (file, line) = m.resolve(0x105).unwrap();
        assert_eq!(file.as_ref(), "conv.cpp");
        assert_eq!(line, 42);
        assert_eq!(m.resolve(0x110).unwrap().1, 57);
        assert!(m.resolve(0x200).is_none());
    }
}
