//! Virtual time.
//!
//! The simulated substrates (GPU runtime, frameworks, dataloaders) advance a
//! shared [`VirtualClock`] instead of reading wall-clock time, which makes
//! every experiment deterministic and lets device timelines be modelled
//! precisely. Wall-clock overhead measurements (Figure 6a/6b) are taken
//! separately with `std::time::Instant` around real profiler work.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A point (or span) in virtual time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TimeNs(pub u64);

impl TimeNs {
    /// Zero time.
    pub const ZERO: TimeNs = TimeNs(0);

    /// Constructs from microseconds.
    pub fn from_us(us: u64) -> Self {
        TimeNs(us * 1_000)
    }

    /// Constructs from milliseconds.
    pub fn from_ms(ms: u64) -> Self {
        TimeNs(ms * 1_000_000)
    }

    /// Constructs from seconds (fractional allowed).
    pub fn from_secs_f64(secs: f64) -> Self {
        TimeNs((secs * 1e9).round().max(0.0) as u64)
    }

    /// Nanoseconds as `u64`.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds as `f64`.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: TimeNs) -> TimeNs {
        TimeNs(self.0.saturating_sub(other.0))
    }

    /// Scales a span by a factor (used by cost models).
    pub fn scale(self, factor: f64) -> TimeNs {
        TimeNs((self.0 as f64 * factor).round().max(0.0) as u64)
    }
}

impl Add for TimeNs {
    type Output = TimeNs;

    fn add(self, rhs: TimeNs) -> TimeNs {
        TimeNs(self.0 + rhs.0)
    }
}

impl AddAssign for TimeNs {
    fn add_assign(&mut self, rhs: TimeNs) {
        self.0 += rhs.0;
    }
}

impl Sub for TimeNs {
    type Output = TimeNs;

    fn sub(self, rhs: TimeNs) -> TimeNs {
        TimeNs(self.0 - rhs.0)
    }
}

impl fmt::Display for TimeNs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", ns as f64 / 1e9)
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

/// A monotonically advancing shared virtual clock.
///
/// Cloneable handle (internally `Arc`), safe to advance from multiple
/// simulated threads.
///
/// # Examples
///
/// ```
/// use deepcontext_core::{TimeNs, VirtualClock};
///
/// let clock = VirtualClock::new();
/// clock.advance(TimeNs::from_us(5));
/// assert_eq!(clock.now(), TimeNs::from_us(5));
/// ```
#[derive(Debug, Clone, Default)]
pub struct VirtualClock {
    now: Arc<AtomicU64>,
}

impl VirtualClock {
    /// Creates a clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current virtual time.
    pub fn now(&self) -> TimeNs {
        TimeNs(self.now.load(Ordering::SeqCst))
    }

    /// Advances the clock by `span`, returning the new time.
    pub fn advance(&self, span: TimeNs) -> TimeNs {
        TimeNs(self.now.fetch_add(span.0, Ordering::SeqCst) + span.0)
    }

    /// Moves the clock forward to at least `t`, returning the resulting
    /// time (no-op if the clock is already past `t`).
    pub fn advance_to(&self, t: TimeNs) -> TimeNs {
        let mut cur = self.now.load(Ordering::SeqCst);
        while cur < t.0 {
            match self
                .now
                .compare_exchange(cur, t.0, Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(_) => return t,
                Err(actual) => cur = actual,
            }
        }
        TimeNs(cur)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(TimeNs::from_us(3).as_nanos(), 3_000);
        assert_eq!(TimeNs::from_ms(2).as_nanos(), 2_000_000);
        assert!((TimeNs::from_secs_f64(1.5).as_secs_f64() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn arithmetic_and_scale() {
        let a = TimeNs(100);
        let b = TimeNs(40);
        assert_eq!(a + b, TimeNs(140));
        assert_eq!(a - b, TimeNs(60));
        assert_eq!(b.saturating_sub(a), TimeNs::ZERO);
        assert_eq!(a.scale(2.5), TimeNs(250));
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(TimeNs(12).to_string(), "12ns");
        assert_eq!(TimeNs(1_500).to_string(), "1.500us");
        assert_eq!(TimeNs(2_500_000).to_string(), "2.500ms");
        assert_eq!(TimeNs(3_200_000_000).to_string(), "3.200s");
    }

    #[test]
    fn clock_advances_monotonically() {
        let c = VirtualClock::new();
        assert_eq!(c.now(), TimeNs::ZERO);
        c.advance(TimeNs(10));
        c.advance(TimeNs(5));
        assert_eq!(c.now(), TimeNs(15));
        c.advance_to(TimeNs(12)); // behind: no-op
        assert_eq!(c.now(), TimeNs(15));
        c.advance_to(TimeNs(20));
        assert_eq!(c.now(), TimeNs(20));
    }

    #[test]
    fn clock_handles_are_shared() {
        let c = VirtualClock::new();
        let c2 = c.clone();
        c.advance(TimeNs(7));
        assert_eq!(c2.now(), TimeNs(7));
    }

    #[test]
    fn concurrent_advances_accumulate() {
        let c = VirtualClock::new();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.advance(TimeNs(1));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.now(), TimeNs(4000));
    }
}
