//! Regenerates **Figure 10**: U-Net hotspots on Nvidia vs AMD. On the
//! A100 the hotspot is `aten::conv2d` (expected); on the MI250 the shared
//! 512-thread norm template under-utilises the 64-wide wavefronts and
//! `aten::instance_norm` rises instead.

use deepcontext_bench::{deepcontext_profile, EngineKind};
use deepcontext_core::{FrameKind, MetricKind, OpPhase, ProfileDb};
use dl_models::{UNet, WorkloadOptions};
use sim_gpu::DeviceSpec;

fn operator_times(db: &ProfileDb) -> Vec<(String, f64)> {
    let cct = db.cct();
    let interner = cct.interner();
    let mut by_name: std::collections::HashMap<String, f64> = std::collections::HashMap::new();
    for node in cct.nodes_of_kind(FrameKind::Operator) {
        // Count forward operator nodes only: backward kernel time is
        // already included inclusively, because forward/backward
        // association stitches backward paths *under* the forward
        // operator's context.
        let frame = cct.node(node).frame();
        if let deepcontext_core::Frame::Operator { phase, .. } = frame {
            if *phase != OpPhase::Forward {
                continue;
            }
            let time = cct.node(node).metrics().sum(MetricKind::GpuTime);
            *by_name.entry(frame.short_label(&interner)).or_insert(0.0) += time;
        }
    }
    let mut rows: Vec<(String, f64)> = by_name.into_iter().collect();
    rows.sort_by(|a, b| b.1.total_cmp(&a.1));
    rows
}

fn show(platform: &str, db: &ProfileDb) {
    let total = db.cct().total(MetricKind::GpuTime);
    println!("\n{platform}: operator GPU-time ranking");
    for (name, time) in operator_times(db).into_iter().take(6) {
        let bar = "#".repeat(((time / total) * 50.0).round() as usize);
        println!("  {:<24}{:>7.1}%  {}", name, time / total * 100.0, bar);
    }
}

fn main() {
    println!("Figure 10: U-Net hotspots, AMD vs Nvidia");
    let opts = WorkloadOptions::default();
    let nv = deepcontext_profile(&DeviceSpec::a100_sxm(), &UNet, &opts, EngineKind::Eager, 3);
    let amd = deepcontext_profile(&DeviceSpec::mi250(), &UNet, &opts, EngineKind::Eager, 3);
    show("Nvidia A100 (expected hotspot: aten::conv2d)", &nv);
    show("AMD MI250 (abnormal hotspot: aten::instance_norm)", &amd);

    let top = |db: &ProfileDb| {
        operator_times(db)
            .first()
            .map(|(n, _)| n.clone())
            .unwrap_or_default()
    };
    println!(
        "\ntop operator: nvidia={}, amd={} (paper: conv2d vs instance_norm)",
        top(&nv),
        top(&amd)
    );
}
