//! Deterministic fault injection for resilience testing.
//!
//! DeepContext's failure modes — a panicking pipeline worker, a stalled
//! channel, a flaky profile-store disk — must be *injectable and
//! regression-tested*, not discovered in production. This module is the
//! no-new-deps harness: a [`Failpoints`] registry parsed from a compact
//! spec string, checked at named injection sites across the workspace.
//! When no spec is set the registry is empty and every check is a single
//! `is_empty()` branch — the harness compiles to a no-op in practice.
//!
//! # Spec grammar
//!
//! A spec is a `;`-separated list of `name@trigger` clauses:
//!
//! | trigger       | behaviour                                              |
//! |---------------|--------------------------------------------------------|
//! | `first`       | fires on the 1st check of the site only                |
//! | `<N>`         | fires on the Nth check only (1-based)                  |
//! | `every<N>`    | fires on every Nth check                               |
//! | `shard<K>`    | fires on every check whose site argument equals `K`    |
//! | `always`      | fires on every check                                   |
//! | `p<F>`        | fires independently with probability `F` (seeded PRNG) |
//!
//! Example: `worker_panic@3;store_io_err@first;queue_stall@shard2`.
//!
//! The process-global registry is parsed once from the
//! `DEEPCONTEXT_FAILPOINTS` environment variable (see [`from_env`]);
//! probabilistic triggers draw from a per-point xorshift64* stream
//! seeded by `DEEPCONTEXT_FAILPOINT_SEED`, so a run is reproducible from
//! its spec + seed alone. Tests construct instance-scoped registries
//! with [`Failpoints::parse`] and thread them through configuration
//! (e.g. `PipelineConfig::failpoints`) instead of mutating the process
//! environment, so concurrently running tests never contaminate each
//! other.
//!
//! What *happens* when a point fires is decided by the site, not the
//! spec: the worker-apply site panics, the store read/write sites
//! synthesize a transient [`std::io::Error`] (via [`Failpoints::io_error`]),
//! the channel-send / directory-bind / snapshot-fold sites stall briefly
//! (via [`Failpoints::stall_at`]) to shake out timing assumptions.
//!
//! [`from_env`]: Failpoints::from_env

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use std::time::Duration;

/// Well-known injection-site names, so call sites and CI specs agree on
/// spelling.
pub mod sites {
    /// Pipeline worker applying a message to its shard (fires → panic).
    pub const WORKER_PANIC: &str = "worker_panic";
    /// Producer-side bounded-channel send (fires → brief stall).
    pub const QUEUE_STALL: &str = "queue_stall";
    /// Correlation-directory bind (fires → brief stall).
    pub const DIR_BIND_STALL: &str = "dir_bind_stall";
    /// Incremental snapshot fold (fires → brief stall).
    pub const FOLD_STALL: &str = "fold_stall";
    /// `ProfileStore` write path (fires → synthetic transient IO error).
    pub const STORE_IO_ERR: &str = "store_io_err";
    /// `ProfileStore` read path (fires → synthetic transient IO error).
    pub const STORE_READ_ERR: &str = "store_read_err";
}

/// How long [`Failpoints::stall_at`] sleeps when its point fires: long
/// enough to perturb scheduling, short enough that a CI matrix run
/// barely notices.
const STALL: Duration = Duration::from_micros(200);

/// Default PRNG seed for probabilistic triggers when
/// `DEEPCONTEXT_FAILPOINT_SEED` is unset (the golden-ratio constant —
/// an arbitrary, documented, reproducible choice).
const DEFAULT_SEED: u64 = 0x9E37_79B9_7F4A_7C15;

#[derive(Debug)]
enum Trigger {
    First,
    Nth(u64),
    EveryNth(u64),
    Shard(u64),
    Always,
    Prob(f64),
}

#[derive(Debug)]
struct Point {
    name: String,
    trigger: Trigger,
    /// Checks observed at this point (fired or not).
    hits: AtomicU64,
    /// Times the point actually fired.
    fired: AtomicU64,
    /// Per-point xorshift64* state for `Trigger::Prob`.
    rng: AtomicU64,
}

/// A callback invoked every time a failpoint actually fires, with the
/// point's name and the numbered site (if any) it fired at. The incident
/// journal installs one so injected faults appear in the run's causal
/// record alongside the symptoms they provoked.
pub type FireObserver = Box<dyn Fn(&str, Option<u64>) + Send + Sync>;

/// A parsed fault-injection registry. Cloning is cheap (an `Arc` bump)
/// and clones share hit/fired counters, so a test can keep a handle to
/// the registry it injected and observe how often each point tripped.
#[derive(Clone)]
pub struct Failpoints {
    points: Arc<Vec<Point>>,
    /// Fire observer, shared by clones (replaceable; see
    /// [`observe_fires`]).
    ///
    /// [`observe_fires`]: Failpoints::observe_fires
    observer: Arc<RwLock<Option<FireObserver>>>,
}

impl std::fmt::Debug for Failpoints {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Failpoints")
            .field("points", &self.points)
            .field(
                "observed",
                &self.observer.read().map(|o| o.is_some()).unwrap_or(false),
            )
            .finish()
    }
}

impl PartialEq for Failpoints {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.points, &other.points)
    }
}

impl Eq for Failpoints {}

impl Default for Failpoints {
    fn default() -> Self {
        Failpoints::disabled()
    }
}

/// splitmix64: expands a seed into well-distributed per-point initial
/// PRNG states.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl Failpoints {
    /// The empty registry: every check is one `is_empty()` branch.
    pub fn disabled() -> Failpoints {
        Failpoints {
            points: Arc::new(Vec::new()),
            observer: Arc::new(RwLock::new(None)),
        }
    }

    /// Parses a spec with the default seed. See the [module docs](self)
    /// for the grammar; returns a human-readable error for a malformed
    /// clause.
    pub fn parse(spec: &str) -> Result<Failpoints, String> {
        Failpoints::parse_with_seed(spec, DEFAULT_SEED)
    }

    /// Parses a spec, seeding each probabilistic point's PRNG stream
    /// from `seed` (mixed per point, so `p`-triggers on different names
    /// draw independent streams).
    pub fn parse_with_seed(spec: &str, seed: u64) -> Result<Failpoints, String> {
        let mut points = Vec::new();
        for clause in spec.split(';') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            let (name, trigger) = clause
                .split_once('@')
                .ok_or_else(|| format!("failpoint clause `{clause}` is missing `@trigger`"))?;
            let name = name.trim();
            if name.is_empty() {
                return Err(format!("failpoint clause `{clause}` has an empty name"));
            }
            let trigger = parse_trigger(trigger.trim())
                .ok_or_else(|| format!("failpoint clause `{clause}` has an invalid trigger"))?;
            let rng = splitmix64(seed ^ splitmix64(points.len() as u64 + 1)).max(1);
            points.push(Point {
                name: name.to_string(),
                trigger,
                hits: AtomicU64::new(0),
                fired: AtomicU64::new(0),
                rng: AtomicU64::new(rng),
            });
        }
        Ok(Failpoints {
            points: Arc::new(points),
            observer: Arc::new(RwLock::new(None)),
        })
    }

    /// The process-global registry, parsed once from
    /// `DEEPCONTEXT_FAILPOINTS` (+ `DEEPCONTEXT_FAILPOINT_SEED`). A
    /// malformed spec degrades to the disabled registry — the harness is
    /// test infrastructure and must never take the workload down itself.
    pub fn from_env() -> Failpoints {
        static GLOBAL: OnceLock<Failpoints> = OnceLock::new();
        GLOBAL
            .get_or_init(|| {
                let spec = std::env::var("DEEPCONTEXT_FAILPOINTS").unwrap_or_default();
                let seed = std::env::var("DEEPCONTEXT_FAILPOINT_SEED")
                    .ok()
                    .and_then(|v| v.trim().parse::<u64>().ok())
                    .unwrap_or(DEFAULT_SEED);
                Failpoints::parse_with_seed(&spec, seed).unwrap_or_else(|_| Failpoints::disabled())
            })
            .clone()
    }

    /// Whether any point is registered. The negative is the hot-path
    /// guard every injection site starts with.
    pub fn is_active(&self) -> bool {
        !self.points.is_empty()
    }

    /// Installs a callback invoked (from the checking thread, with the
    /// point name and numbered site) every time a point actually fires.
    /// The latest installer wins — [`from_env`](Self::from_env) hands
    /// every caller one process-global registry, so the observer must
    /// follow the *current* run's journal rather than stay pinned to
    /// whichever profiler attached first. Clones share the observer just
    /// as they share counters.
    pub fn observe_fires(&self, observer: FireObserver) {
        if let Ok(mut slot) = self.observer.write() {
            *slot = Some(observer);
        }
    }

    /// Checks the named point with no site argument. `shard`-triggered
    /// points never fire through this entry.
    pub fn should_fire(&self, name: &str) -> bool {
        self.check(name, None)
    }

    /// Checks the named point at a numbered site (shard index, worker
    /// index, …) — the entry `shard<K>` triggers match against.
    pub fn should_fire_at(&self, name: &str, site: u64) -> bool {
        self.check(name, Some(site))
    }

    /// Checks + fires-as-a-stall: sleeps a few hundred microseconds when
    /// the point trips. The convenience wrapper for timing-perturbation
    /// sites (channel send, directory bind, snapshot fold).
    pub fn stall_at(&self, name: &str, site: u64) {
        if self.should_fire_at(name, site) {
            std::thread::sleep(STALL);
        }
    }

    /// Checks + fires-as-an-IO-error: returns a synthetic *transient*
    /// ([`std::io::ErrorKind::Interrupted`]) error when the point trips.
    /// The convenience wrapper for store read/write sites.
    pub fn io_error(&self, name: &str) -> Option<std::io::Error> {
        self.should_fire(name).then(|| {
            std::io::Error::new(
                std::io::ErrorKind::Interrupted,
                format!("failpoint: {name}"),
            )
        })
    }

    /// Checks observed at the named point so far (fired or not); `0`
    /// for an unregistered name.
    pub fn hits(&self, name: &str) -> u64 {
        self.find(name)
            .map(|p| p.hits.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Times the named point has actually fired; `0` for an
    /// unregistered name.
    pub fn fired(&self, name: &str) -> u64 {
        self.find(name)
            .map(|p| p.fired.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    fn find(&self, name: &str) -> Option<&Point> {
        // Linear scan: registries hold a handful of points and the
        // active path is gated by `is_active` anyway.
        self.points.iter().find(|p| p.name == name)
    }

    fn check(&self, name: &str, site: Option<u64>) -> bool {
        if self.points.is_empty() {
            return false;
        }
        let Some(point) = self.find(name) else {
            return false;
        };
        let hit = point.hits.fetch_add(1, Ordering::Relaxed) + 1;
        let fire = match point.trigger {
            Trigger::First => hit == 1,
            Trigger::Nth(n) => hit == n,
            Trigger::EveryNth(n) => hit % n == 0,
            Trigger::Shard(k) => site == Some(k),
            Trigger::Always => true,
            Trigger::Prob(p) => {
                // xorshift64*: race on the state only interleaves the
                // stream, it never degenerates it.
                let mut x = point.rng.load(Ordering::Relaxed);
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                point.rng.store(x, Ordering::Relaxed);
                let draw =
                    (x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64;
                draw < p
            }
        };
        if fire {
            point.fired.fetch_add(1, Ordering::Relaxed);
            if let Ok(slot) = self.observer.read() {
                if let Some(observer) = slot.as_ref() {
                    observer(name, site);
                }
            }
        }
        fire
    }
}

fn parse_trigger(trigger: &str) -> Option<Trigger> {
    if trigger.eq_ignore_ascii_case("first") {
        return Some(Trigger::First);
    }
    if trigger.eq_ignore_ascii_case("always") {
        return Some(Trigger::Always);
    }
    if let Some(rest) = trigger.strip_prefix("every") {
        let n = rest.trim().parse::<u64>().ok()?;
        return (n > 0).then_some(Trigger::EveryNth(n));
    }
    if let Some(rest) = trigger.strip_prefix("shard") {
        return Some(Trigger::Shard(rest.trim().parse::<u64>().ok()?));
    }
    if let Some(rest) = trigger.strip_prefix('p') {
        let p = rest.trim().parse::<f64>().ok()?;
        return (0.0..=1.0).contains(&p).then_some(Trigger::Prob(p));
    }
    let n = trigger.parse::<u64>().ok()?;
    (n > 0).then_some(Trigger::Nth(n))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_never_fires_and_counts_nothing() {
        let fp = Failpoints::disabled();
        assert!(!fp.is_active());
        assert!(!fp.should_fire(sites::WORKER_PANIC));
        assert!(!fp.should_fire_at(sites::QUEUE_STALL, 2));
        assert_eq!(fp.hits(sites::WORKER_PANIC), 0);
    }

    #[test]
    fn first_and_nth_triggers_fire_exactly_once() {
        let fp = Failpoints::parse("a@first;b@3").unwrap();
        assert!(fp.is_active());
        let a: Vec<bool> = (0..5).map(|_| fp.should_fire("a")).collect();
        assert_eq!(a, [true, false, false, false, false]);
        let b: Vec<bool> = (0..5).map(|_| fp.should_fire("b")).collect();
        assert_eq!(b, [false, false, true, false, false]);
        assert_eq!(fp.hits("a"), 5);
        assert_eq!(fp.fired("a"), 1);
        assert_eq!(fp.fired("b"), 1);
    }

    #[test]
    fn every_and_always_triggers_repeat() {
        let fp = Failpoints::parse("a@every2;b@always").unwrap();
        let a: Vec<bool> = (0..4).map(|_| fp.should_fire("a")).collect();
        assert_eq!(a, [false, true, false, true]);
        assert!((0..4).all(|_| fp.should_fire("b")));
    }

    #[test]
    fn shard_trigger_matches_the_site_argument_only() {
        let fp = Failpoints::parse("stall@shard2").unwrap();
        assert!(!fp.should_fire_at("stall", 0));
        assert!(fp.should_fire_at("stall", 2));
        assert!(fp.should_fire_at("stall", 2));
        // No site argument: a shard trigger cannot match.
        assert!(!fp.should_fire("stall"));
    }

    #[test]
    fn probabilistic_trigger_is_seed_reproducible() {
        let draws = |seed| {
            let fp = Failpoints::parse_with_seed("p@p0.5", seed).unwrap();
            (0..64).map(|_| fp.should_fire("p")).collect::<Vec<_>>()
        };
        assert_eq!(draws(7), draws(7), "same seed, same stream");
        assert_ne!(draws(7), draws(8), "different seed, different stream");
        let fired = draws(7).iter().filter(|f| **f).count();
        assert!((8..56).contains(&fired), "p0.5 of 64: got {fired}");
    }

    #[test]
    fn unknown_names_are_inert_even_in_an_active_registry() {
        let fp = Failpoints::parse("a@always").unwrap();
        assert!(!fp.should_fire("zzz"));
        assert_eq!(fp.hits("zzz"), 0);
    }

    #[test]
    fn io_error_helper_is_transient_and_named() {
        let fp = Failpoints::parse("store_io_err@first").unwrap();
        let err = fp.io_error(sites::STORE_IO_ERR).expect("fires first");
        assert_eq!(err.kind(), std::io::ErrorKind::Interrupted);
        assert!(err.to_string().contains("store_io_err"));
        assert!(fp.io_error(sites::STORE_IO_ERR).is_none());
    }

    #[test]
    fn malformed_specs_are_rejected_with_context() {
        for bad in ["a", "@always", "a@", "a@p1.5", "a@every0", "a@0"] {
            assert!(Failpoints::parse(bad).is_err(), "{bad} should not parse");
        }
        // Empty / whitespace specs are the disabled registry.
        assert!(!Failpoints::parse("").unwrap().is_active());
        assert!(!Failpoints::parse(" ; ").unwrap().is_active());
    }

    #[test]
    fn observer_sees_fires_only_and_latest_install_wins() {
        use std::sync::Mutex;
        type Seen = Arc<Mutex<Vec<(String, Option<u64>)>>>;
        let fp = Failpoints::parse("a@every2;b@shard1").unwrap();
        // The first observer is replaced before anything fires: with the
        // process-global env registry, each new run's journal must take
        // over from the previous run's.
        fp.observe_fires(Box::new(|_, _| panic!("replaced observer must not fire")));
        let seen: Seen = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        // Installed through a clone: clones share the observer slot.
        fp.clone().observe_fires(Box::new(move |name, site| {
            sink.lock().unwrap().push((name.to_string(), site));
        }));
        assert!(!fp.should_fire("a"));
        assert!(fp.should_fire("a"));
        assert!(fp.should_fire_at("b", 1));
        assert!(!fp.should_fire_at("b", 0));
        assert_eq!(
            *seen.lock().unwrap(),
            vec![("a".to_string(), None), ("b".to_string(), Some(1))],
            "observer fires exactly when the point does"
        );
    }

    #[test]
    fn clones_share_counters() {
        let fp = Failpoints::parse("a@always").unwrap();
        let clone = fp.clone();
        assert_eq!(fp, clone);
        assert!(clone.should_fire("a"));
        assert_eq!(fp.fired("a"), 1);
        assert_ne!(fp, Failpoints::parse("a@always").unwrap());
    }
}
