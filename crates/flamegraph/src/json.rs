//! JSON export shaped for WebView consumers (d3-flame-graph compatible):
//! `{"name": ..., "value": ..., "kind": ..., "children": [...]}`.

use crate::graph::{FlameGraph, FlameNode};

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl FlameGraph {
    /// Serialises the graph to a JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        write_node(self.root(), &mut out);
        out.push('\n');
        out
    }
}

fn write_node(node: &FlameNode, out: &mut String) {
    out.push_str(&format!(
        "{{\"name\":\"{}\",\"kind\":\"{}\",\"value\":{},\"hot\":{}",
        escape_json(&node.label),
        node.kind,
        node.value,
        node.hot
    ));
    if !node.issues.is_empty() {
        out.push_str(",\"issues\":[");
        for (idx, (severity, message)) in node.issues.iter().enumerate() {
            if idx > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"severity\":\"{severity}\",\"message\":\"{}\"}}",
                escape_json(message)
            ));
        }
        out.push(']');
    }
    if !node.children.is_empty() {
        out.push_str(",\"children\":[");
        for (idx, child) in node.children.iter().enumerate() {
            if idx > 0 {
                out.push(',');
            }
            write_node(child, out);
        }
        out.push(']');
    }
    out.push('}');
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepcontext_core::{CallingContextTree, Frame, MetricKind};

    #[test]
    fn json_has_expected_structure_and_escaping() {
        let mut cct = CallingContextTree::new();
        let i = cct.interner();
        let leaf = cct.insert_path(&[
            Frame::python("a.py", 1, "main", &i),
            Frame::gpu_kernel("kernel\"quoted\"", "m.so", 0x10, &i),
        ]);
        cct.attribute(leaf, MetricKind::GpuTime, 7.0);
        let json = FlameGraph::top_down(&cct, MetricKind::GpuTime).to_json();
        assert!(json.contains("\"name\":\"root\""));
        assert!(json.contains("\"value\":7"));
        assert!(json.contains("\"children\":["));
        assert!(json.contains("kernel\\\"quoted\\\""));
        assert!(json.contains("\"kind\":\"gpu_kernel\""));
        // Balanced braces/brackets.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
