//! Profile-store benchmark harness.
//!
//! Two claims of the persistent store are measured:
//!
//! * **Container throughput** — the versioned on-disk format
//!   round-trips (save + load) a profile with a recorded timeline fast
//!   enough that archiving every run is a non-event. Reported as
//!   intervals+nodes per second through a full save→load cycle.
//! * **Mapped-diff speedup** — [`ProfileDiff::compare_mapped`] renders
//!   call-path strings only for *changed* union nodes, so diffing a run
//!   against a baseline that mostly matches is cheaper than the
//!   label-path diff, which renders every context on both sides.
//!   Reported as `compare` time over `compare_mapped` time on a large
//!   profile pair differing in a small subtree.

use std::sync::Arc;
use std::time::Instant;

use deepcontext_analyzer::ProfileDiff;
use deepcontext_core::{
    CallingContextTree, Frame, Interval, IntervalKind, MetricKind, ProfileDb, ProfileMeta,
    StoredTimeline, TimeNs, TrackKey,
};

/// One measured store scenario.
#[derive(Debug, Clone)]
pub struct StorePoint {
    /// Save+load round trips per second of the container.
    pub save_load_events_per_sec: f64,
    /// Serialized container size in bytes.
    pub container_bytes: usize,
    /// Label-path diff time, nanoseconds.
    pub full_diff_ns: f64,
    /// Mapped diff time, nanoseconds.
    pub mapped_diff_ns: f64,
    /// Changed entries the mapped diff reported.
    pub changed_entries: usize,
}

impl StorePoint {
    /// `compare` over `compare_mapped` wall time.
    pub fn warm_diff_speedup(&self) -> f64 {
        self.full_diff_ns / self.mapped_diff_ns
    }
}

/// Builds a synthetic profile shaped like a real run: `hot_scopes ×
/// ops_per_scope` three-deep contexts with GPU time, plus a recorded
/// timeline of `intervals` kernel executions spread over 2 devices × 3
/// streams, every interval resolving a name and a context.
pub fn build_profile(hot_scopes: usize, ops_per_scope: usize, intervals: usize) -> ProfileDb {
    let mut cct = CallingContextTree::new();
    let interner = cct.interner();
    let mut leaves = Vec::with_capacity(hot_scopes * ops_per_scope);
    for scope in 0..hot_scopes {
        for op in 0..ops_per_scope {
            let leaf = cct.insert_path(&[
                Frame::python("train.py", 10 + scope as u32, "step", &interner),
                Frame::operator(&format!("aten::op{op}"), &interner),
                Frame::gpu_kernel(
                    &format!("kernel_{scope}_{op}"),
                    "module.so",
                    0x1000 + (scope * ops_per_scope + op) as u64,
                    &interner,
                ),
            ]);
            cct.attribute(leaf, MetricKind::GpuTime, 1.0 + (op as f64));
            leaves.push(leaf);
        }
    }

    let name_syms: Vec<_> = (0..8)
        .map(|i| interner.intern(&format!("kernel_{i}")))
        .collect();
    let table_len = name_syms.iter().map(|s| s.index()).max().unwrap() as usize + 1;
    let mut names: Vec<Arc<str>> = vec![Arc::from(""); table_len];
    for sym in &name_syms {
        names[sym.index() as usize] = interner.resolve(*sym);
    }
    let ivs: Vec<Interval> = (0..intervals)
        .map(|k| {
            let branch = k % 6;
            let start = TimeNs((k / 6) as u64 * 300 + (branch as u64) * 40);
            Interval {
                track: TrackKey {
                    device: (branch as u32) % 2,
                    stream: (branch as u32) / 2,
                },
                start,
                end: start + TimeNs(250),
                kind: IntervalKind::Kernel,
                name: name_syms[k % name_syms.len()],
                correlation: k as u64 + 1,
                context: Some(leaves[k % leaves.len()]),
            }
        })
        .collect();
    let window_end = ivs.last().map_or(TimeNs(0), |iv| iv.end + TimeNs(500));
    let timeline = StoredTimeline {
        recorded: ivs.len() as u64,
        dropped: 0,
        intervals: ivs,
        names,
        window: Some((TimeNs(0), window_end)),
    };

    ProfileDb::new(
        ProfileMeta {
            workload: "bench-store".into(),
            framework: "eager".into(),
            platform: "sim".into(),
            host: "bench-host".into(),
            model: "bench-v1".into(),
            iterations: 8,
            started: TimeNs(0),
            ended: window_end,
            ..Default::default()
        },
        cct,
    )
    .with_timeline(timeline)
}

/// A near-copy of `base` regressed in `changed_scopes` leading scopes:
/// the shape `compare_mapped` is built for — almost everything aligns
/// and only a small subtree needs rendering.
pub fn regress(base: &ProfileDb, changed_scopes: usize) -> ProfileDb {
    let mut cand = base.clone();
    let hot: Vec<_> = cand
        .cct()
        .dfs()
        .filter(|n| {
            cand.cct()
                .node(*n)
                .frame()
                .short_label(&cand.cct().interner())
                .starts_with("train.py:1")
        })
        .take(changed_scopes)
        .collect();
    for scope in hot {
        cand.cct_mut().attribute(scope, MetricKind::GpuTime, 100.0);
    }
    cand
}

/// Measures both store claims, best of `repeats`.
pub fn measure(db: &ProfileDb, cand: &ProfileDb, repeats: usize) -> StorePoint {
    let events = db.timeline().map_or(0, |t| t.interval_count()) + db.cct().node_count();
    let mut buf = Vec::new();
    db.save(&mut buf).expect("save");
    let container_bytes = buf.len();

    let mut best_round_trip = f64::INFINITY;
    for _ in 0..repeats.max(1) {
        let start = Instant::now();
        let mut buf = Vec::with_capacity(container_bytes);
        db.save(&mut buf).expect("save");
        let back = ProfileDb::load(&buf[..]).expect("load");
        let elapsed = start.elapsed().as_secs_f64();
        assert_eq!(back.cct().node_count(), db.cct().node_count());
        best_round_trip = best_round_trip.min(elapsed);
    }

    let mut full_diff_ns = f64::INFINITY;
    let mut mapped_diff_ns = f64::INFINITY;
    let mut changed_entries = 0usize;
    for _ in 0..repeats.max(1) {
        let start = Instant::now();
        let full = ProfileDiff::compare(db, cand, MetricKind::GpuTime);
        full_diff_ns = full_diff_ns.min(start.elapsed().as_nanos() as f64);
        assert!(!full.entries().is_empty());

        let start = Instant::now();
        let mapped = ProfileDiff::compare_mapped(db, cand, MetricKind::GpuTime);
        mapped_diff_ns = mapped_diff_ns.min(start.elapsed().as_nanos() as f64);
        changed_entries = mapped.entries().len();
    }

    StorePoint {
        save_load_events_per_sec: events as f64 / best_round_trip,
        container_bytes,
        full_diff_ns,
        mapped_diff_ns,
        changed_entries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_round_trips_and_diffs() {
        let base = build_profile(20, 10, 600);
        let cand = regress(&base, 2);
        let point = measure(&base, &cand, 1);
        assert!(point.save_load_events_per_sec > 0.0);
        assert!(point.container_bytes > 0);
        assert!(point.changed_entries > 0);
        assert!(
            point.changed_entries < base.cct().node_count() / 4,
            "regression stays a small subtree ({} of {})",
            point.changed_entries,
            base.cct().node_count()
        );
        assert!(point.full_diff_ns > 0.0 && point.mapped_diff_ns > 0.0);
    }

    #[test]
    fn built_profile_carries_a_resolvable_timeline() {
        let db = build_profile(4, 4, 60);
        let timeline = db.timeline().expect("timeline attached");
        assert_eq!(timeline.interval_count(), 60);
        for interval in &timeline.intervals {
            assert!(timeline.name_of(interval.name).is_some());
            assert!(interval.context.unwrap().index() < db.cct().node_count());
        }
        // And it survives its own container.
        let mut buf = Vec::new();
        db.save(&mut buf).unwrap();
        let back = ProfileDb::load(&buf[..]).unwrap();
        assert_eq!(back.timeline(), db.timeline());
    }
}
