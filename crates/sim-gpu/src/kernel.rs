//! Kernel descriptors and instruction profiles.

use std::sync::Arc;

use deepcontext_core::StallReason;

/// How a kernel touches device memory (drives achieved bandwidth).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MemoryPattern {
    /// Contiguous, coalesced loads/stores.
    #[default]
    Coalesced,
    /// Strided or gather/scatter access (NCHW statistics walks, index
    /// lookups): achieves a lower fraction of peak bandwidth, with a
    /// vendor-specific penalty.
    Strided,
}

/// Grid/block launch configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaunchConfig {
    /// Number of thread blocks (CTAs).
    pub grid: u32,
    /// Threads per block.
    pub block: u32,
}

impl LaunchConfig {
    /// Creates a launch configuration.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(grid: u32, block: u32) -> Self {
        assert!(grid > 0 && block > 0, "launch dimensions must be positive");
        LaunchConfig { grid, block }
    }

    /// Total threads launched.
    pub fn total_threads(&self) -> u64 {
        u64::from(self.grid) * u64::from(self.block)
    }
}

/// One synthetic instruction of a kernel's hot region.
///
/// `weight` is the relative share of kernel time spent at this PC;
/// `stall_mix` distributes that share across stall reasons (summing to
/// ≤ 1.0, remainder counts as issued).
#[derive(Debug, Clone, PartialEq)]
pub struct InstrInfo {
    /// PC relative to the kernel entry.
    pub pc: u64,
    /// Mnemonic, e.g. `FFMA`, `LDG.E`, `F2F.F32.F16`.
    pub opcode: String,
    /// Relative time weight (need not be normalised).
    pub weight: f64,
    /// Distribution of stall reasons at this PC.
    pub stall_mix: Vec<(StallReason, f64)>,
}

/// The sampled-instruction model of a kernel.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct InstructionProfile {
    instrs: Vec<InstrInfo>,
}

impl InstructionProfile {
    /// An empty profile (kernels without fine-grained data).
    pub fn empty() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Builds a profile from instructions.
    ///
    /// # Panics
    ///
    /// Panics if any weight is negative.
    pub fn new(instrs: Vec<InstrInfo>) -> Arc<Self> {
        assert!(
            instrs.iter().all(|i| i.weight >= 0.0),
            "instruction weights must be non-negative"
        );
        Arc::new(InstructionProfile { instrs })
    }

    /// A generic compute-bound profile: FMA-heavy with execution
    /// dependencies.
    pub fn compute_bound() -> Arc<Self> {
        Self::new(vec![
            InstrInfo {
                pc: 0x10,
                opcode: "FFMA".into(),
                weight: 0.7,
                stall_mix: vec![
                    (StallReason::ExecutionDependency, 0.2),
                    (StallReason::NotSelected, 0.1),
                ],
            },
            InstrInfo {
                pc: 0x20,
                opcode: "LDG.E".into(),
                weight: 0.2,
                stall_mix: vec![(StallReason::MemoryDependency, 0.6)],
            },
            InstrInfo {
                pc: 0x30,
                opcode: "BRA".into(),
                weight: 0.1,
                stall_mix: vec![(StallReason::InstructionFetch, 0.2)],
            },
        ])
    }

    /// A generic memory-bound profile: loads dominating with memory
    /// dependencies and throttling.
    pub fn memory_bound() -> Arc<Self> {
        Self::new(vec![
            InstrInfo {
                pc: 0x10,
                opcode: "LDG.E.128".into(),
                weight: 0.6,
                stall_mix: vec![
                    (StallReason::MemoryDependency, 0.7),
                    (StallReason::MemoryThrottle, 0.2),
                ],
            },
            InstrInfo {
                pc: 0x20,
                opcode: "STG.E.128".into(),
                weight: 0.3,
                stall_mix: vec![(StallReason::MemoryDependency, 0.5)],
            },
            InstrInfo {
                pc: 0x30,
                opcode: "IADD".into(),
                weight: 0.1,
                stall_mix: vec![(StallReason::ExecutionDependency, 0.2)],
            },
        ])
    }

    /// The paper's §6.7 data-conversion profile: non-vectorised
    /// `float<->half` conversion instructions stalled on math dependencies,
    /// plus constant-memory misses from per-CTA constant loads.
    pub fn cast_kernel() -> Arc<Self> {
        Self::new(vec![
            InstrInfo {
                pc: 0x10,
                opcode: "LDC".into(),
                weight: 0.3,
                stall_mix: vec![(StallReason::ConstantMemory, 0.8)],
            },
            InstrInfo {
                pc: 0x20,
                opcode: "F2F.F32.F16".into(),
                weight: 0.5,
                stall_mix: vec![(StallReason::MathDependency, 0.65)],
            },
            InstrInfo {
                pc: 0x30,
                opcode: "STG.E".into(),
                weight: 0.2,
                stall_mix: vec![(StallReason::MemoryDependency, 0.4)],
            },
        ])
    }

    /// The instructions.
    pub fn instrs(&self) -> &[InstrInfo] {
        &self.instrs
    }

    /// Sum of instruction weights.
    pub fn total_weight(&self) -> f64 {
        self.instrs.iter().map(|i| i.weight).sum()
    }

    /// Whether the profile has no instructions.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }
}

/// Everything the runtime needs to execute (simulate) one kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelDesc {
    /// Demangled kernel name.
    pub name: Arc<str>,
    /// Module ("library") providing the kernel.
    pub module: Arc<str>,
    /// Kernel entry address within the module.
    pub entry_pc: u64,
    /// Launch configuration.
    pub config: LaunchConfig,
    /// Floating-point work, FLOPs.
    pub flops: f64,
    /// Bytes read + written from device memory.
    pub bytes: f64,
    /// Registers per thread.
    pub registers_per_thread: u32,
    /// Shared memory per block, bytes.
    pub shared_mem_per_block: u64,
    /// Serialization multiplier (1.0 = none). Deterministic scatter
    /// kernels such as PyTorch's `indexing_backward_kernel` serialise
    /// threads that hit duplicate indices (paper §6.1), modelled as a
    /// direct duration multiplier.
    pub serialization_factor: f64,
    /// Memory access pattern.
    pub memory_pattern: MemoryPattern,
    /// Fine-grained instruction model.
    pub instruction_profile: Arc<InstructionProfile>,
}

impl KernelDesc {
    /// Creates a kernel descriptor with sane defaults (no serialization,
    /// 32 registers, no shared memory, empty instruction profile).
    pub fn new(name: &str, module: &str, entry_pc: u64, config: LaunchConfig) -> Self {
        KernelDesc {
            name: Arc::from(name),
            module: Arc::from(module),
            entry_pc,
            config,
            flops: 0.0,
            bytes: 0.0,
            registers_per_thread: 32,
            shared_mem_per_block: 0,
            serialization_factor: 1.0,
            memory_pattern: MemoryPattern::Coalesced,
            instruction_profile: InstructionProfile::empty(),
        }
    }

    /// Sets the arithmetic work.
    pub fn with_flops(mut self, flops: f64) -> Self {
        self.flops = flops;
        self
    }

    /// Sets the memory traffic.
    pub fn with_bytes(mut self, bytes: f64) -> Self {
        self.bytes = bytes;
        self
    }

    /// Sets register usage per thread.
    pub fn with_registers(mut self, regs: u32) -> Self {
        self.registers_per_thread = regs;
        self
    }

    /// Sets shared memory per block.
    pub fn with_shared_mem(mut self, bytes: u64) -> Self {
        self.shared_mem_per_block = bytes;
        self
    }

    /// Sets the serialization multiplier.
    ///
    /// # Panics
    ///
    /// Panics if `factor < 1.0`.
    pub fn with_serialization(mut self, factor: f64) -> Self {
        assert!(factor >= 1.0, "serialization factor must be >= 1.0");
        self.serialization_factor = factor;
        self
    }

    /// Sets the memory access pattern.
    pub fn with_memory_pattern(mut self, pattern: MemoryPattern) -> Self {
        self.memory_pattern = pattern;
        self
    }

    /// Sets the instruction profile.
    pub fn with_profile(mut self, profile: Arc<InstructionProfile>) -> Self {
        self.instruction_profile = profile;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn launch_config_totals() {
        let c = LaunchConfig::new(128, 256);
        assert_eq!(c.total_threads(), 128 * 256);
    }

    #[test]
    #[should_panic(expected = "dimensions must be positive")]
    fn zero_grid_panics() {
        LaunchConfig::new(0, 128);
    }

    #[test]
    fn builder_chain_sets_fields() {
        let k = KernelDesc::new(
            "sgemm",
            "libtorch_cuda.so",
            0x100,
            LaunchConfig::new(64, 256),
        )
        .with_flops(1e9)
        .with_bytes(4e6)
        .with_registers(96)
        .with_shared_mem(48 * 1024)
        .with_serialization(3.0)
        .with_profile(InstructionProfile::compute_bound());
        assert_eq!(k.name.as_ref(), "sgemm");
        assert_eq!(k.flops, 1e9);
        assert_eq!(k.bytes, 4e6);
        assert_eq!(k.registers_per_thread, 96);
        assert_eq!(k.shared_mem_per_block, 48 * 1024);
        assert_eq!(k.serialization_factor, 3.0);
        assert!(!k.instruction_profile.is_empty());
    }

    #[test]
    #[should_panic(expected = "serialization factor")]
    fn sub_unity_serialization_panics() {
        KernelDesc::new("k", "m", 0, LaunchConfig::new(1, 32)).with_serialization(0.5);
    }

    #[test]
    fn canned_profiles_have_expected_stalls() {
        use deepcontext_core::StallReason;
        let cast = InstructionProfile::cast_kernel();
        let has_const = cast.instrs().iter().any(|i| {
            i.stall_mix
                .iter()
                .any(|(r, _)| *r == StallReason::ConstantMemory)
        });
        let has_math = cast.instrs().iter().any(|i| {
            i.stall_mix
                .iter()
                .any(|(r, _)| *r == StallReason::MathDependency)
        });
        assert!(has_const && has_math);
        assert!(cast.total_weight() > 0.0);
    }
}
