//! Emits `BENCH_ingestion.json`: the sharded-vs-single-lock ingestion
//! throughput matrix at 1/2/4/8 producer threads, so future changes to
//! the hot path have a perf trajectory to compare against.
//!
//! The baseline is a faithful reproduction of the pre-refactor pipeline
//! (global tree mutex + correlation mutex per record, `Vec`-scan prune);
//! the contender is the sharded sink the profiler now uses by default.
//!
//! Run from the repo root: `cargo run --release -p deepcontext-bench
//! --bin bench_ingestion`.

use std::io::Write;

use deepcontext_bench::ingestion::{throughput_matrix, IngestionPoint, SinkKind, BATCH};

const OPS_PER_THREAD: usize = 30_000;
const REPEATS: usize = 5;

fn point_for(points: &[IngestionPoint], threads: usize, kind: SinkKind) -> &IngestionPoint {
    points
        .iter()
        .find(|p| p.threads == threads && p.kind == kind)
        .expect("measured point")
}

fn main() {
    let thread_counts = [1usize, 2, 4, 8];
    let kinds = [SinkKind::SingleLock, SinkKind::Sharded(16)];
    eprintln!(
        "measuring ingestion throughput ({OPS_PER_THREAD} events/thread, best of {REPEATS})..."
    );
    let points = throughput_matrix(&thread_counts, &kinds, OPS_PER_THREAD, REPEATS);

    let host_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"ingestion\",\n");
    json.push_str("  \"unit\": \"events_per_sec\",\n");
    json.push_str("  \"baseline\": \"pre-refactor single-lock pipeline\",\n");
    json.push_str(&format!("  \"ops_per_thread\": {OPS_PER_THREAD},\n"));
    json.push_str(&format!("  \"batch\": {BATCH},\n"));
    json.push_str(&format!("  \"repeats\": {REPEATS},\n"));
    json.push_str(&format!("  \"host_parallelism\": {host_threads},\n"));
    json.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        let sep = if i + 1 == points.len() { "" } else { "," };
        json.push_str(&format!(
            "    {{\"threads\": {}, \"sink\": \"{}\", \"events_per_sec\": {:.0}}}{}\n",
            p.threads,
            p.kind.label(),
            p.events_per_sec,
            sep
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"speedup_sharded_vs_single_lock\": {\n");
    for (i, &threads) in thread_counts.iter().enumerate() {
        let single = point_for(&points, threads, SinkKind::SingleLock).events_per_sec;
        let sharded = point_for(&points, threads, SinkKind::Sharded(16)).events_per_sec;
        let sep = if i + 1 == thread_counts.len() {
            ""
        } else {
            ","
        };
        json.push_str(&format!(
            "    \"{}t\": {:.2}{}\n",
            threads,
            sharded / single,
            sep
        ));
    }
    json.push_str("  }\n");
    json.push_str("}\n");

    std::fs::File::create("BENCH_ingestion.json")
        .and_then(|mut f| f.write_all(json.as_bytes()))
        .expect("write BENCH_ingestion.json");
    print!("{json}");

    let single_8 = point_for(&points, 8, SinkKind::SingleLock).events_per_sec;
    let sharded_8 = point_for(&points, 8, SinkKind::Sharded(16)).events_per_sec;
    eprintln!(
        "8-thread speedup: {:.2}x (sharded {:.0}/s vs single-lock {:.0}/s)",
        sharded_8 / single_8,
        sharded_8,
        single_8
    );
}
