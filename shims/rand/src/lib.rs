//! Offline stand-in for the `rand` crate.
//!
//! Provides the deterministic subset this workspace needs: a seedable
//! small PRNG (`rngs::SmallRng`, xorshift64*) and `Rng::gen_range` over
//! integer and float ranges. Distribution quality is adequate for the
//! simulation's weighted sampling; it makes no cryptographic claims.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Types that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds an RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling helpers over a random generator.
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from `range` (half-open).
    fn gen_range<T: SampleRange>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample(self, range)
    }

    /// A uniformly random boolean with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self, 0.0..1.0) < p
    }
}

/// Types uniformly sampleable from a `Range` by [`Rng::gen_range`].
pub trait SampleRange: PartialOrd + Copy {
    /// Draws one value in `[range.start, range.end)`.
    fn sample<R: Rng>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleRange for $t {
            fn sample<R: Rng>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "empty range");
                let span = (range.end as u128).wrapping_sub(range.start as u128);
                let r = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (range.start as u128).wrapping_add(r) as $t
            }
        }
    )*};
}

impl_sample_int!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange for $t {
            fn sample<R: Rng>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "empty range");
                let span = (range.end as i128 - range.start as i128) as u128;
                let r = (rng.next_u64() as u128) % span;
                (range.start as i128 + r as i128) as $t
            }
        }
    )*};
}

impl_sample_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleRange for f64 {
    fn sample<R: Rng>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "empty range");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        range.start + unit * (range.end - range.start)
    }
}

impl SampleRange for f32 {
    fn sample<R: Rng>(rng: &mut R, range: Range<Self>) -> Self {
        f64::sample(rng, range.start as f64..range.end as f64) as f32
    }
}

/// Named RNG implementations (mirrors `rand::rngs`).
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// A small fast deterministic generator (xorshift64* core, seeded via
    /// splitmix64 so that small/sequential seeds decorrelate).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 step guarantees a non-zero, well-mixed state.
            let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            SmallRng { state: z | 1 }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.state = x;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_runs_are_reproducible() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn float_range_stays_in_bounds_and_covers() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut lo_half = 0;
        for _ in 0..1000 {
            let v = rng.gen_range(2.0..4.0);
            assert!((2.0..4.0).contains(&v));
            if v < 3.0 {
                lo_half += 1;
            }
        }
        // Roughly uniform: both halves are hit a lot.
        assert!(lo_half > 300 && lo_half < 700, "{lo_half}");
    }

    #[test]
    fn int_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v: u32 = rng.gen_range(5u32..8);
            assert!((5..8).contains(&v));
        }
        let v: i32 = rng.gen_range(-3i32..3);
        assert!((-3..3).contains(&v));
    }
}
