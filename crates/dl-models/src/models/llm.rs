//! LLM inference workloads: Llama3-8B, Gemma-7B, nanoGPT.
//!
//! These are the small-kernel-dominated workloads: a decode step launches
//! hundreds of tiny kernels (per-layer norms, casts, skinny matmuls), so
//! per-launch profiling overhead is most visible here (the tall bars of
//! Figure 6) and the `aten::to` casts inside RMSNorm are the target of
//! the §6.7 fine-grained stall analysis.

use dl_framework::{DType, FrameworkError, Op, OpKind, TensorMeta};

use super::linear;
use crate::{ModelCtx, Workload};

/// Shared decoder-block emitter for the three LLMs.
struct DecoderSpec {
    layers: usize,
    dim: usize,
    kv_len: usize,
    hidden_mult: usize,
    activation: OpKind,
    source_file: &'static str,
    /// Whether norms are RMSNorm with explicit `aten::to` casts (the
    /// Llama/Gemma pattern from the HuggingFace implementation).
    casts_in_norm: bool,
}

fn rms_norm_with_casts(
    ctx: &mut ModelCtx<'_>,
    x: &TensorMeta,
    file: &'static str,
) -> Result<TensorMeta, FrameworkError> {
    let _scope = ctx.scope(file, 69, "LlamaRMSNorm.forward");
    if ctx.opts.vectorized_cast {
        // The §6.7 fix: conversions fused into the norm kernel.
        ctx.op(Op::new(OpKind::RmsNorm), std::slice::from_ref(x))
    } else {
        // hidden_states.to(torch.float32) ... then back: two standalone
        // cast kernels around the norm.
        let up = ctx.op(
            Op::new(OpKind::Cast).with_target_dtype(DType::F32),
            std::slice::from_ref(x),
        )?;
        let normed = ctx.op(Op::new(OpKind::RmsNorm), &[up])?;
        ctx.op(Op::new(OpKind::Cast).with_target_dtype(x.dtype), &[normed])
    }
}

fn decode_step(ctx: &mut ModelCtx<'_>, spec: &DecoderSpec) -> Result<(), FrameworkError> {
    let _model = ctx.scope(spec.source_file, 10, "generate_next_token");
    let batch = ctx.opts.scale;
    let dtype = ctx.opts.precision;
    let mut hidden = TensorMeta::new([batch, 1, spec.dim]).with_dtype(dtype);

    for layer in 0..spec.layers {
        let _scope = ctx.scope(spec.source_file, 100 + layer as u32, "decoder_layer");
        // Pre-attention norm.
        let normed = if spec.casts_in_norm {
            rms_norm_with_casts(ctx, &hidden, spec.source_file)?
        } else {
            ctx.op(Op::new(OpKind::LayerNorm), &[hidden.clone()])?
        };
        // Attention over the KV cache.
        let att = {
            let _att = ctx.scope(spec.source_file, 140 + layer as u32, "attention");
            let q = linear(ctx, &normed, spec.dim)?;
            let _k = linear(ctx, &normed, spec.dim)?;
            let _v = linear(ctx, &normed, spec.dim)?;
            // Rotary embedding: two tiny elementwise ops.
            let q = ctx.op(Op::new(OpKind::Mul), &[q.clone(), q])?;
            let q = ctx.op(Op::new(OpKind::Add), &[q.clone(), q])?;
            // Scores against the cached keys.
            let keys = TensorMeta::new([batch, spec.dim, spec.kv_len]).with_dtype(dtype);
            let scores = ctx.op(Op::new(OpKind::MatMul), &[q, keys])?;
            let probs = ctx.op(Op::new(OpKind::Softmax), &[scores])?;
            let values = TensorMeta::new([batch, spec.kv_len, spec.dim]).with_dtype(dtype);
            let out = ctx.op(Op::new(OpKind::MatMul), &[probs, values])?;
            linear(ctx, &out, spec.dim)?
        };
        hidden = ctx.op(Op::new(OpKind::Add), &[hidden, att])?;
        // Post-attention norm + gated MLP.
        let normed = if spec.casts_in_norm {
            rms_norm_with_casts(ctx, &hidden, spec.source_file)?
        } else {
            ctx.op(Op::new(OpKind::LayerNorm), &[hidden.clone()])?
        };
        let mlp_out = {
            let _mlp = ctx.scope(spec.source_file, 180 + layer as u32, "gated_mlp");
            let gate = linear(ctx, &normed, spec.dim * spec.hidden_mult)?;
            let up = linear(ctx, &normed, spec.dim * spec.hidden_mult)?;
            let act = ctx.op(Op::new(spec.activation), &[gate])?;
            let gated = ctx.op(Op::new(OpKind::Mul), &[act, up])?;
            linear(ctx, &gated, spec.dim)?
        };
        hidden = ctx.op(Op::new(OpKind::Add), &[hidden, mlp_out])?;
    }

    // Final norm + LM head.
    let _head = ctx.scope(spec.source_file, 220, "lm_head");
    let normed = ctx.op(Op::new(OpKind::LayerNorm), &[hidden])?;
    let logits = linear(ctx, &normed, 8192)?;
    ctx.op(Op::new(OpKind::Softmax), &[logits])?;
    Ok(())
}

/// Llama3-8B single-token decode with a sample prompt.
#[derive(Debug, Clone, Copy, Default)]
pub struct Llama3;

impl Workload for Llama3 {
    fn name(&self) -> &'static str {
        "llama3-8b"
    }

    fn dataset(&self) -> &'static str {
        "sample-prompt"
    }

    fn training(&self) -> bool {
        false
    }

    fn param_bytes(&self) -> u64 {
        64 << 20
    }

    fn iteration(&self, ctx: &mut ModelCtx<'_>) -> Result<(), FrameworkError> {
        decode_step(
            ctx,
            &DecoderSpec {
                layers: 16,
                dim: 512,
                kv_len: 128,
                hidden_mult: 4,
                activation: OpKind::Silu,
                source_file: "modeling_llama.py",
                casts_in_norm: true,
            },
        )
    }
}

/// Gemma-7B single-token decode with the same prompt.
#[derive(Debug, Clone, Copy, Default)]
pub struct Gemma;

impl Workload for Gemma {
    fn name(&self) -> &'static str {
        "gemma-7b"
    }

    fn dataset(&self) -> &'static str {
        "sample-prompt"
    }

    fn training(&self) -> bool {
        false
    }

    fn param_bytes(&self) -> u64 {
        56 << 20
    }

    fn iteration(&self, ctx: &mut ModelCtx<'_>) -> Result<(), FrameworkError> {
        decode_step(
            ctx,
            &DecoderSpec {
                layers: 14,
                dim: 512,
                kv_len: 128,
                hidden_mult: 6,
                activation: OpKind::Gelu,
                source_file: "modeling_gemma.py",
                casts_in_norm: true,
            },
        )
    }
}

/// nanoGPT single-token decode.
#[derive(Debug, Clone, Copy, Default)]
pub struct NanoGpt;

impl Workload for NanoGpt {
    fn name(&self) -> &'static str {
        "nanogpt"
    }

    fn dataset(&self) -> &'static str {
        "sample-prompt"
    }

    fn training(&self) -> bool {
        false
    }

    fn param_bytes(&self) -> u64 {
        8 << 20
    }

    fn iteration(&self, ctx: &mut ModelCtx<'_>) -> Result<(), FrameworkError> {
        decode_step(
            ctx,
            &DecoderSpec {
                layers: 6,
                dim: 256,
                kv_len: 64,
                hidden_mult: 4,
                activation: OpKind::Gelu,
                source_file: "nanogpt_model.py",
                casts_in_norm: false,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::testutil::smoke_eager;
    use crate::WorkloadOptions;

    #[test]
    fn llms_are_inference_workloads() {
        assert!(!Llama3.training());
        assert!(!Gemma.training());
        assert!(!NanoGpt.training());
    }

    #[test]
    fn llama_launches_hundreds_of_small_kernels() {
        let stats = smoke_eager(&Llama3, &WorkloadOptions::default());
        assert!(stats.kernels > 200, "got {}", stats.kernels);
        let mean_ns = stats.gpu_busy.as_nanos() / stats.kernels;
        assert!(mean_ns < 100_000, "mean kernel {mean_ns}ns is not small");
    }

    #[test]
    fn vectorized_cast_removes_standalone_cast_kernels() {
        let plain = smoke_eager(&Llama3, &WorkloadOptions::default());
        let fixed = smoke_eager(
            &Llama3,
            &WorkloadOptions {
                vectorized_cast: true,
                ..Default::default()
            },
        );
        // Two casts per norm, two norms per layer, 16 layers.
        assert_eq!(plain.kernels - fixed.kernels, 64);
    }

    #[test]
    fn precision_option_controls_dtype() {
        // fp8 moves fewer bytes: GPU busy time should not increase.
        let f16 = smoke_eager(&Llama3, &WorkloadOptions::default());
        let f8 = smoke_eager(
            &Llama3,
            &WorkloadOptions {
                precision: DType::F8,
                ..Default::default()
            },
        );
        assert!(f8.gpu_busy <= f16.gpu_busy);
    }

    #[test]
    fn gemma_and_nanogpt_scale_with_depth() {
        let gemma = smoke_eager(&Gemma, &WorkloadOptions::default());
        let nano = smoke_eager(&NanoGpt, &WorkloadOptions::default());
        assert!(gemma.kernels > nano.kernels);
    }
}
