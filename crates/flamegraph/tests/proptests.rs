//! Property tests for flame-graph construction and serialisation: value
//! conservation across views, folded-format round trips, and balanced
//! JSON for arbitrary trees.

use deepcontext_core::{CallingContextTree, Frame, MetricKind};
use deepcontext_flamegraph::{parse_folded, FlameGraph};
use proptest::prelude::*;

fn arb_tree() -> impl Strategy<Value = CallingContextTree> {
    // Random (path, value) sets with small alphabets to force sharing.
    prop::collection::vec(
        (
            prop::collection::vec(0u8..5, 1..6), // frame choices per level
            1u32..10_000,                        // integer value (exact folded round trip)
        ),
        1..30,
    )
    .prop_map(|paths| {
        let mut cct = CallingContextTree::new();
        let interner = cct.interner();
        for (levels, value) in paths {
            let frames: Vec<Frame> = levels
                .iter()
                .enumerate()
                .map(|(depth, c)| {
                    if depth + 1 == levels.len() {
                        Frame::gpu_kernel(
                            &format!("kernel{c}"),
                            "m.so",
                            0x100 + u64::from(*c) * 0x10,
                            &interner,
                        )
                    } else {
                        Frame::python("model.py", u32::from(*c), "layer", &interner)
                    }
                })
                .collect();
            let leaf = cct.insert_path(&frames);
            cct.attribute(leaf, MetricKind::GpuTime, f64::from(value));
        }
        cct
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn top_down_and_bottom_up_conserve_total(cct in arb_tree()) {
        let total = cct.total(MetricKind::GpuTime);
        let top = FlameGraph::top_down(&cct, MetricKind::GpuTime);
        let bottom = FlameGraph::bottom_up(&cct, MetricKind::GpuTime);
        prop_assert!((top.root().value - total).abs() < 1e-6 * total.max(1.0));
        prop_assert!((bottom.root().value - total).abs() < 1e-6 * total.max(1.0));
    }

    #[test]
    fn children_never_exceed_parent(cct in arb_tree()) {
        fn check(node: &deepcontext_flamegraph::FlameNode) -> bool {
            let child_sum: f64 = node.children.iter().map(|c| c.value).sum();
            child_sum <= node.value * (1.0 + 1e-9)
                && node.children.iter().all(check)
        }
        let top = FlameGraph::top_down(&cct, MetricKind::GpuTime);
        prop_assert!(check(top.root()));
        let bottom = FlameGraph::bottom_up(&cct, MetricKind::GpuTime);
        prop_assert!(check(bottom.root()));
    }

    #[test]
    fn folded_round_trips_exactly(cct in arb_tree()) {
        let graph = FlameGraph::top_down(&cct, MetricKind::GpuTime);
        let folded = graph.to_folded();
        let parsed = parse_folded(&folded, MetricKind::GpuTime).unwrap();
        prop_assert_eq!(parsed.to_folded(), folded);
    }

    #[test]
    fn json_is_balanced_and_renderers_do_not_panic(cct in arb_tree()) {
        let mut graph = FlameGraph::top_down(&cct, MetricKind::GpuTime);
        graph.highlight_hotspots(0.25);
        let json = graph.to_json();
        prop_assert_eq!(json.matches('{').count(), json.matches('}').count());
        prop_assert_eq!(json.matches('[').count(), json.matches(']').count());
        let svg = graph.to_svg(&Default::default());
        prop_assert!(svg.trim_end().ends_with("</svg>"));
        let ascii = graph.to_ascii(&Default::default());
        prop_assert!(!ascii.is_empty());
    }
}
