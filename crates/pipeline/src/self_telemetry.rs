//! The pipeline's pre-registered self-telemetry instruments.
//!
//! Registration against the metrics registry takes a stripe lock, so it
//! happens exactly once — here, at sink construction — and the
//! instrumentation sites hold the returned `Arc` handles for the run.
//! A hot path observes a metric with one relaxed atomic add; the
//! disabled path is the absence of this whole struct (an `Option`
//! branch per site). Per-shard and per-worker series (queue depth,
//! busy/parked time) are registered by the asynchronous sink when it
//! learns its layout; everything mode-independent lives here.

use std::sync::Arc;

use deepcontext_core::{Interner, Sym};
use deepcontext_telemetry::{names, Gauge, Histogram, Telemetry, TelemetryConfig};

/// The instruments shared by both ingestion modes, plus the interned
/// display names the *self-timeline* intervals (worker batches,
/// producer flushes, snapshot folds on the reserved
/// `TrackKey::SELF_DEVICE` tracks) carry.
pub struct PipelineTelemetry {
    telemetry: Telemetry,
    self_timeline: bool,
    /// Shard-lock hold time on the attribution paths, nanoseconds.
    pub(crate) shard_lock_hold: Arc<Histogram>,
    /// Incremental snapshot fold latency, nanoseconds.
    pub(crate) fold_latency: Arc<Histogram>,
    /// Events per producer batch flush.
    pub(crate) flush_size: Arc<Histogram>,
    /// Producer batch-flush latency, nanoseconds.
    pub(crate) flush_latency: Arc<Histogram>,
    /// Approximate interner footprint, bytes.
    pub(crate) interner_bytes: Arc<Gauge>,
    /// Approximate timeline-ring footprint, bytes.
    pub(crate) ring_bytes: Arc<Gauge>,
    /// Display name of worker-batch self-intervals.
    pub(crate) worker_sym: Sym,
    /// Display name of producer-flush self-intervals.
    pub(crate) flush_sym: Sym,
    /// Display name of snapshot-fold self-intervals.
    pub(crate) fold_sym: Sym,
}

impl PipelineTelemetry {
    /// Builds the instrument bundle when `config` enables telemetry
    /// (`None` otherwise — the sink then stores no handle and every
    /// site's branch folds to the disabled path). Interval display
    /// names are interned through `interner` so self-intervals resolve
    /// through the same symbol table as workload intervals.
    pub fn from_config(
        config: &TelemetryConfig,
        interner: &Arc<Interner>,
    ) -> Option<Arc<PipelineTelemetry>> {
        let telemetry = Telemetry::from_config(config)?;
        Some(Arc::new(PipelineTelemetry {
            shard_lock_hold: telemetry.histogram(names::SHARD_LOCK_HOLD_NS, &[]),
            fold_latency: telemetry.histogram(names::FOLD_LATENCY_NS, &[]),
            flush_size: telemetry.histogram(names::FLUSH_SIZE, &[]),
            flush_latency: telemetry.histogram(names::FLUSH_LATENCY_NS, &[]),
            interner_bytes: telemetry.gauge(names::INTERNER_BYTES, &[]),
            ring_bytes: telemetry.gauge(names::TIMELINE_RING_BYTES, &[]),
            worker_sym: interner.intern("profiler worker batch"),
            flush_sym: interner.intern("profiler producer flush"),
            fold_sym: interner.intern("profiler snapshot fold"),
            self_timeline: config.self_timeline,
            telemetry,
        }))
    }

    /// The underlying registry handle (snapshot it for exports and
    /// health reports).
    pub fn handle(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Nanoseconds since the telemetry epoch — the time domain of every
    /// self-recorded latency and self-timeline interval.
    pub fn now_ns(&self) -> u64 {
        self.telemetry.now_ns()
    }

    /// Whether self-intervals should be recorded onto the reserved
    /// timeline track (in addition to the metrics).
    pub fn self_timeline_enabled(&self) -> bool {
        self.self_timeline
    }
}

impl std::fmt::Debug for PipelineTelemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PipelineTelemetry")
            .field("self_timeline", &self.self_timeline)
            .finish()
    }
}
