//! Assembled timelines and the analyses over them.
//!
//! A [`TimelineSnapshot`] is the read-side view of the recorded rings:
//! intervals grouped into per-`(device, stream)` [`Track`]s, each track
//! sorted by start time, with context ids remapped into the folded
//! master CCT. [`TimelineStats`] derives the latency metrics the
//! aggregate profile cannot express: per-device utilization over the
//! active span, the cross-stream overlap factor, and the idle gaps
//! between device work — each gap attributed to the CCT contexts of its
//! bounding launches, so an analyzer rule can point at the call path
//! that left the device idle.

use std::collections::BTreeMap;
use std::sync::Arc;

use deepcontext_core::{
    CallingContextTree, Interval, NodeId, StoredTimeline, Sym, TimeNs, TrackKey,
};

use crate::ring::TimelineCounters;

/// One `(device, stream)` swim-lane: its intervals sorted by
/// `(start, end, correlation)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Track {
    key: TrackKey,
    intervals: Vec<Interval>,
}

impl Track {
    /// The `(device, stream)` placement.
    pub fn key(&self) -> TrackKey {
        self.key
    }

    /// Intervals, start-sorted.
    pub fn intervals(&self) -> &[Interval] {
        &self.intervals
    }

    /// Sum of interval durations on this track (no union: one stream
    /// executes serially, so the sum *is* the track's busy time).
    pub fn busy(&self) -> TimeNs {
        TimeNs(self.intervals.iter().map(|iv| iv.duration().0).sum())
    }
}

/// An assembled timeline: every track recorded, plus the recording
/// counters at snapshot time.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TimelineSnapshot {
    tracks: Vec<Track>,
    counters: TimelineCounters,
    /// Precomputed at assembly time: snapshots are immutable, and every
    /// consumer of more than the raw tracks (both latency rules, the
    /// reports) wants these — computing once here keeps repeated
    /// [`stats`](Self::stats) calls free instead of re-sweeping the
    /// whole interval set per rule.
    stats: TimelineStats,
    /// The captured symbol table ([`Interner::snapshot`] of the interner
    /// the intervals were recorded through): interval names are interned
    /// [`Sym`] handles, and a snapshot with its names attached resolves
    /// them standalone — exporters index this table instead of holding
    /// the live interner. Empty when the producer attached none (names
    /// then resolve through the CCT's interner, or render as `sym#N`).
    ///
    /// [`Interner::snapshot`]: deepcontext_core::Interner::snapshot
    names: Vec<Arc<str>>,
    /// The run's wall-clock window `[start, end)`, when the producer
    /// attached one. Without it, idle analysis sees only
    /// `[first_start, last_end)` — device idle before the first launch
    /// and after the last completion is invisible. With it, those edges
    /// become measurable gaps.
    window: Option<(TimeNs, TimeNs)>,
}

impl TimelineSnapshot {
    /// Groups `intervals` into start-sorted tracks. Rings deliver
    /// per-shard insertion order; tracks sort by `(start, end,
    /// correlation)` so snapshots are deterministic regardless of which
    /// shard an interval travelled through.
    pub fn from_intervals(intervals: Vec<Interval>, counters: TimelineCounters) -> Self {
        let mut by_track: BTreeMap<TrackKey, Vec<Interval>> = BTreeMap::new();
        for interval in intervals {
            by_track.entry(interval.track).or_default().push(interval);
        }
        let tracks = by_track
            .into_iter()
            .map(|(key, mut intervals)| {
                intervals.sort_by_key(|iv| (iv.start, iv.end, iv.correlation));
                Track { key, intervals }
            })
            .collect();
        let mut snapshot = TimelineSnapshot {
            tracks,
            counters,
            stats: TimelineStats::default(),
            names: Vec::new(),
            window: None,
        };
        snapshot.stats = TimelineStats::compute(&snapshot);
        snapshot
    }

    /// Attaches the run's wall-clock window `[start, end)` and
    /// recomputes statistics under it: leading device idle
    /// (`[start, first launch)`) and trailing idle
    /// (`[last completion, end)`) become explicit [`Gap`]s, and
    /// [`DeviceStats::span`] extends to cover the window.
    pub fn with_window(mut self, start: TimeNs, end: TimeNs) -> Self {
        self.window = Some((start, end));
        self.stats = TimelineStats::compute(&self);
        self
    }

    /// The attached wall-clock window, if any.
    pub fn window(&self) -> Option<(TimeNs, TimeNs)> {
        self.window
    }

    /// Flattens the snapshot into its persistent form: the interval set,
    /// the captured symbol table, the counters and the window — the
    /// shape `ProfileDb` stores on disk.
    pub fn to_stored(&self) -> StoredTimeline {
        StoredTimeline {
            intervals: self
                .tracks
                .iter()
                .flat_map(|t| t.intervals.iter().copied())
                .collect(),
            names: self.names.clone(),
            recorded: self.counters.recorded,
            dropped: self.counters.dropped,
            window: self.window,
        }
    }

    /// Reassembles a snapshot from its persistent form: regroups the
    /// intervals into sorted tracks, reattaches the symbol table, and
    /// recomputes statistics (under the stored window, when present).
    pub fn from_stored(stored: &StoredTimeline) -> Self {
        let snapshot = TimelineSnapshot::from_intervals(
            stored.intervals.clone(),
            TimelineCounters {
                recorded: stored.recorded,
                dropped: stored.dropped,
            },
        )
        .with_names(stored.names.clone());
        match stored.window {
            Some((start, end)) => snapshot.with_window(start, end),
            None => snapshot,
        }
    }

    /// Attaches the symbol table interval names resolve against —
    /// [`Interner::snapshot`] of the recording session's interner, taken
    /// once per timeline snapshot (not per interval).
    ///
    /// [`Interner::snapshot`]: deepcontext_core::Interner::snapshot
    pub fn with_names(mut self, names: Vec<Arc<str>>) -> Self {
        self.names = names;
        self
    }

    /// The captured symbol table, in [`Sym`] index order (empty when none
    /// was attached).
    pub fn names(&self) -> &[Arc<str>] {
        &self.names
    }

    /// Resolves an interval name against the captured symbol table.
    /// `None` when no table was attached or the symbol is out of range
    /// (a foreign interner's handle).
    pub fn name_of(&self, sym: Sym) -> Option<&str> {
        self.names.get(sym.index() as usize).map(|s| s.as_ref())
    }

    /// All tracks, ordered by `(device, stream)`.
    pub fn tracks(&self) -> &[Track] {
        &self.tracks
    }

    /// The track for one placement, if anything ran there.
    pub fn track(&self, device: u32, stream: u32) -> Option<&Track> {
        self.tracks
            .iter()
            .find(|t| t.key.device == device && t.key.stream == stream)
    }

    /// Devices with at least one recorded interval, ascending.
    pub fn devices(&self) -> Vec<u32> {
        let mut devices: Vec<u32> = self.tracks.iter().map(|t| t.key.device).collect();
        devices.dedup();
        devices
    }

    /// Total live intervals across all tracks.
    pub fn interval_count(&self) -> usize {
        self.tracks.iter().map(|t| t.intervals.len()).sum()
    }

    /// Intervals recorded over the sink's lifetime (kept + evicted).
    pub fn recorded(&self) -> u64 {
        self.counters.recorded
    }

    /// Intervals evicted by ring overflow — when non-zero, the timeline
    /// is a trailing window of the run, not the whole run.
    pub fn dropped(&self) -> u64 {
        self.counters.dropped
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.tracks.is_empty()
    }

    /// Per-device utilization / overlap / idle-gap statistics
    /// (precomputed at assembly time; repeated calls are free).
    pub fn stats(&self) -> &TimelineStats {
        &self.stats
    }

    /// Renders the snapshot as Chrome Trace Format JSON (see
    /// [`chrome`](crate::chrome)). Pass the CCT the snapshot's context
    /// ids were resolved against to label every slice with its full call
    /// path; `None` still emits valid, loadable JSON without the paths.
    pub fn to_chrome_trace(&self, cct: Option<&CallingContextTree>) -> String {
        crate::chrome::to_chrome_trace(self, cct)
    }

    /// [`to_chrome_trace`](Self::to_chrome_trace) plus the incident
    /// journal: journaled events render as process-scoped instant
    /// markers on an `incidents` lane of the `profiler (self)` process
    /// (see [`chrome`](crate::chrome)).
    pub fn to_chrome_trace_with_journal(
        &self,
        cct: Option<&CallingContextTree>,
        journal: Option<&deepcontext_core::StoredJournal>,
    ) -> String {
        crate::chrome::to_chrome_trace_with_journal(self, cct, journal)
    }
}

/// One idle gap on a device: no stream of the device was executing in
/// `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gap {
    /// Gap start (the last prior interval's end).
    pub start: TimeNs,
    /// Gap end (the next interval's start).
    pub end: TimeNs,
    /// Context of the interval that finished last before the gap.
    pub before: Option<NodeId>,
    /// Context of the interval whose start closed the gap — the launch
    /// that arrived late, which is where idle-gap analysis points.
    pub after: Option<NodeId>,
}

impl Gap {
    /// Gap length.
    pub fn duration(&self) -> TimeNs {
        self.end.saturating_sub(self.start)
    }
}

/// Per-device timeline statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceStats {
    /// Device index.
    pub device: u32,
    /// Tracks (streams) with at least one interval.
    pub streams: usize,
    /// Earliest interval start on the device.
    pub first_start: TimeNs,
    /// Latest interval end on the device.
    pub last_end: TimeNs,
    /// Busy time: the union of all intervals across the device's
    /// streams (overlapping work counts once).
    pub busy: TimeNs,
    /// Summed time: interval durations added up (overlapping work counts
    /// per stream).
    pub summed: TimeNs,
    /// Idle gaps inside the active span, in time order. When a run
    /// window is attached, leading idle (`before: None`) and trailing
    /// idle (`after: None`) inside the window are included.
    pub gaps: Vec<Gap>,
    /// The run's wall-clock window, when the snapshot carried one.
    pub window: Option<(TimeNs, TimeNs)>,
}

impl DeviceStats {
    /// The active span: `[first_start, last_end)` without a window, the
    /// union of that and the run window with one — so utilization
    /// accounts for device idle at the run's edges.
    pub fn span(&self) -> TimeNs {
        match self.window {
            Some((ws, we)) => we
                .max(self.last_end)
                .saturating_sub(ws.min(self.first_start)),
            None => self.last_end.saturating_sub(self.first_start),
        }
    }

    /// Fraction of the active span the device was executing (0..=1).
    pub fn utilization(&self) -> f64 {
        let span = self.span().as_nanos();
        if span == 0 {
            return 0.0;
        }
        self.busy.as_nanos() as f64 / span as f64
    }

    /// Cross-stream overlap factor: `summed / busy`. Exactly 1.0 when
    /// the device's streams never execute concurrently (serialized);
    /// approaches the stream count under perfect overlap.
    pub fn overlap_factor(&self) -> f64 {
        let busy = self.busy.as_nanos();
        if busy == 0 {
            return 0.0;
        }
        self.summed.as_nanos() as f64 / busy as f64
    }

    /// Total idle time inside the active span (the sum of all gaps).
    pub fn idle(&self) -> TimeNs {
        TimeNs(self.gaps.iter().map(|g| g.duration().0).sum())
    }
}

/// Per-device statistics over one snapshot.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TimelineStats {
    /// One entry per device with recorded work, ascending device order.
    pub devices: Vec<DeviceStats>,
}

impl TimelineStats {
    /// Computes statistics with a line sweep per device: intervals from
    /// every stream of the device are merged start-sorted; maximal
    /// covered segments accumulate `busy`, and the spaces between them
    /// become [`Gap`]s bounded by the interval that finished last and
    /// the one that started next.
    ///
    /// The reserved self-telemetry device ([`TrackKey::SELF_DEVICE`]) is
    /// excluded: its intervals are timestamped on the telemetry clock,
    /// not the workload clock, so utilization/idle figures computed over
    /// them would be meaningless — and the latency rules must not flag
    /// the profiler's own bookkeeping lanes as an underutilized GPU.
    /// Chrome export still renders the self tracks.
    pub fn compute(snapshot: &TimelineSnapshot) -> TimelineStats {
        let mut devices = Vec::new();
        for device in snapshot.devices() {
            if device == TrackKey::SELF_DEVICE {
                continue;
            }
            let mut intervals: Vec<&Interval> = snapshot
                .tracks()
                .iter()
                .filter(|t| t.key().device == device)
                .flat_map(|t| t.intervals().iter())
                .collect();
            intervals.sort_by_key(|iv| (iv.start, iv.end, iv.correlation));
            let streams = snapshot
                .tracks()
                .iter()
                .filter(|t| t.key().device == device && !t.intervals().is_empty())
                .count();
            let first_start = intervals.first().map(|iv| iv.start).unwrap_or_default();
            let mut summed = 0u64;
            let mut busy = 0u64;
            let mut gaps = Vec::new();
            // Leading idle: the device sat unused from the run's start
            // until its first launch. `before: None` marks the run edge.
            if let Some((ws, _)) = snapshot.window {
                if let Some(first) = intervals.first() {
                    if first.start > ws {
                        gaps.push(Gap {
                            start: ws,
                            end: first.start,
                            before: None,
                            after: first.context,
                        });
                    }
                }
            }
            // The running covered segment and the interval whose end
            // currently bounds it (the "last to finish" before any gap).
            let mut cover_end = first_start;
            let mut closer: Option<&Interval> = None;
            for iv in &intervals {
                summed += iv.duration().0;
                if iv.start > cover_end {
                    gaps.push(Gap {
                        start: cover_end,
                        end: iv.start,
                        before: closer.and_then(|c| c.context),
                        after: iv.context,
                    });
                    busy += iv.duration().0;
                    cover_end = iv.end.max(cover_end);
                    closer = Some(iv);
                } else if iv.end > cover_end {
                    busy += (iv.end - cover_end).0;
                    cover_end = iv.end;
                    closer = Some(iv);
                }
            }
            // Trailing idle: from the device's last completion to the
            // run's end. `after: None` marks the run edge.
            if let Some((_, we)) = snapshot.window {
                if we > cover_end && !intervals.is_empty() {
                    gaps.push(Gap {
                        start: cover_end,
                        end: we,
                        before: closer.and_then(|c| c.context),
                        after: None,
                    });
                }
            }
            devices.push(DeviceStats {
                device,
                streams,
                first_start,
                last_end: cover_end,
                busy: TimeNs(busy),
                summed: TimeNs(summed),
                gaps,
                window: snapshot.window,
            });
        }
        TimelineStats { devices }
    }

    /// The statistics for one device, if it recorded anything.
    pub fn device(&self, device: u32) -> Option<&DeviceStats> {
        self.devices.iter().find(|d| d.device == device)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepcontext_core::{Interner, IntervalKind};
    use std::sync::OnceLock;

    fn iv(device: u32, stream: u32, start: u64, end: u64, corr: u64) -> Interval {
        static INTERNER: OnceLock<Arc<Interner>> = OnceLock::new();
        let interner = INTERNER.get_or_init(Interner::new);
        Interval {
            track: TrackKey { device, stream },
            start: TimeNs(start),
            end: TimeNs(end),
            kind: IntervalKind::Kernel,
            name: interner.intern(&format!("k{corr}")),
            correlation: corr,
            context: Some(NodeId::ROOT),
        }
    }

    fn snapshot(intervals: Vec<Interval>) -> TimelineSnapshot {
        let counters = TimelineCounters {
            recorded: intervals.len() as u64,
            dropped: 0,
        };
        TimelineSnapshot::from_intervals(intervals, counters)
    }

    #[test]
    fn tracks_are_grouped_and_start_sorted() {
        let snap = snapshot(vec![
            iv(0, 1, 50, 60, 3),
            iv(0, 0, 0, 10, 1),
            iv(0, 1, 5, 15, 2),
            iv(1, 0, 0, 5, 4),
        ]);
        assert_eq!(snap.tracks().len(), 3);
        assert_eq!(snap.devices(), vec![0, 1]);
        let t01 = snap.track(0, 1).expect("track (0,1)");
        let starts: Vec<u64> = t01.intervals().iter().map(|i| i.start.0).collect();
        assert_eq!(starts, vec![5, 50]);
        assert_eq!(t01.busy(), TimeNs(20));
        assert_eq!(snap.interval_count(), 4);
    }

    #[test]
    fn stats_union_overlap_and_gaps() {
        // Device 0: stream 0 runs [0,10), stream 1 runs [5,15) — overlap
        // [5,10) — then a gap [15,20) before stream 0 runs [20,30).
        let snap = snapshot(vec![
            iv(0, 0, 0, 10, 1),
            iv(0, 1, 5, 15, 2),
            iv(0, 0, 20, 30, 3),
        ]);
        let stats = snap.stats();
        let d = stats.device(0).expect("device 0");
        assert_eq!(d.streams, 2);
        assert_eq!(d.span(), TimeNs(30));
        assert_eq!(d.busy, TimeNs(25));
        assert_eq!(d.summed, TimeNs(30));
        assert!((d.utilization() - 25.0 / 30.0).abs() < 1e-12);
        assert!((d.overlap_factor() - 30.0 / 25.0).abs() < 1e-12);
        assert_eq!(d.gaps.len(), 1);
        let gap = d.gaps[0];
        assert_eq!((gap.start, gap.end), (TimeNs(15), TimeNs(20)));
        assert_eq!(d.idle(), TimeNs(5));
        // The gap is bounded by interval 2 (last to finish) and 3 (next
        // to start).
        assert_eq!(gap.before, Some(NodeId::ROOT));
        assert_eq!(gap.after, Some(NodeId::ROOT));
    }

    #[test]
    fn serialized_streams_have_overlap_factor_one() {
        let snap = snapshot(vec![
            iv(0, 0, 0, 10, 1),
            iv(0, 1, 10, 20, 2),
            iv(0, 0, 20, 30, 3),
        ]);
        let stats = snap.stats();
        let d = stats.device(0).expect("device 0");
        assert_eq!(d.overlap_factor(), 1.0);
        assert_eq!(d.utilization(), 1.0);
        assert!(d.gaps.is_empty());
    }

    #[test]
    fn nested_interval_does_not_double_count_busy() {
        // [0,100) fully contains [10,20): busy is 100, summed 110.
        let snap = snapshot(vec![iv(0, 0, 0, 100, 1), iv(0, 1, 10, 20, 2)]);
        let d = snap.stats().device(0).cloned().expect("device 0");
        assert_eq!(d.busy, TimeNs(100));
        assert_eq!(d.summed, TimeNs(110));
        assert!(d.gaps.is_empty());
    }

    #[test]
    fn empty_snapshot_has_no_stats() {
        let snap = snapshot(Vec::new());
        assert!(snap.is_empty());
        assert!(snap.stats().devices.is_empty());
    }

    #[test]
    fn window_exposes_leading_and_trailing_idle() {
        // Without a window only the interior gap [15,20) is visible.
        let intervals = vec![iv(0, 0, 10, 15, 1), iv(0, 0, 20, 30, 2)];
        let bare = snapshot(intervals.clone());
        assert_eq!(bare.stats().device(0).unwrap().gaps.len(), 1);
        assert_eq!(bare.stats().device(0).unwrap().span(), TimeNs(20));

        let snap = snapshot(intervals).with_window(TimeNs(0), TimeNs(50));
        assert_eq!(snap.window(), Some((TimeNs(0), TimeNs(50))));
        let d = snap.stats().device(0).unwrap();
        assert_eq!(d.gaps.len(), 3);
        let (lead, tail) = (d.gaps[0], d.gaps[2]);
        assert_eq!((lead.start, lead.end), (TimeNs(0), TimeNs(10)));
        assert_eq!(lead.before, None);
        assert_eq!(lead.after, Some(NodeId::ROOT));
        assert_eq!((tail.start, tail.end), (TimeNs(30), TimeNs(50)));
        assert_eq!(tail.before, Some(NodeId::ROOT));
        assert_eq!(tail.after, None);
        // Span and utilization stretch over the run window.
        assert_eq!(d.span(), TimeNs(50));
        assert_eq!(d.idle(), TimeNs(35));
        assert!((d.utilization() - 15.0 / 50.0).abs() < 1e-12);
        // first_start/last_end still report the interval extremes.
        assert_eq!((d.first_start, d.last_end), (TimeNs(10), TimeNs(30)));
    }

    #[test]
    fn window_flush_with_run_edges_adds_no_gaps() {
        let snap = snapshot(vec![iv(0, 0, 0, 10, 1)]).with_window(TimeNs(0), TimeNs(10));
        let d = snap.stats().device(0).unwrap();
        assert!(d.gaps.is_empty());
        assert_eq!(d.utilization(), 1.0);
    }

    #[test]
    fn stored_round_trip_preserves_tracks_names_and_window() {
        let names: Vec<Arc<str>> = vec![Arc::from("a"), Arc::from("b")];
        let snap = TimelineSnapshot::from_intervals(
            vec![iv(0, 0, 0, 10, 1), iv(1, 2, 5, 25, 2), iv(0, 1, 3, 7, 3)],
            TimelineCounters {
                recorded: 9,
                dropped: 6,
            },
        )
        .with_names(names)
        .with_window(TimeNs(0), TimeNs(40));
        let stored = snap.to_stored();
        assert_eq!(stored.interval_count(), 3);
        assert_eq!((stored.recorded, stored.dropped), (9, 6));
        let back = TimelineSnapshot::from_stored(&stored);
        assert_eq!(back, snap);
    }
}
