//! Regenerates **Table 3**: the seven case studies. Each case profiles
//! the unoptimised workload, shows the analyzer finding that motivates
//! the fix, applies the fix, and reports the speedup (virtual GPU /
//! end-to-end time, like the paper).
//!
//! ```text
//! cargo run --release -p deepcontext-bench --bin table3_case_studies -- [case ...]
//! ```
//!
//! Cases: `dlrm-index`, `gnn-index`, `unet-layout`, `unet-workers`,
//! `transformer-fusion`, `llama-stalls`, `unet-cta`, `jax-vs-pytorch`
//! (default: all).

use deepcontext_analyzer::Analyzer;
use deepcontext_bench::{deepcontext_profile, measure, EngineKind, ProfilerKind};
use dl_models::{DlrmSmall, Gnn, Llama3, TestBed, TransformerBig, UNet, Workload, WorkloadOptions};
use sim_gpu::DeviceSpec;

const ITERS: u32 = 5;

fn gpu_speedup(
    workload: &dyn Workload,
    before: &WorkloadOptions,
    after: &WorkloadOptions,
) -> (f64, f64, f64) {
    let nv = DeviceSpec::a100_sxm();
    let slow = measure(
        &nv,
        workload,
        before,
        EngineKind::Eager,
        ProfilerKind::None,
        ITERS,
    );
    let fast = measure(
        &nv,
        workload,
        after,
        EngineKind::Eager,
        ProfilerKind::None,
        ITERS,
    );
    let b = slow.stats.gpu_busy.as_secs_f64();
    let a = fast.stats.gpu_busy.as_secs_f64();
    (b, a, b / a)
}

fn wall_speedup(
    workload: &dyn Workload,
    before: &WorkloadOptions,
    after: &WorkloadOptions,
) -> (f64, f64, f64) {
    let nv = DeviceSpec::a100_sxm();
    let slow = measure(
        &nv,
        workload,
        before,
        EngineKind::Eager,
        ProfilerKind::None,
        ITERS,
    );
    let fast = measure(
        &nv,
        workload,
        after,
        EngineKind::Eager,
        ProfilerKind::None,
        ITERS,
    );
    let b = slow.stats.wall.as_secs_f64();
    let a = fast.stats.wall.as_secs_f64();
    (b, a, b / a)
}

fn analyzer_findings(workload: &dyn Workload, opts: &WorkloadOptions, rule: &str) -> Vec<String> {
    let db = deepcontext_profile(
        &DeviceSpec::a100_sxm(),
        workload,
        opts,
        EngineKind::Eager,
        3,
    );
    let report = Analyzer::with_default_rules().analyze(&db);
    report
        .by_rule(rule)
        .iter()
        .take(2)
        .map(|i| {
            format!(
                "    finding: {}\n    suggestion: {}",
                i.message, i.suggestion
            )
        })
        .collect()
}

fn case_dlrm_index() {
    println!("\n[dlrm-index] DLRM-small / Criteo — Forward/Backward Operator Analysis (client 3)");
    for f in analyzer_findings(&DlrmSmall, &WorkloadOptions::default(), "fwd-bwd") {
        println!("{f}");
    }
    let fixed = WorkloadOptions {
        use_index_select: true,
        ..Default::default()
    };
    let (b, a, s) = gpu_speedup(&DlrmSmall, &WorkloadOptions::default(), &fixed);
    println!("    optimization: replace aten::index with aten::index_select");
    println!("    GPU time {b:.3}s -> {a:.3}s  speedup {s:.2}x (paper: 73.2s -> 44.0s, 1.66x)");
}

fn case_gnn_index() {
    println!("\n[gnn-index] GNN / OGBG-MOLPCBA — Forward/Backward Operator Analysis (client 3)");
    let fixed = WorkloadOptions {
        use_index_select: true,
        ..Default::default()
    };
    let (b, a, s) = gpu_speedup(&Gnn, &WorkloadOptions::default(), &fixed);
    println!("    optimization: replace aten::index with aten::index_select");
    println!("    GPU time {b:.3}s -> {a:.3}s  speedup {s:.2}x (paper: 3.97s -> 3.71s, 1.07x)");
}

fn case_unet_layout() {
    println!("\n[unet-layout] UNet / fastMRI — Hotspot Identification (client 1)");
    for f in analyzer_findings(&UNet, &WorkloadOptions::default(), "hotspot") {
        println!("{f}");
    }
    let fixed = WorkloadOptions {
        channels_last: true,
        ..Default::default()
    };
    let (b, a, s) = gpu_speedup(&UNet, &WorkloadOptions::default(), &fixed);
    println!("    optimization: store tensors channels_last, avoid nchw<->nhwc conversions");
    println!("    GPU time {b:.3}s -> {a:.3}s  speedup {s:.2}x (paper: 54s -> 42s e2e, 1.28x)");
}

fn case_unet_workers() {
    println!("\n[unet-workers] UNet / fastMRI — CPU Latency Analysis (client 5)");
    for f in analyzer_findings(&UNet, &WorkloadOptions::default(), "cpu-latency") {
        println!("{f}");
    }
    let fixed = WorkloadOptions {
        dataloader_workers: 8,
        ..Default::default()
    };
    let (b, a, s) = wall_speedup(&UNet, &WorkloadOptions::default(), &fixed);
    println!("    optimization: match worker count (16 -> 8) to the 6 physical cores");
    println!("    end-to-end {b:.3}s -> {a:.3}s  speedup {s:.2}x (paper: 54s -> 47s, 1.15x)");
}

fn case_transformer_fusion() {
    println!("\n[transformer-fusion] Transformer-Big / WMT — Kernel Fusion Analysis (client 2)");
    for f in analyzer_findings(
        &TransformerBig,
        &WorkloadOptions::default(),
        "kernel-fusion",
    ) {
        println!("{f}");
    }
    let fixed = WorkloadOptions {
        fused_loss: true,
        ..Default::default()
    };
    let (b, a, s) = gpu_speedup(&TransformerBig, &WorkloadOptions::default(), &fixed);
    println!("    optimization: fuse the loss's softmax/copy/nll_loss kernels");
    println!(
        "    GPU time {b:.3}s -> {a:.3}s  speedup {s:.2}x (paper: 30.5s -> 23.9s GPU, 1.06x e2e)"
    );
}

fn case_llama_stalls() {
    println!("\n[llama-stalls] Llama3 inference — Fine-grained Stall Analysis (client 4)");
    let nv = DeviceSpec::a100_sxm();
    let bed_opts = WorkloadOptions::default();
    // Instruction sampling is needed for this analysis.
    let run = {
        use deepcontext_core::{Interner, ProfileMeta, TimeNs};
        use deepcontext_profiler::{Profiler, ProfilerConfig};
        use dlmonitor::DlMonitor;
        let bed = TestBed::new(nv);
        let monitor = DlMonitor::init(bed.env(), Interner::new());
        monitor.attach_framework(bed.eager().core().callbacks());
        monitor.attach_gpu(bed.gpu());
        let config = ProfilerConfig {
            instruction_sampling: Some(sim_gpu::SamplingConfig {
                period: TimeNs(500),
                max_samples_per_kernel: 1024,
            }),
            ..ProfilerConfig::deepcontext_native()
        };
        let prof = Profiler::attach(config, bed.env(), &monitor, bed.gpu());
        bed.run_eager(&Llama3, &bed_opts, 3).expect("run");
        prof.flush();
        prof.finish(ProfileMeta {
            workload: "llama3-8b".into(),
            framework: "eager".into(),
            platform: "nvidia-a100".into(),
            iterations: 3,
            ..Default::default()
        })
    };
    let report = Analyzer::with_default_rules().analyze(&run);
    let stalls = report.by_rule("fine-grained-stall");
    for issue in stalls.iter().take(3) {
        println!("    finding: {}", issue.message);
        println!("    suggestion: {}", issue.suggestion);
    }
    println!(
        "    (paper: constant-memory misses + math-dependency stalls in torch.to; N/A speedup)"
    );
}

fn case_unet_cta() {
    println!("\n[unet-cta] UNet on AMD vs Nvidia — Hotspot Identification (client 1)");
    let opts = WorkloadOptions::default();
    let nv = measure(
        &DeviceSpec::a100_sxm(),
        &UNet,
        &opts,
        EngineKind::Eager,
        ProfilerKind::None,
        ITERS,
    );
    let amd = measure(
        &DeviceSpec::mi250(),
        &UNet,
        &opts,
        EngineKind::Eager,
        ProfilerKind::None,
        ITERS,
    );
    println!(
        "    default 512-thread CTA template: NV GPU {:.3}s, AMD GPU {:.3}s ({:.2}x slower on AMD)",
        nv.stats.gpu_busy.as_secs_f64(),
        amd.stats.gpu_busy.as_secs_f64(),
        amd.stats.gpu_busy.as_secs_f64() / nv.stats.gpu_busy.as_secs_f64()
    );
    // Adjusting threads per CTA for the 64-wide wavefronts.
    let tuned = WorkloadOptions {
        norm_threads_per_block: Some(1024),
        ..Default::default()
    };
    let amd_tuned = measure(
        &DeviceSpec::mi250(),
        &UNet,
        &tuned,
        EngineKind::Eager,
        ProfilerKind::None,
        ITERS,
    );
    println!(
        "    1024-thread CTAs on AMD: {:.3}s ({:.2}x vs default) — adjust CTA size per architecture",
        amd_tuned.stats.gpu_busy.as_secs_f64(),
        amd.stats.gpu_busy.as_secs_f64() / amd_tuned.stats.gpu_busy.as_secs_f64()
    );
    println!("    (paper: warp 64 vs 32 halves CTA parallelism; N/A speedup)");
}

fn case_jax_vs_pytorch() {
    println!("\n[jax-vs-pytorch] DLRM/UNet/GNN/ResNet — Kernel Fusion Analysis (client 2)");
    let opts = WorkloadOptions::default();
    println!(
        "    {:<14}{:>14}{:>14}{:>12}{:>12}",
        "workload", "eager_kernels", "jit_kernels", "eager_gpu_s", "jit_gpu_s"
    );
    for name in ["dlrm-small", "unet", "gnn", "resnet"] {
        let w = dl_models::workload_by_name(name).expect("workload");
        let nv = DeviceSpec::a100_sxm();
        let eager = measure(
            &nv,
            w.as_ref(),
            &opts,
            EngineKind::Eager,
            ProfilerKind::None,
            ITERS,
        );
        let jit = measure(
            &nv,
            w.as_ref(),
            &opts,
            EngineKind::Jit,
            ProfilerKind::None,
            ITERS,
        );
        println!(
            "    {:<14}{:>14}{:>14}{:>12.3}{:>12.3}",
            name,
            eager.stats.kernels,
            jit.stats.kernels,
            eager.stats.gpu_busy.as_secs_f64(),
            jit.stats.gpu_busy.as_secs_f64()
        );
    }
    println!("    (paper: JAX consistently needs fewer kernels; >50% faster via XLA fusion)");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let all = [
        "dlrm-index",
        "gnn-index",
        "unet-layout",
        "unet-workers",
        "transformer-fusion",
        "llama-stalls",
        "unet-cta",
        "jax-vs-pytorch",
    ];
    let cases: Vec<&str> = if args.is_empty() {
        all.to_vec()
    } else {
        args.iter().map(String::as_str).collect()
    };
    println!("Table 3: Case Studies ({ITERS} iterations per measurement)");
    for case in cases {
        match case {
            "dlrm-index" => case_dlrm_index(),
            "gnn-index" => case_gnn_index(),
            "unet-layout" => case_unet_layout(),
            "unet-workers" => case_unet_workers(),
            "transformer-fusion" => case_transformer_fusion(),
            "llama-stalls" => case_llama_stalls(),
            "unet-cta" => case_unet_cta(),
            "jax-vs-pytorch" => case_jax_vs_pytorch(),
            other => eprintln!("unknown case: {other}"),
        }
    }
}
