//! The paper's evaluation workloads (§5).
//!
//! Ten deep learning workloads — the MLCommons AlgoPerf suite plus three
//! LLM inference workloads — expressed as framework-agnostic operator
//! programs that run unchanged on both the eager (PyTorch-like) and JIT
//! (JAX-like) engines:
//!
//! | Workload | Dataset (synthetic analogue) | Mode |
//! |---|---|---|
//! | Conformer | LibriSpeech | training |
//! | DLRM-small | Criteo 1TB | training |
//! | U-Net | fastMRI | training |
//! | GNN | OGBG-MOLPCBA | training |
//! | ResNet | ImageNet | training |
//! | ViT | ImageNet | training |
//! | Transformer-Big | WMT | training |
//! | Llama3-8B | sample prompt | inference |
//! | Gemma-7B | sample prompt | inference |
//! | nanoGPT | sample prompt | inference |
//!
//! Each workload carries the *operator and kernel mix* that drives the
//! paper's results: DLRM/GNN use `aten::index` lookups with duplicate-
//! heavy indices (§6.1), U-Net convolves channels-first tensors through
//! layout conversions and runs an oversubscribed data loader (§6.2,
//! §6.4), Transformer-Big computes its loss through three small kernels
//! (§6.3), and the LLMs launch many small kernels with `aten::to` casts
//! (§6.7, and the high-overhead points of Figure 6).
//!
//! [`WorkloadOptions`] expose the case-study optimisations
//! (index_select, channels_last, worker counts, fused loss, CTA sizes),
//! and [`TestBed`] runs any workload on either engine against any device.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod models;
mod sink;
mod testbed;

pub use models::{
    all_workloads, workload_by_name, Conformer, DlrmSmall, Gemma, Gnn, Llama3, MultiStream,
    NanoGpt, ResNet, TransformerBig, UNet, ViT,
};
pub use sink::{EagerSink, OpSink, TraceSink};
pub use testbed::{RunStats, TestBed};

use std::sync::Arc;

use dl_framework::{DType, DataLoaderConfig, FrameworkError, Op, PyScope, PythonSim, TensorMeta};
use sim_runtime::ThreadCtx;

/// Tunables implementing the paper's case-study optimisations.
#[derive(Debug, Clone)]
pub struct WorkloadOptions {
    /// §6.1: replace `aten::index` with `aten::index_select`.
    pub use_index_select: bool,
    /// §6.2: keep activations in channels_last to avoid conversions.
    pub channels_last: bool,
    /// §6.4: data-loader worker count (the paper's bug hard-codes 16).
    pub dataloader_workers: usize,
    /// §6.4: physical cores of the node (the paper's node has 6).
    pub physical_cores: usize,
    /// §6.3: fuse the loss's small kernels into one.
    pub fused_loss: bool,
    /// §6.7: use vectorized conversions (fuse `aten::to` into neighbours).
    pub vectorized_cast: bool,
    /// §6.5: threads-per-CTA for the norm kernel template (None = the
    /// Nvidia-tuned 512 shared by both vendors).
    pub norm_threads_per_block: Option<u32>,
    /// LLM inference precision.
    pub precision: DType,
    /// Batch-size multiplier (1 = test-friendly defaults).
    pub scale: usize,
}

impl Default for WorkloadOptions {
    fn default() -> Self {
        WorkloadOptions {
            use_index_select: false,
            channels_last: false,
            dataloader_workers: 16,
            physical_cores: 6,
            fused_loss: false,
            vectorized_cast: false,
            norm_threads_per_block: None,
            precision: DType::F16,
            scale: 1,
        }
    }
}

/// The execution context a workload emits its operators into: an
/// [`OpSink`] (eager engine or JIT tracer), the simulated CPython runtime
/// for source scopes, and the options.
pub struct ModelCtx<'a> {
    sink: &'a mut dyn OpSink,
    python: Arc<PythonSim>,
    thread: Arc<ThreadCtx>,
    /// Active options.
    pub opts: WorkloadOptions,
}

impl<'a> ModelCtx<'a> {
    /// Creates a context (used by [`TestBed`]; exposed for custom
    /// harnesses).
    pub fn new(
        sink: &'a mut dyn OpSink,
        python: Arc<PythonSim>,
        thread: Arc<ThreadCtx>,
        opts: WorkloadOptions,
    ) -> Self {
        ModelCtx {
            sink,
            python,
            thread,
            opts,
        }
    }

    /// Enters a simulated Python frame (model source code scope).
    pub fn scope(&self, file: &str, line: u32, function: &str) -> PyScope {
        self.python.frame(&self.thread, file, line, function)
    }

    /// Emits one operator.
    ///
    /// # Errors
    ///
    /// Propagates shape-inference or dispatch failures.
    pub fn op(&mut self, op: Op, inputs: &[TensorMeta]) -> Result<TensorMeta, FrameworkError> {
        self.sink.op(op, inputs)
    }

    /// Runs the backward pass (eager: autograd thread; JIT: synthesized
    /// reverse ops).
    ///
    /// # Errors
    ///
    /// Propagates backward dispatch failures.
    pub fn backward(&mut self) -> Result<(), FrameworkError> {
        self.sink.backward()
    }
}

/// One of the paper's evaluation workloads.
pub trait Workload: Send + Sync {
    /// Workload name (e.g. `dlrm-small`).
    fn name(&self) -> &'static str;

    /// Dataset the paper pairs it with.
    fn dataset(&self) -> &'static str;

    /// Whether this is a training workload (backward + optimizer) or
    /// inference.
    fn training(&self) -> bool;

    /// Approximate parameter bytes of the (scaled) model — the base
    /// memory the Figure 6c/6d overhead ratios are computed against.
    fn param_bytes(&self) -> u64;

    /// The input pipeline, if the workload uses one.
    fn dataloader(&self, _opts: &WorkloadOptions) -> Option<DataLoaderConfig> {
        None
    }

    /// How many streams per device this workload launches into. The
    /// harness pre-creates them on every device before running (streams
    /// beyond the default stream 0 do not exist until created).
    fn streams_per_device(&self) -> usize {
        1
    }

    /// Emits one iteration's forward pass (and loss, for training
    /// workloads). The harness invokes backward/optimizer around it.
    ///
    /// # Errors
    ///
    /// Propagates emission failures.
    fn iteration(&self, ctx: &mut ModelCtx<'_>) -> Result<(), FrameworkError>;
}
