//! Offline stand-in for the `crossbeam` crate.
//!
//! Only the `channel` module subset used by this workspace is provided:
//! `unbounded()` channels whose `Sender` is `Clone + Send` and whose
//! `Receiver` supports blocking `recv`. Implemented over `std::sync::mpsc`
//! with a mutex around the receiver so the handle is `Sync` like
//! crossbeam's.

#![forbid(unsafe_code)]

/// Multi-producer channels (crossbeam-channel API subset).
pub mod channel {
    use std::fmt;
    use std::sync::mpsc;
    use std::sync::{Arc, Mutex, PoisonError};

    /// Error returned by [`Sender::send`] when the channel is disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// The sending half of an unbounded channel.
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Sends a message, failing only if all receivers are gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0
                .send(value)
                .map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T>(Arc<Mutex<mpsc::Receiver<T>>>);

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .recv()
                .map_err(|_| RecvError)
        }

        /// Returns a message if one is ready, without blocking.
        pub fn try_recv(&self) -> Result<T, RecvError> {
            self.0
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .try_recv()
                .map_err(|_| RecvError)
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(Arc::new(Mutex::new(rx))))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_roundtrip() {
            let (tx, rx) = unbounded();
            tx.send(7).unwrap();
            assert_eq!(rx.recv(), Ok(7));
        }

        #[test]
        fn recv_errors_when_senders_dropped() {
            let (tx, rx) = unbounded::<i32>();
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn cloned_senders_feed_one_receiver() {
            let (tx, rx) = unbounded();
            let tx2 = tx.clone();
            std::thread::spawn(move || tx2.send(1).unwrap())
                .join()
                .unwrap();
            tx.send(2).unwrap();
            let mut got = vec![rx.recv().unwrap(), rx.recv().unwrap()];
            got.sort();
            assert_eq!(got, vec![1, 2]);
        }
    }
}
