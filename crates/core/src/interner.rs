//! String interning.
//!
//! Frames reference file paths, symbol names, operator names and library
//! paths. Interning keeps the calling context tree compact (the paper's
//! memory-overhead result depends on contexts, not strings, dominating
//! profile size) and makes frame comparison an integer compare.
//!
//! The intern map is **lock-striped**: `intern` hashes the string to one
//! of [`STRIPES`] independent `RwLock`ed maps, so concurrent producers
//! interning *different* strings — the common case once ingestion is
//! sharded and attribution runs on a worker pool — no longer serialize on
//! one global lock. The hot path (interning an already-known string) is
//! one striped read lock. Symbol ids stay dense and stable: a shared
//! append-only symbol table assigns ids in insertion order, and a string
//! is only ever inserted once (the stripe's write lock makes the
//! check-then-append atomic per string).

use std::cell::RefCell;
use std::fmt;

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use crate::fx::FxHashMap;

/// Intern-map stripes. A power of two so the stripe pick is a mask; 16
/// matches the default ingestion shard count.
const STRIPES: usize = 16;

/// Identity source for [`Interner::intern_cached`]'s thread-local
/// caches: every interner instance ever constructed gets a distinct id,
/// so a stale cache can never alias a newer interner.
static NEXT_INTERNER_ID: AtomicU64 = AtomicU64::new(0);

/// Interners a thread keeps local caches for, most-recently-used first.
/// Sessions use one shared interner, so slot 0 hits in steady state;
/// tests constructing many interners rotate through and rebuild.
const LOCAL_CACHE_INTERNERS: usize = 4;

/// Entries per thread-local cache before it is cleared and rebuilt from
/// the hot set — a safety valve against unbounded name streams; a model
/// re-launching its ~dozens of hot kernels never comes close.
const LOCAL_CACHE_ENTRIES: usize = 4096;

/// One thread-local cache: `(interner id, str → Sym)`.
type LocalCache = (u64, FxHashMap<Arc<str>, Sym>);

thread_local! {
    /// Per-thread `str → Sym` caches, keyed by interner id (MRU order,
    /// mirroring the pipeline's thread-local producer batching). Values
    /// share the interner's canonical `Arc<str>`s, so a cache hit is one
    /// fx-hash lookup with no lock and no allocation.
    static LOCAL_SYMS: RefCell<Vec<LocalCache>> = const { RefCell::new(Vec::new()) };
}

/// An interned string handle.
///
/// `Sym` is a cheap, copyable index into an [`Interner`]. Two `Sym`s from the
/// same interner are equal iff the strings they denote are equal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Sym(pub(crate) u32);

impl Sym {
    /// Raw index of this symbol within its interner.
    pub fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sym#{}", self.0)
    }
}

/// A thread-safe, lock-striped string interner.
///
/// Shared (via [`Arc`]) between every component of a profiling session so
/// that frames produced by the framework shim, the GPU runtime and the CPU
/// sampler all agree on symbol identity.
///
/// # Examples
///
/// ```
/// use deepcontext_core::Interner;
///
/// let interner = Interner::new();
/// let a = interner.intern("aten::matmul");
/// let b = interner.intern("aten::matmul");
/// assert_eq!(a, b);
/// assert_eq!(interner.resolve(a).as_ref(), "aten::matmul");
/// ```
pub struct Interner {
    /// Identity for thread-local caches (unique per instance, ever).
    id: u64,
    /// string → symbol, striped by string hash (fx-hashed: interned
    /// strings are not attacker-controlled, and this map sits on the
    /// profiler's hottest path).
    stripes: Vec<RwLock<FxHashMap<Arc<str>, Sym>>>,
    /// symbol → string, append-only, ids dense in insertion order.
    strings: RwLock<Vec<Arc<str>>>,
    /// Distinct strings interned. Mirrors `strings.len()` so
    /// introspection ([`len`](Self::len), [`approx_bytes`](Self::approx_bytes),
    /// stats paths) never takes the `strings` lock and never contends
    /// with interning.
    count: AtomicUsize,
    /// Total interned string payload bytes.
    bytes: AtomicUsize,
}

impl Default for Interner {
    fn default() -> Self {
        Interner {
            id: NEXT_INTERNER_ID.fetch_add(1, Ordering::Relaxed),
            stripes: (0..STRIPES)
                .map(|_| RwLock::new(FxHashMap::default()))
                .collect(),
            strings: RwLock::new(Vec::new()),
            count: AtomicUsize::new(0),
            bytes: AtomicUsize::new(0),
        }
    }
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    fn stripe_of(&self, s: &str) -> &RwLock<FxHashMap<Arc<str>, Sym>> {
        // FNV-1a over the bytes: the stripe pick only needs a few
        // well-mixed bits, and the stripe's own map re-hashes the full
        // string anyway — a second SipHash pass here would double the
        // string-hashing cost of the profiler's hottest path.
        let h = s.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3)
        });
        &self.stripes[(h as usize) & (STRIPES - 1)]
    }

    /// Interns `s`, returning its symbol. Idempotent.
    pub fn intern(&self, s: &str) -> Sym {
        let stripe = self.stripe_of(s);
        if let Some(&sym) = stripe.read().get(s) {
            return sym;
        }
        // The stripe write lock makes check-then-append atomic for every
        // string hashing here; strings on other stripes proceed in
        // parallel and only rendezvous on the symbol-table append.
        let mut map = stripe.write();
        if let Some(&sym) = map.get(s) {
            return sym;
        }
        let arc: Arc<str> = Arc::from(s);
        let sym = {
            let mut strings = self.strings.write();
            let sym = Sym(strings.len() as u32);
            strings.push(Arc::clone(&arc));
            // Published while the append lock is held, so `count` never
            // runs ahead of a resolvable id.
            self.count.fetch_add(1, Ordering::Release);
            sym
        };
        self.bytes.fetch_add(s.len(), Ordering::Relaxed);
        map.insert(arc, sym);
        sym
    }

    /// [`intern`](Self::intern) through this thread's local `str → Sym`
    /// cache: repeated hot names (the common case — a training step
    /// re-launches the same few dozen kernels every iteration) skip the
    /// striped locks entirely and cost one fx-hash lookup with no
    /// allocation. The shared interner stays the source of truth: a
    /// local miss interns through it and caches the canonical symbol, so
    /// cached answers always agree with [`intern`] on every thread.
    pub fn intern_cached(&self, s: &str) -> Sym {
        LOCAL_SYMS.with(|tls| {
            let mut caches = tls.borrow_mut();
            // MRU: slot 0 is the interner this thread used last. One
            // session shares one interner, so this is an id compare.
            match caches.iter().position(|(id, _)| *id == self.id) {
                Some(0) => {}
                Some(pos) => caches.swap(0, pos),
                None => {
                    caches.insert(0, (self.id, FxHashMap::default()));
                    caches.truncate(LOCAL_CACHE_INTERNERS);
                }
            }
            let cache = &mut caches[0].1;
            if let Some(&sym) = cache.get(s) {
                return sym;
            }
            let sym = self.intern(s);
            if cache.len() >= LOCAL_CACHE_ENTRIES {
                cache.clear();
            }
            // Key off the canonical Arc so the miss path allocates
            // nothing beyond what interning itself did.
            cache.insert(self.resolve(sym), sym);
            sym
        })
    }

    /// Resolves a symbol back to its string.
    ///
    /// # Panics
    ///
    /// Panics if `sym` was produced by a different interner and is out of
    /// range for this one.
    pub fn resolve(&self, sym: Sym) -> Arc<str> {
        Arc::clone(&self.strings.read()[sym.0 as usize])
    }

    /// Looks up a string without interning it.
    pub fn lookup(&self, s: &str) -> Option<Sym> {
        self.stripe_of(s).read().get(s).copied()
    }

    /// Number of distinct strings interned. Lock-free: reads the atomic
    /// mirror of the symbol table's length, so stats paths polling this
    /// (or [`approx_bytes`](Self::approx_bytes)) never contend with
    /// interning.
    pub fn len(&self) -> usize {
        self.count.load(Ordering::Acquire)
    }

    /// Whether the interner is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate heap bytes held by interned strings (for the
    /// memory-overhead accounting of Figure 6c/6d).
    pub fn approx_bytes(&self) -> usize {
        // String payload + one Arc pointer per map and vec slot + map entry.
        self.bytes.load(Ordering::Relaxed) + self.len() * (2 * std::mem::size_of::<Arc<str>>() + 16)
    }

    /// All interned strings in symbol order (used by the profile database
    /// writer).
    pub fn snapshot(&self) -> Vec<Arc<str>> {
        self.strings.read().clone()
    }
}

impl fmt::Debug for Interner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Interner")
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let i = Interner::new();
        let a = i.intern("foo");
        let b = i.intern("foo");
        let c = i.intern("bar");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn resolve_round_trips() {
        let i = Interner::new();
        let strings = ["train.py", "aten::conv2d", "libcudart.so", ""];
        let syms: Vec<_> = strings.iter().map(|s| i.intern(s)).collect();
        for (s, sym) in strings.iter().zip(&syms) {
            assert_eq!(i.resolve(*sym).as_ref(), *s);
        }
    }

    #[test]
    fn lookup_does_not_intern() {
        let i = Interner::new();
        assert_eq!(i.lookup("missing"), None);
        let s = i.intern("present");
        assert_eq!(i.lookup("present"), Some(s));
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn symbol_ids_are_dense_and_stable() {
        let i = Interner::new();
        let syms: Vec<Sym> = (0..100).map(|n| i.intern(&format!("sym{n}"))).collect();
        // Dense: every id in 0..len assigned exactly once.
        let mut indices: Vec<u32> = syms.iter().map(|s| s.index()).collect();
        indices.sort_unstable();
        assert_eq!(indices, (0..100).collect::<Vec<u32>>());
        // Stable: re-interning returns the original id, snapshot order
        // matches id order.
        for (n, sym) in syms.iter().enumerate() {
            assert_eq!(i.intern(&format!("sym{n}")), *sym);
        }
        let snap = i.snapshot();
        for sym in &syms {
            assert_eq!(i.resolve(*sym), snap[sym.index() as usize]);
        }
    }

    #[test]
    fn concurrent_interning_agrees() {
        let i = Interner::new();
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let i = Arc::clone(&i);
                std::thread::spawn(move || {
                    (0..100)
                        .map(|n| i.intern(&format!("s{n}")))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let results: Vec<Vec<Sym>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for w in results.windows(2) {
            assert_eq!(w[0], w[1]);
        }
        assert_eq!(i.len(), 100);
    }

    #[test]
    fn contended_stripes_stay_consistent() {
        // Contention smoke test for the lock striping: 8 threads hammer a
        // mix of (a) the same hot strings — repeated read-path hits on
        // shared stripes — and (b) thread-private strings that race fresh
        // inserts on the shared symbol table. Every thread must observe
        // identical ids for shared strings, ids must stay dense, and every
        // resolve must round-trip.
        let i = Interner::new();
        let threads = 8;
        let hot = 32;
        let rounds = 50;
        let results: Vec<Vec<(String, Sym)>> = std::thread::scope(|scope| {
            (0..threads)
                .map(|t| {
                    let i = Arc::clone(&i);
                    scope.spawn(move || {
                        let mut seen = Vec::new();
                        for round in 0..rounds {
                            for n in 0..hot {
                                let s = format!("hot{n}");
                                let sym = i.intern(&s);
                                if round == 0 {
                                    seen.push((s, sym));
                                }
                            }
                            let s = format!("private-{t}-{round}");
                            let sym = i.intern(&s);
                            seen.push((s, sym));
                        }
                        seen
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        // Shared strings agree across threads; all ids resolve back.
        let mut by_string: std::collections::HashMap<String, Sym> =
            std::collections::HashMap::new();
        for thread in &results {
            for (s, sym) in thread {
                assert_eq!(i.resolve(*sym).as_ref(), s.as_str());
                assert_eq!(*by_string.entry(s.clone()).or_insert(*sym), *sym);
            }
        }
        // Dense ids: exactly hot + threads×rounds distinct strings.
        assert_eq!(i.len(), hot + threads * rounds);
        let snap = i.snapshot();
        assert_eq!(snap.len(), i.len());
    }

    #[test]
    fn intern_cached_agrees_with_intern() {
        let i = Interner::new();
        let warm = i.intern("hot");
        assert_eq!(i.intern_cached("hot"), warm, "cache adopts shared id");
        let cold = i.intern_cached("cold");
        assert_eq!(i.intern("cold"), cold, "shared map adopts cached id");
        assert_eq!(i.intern_cached("cold"), cold, "hit path is stable");
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn thread_local_caches_never_alias_across_interners() {
        // Two interners alive at once on one thread: the MRU cache must
        // key by interner identity, not just by string.
        let a = Interner::new();
        let b = Interner::new();
        let _pad = a.intern("padding"); // desynchronize id assignment
        let sa = a.intern_cached("name");
        let sb = b.intern_cached("name");
        assert_ne!(sa, sb);
        assert_eq!(a.resolve(sa).as_ref(), "name");
        assert_eq!(b.resolve(sb).as_ref(), "name");
        assert_eq!(a.intern("name"), sa);
        assert_eq!(b.intern("name"), sb);
    }

    #[test]
    fn cached_interning_is_consistent_across_eight_threads() {
        // The thread-local-cache consistency contract: 8 threads intern
        // a shared hot set through their private caches (racing the
        // first-intern of every name) and every cached Sym must agree
        // with the shared interner's answer on every thread.
        let i = Interner::new();
        let threads = 8;
        let hot = 48;
        let rounds = 64;
        let results: Vec<Vec<Sym>> = std::thread::scope(|scope| {
            (0..threads)
                .map(|_| {
                    let i = Arc::clone(&i);
                    scope.spawn(move || {
                        let mut last = Vec::new();
                        for _ in 0..rounds {
                            last = (0..hot)
                                .map(|n| i.intern_cached(&format!("hot_kernel_{n}")))
                                .collect();
                        }
                        last
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        for w in results.windows(2) {
            assert_eq!(w[0], w[1], "all threads observe identical symbols");
        }
        for (n, sym) in results[0].iter().enumerate() {
            assert_eq!(
                i.lookup(&format!("hot_kernel_{n}")),
                Some(*sym),
                "cached ids match the shared interner"
            );
        }
        assert_eq!(i.len(), hot, "no duplicate interning through the caches");
    }

    #[test]
    fn len_is_visible_without_the_strings_lock() {
        let i = Interner::new();
        assert!(i.is_empty());
        // Hold the strings read path hostage? Not possible from safe
        // code; instead assert the atomic mirror tracks interning
        // exactly, including the resolve-visible boundary.
        for n in 0..100 {
            i.intern(&format!("s{n}"));
            assert_eq!(i.len(), n + 1);
        }
        assert_eq!(i.snapshot().len(), i.len());
    }

    #[test]
    fn approx_bytes_grows() {
        let i = Interner::new();
        let before = i.approx_bytes();
        i.intern("a fairly long interned string for accounting purposes");
        assert!(i.approx_bytes() > before);
    }
}
