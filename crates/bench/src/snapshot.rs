//! Snapshot-latency measurement: cold full folds vs the warm
//! generation-tracked cache, under varying numbers of dirty shards.
//!
//! The scenario mirrors interactive analysis (paper §4.3/§4.4): a
//! profile has been ingested, and an analysis front-end repeatedly asks
//! for the merged calling context tree (`Profiler::with_cct`) while
//! little or nothing new arrives. The cold path re-folds all 16 shards
//! every time; the cached path folds only shards whose dirty generation
//! advanced. `bench_snapshot` turns these measurements into
//! `BENCH_snapshot.json`.

use std::sync::Arc;
use std::time::Instant;

use deepcontext_core::{Interner, MetricKind};
use deepcontext_profiler::{EventSink, ShardedSink};
use dlmonitor::EventOrigin;

use crate::ingestion::{ingest_stream, producer_stream};

/// Shards the benchmark sink uses (the profiler default).
pub const SHARDS: usize = 16;

/// Producer thread ids used while populating — enough distinct ids that
/// the splitmix router covers every shard.
pub const POPULATE_TIDS: u64 = 64;

/// One measured snapshot scenario.
#[derive(Debug, Clone)]
pub struct SnapshotPoint {
    /// Scenario label (`cold_full_fold`, `warm_0_dirty`, ...).
    pub scenario: &'static str,
    /// Shards re-ingested between consecutive snapshots (0 = fully
    /// quiescent; `SHARDS` = everything dirty every time).
    pub dirty_tids: u64,
    /// Median nanoseconds per snapshot.
    pub nanos: f64,
}

/// Builds and fully populates a 16-shard sink: `contexts_per_tid`
/// distinct kernel contexts for each of [`POPULATE_TIDS`] producers
/// (via the ingestion benchmark's event builder), with every launch's
/// activity record resolved.
pub fn populated_sink(contexts_per_tid: u64) -> (Arc<Interner>, Arc<ShardedSink>) {
    let interner = Interner::new();
    let sink = ShardedSink::new(Arc::clone(&interner), SHARDS);
    for tid in 0..POPULATE_TIDS {
        let events = producer_stream(&interner, tid as usize, contexts_per_tid as usize);
        ingest_stream(sink.as_ref(), &events);
    }
    (interner, sink)
}

/// Dirties the shards `tids` distinct producers route to by attributing
/// one CPU sample each (a fraction of [`POPULATE_TIDS`] touches a
/// fraction of the shards; `tids = 1` dirties exactly one shard).
pub fn dirty_shards(interner: &Arc<Interner>, sink: &ShardedSink, tids: u64) {
    for tid in 0..tids {
        let event = &producer_stream(interner, tid as usize, 1)[0];
        let origin = EventOrigin {
            tid: event.origin.tid,
            ..EventOrigin::default()
        };
        sink.cpu_sample(&origin, &event.path, MetricKind::CpuTime, 100.0);
    }
}

fn median(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// Measures one scenario: `prepare` runs before each timed snapshot
/// (dirtying shards, or nothing), `snapshot` is the timed operation.
pub fn measure(repeats: usize, mut prepare: impl FnMut(), mut snapshot: impl FnMut()) -> f64 {
    let mut samples = Vec::with_capacity(repeats);
    for _ in 0..repeats {
        prepare();
        let t0 = Instant::now();
        snapshot();
        samples.push(t0.elapsed().as_nanos() as f64);
    }
    median(samples)
}

/// Runs the full scenario matrix on one populated sink.
pub fn snapshot_matrix(contexts_per_tid: u64, repeats: usize) -> Vec<SnapshotPoint> {
    let (interner, sink) = populated_sink(contexts_per_tid);
    let mut points = Vec::new();

    // Cold: the historical full fold, paid on every request.
    let nanos = measure(
        repeats,
        || {},
        || {
            std::hint::black_box(sink.snapshot_uncached().node_count());
        },
    );
    points.push(SnapshotPoint {
        scenario: "cold_full_fold",
        dirty_tids: POPULATE_TIDS,
        nanos,
    });

    // Warm the cache once, then the cached scenarios.
    sink.with_snapshot(&mut |cct| {
        std::hint::black_box(cct.node_count());
    });
    for (scenario, tids) in [
        ("warm_0_dirty", 0u64),
        ("warm_1_dirty", 1),
        ("warm_all_dirty", POPULATE_TIDS),
    ] {
        let nanos = measure(
            repeats,
            || dirty_shards(&interner, &sink, tids),
            || {
                sink.with_snapshot(&mut |cct| {
                    std::hint::black_box(cct.node_count());
                });
            },
        );
        points.push(SnapshotPoint {
            scenario,
            dirty_tids: tids,
            nanos,
        });
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn populated_sink_spreads_over_all_shards() {
        let (_interner, sink) = populated_sink(8);
        assert_eq!(sink.counters().orphans, 0);
        let cct = sink.snapshot();
        assert_eq!(sink.counters().snapshot_merges, SHARDS as u64);
        assert_eq!(
            cct.total(MetricKind::KernelLaunches),
            (POPULATE_TIDS * 8) as f64
        );
    }

    #[test]
    fn dirtying_one_tid_refolds_one_shard() {
        let (interner, sink) = populated_sink(4);
        let _ = sink.snapshot();
        let merges = sink.counters().snapshot_merges;
        dirty_shards(&interner, &sink, 1);
        let _ = sink.snapshot();
        let counters = sink.counters();
        assert_eq!(counters.snapshot_merges, merges + 1, "one dirty shard");
        assert!(counters.shards_skipped >= (SHARDS - 1) as u64);
    }

    #[test]
    fn matrix_produces_all_scenarios() {
        let points = snapshot_matrix(4, 3);
        let labels: Vec<_> = points.iter().map(|p| p.scenario).collect();
        assert_eq!(
            labels,
            [
                "cold_full_fold",
                "warm_0_dirty",
                "warm_1_dirty",
                "warm_all_dirty"
            ]
        );
        assert!(points.iter().all(|p| p.nanos > 0.0));
    }
}
