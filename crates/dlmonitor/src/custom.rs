//! Custom driver interception.
//!
//! "To extend DLMonitor for hardware that does not have a vendor-provided
//! callback mechanism, users can define the function signature of the
//! driver function ... in a configuration file. DLMonitor will register
//! custom callbacks using LD_AUDIT for all functions recorded in the
//! configuration file" (paper §4.1).
//!
//! The configuration format is one hook per line:
//!
//! ```text
//! # comments and blank lines ignored
//! libmydriver.so  myLaunchKernel
//! libmydriver.so  myMemcpy
//! ```

use std::sync::Arc;

use parking_lot::Mutex;

use sim_runtime::{LibraryMap, ThreadCtx};

/// One configured interception point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CustomHook {
    /// Library basename the function lives in.
    pub library: String,
    /// Driver function name to intercept.
    pub function: String,
}

type HookCallback = Arc<dyn Fn(&CustomHook, &Arc<ThreadCtx>) + Send + Sync>;

/// Parses hook configurations and dispatches interceptions for libraries
/// observed by the `LD_AUDIT`-style library map.
pub struct CustomInterceptor {
    hooks: Vec<CustomHook>,
    armed: Arc<Mutex<Vec<CustomHook>>>,
    callbacks: Arc<Mutex<Vec<HookCallback>>>,
}

impl CustomInterceptor {
    /// Parses a configuration file's text.
    ///
    /// # Errors
    ///
    /// Returns a message for lines that are neither comments nor
    /// `library function` pairs.
    pub fn parse(config: &str) -> Result<Self, String> {
        let mut hooks = Vec::new();
        for (lineno, line) in config.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let library = parts
                .next()
                .ok_or_else(|| format!("line {}: missing library", lineno + 1))?;
            let function = parts
                .next()
                .ok_or_else(|| format!("line {}: missing function", lineno + 1))?;
            if parts.next().is_some() {
                return Err(format!("line {}: trailing tokens", lineno + 1));
            }
            hooks.push(CustomHook {
                library: library.to_owned(),
                function: function.to_owned(),
            });
        }
        Ok(CustomInterceptor {
            hooks,
            armed: Arc::new(Mutex::new(Vec::new())),
            callbacks: Arc::new(Mutex::new(Vec::new())),
        })
    }

    /// The configured hooks.
    pub fn hooks(&self) -> &[CustomHook] {
        &self.hooks
    }

    /// Installs the interceptor on a library map: hooks become *armed*
    /// when their library is observed loading (the `la_objopen` moment).
    pub fn install(&self, libraries: &LibraryMap) {
        // Arm for libraries already loaded.
        for lib in libraries.snapshot() {
            self.arm_for(lib.basename());
        }
        let hooks = self.hooks.clone();
        let armed = Arc::clone(&self.armed);
        libraries.on_load(move |info| {
            for hook in &hooks {
                if hook.library == info.basename() {
                    let mut armed = armed.lock();
                    if !armed.contains(hook) {
                        armed.push(hook.clone());
                    }
                }
            }
        });
    }

    fn arm_for(&self, basename: &str) {
        let mut armed = self.armed.lock();
        for hook in &self.hooks {
            if hook.library == basename && !armed.contains(hook) {
                armed.push(hook.clone());
            }
        }
    }

    /// Hooks currently armed (their libraries are loaded).
    pub fn armed(&self) -> Vec<CustomHook> {
        self.armed.lock().clone()
    }

    /// Registers a callback fired when an armed driver function executes.
    pub fn on_intercept(&self, cb: impl Fn(&CustomHook, &Arc<ThreadCtx>) + Send + Sync + 'static) {
        self.callbacks.lock().push(Arc::new(cb));
    }

    /// Called by a simulated custom driver at function entry; fires
    /// callbacks if the (library, function) pair is armed.
    /// Returns whether the call was intercepted.
    pub fn driver_call(&self, library: &str, function: &str, thread: &Arc<ThreadCtx>) -> bool {
        let hook = {
            let armed = self.armed.lock();
            armed
                .iter()
                .find(|h| h.library == library && h.function == function)
                .cloned()
        };
        match hook {
            Some(hook) => {
                let cbs: Vec<HookCallback> = self.callbacks.lock().clone();
                for cb in cbs {
                    cb(&hook, thread);
                }
                true
            }
            None => false,
        }
    }
}

impl std::fmt::Debug for CustomInterceptor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CustomInterceptor")
            .field("hooks", &self.hooks)
            .field("armed", &self.armed.lock().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepcontext_core::ThreadRole;
    use sim_runtime::RuntimeEnv;
    use std::sync::atomic::{AtomicUsize, Ordering};

    const CONFIG: &str =
        "\n# custom NPU driver\nlibnpu.so  npuLaunchKernel\nlibnpu.so  npuMemcpy\n";

    #[test]
    fn parse_accepts_comments_and_pairs() {
        let interceptor = CustomInterceptor::parse(CONFIG).unwrap();
        assert_eq!(interceptor.hooks().len(), 2);
        assert_eq!(interceptor.hooks()[0].function, "npuLaunchKernel");
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(CustomInterceptor::parse("libx.so").is_err());
        assert!(CustomInterceptor::parse("libx.so f extra").is_err());
    }

    #[test]
    fn hooks_arm_on_library_load_and_intercept_calls() {
        let env = RuntimeEnv::new();
        let interceptor = CustomInterceptor::parse(CONFIG).unwrap();
        interceptor.install(env.libraries());
        assert!(interceptor.armed().is_empty());

        env.load_library("/opt/npu/libnpu.so", 0x1000);
        assert_eq!(interceptor.armed().len(), 2);

        let fired = Arc::new(AtomicUsize::new(0));
        let f = Arc::clone(&fired);
        interceptor.on_intercept(move |hook, _thread| {
            assert_eq!(hook.library, "libnpu.so");
            f.fetch_add(1, Ordering::SeqCst);
        });
        let t = env.threads().spawn(ThreadRole::Main);
        assert!(interceptor.driver_call("libnpu.so", "npuLaunchKernel", &t));
        assert!(!interceptor.driver_call("libnpu.so", "unknownFn", &t));
        assert!(!interceptor.driver_call("libother.so", "npuLaunchKernel", &t));
        assert_eq!(fired.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn already_loaded_libraries_arm_at_install() {
        let env = RuntimeEnv::new();
        env.load_library("/opt/npu/libnpu.so", 0x1000);
        let interceptor = CustomInterceptor::parse(CONFIG).unwrap();
        interceptor.install(env.libraries());
        assert_eq!(interceptor.armed().len(), 2);
    }
}
