//! Analytic kernel cost model.
//!
//! Duration is a roofline estimate — the larger of compute time and memory
//! time at the device's peaks — degraded by achieved occupancy and
//! parallelism, multiplied by the kernel's serialization factor, plus a
//! fixed launch-to-start latency:
//!
//! ```text
//! ideal   = max(flops / peak_flops, bytes / (mem_bandwidth * pattern_eff))
//! util    = min(1, resident_warps / (total_warp_slots * SATURATION))
//! t       = ideal / max(util, MIN_UTIL) * serialization + latency
//! ```
//!
//! Occupancy (resident warps per SM over the maximum) is limited by
//! threads, blocks, shared memory and registers per SM — the standard CUDA
//! occupancy calculation — and is reported as a metric. Because AMD's
//! warp size is 64, a block of fixed thread count yields half the warps it
//! does on Nvidia; under-saturated kernels therefore run at lower `util`
//! on MI250, which reproduces the §6.5 `instance_norm` case study.

use deepcontext_core::TimeNs;

use crate::kernel::KernelDesc;
use crate::spec::DeviceSpec;

/// Fraction of total warp slots needed to saturate the device.
const SATURATION: f64 = 0.25;
/// Utilization floor, so tiny kernels stay finite.
const MIN_UTIL: f64 = 0.02;

/// The outcome of costing one kernel launch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelCost {
    /// Device-side execution duration.
    pub duration: TimeNs,
    /// Warps launched.
    pub warps: u64,
    /// Blocks launched.
    pub blocks: u32,
    /// Achieved occupancy, 0..=1.
    pub occupancy: f64,
    /// Device utilization used for the duration estimate, 0..=1.
    pub utilization: f64,
}

/// Resident blocks per SM given all four occupancy limiters.
fn blocks_per_sm(spec: &DeviceSpec, desc: &KernelDesc) -> u32 {
    let by_threads = spec.max_threads_per_sm / desc.config.block.max(1);
    let by_blocks = spec.max_blocks_per_sm;
    let by_shared = spec
        .shared_mem_per_sm
        .checked_div(desc.shared_mem_per_block)
        .map_or(u32::MAX, |n| n as u32);
    let regs_per_block = u64::from(desc.registers_per_thread) * u64::from(desc.config.block);
    let by_regs = spec
        .registers_per_sm
        .checked_div(regs_per_block)
        .map_or(u32::MAX, |n| n as u32);
    by_threads.min(by_blocks).min(by_shared).min(by_regs)
}

/// Costs one launch of `desc` on `spec`.
pub fn kernel_cost(spec: &DeviceSpec, desc: &KernelDesc) -> KernelCost {
    let blocks = desc.config.grid;
    let warps_per_block = u64::from(desc.config.block.div_ceil(spec.warp_size));
    let warps = u64::from(blocks) * warps_per_block;

    let resident_blocks = blocks_per_sm(spec, desc);
    let occupancy = if resident_blocks == 0 {
        // Kernel cannot fit at all (e.g. shared memory larger than SM);
        // model as serialized single-block residency.
        1.0 / f64::from(spec.max_warps_per_sm)
    } else {
        let resident_warps = u64::from(resident_blocks) * warps_per_block;
        (resident_warps as f64 / f64::from(spec.max_warps_per_sm)).min(1.0)
    };

    // Device-wide parallelism: how many of the warp slots this grid can
    // actually cover, relative to the saturation point.
    let resident_total =
        warps.min(u64::from(resident_blocks.max(1)) * warps_per_block * u64::from(spec.sm_count));
    let utilization = (resident_total as f64 / (spec.total_warp_slots() as f64 * SATURATION))
        .clamp(MIN_UTIL, 1.0);

    let compute_time = desc.flops / spec.peak_flops;
    let bw_efficiency = match desc.memory_pattern {
        crate::kernel::MemoryPattern::Coalesced => spec.coalesced_efficiency,
        crate::kernel::MemoryPattern::Strided => spec.strided_efficiency,
    };
    let memory_time = desc.bytes / (spec.mem_bandwidth * bw_efficiency);
    let ideal = compute_time.max(memory_time);
    let duration_s = ideal / utilization * desc.serialization_factor;
    let duration = TimeNs(spec.kernel_latency_ns + (duration_s * 1e9).round() as u64);

    KernelCost {
        duration,
        warps,
        blocks,
        occupancy,
        utilization,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::LaunchConfig;

    fn big_kernel(grid: u32, block: u32) -> KernelDesc {
        KernelDesc::new("k", "m", 0, LaunchConfig::new(grid, block))
            .with_flops(1e12)
            .with_bytes(1e9)
    }

    #[test]
    fn more_flops_means_longer() {
        let spec = DeviceSpec::a100_sxm();
        let a = kernel_cost(&spec, &big_kernel(1024, 256).with_flops(1e11));
        let b = kernel_cost(&spec, &big_kernel(1024, 256).with_flops(2e11));
        assert!(b.duration > a.duration);
    }

    #[test]
    fn memory_bound_kernel_limited_by_bandwidth() {
        let spec = DeviceSpec::a100_sxm();
        let k = big_kernel(2048, 256).with_flops(1.0).with_bytes(2e9);
        let cost = kernel_cost(&spec, &k);
        // 2 GB at 2 TB/s x 0.9 coalesced efficiency, saturated (+latency).
        let expected_ns = 1e9 * (2e9 / (2e12 * 0.9));
        let got = cost.duration.as_nanos() as f64 - spec.kernel_latency_ns as f64;
        assert!((got - expected_ns).abs() / expected_ns < 0.05, "got {got}");
    }

    #[test]
    fn serialization_scales_duration() {
        let spec = DeviceSpec::a100_sxm();
        let base = kernel_cost(&spec, &big_kernel(1024, 256));
        let ser = kernel_cost(&spec, &big_kernel(1024, 256).with_serialization(10.0));
        let base_ns = base.duration.as_nanos() - spec.kernel_latency_ns;
        let ser_ns = ser.duration.as_nanos() - spec.kernel_latency_ns;
        assert!((ser_ns as f64 / base_ns as f64 - 10.0).abs() < 0.01);
    }

    #[test]
    fn small_grid_underutilises_device() {
        let spec = DeviceSpec::a100_sxm();
        let small = kernel_cost(&spec, &big_kernel(4, 128));
        let large = kernel_cost(&spec, &big_kernel(4096, 128));
        assert!(small.utilization < large.utilization);
        assert!(small.duration > large.duration);
    }

    #[test]
    fn warp64_reduces_parallelism_for_nvidia_tuned_blocks() {
        // The §6.5 case study: same kernel template (512-thread CTAs, grid
        // sized below saturation) on both devices. On AMD each CTA yields
        // 8 warps (512/64) instead of 16 (512/32), so utilization of an
        // under-sized grid is lower relative to the saturation point.
        let nv = DeviceSpec::a100_sxm();
        let amd = DeviceSpec::mi250();
        let k = big_kernel(64, 512);
        let nv_cost = kernel_cost(&nv, &k);
        let amd_cost = kernel_cost(&amd, &k);
        // Same total threads, but fewer warps on AMD.
        assert_eq!(nv_cost.warps, 64 * 16);
        assert_eq!(amd_cost.warps, 64 * 8);
        assert!(amd_cost.utilization < nv_cost.utilization);
    }

    #[test]
    fn occupancy_limited_by_shared_memory() {
        let spec = DeviceSpec::a100_sxm();
        let light = big_kernel(1024, 256);
        let heavy = big_kernel(1024, 256).with_shared_mem(82 * 1024); // 2 blocks/SM max
        let lo = kernel_cost(&spec, &light);
        let ho = kernel_cost(&spec, &heavy);
        assert!(ho.occupancy < lo.occupancy);
    }

    #[test]
    fn occupancy_limited_by_registers() {
        let spec = DeviceSpec::a100_sxm();
        let light = big_kernel(1024, 256).with_registers(32);
        let heavy = big_kernel(1024, 256).with_registers(255);
        assert!(kernel_cost(&spec, &heavy).occupancy < kernel_cost(&spec, &light).occupancy);
    }

    #[test]
    fn duration_includes_fixed_latency() {
        let spec = DeviceSpec::a100_sxm();
        let tiny = KernelDesc::new("nop", "m", 0, LaunchConfig::new(1, 32));
        let cost = kernel_cost(&spec, &tiny);
        assert_eq!(cost.duration.as_nanos(), spec.kernel_latency_ns);
    }
}
