//! A multi-stream, multi-GPU inference workload.
//!
//! Every other workload launches on one device's default stream, so the
//! profiler's stream-keyed plumbing (`EventOrigin::stream`, per-stream
//! activity records) never sees more than one value. [`MultiStream`]
//! exercises it end to end: each iteration fans a small per-branch
//! pipeline out over `devices × streams` placements, launching from its
//! own Python scope so every branch owns a distinct call path. Kernels
//! on different streams of one device overlap in device time (each
//! stream has an independent busy horizon), which is what the paper's
//! multi-stream traces look like.

use dl_framework::{FrameworkError, Op, OpKind, TensorMeta};
use sim_gpu::{DeviceId, StreamId};

use crate::{ModelCtx, Workload};

/// Overlapping elementwise pipelines on several streams of several
/// devices (defaults: 2 devices × 3 streams).
#[derive(Debug, Clone, Copy)]
pub struct MultiStream {
    devices: usize,
    streams: usize,
}

impl MultiStream {
    /// Ops each branch launches per iteration (one kernel each).
    pub const OPS_PER_BRANCH: usize = 2;

    /// Streams per device are capped so [`scope_line`](Self::scope_line)
    /// stays injective (and `StreamId`/branch counts stay sane).
    pub const MAX_STREAMS: usize = 256;

    /// Source line branch `(device, stream)` scopes itself under —
    /// distinct per branch (streams are capped at [`Self::MAX_STREAMS`],
    /// so no two branches collide) and always ≥ 100, so tests can both
    /// locate each branch's subtree and tell branches apart from the
    /// model's own scopes.
    pub fn scope_line(device: usize, stream: usize) -> u32 {
        100 + (device * Self::MAX_STREAMS + stream) as u32
    }

    /// A workload spanning `devices` devices with `streams` streams
    /// each (clamped to at least 1, and streams to at most
    /// [`Self::MAX_STREAMS`]).
    pub fn new(devices: usize, streams: usize) -> Self {
        MultiStream {
            devices: devices.max(1),
            streams: streams.clamp(1, Self::MAX_STREAMS),
        }
    }

    /// Devices this workload launches on.
    pub fn devices(&self) -> usize {
        self.devices
    }

    /// Streams per device.
    pub fn streams(&self) -> usize {
        self.streams
    }

    /// Kernels one iteration launches in total.
    pub fn kernels_per_iteration(&self) -> u64 {
        (self.devices * self.streams * Self::OPS_PER_BRANCH) as u64
    }
}

impl Default for MultiStream {
    fn default() -> Self {
        MultiStream::new(2, 3)
    }
}

impl Workload for MultiStream {
    fn name(&self) -> &'static str {
        "multi-stream"
    }

    fn dataset(&self) -> &'static str {
        "synthetic"
    }

    fn training(&self) -> bool {
        false
    }

    fn param_bytes(&self) -> u64 {
        (self.devices * self.streams * (1 << 22) * 4) as u64
    }

    fn streams_per_device(&self) -> usize {
        self.streams
    }

    fn iteration(&self, ctx: &mut ModelCtx<'_>) -> Result<(), FrameworkError> {
        let _model = ctx.scope("multi_stream.py", 7, "forward");
        // Interleave launches across branches so streams fill up
        // side-by-side, the way concurrent inference requests would.
        for stream in 0..self.streams {
            for device in 0..self.devices {
                let _branch = ctx.scope(
                    "multi_stream.py",
                    Self::scope_line(device, stream),
                    "stream_branch",
                );
                let x = TensorMeta::new([1 << 22]);
                let activation = match (device + stream) % 3 {
                    0 => OpKind::Relu,
                    1 => OpKind::Gelu,
                    _ => OpKind::Silu,
                };
                let place = |op: Op| {
                    op.on_device(DeviceId(device as u32))
                        .on_stream(StreamId(stream as u32))
                };
                let h = ctx.op(place(Op::new(activation)), &[x])?;
                ctx.op(place(Op::new(OpKind::Mul)), &[h.clone(), h])?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{TestBed, WorkloadOptions};
    use deepcontext_core::TimeNs;
    use sim_gpu::DeviceSpec;

    #[test]
    fn launches_on_every_device_and_overlaps_streams() {
        let w = MultiStream::default();
        let bed = TestBed::with_devices(vec![DeviceSpec::a100_sxm(), DeviceSpec::a100_sxm()]);
        let stats = bed
            .run_eager(&w, &WorkloadOptions::default(), 2)
            .expect("run");
        assert_eq!(stats.kernels, 2 * w.kernels_per_iteration());
        // Work really landed on the second device too.
        for d in 0..2 {
            assert!(
                bed.gpu().kernel_count(DeviceId(d)).unwrap() > 0,
                "device {d} launched nothing"
            );
            assert!(bed.gpu().device_busy_time(DeviceId(d)).unwrap() > TimeNs::ZERO);
        }
    }

    #[test]
    fn single_branch_degenerates_to_default_placement() {
        let w = MultiStream::new(1, 1);
        let bed = TestBed::new(DeviceSpec::a100_sxm());
        let stats = bed
            .run_eager(&w, &WorkloadOptions::default(), 1)
            .expect("run");
        assert_eq!(stats.kernels, w.kernels_per_iteration());
    }
}
