//! Conformer (LibriSpeech) and Transformer-Big (WMT).

use dl_framework::{FrameworkError, Op, OpKind, TensorMeta};

use super::{attention, linear, loss, mlp, optimizer_step};
use crate::{ModelCtx, Workload};

/// Conformer speech encoder on LibriSpeech-like audio: convolution-
/// augmented transformer blocks over long sequences.
#[derive(Debug, Clone, Copy, Default)]
pub struct Conformer;

impl Conformer {
    const LAYERS: usize = 6;
    const DIM: usize = 256;
    const SEQ: usize = 256;
}

impl Workload for Conformer {
    fn name(&self) -> &'static str {
        "conformer"
    }

    fn dataset(&self) -> &'static str {
        "librispeech"
    }

    fn training(&self) -> bool {
        true
    }

    fn param_bytes(&self) -> u64 {
        (Self::LAYERS * 10 * Self::DIM * Self::DIM * 4) as u64
    }

    fn iteration(&self, ctx: &mut ModelCtx<'_>) -> Result<(), FrameworkError> {
        let _model = ctx.scope("conformer.py", 12, "forward");
        let batch = 4 * ctx.opts.scale;

        // Convolutional subsampling of the spectrogram.
        let mut x = {
            let _scope = ctx.scope("conformer.py", 21, "subsample");
            let spec = TensorMeta::new([batch, 1, Self::SEQ, 80]);
            let c1 = ctx.op(Op::new(OpKind::Conv2d).with_weight([32, 1, 3, 3]), &[spec])?;
            let c1 = ctx.op(Op::new(OpKind::Relu), &[c1])?;
            let pooled = ctx.op(Op::new(OpKind::MaxPool2d), &[c1])?;
            ctx.op(
                Op::new(OpKind::Reshape).with_out_shape([batch, Self::SEQ / 2, Self::DIM]),
                &[pooled],
            )?
        };

        for layer in 0..Self::LAYERS {
            let _scope = ctx.scope("conformer.py", 40 + layer as u32, "conformer_block");
            // First feed-forward (half-step).
            let ff1 = mlp(ctx, &x, Self::DIM * 4, OpKind::Silu)?;
            x = ctx.op(Op::new(OpKind::Add), &[x, ff1])?;
            // Self-attention.
            let normed = ctx.op(Op::new(OpKind::LayerNorm), &[x.clone()])?;
            let att = attention(ctx, &normed)?;
            x = ctx.op(Op::new(OpKind::Add), &[x, att])?;
            // Convolution module.
            let conv = {
                let _cs = ctx.scope("conformer.py", 55 + layer as u32, "conv_module");
                let as_img = ctx.op(
                    Op::new(OpKind::Reshape).with_out_shape([batch, Self::DIM, Self::SEQ / 2, 1]),
                    &[x.clone()],
                )?;
                let c = ctx.op(
                    Op::new(OpKind::Conv2d).with_weight([Self::DIM, Self::DIM, 3, 1]),
                    &[as_img],
                )?;
                let c = ctx.op(Op::new(OpKind::Silu), &[c])?;
                ctx.op(
                    Op::new(OpKind::Reshape).with_out_shape(x.shape.clone()),
                    &[c],
                )?
            };
            x = ctx.op(Op::new(OpKind::Add), &[x, conv])?;
            // Second feed-forward + final norm.
            let ff2 = mlp(ctx, &x, Self::DIM * 4, OpKind::Silu)?;
            x = ctx.op(Op::new(OpKind::Add), &[x, ff2])?;
            x = ctx.op(Op::new(OpKind::LayerNorm), &[x])?;
        }

        let logits = {
            let _scope = ctx.scope("conformer.py", 80, "ctc_head");
            linear(ctx, &x, 1024)?
        };
        loss(ctx, &logits)?;
        optimizer_step(ctx, self.param_bytes())
    }
}

/// Transformer-Big on WMT-like translation batches: the §6.3 kernel-fusion
/// case study (its loss launches three small kernels).
#[derive(Debug, Clone, Copy, Default)]
pub struct TransformerBig;

impl TransformerBig {
    const ENC_LAYERS: usize = 6;
    const DEC_LAYERS: usize = 6;
    const DIM: usize = 512;
    const SEQ: usize = 32;
    const VOCAB: usize = 4096;
}

impl Workload for TransformerBig {
    fn name(&self) -> &'static str {
        "transformer-big"
    }

    fn dataset(&self) -> &'static str {
        "wmt"
    }

    fn training(&self) -> bool {
        true
    }

    fn param_bytes(&self) -> u64 {
        ((Self::ENC_LAYERS + 2 * Self::DEC_LAYERS) * 8 * Self::DIM * Self::DIM * 4) as u64
    }

    fn iteration(&self, ctx: &mut ModelCtx<'_>) -> Result<(), FrameworkError> {
        let _model = ctx.scope("transformer.py", 15, "forward");
        let batch = 8 * ctx.opts.scale;
        let src = TensorMeta::new([batch, Self::SEQ]).with_dtype(dl_framework::DType::I64);
        let mut enc = {
            let _scope = ctx.scope("transformer.py", 22, "embed_source");
            ctx.op(
                Op::new(OpKind::Embedding).with_weight([Self::VOCAB, Self::DIM]),
                &[src],
            )?
        };
        for layer in 0..Self::ENC_LAYERS {
            let _scope = ctx.scope("transformer.py", 30 + layer as u32, "encoder_layer");
            let normed = ctx.op(Op::new(OpKind::LayerNorm), &[enc.clone()])?;
            let att = attention(ctx, &normed)?;
            enc = ctx.op(Op::new(OpKind::Add), &[enc, att])?;
            let ff = mlp(ctx, &enc, Self::DIM * 4, OpKind::Relu)?;
            enc = ctx.op(Op::new(OpKind::Add), &[enc, ff])?;
        }
        let mut dec = {
            let _scope = ctx.scope("transformer.py", 48, "embed_target");
            let tgt = TensorMeta::new([batch, Self::SEQ]).with_dtype(dl_framework::DType::I64);
            ctx.op(
                Op::new(OpKind::Embedding).with_weight([Self::VOCAB, Self::DIM]),
                &[tgt],
            )?
        };
        for layer in 0..Self::DEC_LAYERS {
            let _scope = ctx.scope("transformer.py", 56 + layer as u32, "decoder_layer");
            let normed = ctx.op(Op::new(OpKind::LayerNorm), &[dec.clone()])?;
            let self_att = attention(ctx, &normed)?;
            dec = ctx.op(Op::new(OpKind::Add), &[dec, self_att])?;
            let cross = attention(ctx, &dec)?;
            dec = ctx.op(Op::new(OpKind::Add), &[dec, cross])?;
            let ff = mlp(ctx, &dec, Self::DIM * 4, OpKind::Relu)?;
            dec = ctx.op(Op::new(OpKind::Add), &[dec, ff])?;
        }
        let logits = {
            let _scope = ctx.scope("transformer.py", 74, "project_vocab");
            linear(ctx, &dec, Self::VOCAB)?
        };
        // The paper's loss_fn: softmax + copy + nll_loss (or fused).
        loss(ctx, &logits)?;
        optimizer_step(ctx, self.param_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::testutil::smoke_eager;
    use crate::WorkloadOptions;

    #[test]
    fn conformer_runs_with_large_kernels() {
        let stats = smoke_eager(&Conformer, &WorkloadOptions::default());
        assert!(stats.kernels > 80);
        assert!(stats.gpu_busy.as_nanos() / stats.kernels > 5_000);
    }

    #[test]
    fn transformer_fused_loss_reduces_kernels_and_time() {
        // §6.3: fusing softmax+copy+nll_loss cuts launches and time.
        let plain = smoke_eager(&TransformerBig, &WorkloadOptions::default());
        let fused = smoke_eager(
            &TransformerBig,
            &WorkloadOptions {
                fused_loss: true,
                ..Default::default()
            },
        );
        assert!(fused.kernels < plain.kernels);
        assert!(fused.gpu_busy <= plain.gpu_busy);
    }

    #[test]
    fn metadata() {
        assert_eq!(Conformer.dataset(), "librispeech");
        assert_eq!(TransformerBig.dataset(), "wmt");
        assert!(TransformerBig.training());
    }
}
