//! End-to-end timeline tests: the multi-stream workload through the full
//! stack (framework → DLMonitor → profiler → timeline subsystem), with a
//! brute-force oracle over the complete activity set, ring-overflow
//! accounting, Chrome-trace well-formedness, and sync == async timeline
//! equivalence.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use deepcontext::gpu::Activity;
use deepcontext::gpu::ActivityKind;
use deepcontext::pipeline::{EventSink, IngestionMode, ShardedSink};
use deepcontext::prelude::*;
use deepcontext::profiler::{TelemetryConfig, TimelineConfig};

const ITERATIONS: u32 = 3;

struct Rig {
    bed: TestBed,
    monitor: Arc<DlMonitor>,
}

fn rig() -> Rig {
    let bed = TestBed::with_devices(vec![DeviceSpec::a100_sxm(), DeviceSpec::a100_sxm()]);
    let monitor = DlMonitor::init(bed.env(), Interner::new());
    monitor.attach_framework(bed.eager().core().callbacks());
    monitor.attach_gpu(bed.gpu());
    Rig { bed, monitor }
}

fn run_multi_stream(rig: &Rig, profiler: &Profiler) -> MultiStream {
    let workload = MultiStream::default();
    rig.bed
        .run_eager(&workload, &WorkloadOptions::default(), ITERATIONS)
        .expect("workload run");
    profiler.flush();
    workload
}

fn timeline_profiler(rig: &Rig, timeline: TimelineConfig, mode: IngestionMode) -> Profiler {
    Profiler::attach(
        ProfilerConfig {
            timeline,
            ingestion_mode: mode,
            // Self-telemetry is pinned off regardless of the
            // DEEPCONTEXT_TELEMETRY matrix: these tests assert exact
            // per-track interval counts and sync == async snapshot
            // equality, which the reserved self-timeline tracks would
            // (legitimately) perturb. The enabled path has its own
            // end-to-end suite in `tests/telemetry.rs`.
            telemetry: TelemetryConfig::default(),
            ..ProfilerConfig::deepcontext()
        },
        rig.bed.env(),
        &rig.monitor,
        rig.bed.gpu(),
    )
}

#[test]
fn multi_stream_produces_one_track_per_device_stream_with_overlap() {
    let rig = rig();
    let profiler = timeline_profiler(&rig, TimelineConfig::enabled(), IngestionMode::Sync);
    let workload = run_multi_stream(&rig, &profiler);

    let timeline = profiler.timeline().expect("timeline enabled");
    // One track per device × stream, each carrying every branch launch.
    assert_eq!(
        timeline.tracks().len(),
        workload.devices() * workload.streams()
    );
    let per_track = u64::from(ITERATIONS) * MultiStream::OPS_PER_BRANCH as u64;
    for device in 0..workload.devices() as u32 {
        for stream in 0..workload.streams() as u32 {
            let track = timeline
                .track(device, stream)
                .unwrap_or_else(|| panic!("missing track ({device}, {stream})"));
            assert_eq!(
                track.intervals().len() as u64,
                per_track,
                "intervals on ({device}, {stream})"
            );
        }
    }
    let stats = profiler.stats();
    assert_eq!(
        stats.timeline_intervals,
        u64::from(ITERATIONS) * workload.kernels_per_iteration()
    );
    assert_eq!(stats.timeline_dropped, 0, "default capacity never evicts");
    assert_eq!(timeline.interval_count() as u64, stats.timeline_intervals);

    // Streams on each device really overlapped, and the timeline sees it.
    let tstats = timeline.stats();
    for device in 0..workload.devices() as u32 {
        let d = tstats.device(device).expect("device stats");
        assert_eq!(d.streams, workload.streams());
        assert!(
            d.overlap_factor() > 1.0,
            "device {device} streams never overlapped: factor {}",
            d.overlap_factor()
        );
        assert!(d.utilization() > 0.0 && d.utilization() <= 1.0);
    }

    // Every interval's context id resolves to a GPU-kernel node in the
    // tree `with_cct` serves at this same quiesce point, and its context
    // lands under the right per-branch Python scope.
    profiler.with_cct(|cct| {
        let interner = cct.interner();
        for track in timeline.tracks() {
            for interval in track.intervals() {
                let node = interval
                    .context
                    .expect("every interval resolved its context");
                assert!(node.index() < cct.node_count(), "context id out of range");
                assert_eq!(cct.node(node).frame().kind(), FrameKind::GpuKernel);
                let path = cct.frames_to_root(node);
                let labels: Vec<String> = path
                    .frames()
                    .iter()
                    .map(|f| f.short_label(&interner))
                    .collect();
                let scope = format!(
                    "multi_stream.py:{}",
                    MultiStream::scope_line(
                        track.key().device as usize,
                        track.key().stream as usize
                    )
                );
                assert!(
                    labels.contains(&scope),
                    "interval on {:?} attributed outside its branch scope: {labels:?}",
                    track.key()
                );
            }
        }
    });
}

#[test]
fn jit_multi_stream_keeps_placements_and_fills_every_track() {
    // The fusion pass partitions groups by (device, stream) and the
    // compiled executor launches each item on its recorded placement —
    // so the multi-stream workload runs under JIT with the same
    // device/stream spread as eager, instead of being forced onto the
    // core's default stream.
    let bed = TestBed::with_devices(vec![DeviceSpec::a100_sxm(), DeviceSpec::a100_sxm()]);
    let monitor = DlMonitor::init(bed.env(), Interner::new());
    monitor.attach_framework(bed.jit().core().callbacks());
    monitor.attach_gpu(bed.gpu());
    let profiler = Profiler::attach(
        ProfilerConfig {
            timeline: TimelineConfig::enabled(),
            // Pinned off for the same exact-track-count reason as
            // `timeline_profiler`.
            telemetry: TelemetryConfig::default(),
            ..ProfilerConfig::deepcontext()
        },
        bed.env(),
        &monitor,
        bed.gpu(),
    );
    let workload = MultiStream::default();
    let stats = bed
        .run_jit(&workload, &WorkloadOptions::default(), ITERATIONS)
        .expect("multi-stream workload must run under JIT");
    profiler.flush();

    // Each branch's two same-placement elementwise ops fuse into one
    // kernel, but branches never fuse across placements — so exactly one
    // kernel per (device, stream) branch per iteration.
    let branches = (workload.devices() * workload.streams()) as u64;
    assert_eq!(stats.kernels, u64::from(ITERATIONS) * branches);
    let timeline = profiler.timeline().expect("timeline enabled");
    assert_eq!(
        timeline.tracks().len(),
        workload.devices() * workload.streams(),
        "JIT execution must populate every (device, stream) track"
    );
    for device in 0..workload.devices() as u32 {
        for stream in 0..workload.streams() as u32 {
            let track = timeline
                .track(device, stream)
                .unwrap_or_else(|| panic!("missing track ({device}, {stream})"));
            assert!(
                !track.intervals().is_empty(),
                "no intervals on ({device}, {stream})"
            );
        }
    }
    // Streams still overlap on each device under the compiled executor.
    for device in 0..workload.devices() as u32 {
        let d = timeline.stats().device(device).expect("device stats");
        assert_eq!(d.streams, workload.streams());
        assert!(
            d.overlap_factor() > 1.0,
            "device {device} streams never overlapped under JIT"
        );
    }
}

/// The brute-force oracle: recompute per-device busy / summed / span /
/// gaps from the complete, independently captured activity set with the
/// simplest possible O(n log n) sweep, ignoring everything the timeline
/// subsystem does (rings, shards, context remapping).
#[derive(Debug, Default, PartialEq)]
struct OracleDevice {
    summed: u64,
    busy: u64,
    first_start: u64,
    last_end: u64,
    gaps: Vec<(u64, u64)>,
    intervals: usize,
}

fn oracle_stats(activities: &[Activity]) -> BTreeMap<u32, OracleDevice> {
    let mut windows: BTreeMap<u32, Vec<(u64, u64)>> = BTreeMap::new();
    for activity in activities {
        let (start, end) = match &activity.kind {
            ActivityKind::Kernel { start, end, .. } | ActivityKind::Memcpy { start, end, .. } => {
                (start.as_nanos(), end.as_nanos())
            }
            _ => continue,
        };
        windows
            .entry(activity.device.0)
            .or_default()
            .push((start, end));
    }
    windows
        .into_iter()
        .map(|(device, mut spans)| {
            spans.sort_unstable();
            let mut oracle = OracleDevice {
                first_start: spans[0].0,
                intervals: spans.len(),
                ..OracleDevice::default()
            };
            let mut cover_end = spans[0].0;
            for &(start, end) in &spans {
                oracle.summed += end - start;
                if start > cover_end {
                    oracle.gaps.push((cover_end, start));
                    oracle.busy += end - start;
                    cover_end = end;
                } else if end > cover_end {
                    oracle.busy += end - cover_end;
                    cover_end = end;
                }
            }
            oracle.last_end = cover_end;
            (device, oracle)
        })
        .collect()
}

/// Wraps the real sink, keeping its own copy of every activity record —
/// the complete activity set the oracle recomputes from.
struct CapturingSink {
    inner: Arc<ShardedSink>,
    captured: Mutex<Vec<Activity>>,
}

impl EventSink for CapturingSink {
    fn gpu_launch(
        &self,
        origin: &deepcontext::monitor::EventOrigin,
        path: &CallPath,
        api: deepcontext::gpu::ApiKind,
    ) {
        self.inner.gpu_launch(origin, path, api);
    }

    fn activity_batch(&self, batch: &[Activity]) {
        self.captured.lock().unwrap().extend(batch.iter().cloned());
        self.inner.activity_batch(batch);
    }

    fn cpu_sample(
        &self,
        origin: &deepcontext::monitor::EventOrigin,
        path: &CallPath,
        metric: MetricKind,
        value: f64,
    ) {
        self.inner.cpu_sample(origin, path, metric, value);
    }

    fn epoch_complete(&self) {
        self.inner.epoch_complete();
    }

    fn snapshot(&self) -> CallingContextTree {
        self.inner.snapshot()
    }

    fn timeline_snapshot(&self) -> Option<deepcontext::timeline::TimelineSnapshot> {
        self.inner.timeline_snapshot()
    }

    fn counters(&self) -> deepcontext::pipeline::SinkCounters {
        self.inner.counters()
    }

    fn approx_bytes(&self) -> usize {
        self.inner.approx_bytes()
    }
}

#[test]
fn timeline_metrics_match_brute_force_recomputation_over_all_activities() {
    let rig = rig();
    let sink = Arc::new(CapturingSink {
        inner: ShardedSink::with_timeline(
            rig.monitor.interner(),
            deepcontext::profiler::default_ingestion_shards(),
            true,
            &TimelineConfig::enabled(),
        ),
        captured: Mutex::new(Vec::new()),
    });
    let profiler = Profiler::attach_with_sink(
        ProfilerConfig::deepcontext(),
        rig.bed.env(),
        &rig.monitor,
        rig.bed.gpu(),
        Arc::clone(&sink) as Arc<dyn EventSink>,
    );
    run_multi_stream(&rig, &profiler);

    let timeline = sink.timeline_snapshot().expect("timeline enabled");
    assert_eq!(timeline.dropped(), 0, "oracle needs the complete set");
    let captured = sink.captured.lock().unwrap();
    let oracle = oracle_stats(&captured);
    let stats = timeline.stats();
    assert_eq!(
        stats.devices.len(),
        oracle.len(),
        "devices with recorded work"
    );
    for device in &stats.devices {
        let expect = &oracle[&device.device];
        assert_eq!(
            device.summed.as_nanos(),
            expect.summed,
            "device {} summed",
            device.device
        );
        assert_eq!(
            device.busy.as_nanos(),
            expect.busy,
            "device {} busy (union)",
            device.device
        );
        assert_eq!(device.first_start.as_nanos(), expect.first_start);
        assert_eq!(device.last_end.as_nanos(), expect.last_end);
        let gaps: Vec<(u64, u64)> = device
            .gaps
            .iter()
            .map(|g| (g.start.as_nanos(), g.end.as_nanos()))
            .collect();
        assert_eq!(gaps, expect.gaps, "device {} idle gaps", device.device);
        // Derived ratios follow from the equal integers.
        let span = (expect.last_end - expect.first_start) as f64;
        assert_eq!(device.utilization(), expect.busy as f64 / span);
        assert_eq!(
            device.overlap_factor(),
            expect.summed as f64 / expect.busy as f64
        );
        // Idle partitions the span against busy exactly.
        assert_eq!(
            device.idle().as_nanos() + device.busy.as_nanos(),
            device.span().as_nanos()
        );
    }
    // Nothing was missed: every kernel/memcpy record became an interval.
    let expected_intervals: usize = oracle.values().map(|o| o.intervals).sum();
    assert_eq!(timeline.interval_count(), expected_intervals);
}

#[test]
fn sync_and_async_timelines_are_identical() {
    let run = |mode: IngestionMode| {
        let rig = rig();
        let profiler = timeline_profiler(&rig, TimelineConfig::enabled(), mode);
        run_multi_stream(&rig, &profiler);
        profiler.timeline().expect("timeline enabled")
    };
    let sync = run(IngestionMode::Sync);
    let asynchronous = run(IngestionMode::Async);
    assert!(!sync.is_empty());
    assert_eq!(
        sync, asynchronous,
        "bounded-channel ingestion must record the identical timeline"
    );
    // The two runs intern through separate interners, so raw `Sym` ids
    // are incidental; the contract is that every interval *resolves* to
    // the same name through its own snapshot's captured symbol table.
    for (st, at) in sync.tracks().iter().zip(asynchronous.tracks().iter()) {
        for (si, ai) in st.intervals().iter().zip(at.intervals().iter()) {
            let name = sync
                .name_of(si.name)
                .expect("sync snapshot resolves every interval name");
            assert_eq!(
                Some(name),
                asynchronous.name_of(ai.name),
                "resolved names diverge on {:?} corr {}",
                st.key(),
                si.correlation
            );
        }
    }
}

#[test]
fn interval_names_round_trip_through_snapshot_remap_and_chrome_export() {
    // `Interval::name` is an interned `Sym`: the recording tap stores a
    // handle, the snapshot captures the symbol table once, and the
    // Chrome exporter resolves through it. This test closes the loop
    // end-to-end: every interval's resolved name equals the name the
    // producer launched with, both on the snapshot and in the exported
    // trace.
    let rig = rig();
    let sink = Arc::new(CapturingSink {
        inner: ShardedSink::with_timeline(
            rig.monitor.interner(),
            deepcontext::profiler::default_ingestion_shards(),
            true,
            &TimelineConfig::enabled(),
        ),
        captured: Mutex::new(Vec::new()),
    });
    let profiler = Profiler::attach_with_sink(
        ProfilerConfig::deepcontext(),
        rig.bed.env(),
        &rig.monitor,
        rig.bed.gpu(),
        Arc::clone(&sink) as Arc<dyn EventSink>,
    );
    run_multi_stream(&rig, &profiler);

    let timeline = sink.timeline_snapshot().expect("timeline enabled");
    assert_eq!(timeline.dropped(), 0, "need the complete interval set");
    assert!(
        !timeline.names().is_empty(),
        "snapshot captured its symbol table"
    );
    // The producer-side truth: correlation id → the name each activity
    // record carried into the sink.
    let captured = sink.captured.lock().unwrap();
    let mut launched: BTreeMap<u64, String> = BTreeMap::new();
    for activity in captured.iter() {
        let name = match &activity.kind {
            ActivityKind::Kernel { name, .. } => name.to_string(),
            ActivityKind::Memcpy { .. } => "memcpy".to_string(),
            _ => continue,
        };
        launched.insert(activity.correlation_id.0, name);
    }
    for track in timeline.tracks() {
        for interval in track.intervals() {
            let resolved = timeline
                .name_of(interval.name)
                .expect("every recorded Sym resolves in the captured table");
            assert_eq!(
                Some(resolved),
                launched.get(&interval.correlation).map(String::as_str),
                "interval corr {} on {:?}",
                interval.correlation,
                track.key()
            );
        }
    }
    // The exported trace prints the same resolved names — no `sym#N`
    // fallbacks, no stale table.
    let json = timeline.to_chrome_trace(None);
    let root = Parser::parse(&json).expect("chrome trace must be valid JSON");
    let events = match root.get("traceEvents") {
        Some(Json::Arr(events)) => events,
        other => panic!("traceEvents array missing: {other:?}"),
    };
    let mut slices = 0usize;
    for event in events {
        if event.get("ph").and_then(Json::as_str) != Some("X") {
            continue;
        }
        slices += 1;
        let name = event
            .get("name")
            .and_then(Json::as_str)
            .expect("slice name");
        let corr = event
            .get("args")
            .and_then(|a| a.get("correlation"))
            .and_then(Json::as_num)
            .expect("slice correlation") as u64;
        assert_eq!(
            Some(name),
            launched.get(&corr).map(String::as_str),
            "chrome slice for corr {corr}"
        );
    }
    assert_eq!(slices, timeline.interval_count());
}

#[test]
fn ring_overflow_is_counted_and_keeps_the_newest_window() {
    let rig = rig();
    let profiler = timeline_profiler(
        &rig,
        TimelineConfig {
            enabled: true,
            ring_capacity: 2,
        },
        IngestionMode::Sync,
    );
    let workload = run_multi_stream(&rig, &profiler);

    let stats = profiler.stats();
    let total = u64::from(ITERATIONS) * workload.kernels_per_iteration();
    assert_eq!(stats.timeline_intervals, total, "recording still sees all");
    assert!(
        stats.timeline_dropped > 0,
        "tiny rings must evict under this workload"
    );
    let timeline = profiler.timeline().expect("timeline enabled");
    assert_eq!(timeline.recorded(), total);
    assert_eq!(timeline.dropped(), stats.timeline_dropped);
    // Exact partition: what the snapshot kept plus what overflow evicted
    // is everything ever recorded — the `<dropped>`-style accounting.
    assert_eq!(
        timeline.interval_count() as u64 + timeline.dropped(),
        timeline.recorded()
    );
}

#[test]
fn timeline_disabled_records_nothing_and_costs_nothing() {
    let rig = rig();
    let profiler = timeline_profiler(&rig, TimelineConfig::default(), IngestionMode::Sync);
    run_multi_stream(&rig, &profiler);
    assert!(profiler.timeline().is_none());
    let stats = profiler.stats();
    assert_eq!(stats.timeline_intervals, 0);
    assert_eq!(stats.timeline_dropped, 0);
}

#[test]
fn latency_rules_run_clean_on_the_overlapping_multi_stream_profile() {
    // MultiStream overlaps well by construction, so the serialization
    // rule must stay silent on it — and the timeline-attached preview
    // must agree with the aggregate-only preview on every aggregate rule.
    let rig = rig();
    let profiler = timeline_profiler(&rig, TimelineConfig::enabled(), IngestionMode::Sync);
    run_multi_stream(&rig, &profiler);
    let timeline = profiler.timeline().expect("timeline enabled");
    let analyzer = Analyzer::with_default_rules();
    let (plain, with_timeline) = profiler.with_cct(|cct| {
        (
            analyzer.preview(cct),
            analyzer.preview_with_timeline(cct, &timeline),
        )
    });
    assert!(with_timeline.by_rule("stream-serialization").is_empty());
    // Timeline rules only ever *add* issues on top of the aggregate set.
    let aggregate_only = |report: &deepcontext::analyzer::AnalysisReport| {
        report
            .issues()
            .iter()
            .filter(|i| i.rule != "gpu-idle" && i.rule != "stream-serialization")
            .count()
    };
    assert_eq!(aggregate_only(&plain), aggregate_only(&with_timeline));
}

// ---------------------------------------------------------------------
// Chrome-trace well-formedness: a minimal JSON parser (no external
// crates available) plus structural checks over the parsed events.
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn parse(text: &'a str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(value)
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.bytes.get(self.pos).map(|b| *b as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.bytes.get(self.pos) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(_) => self.number(),
            None => Err("unexpected end of input".into()),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest =
                        std::str::from_utf8(&self.bytes[self.pos..]).map_err(|e| e.to_string())?;
                    let c = rest.chars().next().ok_or("eof in string")?;
                    if (c as u32) < 0x20 {
                        return Err(format!("raw control character at byte {}", self.pos));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err("eof in string".into()),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => return Err(format!("expected , or ] found {other:?}")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                other => return Err(format!("expected , or }} found {other:?}")),
            }
        }
    }
}

#[test]
fn chrome_trace_is_valid_json_with_consistent_tracks() {
    let rig = rig();
    let profiler = timeline_profiler(&rig, TimelineConfig::enabled(), IngestionMode::Sync);
    let workload = run_multi_stream(&rig, &profiler);
    let timeline = profiler.timeline().expect("timeline enabled");
    let json = profiler.with_cct(|cct| timeline.to_chrome_trace(Some(cct)));

    let root = Parser::parse(&json).expect("chrome trace must be valid JSON");
    let events = match root.get("traceEvents") {
        Some(Json::Arr(events)) => events,
        other => panic!("traceEvents array missing: {other:?}"),
    };

    let mut slice_tracks: BTreeMap<(u64, u64), f64> = BTreeMap::new();
    let mut slices = 0usize;
    for event in events {
        let ph = event.get("ph").and_then(Json::as_str).expect("ph");
        let pid = event.get("pid").and_then(Json::as_num).expect("pid") as u64;
        let tid = event.get("tid").and_then(Json::as_num).unwrap_or(0.0) as u64;
        match ph {
            "M" => {
                let name = event.get("name").and_then(Json::as_str).expect("meta name");
                assert!(
                    matches!(name, "process_name" | "thread_name" | "thread_sort_index"),
                    "unexpected metadata {name}"
                );
            }
            "X" => {
                slices += 1;
                let ts = event.get("ts").and_then(Json::as_num).expect("ts");
                let dur = event.get("dur").and_then(Json::as_num).expect("dur");
                assert!(ts >= 0.0 && dur >= 0.0, "negative ts/dur");
                let cat = event.get("cat").and_then(Json::as_str).expect("cat");
                assert!(matches!(cat, "kernel" | "memcpy"));
                // ts must be monotonically non-decreasing within a track.
                let last = slice_tracks.entry((pid, tid)).or_insert(f64::MIN);
                assert!(
                    ts >= *last,
                    "track ({pid},{tid}) ts went backwards: {ts} < {last}"
                );
                *last = ts;
                // Context argument points at a real call path.
                let args = event.get("args").expect("args");
                assert!(args.get("correlation").is_some());
                let context = args
                    .get("context")
                    .and_then(Json::as_str)
                    .expect("every MultiStream slice resolves its context");
                assert!(context.contains("multi_stream.py"), "{context}");
            }
            other => panic!("unexpected phase {other}"),
        }
    }
    // One slice track per device × stream, all slices accounted for.
    assert_eq!(
        slice_tracks.len(),
        workload.devices() * workload.streams(),
        "one Chrome track per (device, stream)"
    );
    assert_eq!(slices, timeline.interval_count());
}
