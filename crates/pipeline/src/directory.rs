//! The pluggable correlation directory.
//!
//! The directory maps `correlation id → home shard` so asynchronous
//! activity records — which carry no thread identity — find the shard
//! their launch was routed to. It sits on the producer-side enqueue
//! path (bind on every launch flush, lookup on every activity record),
//! which makes its concrete layout a measurable tuning knob. This
//! module puts that choice behind the [`DirectoryMap`] trait with two
//! implementations benchmarked head-to-head by `bench_pipeline`:
//!
//! * [`StripedHashDirectory`] — the historical layout: lock stripes of
//!   `std::collections::HashMap` keyed by one splitmix64 round;
//! * [`StripedFlatDirectory`] — lock stripes of an open-addressing flat
//!   table (linear probing, backward-shift deletion): no per-entry
//!   indirection, one cache line per probe on the common hit.
//!
//! Select with [`PipelineConfig::directory_map`] or the
//! `DEEPCONTEXT_DIRECTORY_MAP` environment variable (`striped` /
//! `flat`); [`default_directory_map`] resolves the default.
//!
//! [`PipelineConfig::directory_map`]: crate::PipelineConfig::directory_map

use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::Mutex;

/// Mixes a routing key so sequential tids/correlation ids spread across
/// shards and stripes (splitmix64 finalizer). Shared with the sink's
/// shard routing so a correlation's directory stripe and fallback shard
/// derive from one well-mixed word.
pub(crate) fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Per-entry byte estimate shared by peak accounting (key + value + map
/// overhead), kept identical across implementations so memory numbers
/// stay comparable when the map is swapped.
pub(crate) const DIR_ENTRY_BYTES: usize =
    std::mem::size_of::<u64>() + std::mem::size_of::<u32>() + 16;

/// Events per stack-allocated chunk in [`DirectoryMap::bind_batch`]
/// implementations.
const BIND_CHUNK: usize = 256;

/// A concurrent `correlation id → home shard` directory.
///
/// Implementations are internally synchronized (lock-striped) and track
/// their own live-entry count, so [`len`](DirectoryMap::len) never
/// contends with binding.
pub trait DirectoryMap: Send + Sync {
    /// Registers `corr`'s home shard (idempotent; later binds win).
    fn bind(&self, corr: u64, shard: u32);

    /// [`bind`](Self::bind) for a whole launch batch in one striped
    /// pass: each stripe holding any of `corrs` is locked exactly once,
    /// so a flushed thread-local batch pays one lock round-trip per
    /// *stripe touched* instead of one per launch.
    fn bind_batch(&self, corrs: &[u64], shard: u32);

    /// The home shard `corr` was bound to, if any.
    fn lookup(&self, corr: u64) -> Option<u32>;

    /// Removes `corr`'s binding, returning the shard it pointed at.
    fn remove(&self, corr: u64) -> Option<u32>;

    /// Live entries across all stripes (lock-free).
    fn len(&self) -> usize;

    /// Whether the directory holds no bindings.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sheds high-water capacity after a flush boundary.
    fn trim(&self);

    /// Approximate heap bytes held (capacity-based, for tool-memory
    /// accounting).
    fn approx_bytes(&self) -> usize;
}

/// Hasher for the hash directory's `u64` keys: one splitmix64 round
/// instead of SipHash — the default hasher's setup cost is measurable on
/// the enqueue path.
#[derive(Default, Clone)]
struct CorrHasher(u64);

impl std::hash::Hasher for CorrHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Generic fallback (unused for u64 keys): fold bytes then mix.
        for &b in bytes {
            self.0 = self.0.rotate_left(8) ^ u64::from(b);
        }
        self.0 = mix(self.0);
    }

    fn write_u64(&mut self, n: u64) {
        self.0 = mix(n);
    }
}

#[derive(Default, Clone)]
struct CorrHashBuilder;

impl std::hash::BuildHasher for CorrHashBuilder {
    type Hasher = CorrHasher;
    fn build_hasher(&self) -> CorrHasher {
        CorrHasher::default()
    }
}

type HashStripe = std::collections::HashMap<u64, u32, CorrHashBuilder>;

/// The historical directory layout: lock stripes of `HashMap` keyed by
/// one splitmix64 round.
pub struct StripedHashDirectory {
    stripes: Vec<Mutex<HashStripe>>,
    entries: AtomicUsize,
}

impl StripedHashDirectory {
    /// Creates a directory with `stripes` lock stripes (clamped to at
    /// least one).
    pub fn new(stripes: usize) -> Self {
        StripedHashDirectory {
            stripes: (0..stripes.max(1))
                .map(|_| Mutex::new(HashStripe::default()))
                .collect(),
            entries: AtomicUsize::new(0),
        }
    }

    fn stripe_of(&self, corr: u64) -> usize {
        (mix(corr) % self.stripes.len() as u64) as usize
    }
}

impl DirectoryMap for StripedHashDirectory {
    fn bind(&self, corr: u64, shard: u32) {
        if self.stripes[self.stripe_of(corr)]
            .lock()
            .insert(corr, shard)
            .is_none()
        {
            self.entries.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn bind_batch(&self, corrs: &[u64], shard: u32) {
        match corrs.len() {
            0 => {}
            1 => self.bind(corrs[0], shard),
            _ => {
                // Allocation-free: each chunk's stripe indices live on
                // the stack.
                for chunk in corrs.chunks(BIND_CHUNK) {
                    let mut slots = [0u16; BIND_CHUNK];
                    for (slot, corr) in slots.iter_mut().zip(chunk) {
                        *slot = self.stripe_of(*corr) as u16;
                    }
                    let mut remaining = chunk.len();
                    for stripe in 0..self.stripes.len() {
                        if remaining == 0 {
                            break;
                        }
                        let mut map = None;
                        let mut added = 0usize;
                        for (corr, slot) in chunk.iter().zip(&slots) {
                            if *slot as usize != stripe {
                                continue;
                            }
                            let map = map.get_or_insert_with(|| self.stripes[stripe].lock());
                            if map.insert(*corr, shard).is_none() {
                                added += 1;
                            }
                            remaining -= 1;
                        }
                        if added > 0 {
                            self.entries.fetch_add(added, Ordering::Relaxed);
                        }
                    }
                }
            }
        }
    }

    fn lookup(&self, corr: u64) -> Option<u32> {
        self.stripes[self.stripe_of(corr)]
            .lock()
            .get(&corr)
            .copied()
    }

    fn remove(&self, corr: u64) -> Option<u32> {
        let removed = self.stripes[self.stripe_of(corr)].lock().remove(&corr);
        if removed.is_some() {
            self.entries.fetch_sub(1, Ordering::Relaxed);
        }
        removed
    }

    fn len(&self) -> usize {
        self.entries.load(Ordering::Relaxed)
    }

    fn trim(&self) {
        for stripe in &self.stripes {
            let mut map = stripe.lock();
            if map.capacity() > 64 && map.capacity() / 4 > map.len() {
                map.shrink_to_fit();
            }
        }
    }

    fn approx_bytes(&self) -> usize {
        self.stripes
            .iter()
            .map(|s| s.lock().capacity() * DIR_ENTRY_BYTES)
            .sum()
    }
}

/// One slot of a flat stripe. `full` distinguishes occupancy without
/// reserving sentinel keys, so `0` and `u64::MAX` are ordinary
/// correlations.
#[derive(Clone, Copy, Default)]
struct FlatSlot {
    key: u64,
    val: u32,
    full: bool,
}

/// One open-addressing table: linear probing on a power-of-two slot
/// array, ≤ 3/4 load, backward-shift deletion (no tombstones, so probe
/// chains never rot under the bind/retire churn of a long session).
#[derive(Default)]
struct FlatStripe {
    slots: Vec<FlatSlot>,
    len: usize,
}

impl FlatStripe {
    const MIN_CAPACITY: usize = 16;

    /// Probe start for a pre-mixed key: the stripe index consumed the
    /// mix's low bits (modulo), the probe start uses the high half so
    /// stripe-mates still spread. Callers mix once per operation and
    /// thread the hash through — the directory ops are on the enqueue
    /// path, where a second splitmix round per op is measurable.
    fn home_of(&self, hash: u64) -> usize {
        (hash >> 32) as usize & (self.slots.len() - 1)
    }

    fn probe(&self, key: u64, hash: u64) -> Option<usize> {
        if self.slots.is_empty() {
            return None;
        }
        let mask = self.slots.len() - 1;
        let mut idx = self.home_of(hash);
        loop {
            let slot = &self.slots[idx];
            if !slot.full {
                return None;
            }
            if slot.key == key {
                return Some(idx);
            }
            idx = (idx + 1) & mask;
        }
    }

    fn insert(&mut self, key: u64, hash: u64, val: u32) -> bool {
        if self.slots.len() * 3 < (self.len + 1) * 4 {
            self.grow();
        }
        let mask = self.slots.len() - 1;
        let mut idx = self.home_of(hash);
        loop {
            let slot = &mut self.slots[idx];
            if !slot.full {
                *slot = FlatSlot {
                    key,
                    val,
                    full: true,
                };
                self.len += 1;
                return true;
            }
            if slot.key == key {
                slot.val = val;
                return false;
            }
            idx = (idx + 1) & mask;
        }
    }

    fn remove(&mut self, key: u64, hash: u64) -> Option<u32> {
        let mut hole = self.probe(key, hash)?;
        let val = self.slots[hole].val;
        let mask = self.slots.len() - 1;
        // Backward-shift deletion: walk the cluster after the hole and
        // pull back every entry whose home position does not sit in
        // (hole, idx] — the invariant linear probing needs to keep every
        // surviving key reachable without tombstones. Re-mixing the
        // cluster keys here is fine: clusters are short at ≤ 3/4 load
        // and removes are already the rarest of the three ops.
        let mut idx = (hole + 1) & mask;
        while self.slots[idx].full {
            let home = self.home_of(mix(self.slots[idx].key));
            // "home not in the (hole, idx] window" in wrap-around index
            // arithmetic.
            if (idx.wrapping_sub(home) & mask) >= (idx.wrapping_sub(hole) & mask) {
                self.slots[hole] = self.slots[idx];
                hole = idx;
            }
            idx = (idx + 1) & mask;
        }
        self.slots[hole] = FlatSlot::default();
        self.len -= 1;
        Some(val)
    }

    fn grow(&mut self) {
        let capacity = (self.slots.len() * 2).max(Self::MIN_CAPACITY);
        self.rebuild(capacity);
    }

    fn rebuild(&mut self, capacity: usize) {
        debug_assert!(capacity.is_power_of_two() && capacity * 3 >= self.len * 4);
        let old = std::mem::replace(&mut self.slots, vec![FlatSlot::default(); capacity]);
        let prev_len = self.len;
        self.len = 0;
        for slot in old {
            if slot.full {
                self.insert(slot.key, mix(slot.key), slot.val);
            }
        }
        debug_assert_eq!(self.len, prev_len);
    }

    fn trim(&mut self) {
        if self.len == 0 {
            if !self.slots.is_empty() {
                self.slots = Vec::new();
            }
            return;
        }
        if self.slots.len() > 64 && self.slots.len() / 4 > self.len {
            // Smallest power of two keeping the load under 3/4.
            let capacity = (self.len * 2).next_power_of_two().max(Self::MIN_CAPACITY);
            if capacity < self.slots.len() {
                self.rebuild(capacity);
            }
        }
    }
}

/// The flat directory layout: lock stripes of open-addressing tables
/// (see [`FlatStripe`]'s invariants above).
pub struct StripedFlatDirectory {
    stripes: Vec<Mutex<FlatStripe>>,
    entries: AtomicUsize,
}

impl StripedFlatDirectory {
    /// Creates a directory with `stripes` lock stripes (clamped to at
    /// least one). Slot arrays are allocated lazily on first bind.
    pub fn new(stripes: usize) -> Self {
        StripedFlatDirectory {
            stripes: (0..stripes.max(1))
                .map(|_| Mutex::new(FlatStripe::default()))
                .collect(),
            entries: AtomicUsize::new(0),
        }
    }

    /// One splitmix round serves both placements: stripe index from the
    /// low bits, probe start ([`FlatStripe::home_of`]) from the high
    /// half.
    fn place(&self, corr: u64) -> (usize, u64) {
        let hash = mix(corr);
        ((hash % self.stripes.len() as u64) as usize, hash)
    }
}

impl DirectoryMap for StripedFlatDirectory {
    fn bind(&self, corr: u64, shard: u32) {
        let (stripe, hash) = self.place(corr);
        if self.stripes[stripe].lock().insert(corr, hash, shard) {
            self.entries.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn bind_batch(&self, corrs: &[u64], shard: u32) {
        match corrs.len() {
            0 => {}
            1 => self.bind(corrs[0], shard),
            _ => {
                for chunk in corrs.chunks(BIND_CHUNK) {
                    let mut slots = [0u16; BIND_CHUNK];
                    let mut hashes = [0u64; BIND_CHUNK];
                    for ((slot, hash), corr) in slots.iter_mut().zip(&mut hashes).zip(chunk) {
                        let (stripe, h) = self.place(*corr);
                        *slot = stripe as u16;
                        *hash = h;
                    }
                    let mut remaining = chunk.len();
                    for stripe in 0..self.stripes.len() {
                        if remaining == 0 {
                            break;
                        }
                        let mut map = None;
                        let mut added = 0usize;
                        for ((corr, slot), hash) in chunk.iter().zip(&slots).zip(&hashes) {
                            if *slot as usize != stripe {
                                continue;
                            }
                            let map = map.get_or_insert_with(|| self.stripes[stripe].lock());
                            if map.insert(*corr, *hash, shard) {
                                added += 1;
                            }
                            remaining -= 1;
                        }
                        if added > 0 {
                            self.entries.fetch_add(added, Ordering::Relaxed);
                        }
                    }
                }
            }
        }
    }

    fn lookup(&self, corr: u64) -> Option<u32> {
        let (stripe, hash) = self.place(corr);
        let stripe = self.stripes[stripe].lock();
        stripe.probe(corr, hash).map(|idx| stripe.slots[idx].val)
    }

    fn remove(&self, corr: u64) -> Option<u32> {
        let (stripe, hash) = self.place(corr);
        let removed = self.stripes[stripe].lock().remove(corr, hash);
        if removed.is_some() {
            self.entries.fetch_sub(1, Ordering::Relaxed);
        }
        removed
    }

    fn len(&self) -> usize {
        self.entries.load(Ordering::Relaxed)
    }

    fn trim(&self) {
        for stripe in &self.stripes {
            stripe.lock().trim();
        }
    }

    fn approx_bytes(&self) -> usize {
        self.stripes
            .iter()
            .map(|s| s.lock().slots.len() * std::mem::size_of::<FlatSlot>())
            .sum()
    }
}

/// Which [`DirectoryMap`] implementation a sink uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DirectoryMapKind {
    /// [`StripedHashDirectory`] — lock stripes of `HashMap`. The
    /// default: `bench_pipeline`'s head-to-head has it ahead of the flat
    /// layout on the bind/lookup/retire cycle (the standard map's
    /// SwissTable probing beats linear probing + backward-shift deletion
    /// here; see `BENCH_pipeline.json`, `directory_flat_speedup`).
    #[default]
    Striped,
    /// [`StripedFlatDirectory`] — lock stripes of open-addressing flat
    /// tables: no per-entry indirection and exact capacity-based memory
    /// accounting, a few percent behind on raw throughput.
    Flat,
}

impl DirectoryMapKind {
    /// Builds a directory of this kind with `stripes` lock stripes.
    pub fn build(self, stripes: usize) -> Box<dyn DirectoryMap> {
        match self {
            DirectoryMapKind::Striped => Box::new(StripedHashDirectory::new(stripes)),
            DirectoryMapKind::Flat => Box::new(StripedFlatDirectory::new(stripes)),
        }
    }

    /// Stable name (CI matrix values, bench labels).
    pub fn name(self) -> &'static str {
        match self {
            DirectoryMapKind::Striped => "striped",
            DirectoryMapKind::Flat => "flat",
        }
    }
}

/// The default directory-map kind, honouring the
/// `DEEPCONTEXT_DIRECTORY_MAP` environment override (`striped` / `flat`)
/// CI uses to run the whole suite under both layouts. Falls back to
/// [`DirectoryMapKind::Striped`] when unset or invalid.
pub fn default_directory_map() -> DirectoryMapKind {
    match std::env::var("DEEPCONTEXT_DIRECTORY_MAP") {
        Ok(v) if v.trim().eq_ignore_ascii_case("striped") => DirectoryMapKind::Striped,
        Ok(v) if v.trim().eq_ignore_ascii_case("flat") => DirectoryMapKind::Flat,
        _ => DirectoryMapKind::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds() -> [(&'static str, Box<dyn DirectoryMap>); 2] {
        [
            ("striped", DirectoryMapKind::Striped.build(4)),
            ("flat", DirectoryMapKind::Flat.build(4)),
        ]
    }

    #[test]
    fn bind_lookup_remove_round_trip() {
        for (name, dir) in kinds() {
            assert!(dir.is_empty(), "{name}");
            dir.bind(7, 3);
            dir.bind(u64::MAX, 1);
            dir.bind(0, 2);
            assert_eq!(dir.lookup(7), Some(3), "{name}");
            assert_eq!(dir.lookup(u64::MAX), Some(1), "{name}");
            assert_eq!(dir.lookup(0), Some(2), "{name}");
            assert_eq!(dir.lookup(8), None, "{name}");
            assert_eq!(dir.len(), 3, "{name}");
            dir.bind(7, 5);
            assert_eq!(dir.lookup(7), Some(5), "{name}: later binds win");
            assert_eq!(dir.len(), 3, "{name}: rebind is not a new entry");
            assert_eq!(dir.remove(7), Some(5), "{name}");
            assert_eq!(dir.remove(7), None, "{name}");
            assert_eq!(dir.lookup(7), None, "{name}");
            assert_eq!(dir.len(), 2, "{name}");
        }
    }

    #[test]
    fn bind_batch_matches_singles() {
        // Spans several BIND_CHUNK chunks and all stripes.
        let corrs: Vec<u64> = (0..1000).map(|n| n * 11).collect();
        for (name, dir) in kinds() {
            dir.bind_batch(&corrs, 6);
            assert_eq!(dir.len(), corrs.len(), "{name}");
            for corr in &corrs {
                assert_eq!(dir.lookup(*corr), Some(6), "{name}: corr {corr}");
            }
            // Re-binding the same batch adds nothing.
            dir.bind_batch(&corrs, 6);
            assert_eq!(dir.len(), corrs.len(), "{name}");
        }
    }

    #[test]
    fn matches_a_std_hashmap_oracle_under_churn() {
        // Deterministic mixed workload: insert / lookup / remove in a
        // pattern that forces flat-table probe clusters and
        // backward-shift deletions, checked slot-for-slot against
        // std::collections::HashMap.
        for (name, dir) in kinds() {
            let mut oracle = std::collections::HashMap::new();
            let mut state = 0x243f_6a88_85a3_08d3u64; // deterministic LCG
            for step in 0..20_000u64 {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                // Small key space so collisions and reuse are common.
                let key = state >> 56;
                match step % 3 {
                    0 | 1 => {
                        let shard = (step % 13) as u32;
                        dir.bind(key, shard);
                        oracle.insert(key, shard);
                    }
                    _ => {
                        assert_eq!(dir.remove(key), oracle.remove(&key), "{name} step {step}");
                    }
                }
                assert_eq!(
                    dir.lookup(key),
                    oracle.get(&key).copied(),
                    "{name} step {step}"
                );
            }
            assert_eq!(dir.len(), oracle.len(), "{name}");
            for (key, shard) in &oracle {
                assert_eq!(dir.lookup(*key), Some(*shard), "{name} final key {key}");
            }
        }
    }

    #[test]
    fn trim_sheds_capacity_and_preserves_entries() {
        for (name, dir) in kinds() {
            let corrs: Vec<u64> = (0..4096).collect();
            dir.bind_batch(&corrs, 1);
            let full = dir.approx_bytes();
            for corr in corrs.iter().skip(16) {
                dir.remove(*corr);
            }
            dir.trim();
            assert!(
                dir.approx_bytes() < full,
                "{name}: trim sheds high-water capacity"
            );
            for corr in corrs.iter().take(16) {
                assert_eq!(dir.lookup(*corr), Some(1), "{name}: survivors intact");
            }
            assert_eq!(dir.len(), 16, "{name}");
            // Empty stripes shed down to (at most) the sub-trim-threshold
            // residue — the flat layout releases its tables entirely.
            for corr in corrs.iter().take(16) {
                dir.remove(*corr);
            }
            dir.trim();
            assert!(dir.is_empty(), "{name}");
            assert!(
                dir.approx_bytes() <= 64 * DIR_ENTRY_BYTES,
                "{name}: empty directory keeps at most the trim threshold"
            );
            if name == "flat" {
                assert_eq!(dir.approx_bytes(), 0, "flat: empty stripes hold no slots");
            }
        }
    }

    #[test]
    fn concurrent_binds_and_lookups_agree() {
        for (name, dir) in kinds() {
            let dir = &dir;
            std::thread::scope(|scope| {
                for t in 0..8u64 {
                    scope.spawn(move || {
                        let base = t * 10_000;
                        let corrs: Vec<u64> = (base..base + 500).collect();
                        dir.bind_batch(&corrs, t as u32);
                        for corr in &corrs {
                            assert_eq!(dir.lookup(*corr), Some(t as u32));
                        }
                        for corr in corrs.iter().step_by(2) {
                            assert_eq!(dir.remove(*corr), Some(t as u32));
                        }
                    });
                }
            });
            assert_eq!(dir.len(), 8 * 250, "{name}");
        }
    }

    #[test]
    fn env_override_selects_kind() {
        // Serialized by being the only test touching this variable.
        std::env::set_var("DEEPCONTEXT_DIRECTORY_MAP", "striped");
        assert_eq!(default_directory_map(), DirectoryMapKind::Striped);
        std::env::set_var("DEEPCONTEXT_DIRECTORY_MAP", "FLAT");
        assert_eq!(default_directory_map(), DirectoryMapKind::Flat);
        std::env::set_var("DEEPCONTEXT_DIRECTORY_MAP", "bogus");
        assert_eq!(default_directory_map(), DirectoryMapKind::default());
        std::env::remove_var("DEEPCONTEXT_DIRECTORY_MAP");
        assert_eq!(default_directory_map(), DirectoryMapKind::default());
    }
}
