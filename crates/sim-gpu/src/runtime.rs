//! The simulated GPU runtime: devices, streams, launches, memory, and the
//! profiling hooks (callbacks + buffered activities).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use deepcontext_core::{TimeNs, VirtualClock};

use crate::activity::{Activity, ActivityKind};
use crate::callback::{ApiKind, CallbackData, CallbackSite, SubscriberId};
use crate::cost::kernel_cost;
use crate::error::GpuError;
use crate::kernel::KernelDesc;
use crate::sampling::{sample_kernel, SamplingConfig};
use crate::spec::DeviceSpec;

/// Host↔device transfer bandwidth (PCIe/NVLink blend), bytes/s.
const TRANSFER_BANDWIDTH: f64 = 25e9;

/// Identifier of a device within one runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DeviceId(pub u32);

/// Identifier of a stream within one device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StreamId(pub u32);

/// Correlation id linking API callbacks to activity records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CorrelationId(pub u64);

/// An opaque device memory pointer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DevicePtr(pub u64);

struct DeviceState {
    spec: DeviceSpec,
    /// Per-stream "busy until" horizon.
    streams: Vec<TimeNs>,
    allocated: u64,
    allocations: HashMap<u64, u64>,
    next_ptr: u64,
    busy_total: TimeNs,
    kernel_count: u64,
}

impl DeviceState {
    fn new(spec: DeviceSpec) -> Self {
        DeviceState {
            spec,
            streams: vec![TimeNs::ZERO], // default stream 0
            allocated: 0,
            allocations: HashMap::new(),
            next_ptr: 0x10_0000,
            busy_total: TimeNs::ZERO,
            kernel_count: 0,
        }
    }

    fn horizon(&self) -> TimeNs {
        self.streams.iter().copied().max().unwrap_or(TimeNs::ZERO)
    }
}

type Callback = Arc<dyn Fn(&CallbackData) + Send + Sync>;
type ActivityHandler = Arc<dyn Fn(Vec<Activity>) + Send + Sync>;

/// The simulated GPU runtime.
///
/// One runtime hosts one or more devices (all of the same vendor in
/// practice, like a real driver stack). It exposes the CUPTI-like
/// subscriber interface used by DLMonitor and the profiler.
///
/// # Examples
///
/// ```
/// use sim_gpu::{DeviceSpec, GpuRuntime, KernelDesc, LaunchConfig, DeviceId, StreamId};
/// use deepcontext_core::VirtualClock;
/// use std::sync::Arc;
///
/// let clock = VirtualClock::new();
/// let gpu = GpuRuntime::new(clock.clone(), vec![DeviceSpec::a100_sxm()]);
/// let kernel = Arc::new(
///     KernelDesc::new("sgemm", "libtorch_cuda.so", 0x100, LaunchConfig::new(256, 256))
///         .with_flops(1e9),
/// );
/// let corr = gpu.launch_kernel(DeviceId(0), StreamId(0), kernel)?;
/// gpu.synchronize(DeviceId(0))?;
/// assert!(gpu.device_busy_time(DeviceId(0))?.as_nanos() > 0);
/// # let _ = corr;
/// # Ok::<(), sim_gpu::GpuError>(())
/// ```
pub struct GpuRuntime {
    clock: VirtualClock,
    devices: Mutex<Vec<DeviceState>>,
    callbacks: RwLock<Vec<(SubscriberId, Callback)>>,
    next_subscriber: AtomicU64,
    next_correlation: AtomicU64,
    buffer: Mutex<Vec<Activity>>,
    buffer_capacity: AtomicU64,
    activity_handler: RwLock<Option<ActivityHandler>>,
    sampling: RwLock<Option<SamplingConfig>>,
}

impl GpuRuntime {
    /// Creates a runtime hosting `specs` devices.
    pub fn new(clock: VirtualClock, specs: Vec<DeviceSpec>) -> Arc<Self> {
        Arc::new(GpuRuntime {
            clock,
            devices: Mutex::new(specs.into_iter().map(DeviceState::new).collect()),
            callbacks: RwLock::new(Vec::new()),
            next_subscriber: AtomicU64::new(0),
            next_correlation: AtomicU64::new(0),
            buffer: Mutex::new(Vec::new()),
            buffer_capacity: AtomicU64::new(8192),
            activity_handler: RwLock::new(None),
            sampling: RwLock::new(None),
        })
    }

    /// The runtime's virtual clock.
    pub fn clock(&self) -> &VirtualClock {
        &self.clock
    }

    /// Number of devices.
    pub fn device_count(&self) -> usize {
        self.devices.lock().len()
    }

    /// The spec of a device.
    ///
    /// # Errors
    ///
    /// Returns [`GpuError::NoSuchDevice`] for unknown ids.
    pub fn device_spec(&self, device: DeviceId) -> Result<DeviceSpec, GpuError> {
        self.devices
            .lock()
            .get(device.0 as usize)
            .map(|d| d.spec.clone())
            .ok_or(GpuError::NoSuchDevice(device.0))
    }

    /// Subscribes to API callbacks (the `cuptiSubscribe` analogue).
    pub fn subscribe(&self, cb: impl Fn(&CallbackData) + Send + Sync + 'static) -> SubscriberId {
        let id = SubscriberId(self.next_subscriber.fetch_add(1, Ordering::SeqCst));
        self.callbacks.write().push((id, Arc::new(cb)));
        id
    }

    /// Removes a subscriber.
    pub fn unsubscribe(&self, id: SubscriberId) {
        self.callbacks.write().retain(|(sid, _)| *sid != id);
    }

    /// Installs the buffer-completed handler for activity delivery.
    pub fn set_activity_handler(&self, handler: impl Fn(Vec<Activity>) + Send + Sync + 'static) {
        *self.activity_handler.write() = Some(Arc::new(handler));
    }

    /// Sets the activity buffer capacity; a full buffer is handed to the
    /// activity handler automatically.
    pub fn set_buffer_capacity(&self, capacity: usize) {
        self.buffer_capacity
            .store(capacity as u64, Ordering::SeqCst);
    }

    /// Enables (`Some`) or disables (`None`) instruction sampling.
    pub fn set_sampling(&self, config: Option<SamplingConfig>) {
        *self.sampling.write() = config;
    }

    /// Creates an additional stream on `device`.
    ///
    /// # Errors
    ///
    /// Returns [`GpuError::NoSuchDevice`] for unknown devices.
    pub fn create_stream(&self, device: DeviceId) -> Result<StreamId, GpuError> {
        let mut devices = self.devices.lock();
        let dev = devices
            .get_mut(device.0 as usize)
            .ok_or(GpuError::NoSuchDevice(device.0))?;
        dev.streams.push(TimeNs::ZERO);
        Ok(StreamId(dev.streams.len() as u32 - 1))
    }

    /// Ensures `device` has at least `count` streams, creating any
    /// missing ones (multi-stream workloads declare how many streams
    /// they launch into; harnesses call this before running them).
    ///
    /// # Errors
    ///
    /// Returns [`GpuError::NoSuchDevice`] for unknown devices.
    pub fn ensure_streams(&self, device: DeviceId, count: usize) -> Result<(), GpuError> {
        let mut devices = self.devices.lock();
        let dev = devices
            .get_mut(device.0 as usize)
            .ok_or(GpuError::NoSuchDevice(device.0))?;
        while dev.streams.len() < count {
            dev.streams.push(TimeNs::ZERO);
        }
        Ok(())
    }

    fn fire(&self, data: &CallbackData) {
        // Snapshot so callbacks may (un)subscribe re-entrantly.
        let cbs: Vec<Callback> = self
            .callbacks
            .read()
            .iter()
            .map(|(_, c)| Arc::clone(c))
            .collect();
        for cb in cbs {
            cb(data);
        }
    }

    fn push_activity(&self, activity: Activity) {
        let cap = self.buffer_capacity.load(Ordering::SeqCst) as usize;
        let full = {
            let mut buf = self.buffer.lock();
            buf.push(activity);
            buf.len() >= cap
        };
        if full {
            let drained = std::mem::take(&mut *self.buffer.lock());
            if let Some(handler) = self.activity_handler.read().clone() {
                handler(drained);
            } else {
                // No handler: drop records (a real tracer would overwrite).
            }
        }
    }

    /// Launches `kernel` on `device`/`stream`, returning the correlation
    /// id. Fires Enter/Exit callbacks, schedules the kernel on the stream
    /// timeline, and buffers the kernel (and optional sampling) activity.
    ///
    /// # Errors
    ///
    /// Returns [`GpuError::NoSuchDevice`] / [`GpuError::NoSuchStream`] for
    /// bad targets.
    pub fn launch_kernel(
        &self,
        device: DeviceId,
        stream: StreamId,
        kernel: Arc<KernelDesc>,
    ) -> Result<CorrelationId, GpuError> {
        let corr = CorrelationId(self.next_correlation.fetch_add(1, Ordering::SeqCst) + 1);
        let enter = CallbackData {
            site: CallbackSite::Enter,
            api: ApiKind::LaunchKernel,
            correlation_id: corr,
            device,
            stream: Some(stream),
            kernel: Some(Arc::clone(&kernel)),
            bytes: None,
            timestamp: self.clock.now(),
        };
        self.fire(&enter);

        // CPU-side cost of the driver call, then async scheduling.
        let (activity, sampling_activity) = {
            let mut devices = self.devices.lock();
            let dev = devices
                .get_mut(device.0 as usize)
                .ok_or(GpuError::NoSuchDevice(device.0))?;
            if stream.0 as usize >= dev.streams.len() {
                return Err(GpuError::NoSuchStream(stream.0));
            }
            self.clock.advance(TimeNs(dev.spec.launch_overhead_ns));
            let cost = kernel_cost(&dev.spec, &kernel);
            let start = self.clock.now().max(dev.streams[stream.0 as usize]);
            let end = start + cost.duration;
            dev.streams[stream.0 as usize] = end;
            dev.busy_total += cost.duration;
            dev.kernel_count += 1;

            let activity = Activity {
                correlation_id: corr,
                device,
                kind: ActivityKind::Kernel {
                    name: Arc::clone(&kernel.name),
                    module: Arc::clone(&kernel.module),
                    entry_pc: kernel.entry_pc,
                    stream,
                    start,
                    end,
                    blocks: cost.blocks,
                    warps: cost.warps,
                    occupancy: cost.occupancy,
                    shared_mem_per_block: kernel.shared_mem_per_block,
                    registers_per_thread: kernel.registers_per_thread,
                },
            };
            let sampling_activity = self.sampling.read().as_ref().and_then(|cfg| {
                let samples = sample_kernel(&kernel.instruction_profile, cost.duration, cfg, corr);
                if samples.is_empty() {
                    None
                } else {
                    Some(Activity {
                        correlation_id: corr,
                        device,
                        kind: ActivityKind::PcSampling {
                            name: Arc::clone(&kernel.name),
                            samples,
                        },
                    })
                }
            });
            (activity, sampling_activity)
        };
        self.push_activity(activity);
        if let Some(sa) = sampling_activity {
            self.push_activity(sa);
        }

        let exit = CallbackData {
            site: CallbackSite::Exit,
            timestamp: self.clock.now(),
            ..enter
        };
        self.fire(&exit);
        Ok(corr)
    }

    /// Enqueues an async host↔device copy of `bytes`.
    ///
    /// # Errors
    ///
    /// Returns [`GpuError::NoSuchDevice`] / [`GpuError::NoSuchStream`] for
    /// bad targets.
    pub fn memcpy_async(
        &self,
        device: DeviceId,
        stream: StreamId,
        bytes: u64,
    ) -> Result<CorrelationId, GpuError> {
        let corr = CorrelationId(self.next_correlation.fetch_add(1, Ordering::SeqCst) + 1);
        let enter = CallbackData {
            site: CallbackSite::Enter,
            api: ApiKind::MemcpyAsync,
            correlation_id: corr,
            device,
            stream: Some(stream),
            kernel: None,
            bytes: Some(bytes),
            timestamp: self.clock.now(),
        };
        self.fire(&enter);

        let activity = {
            let mut devices = self.devices.lock();
            let dev = devices
                .get_mut(device.0 as usize)
                .ok_or(GpuError::NoSuchDevice(device.0))?;
            if stream.0 as usize >= dev.streams.len() {
                return Err(GpuError::NoSuchStream(stream.0));
            }
            self.clock.advance(TimeNs(dev.spec.launch_overhead_ns / 2));
            let duration = TimeNs::from_secs_f64(bytes as f64 / TRANSFER_BANDWIDTH);
            let start = self.clock.now().max(dev.streams[stream.0 as usize]);
            let end = start + duration;
            dev.streams[stream.0 as usize] = end;
            Activity {
                correlation_id: corr,
                device,
                kind: ActivityKind::Memcpy {
                    bytes,
                    stream,
                    start,
                    end,
                },
            }
        };
        self.push_activity(activity);

        let exit = CallbackData {
            site: CallbackSite::Exit,
            timestamp: self.clock.now(),
            ..enter
        };
        self.fire(&exit);
        Ok(corr)
    }

    /// Allocates device memory.
    ///
    /// # Errors
    ///
    /// Returns [`GpuError::OutOfMemory`] if the device is exhausted, and
    /// [`GpuError::NoSuchDevice`] for unknown devices.
    pub fn malloc(&self, device: DeviceId, bytes: u64) -> Result<DevicePtr, GpuError> {
        let corr = CorrelationId(self.next_correlation.fetch_add(1, Ordering::SeqCst) + 1);
        let enter = CallbackData {
            site: CallbackSite::Enter,
            api: ApiKind::MemAlloc,
            correlation_id: corr,
            device,
            stream: None,
            kernel: None,
            bytes: Some(bytes),
            timestamp: self.clock.now(),
        };
        self.fire(&enter);
        let (ptr, activity) = {
            let mut devices = self.devices.lock();
            let dev = devices
                .get_mut(device.0 as usize)
                .ok_or(GpuError::NoSuchDevice(device.0))?;
            let capacity = dev.spec.memory_bytes;
            if dev.allocated + bytes > capacity {
                return Err(GpuError::OutOfMemory {
                    device: device.0,
                    requested: bytes,
                    available: capacity - dev.allocated,
                });
            }
            dev.allocated += bytes;
            let ptr = dev.next_ptr;
            dev.next_ptr += bytes.max(256);
            dev.allocations.insert(ptr, bytes);
            (
                DevicePtr(ptr),
                Activity {
                    correlation_id: corr,
                    device,
                    kind: ActivityKind::Malloc {
                        bytes,
                        at: self.clock.now(),
                    },
                },
            )
        };
        self.push_activity(activity);
        let exit = CallbackData {
            site: CallbackSite::Exit,
            timestamp: self.clock.now(),
            ..enter
        };
        self.fire(&exit);
        Ok(ptr)
    }

    /// Frees device memory.
    ///
    /// # Errors
    ///
    /// Returns [`GpuError::InvalidFree`] for unknown pointers and
    /// [`GpuError::NoSuchDevice`] for unknown devices.
    pub fn free(&self, device: DeviceId, ptr: DevicePtr) -> Result<(), GpuError> {
        let corr = CorrelationId(self.next_correlation.fetch_add(1, Ordering::SeqCst) + 1);
        let (bytes, activity) = {
            let mut devices = self.devices.lock();
            let dev = devices
                .get_mut(device.0 as usize)
                .ok_or(GpuError::NoSuchDevice(device.0))?;
            let bytes = dev
                .allocations
                .remove(&ptr.0)
                .ok_or(GpuError::InvalidFree(ptr.0))?;
            dev.allocated -= bytes;
            (
                bytes,
                Activity {
                    correlation_id: corr,
                    device,
                    kind: ActivityKind::Free {
                        bytes,
                        at: self.clock.now(),
                    },
                },
            )
        };
        let enter = CallbackData {
            site: CallbackSite::Enter,
            api: ApiKind::MemFree,
            correlation_id: corr,
            device,
            stream: None,
            kernel: None,
            bytes: Some(bytes),
            timestamp: self.clock.now(),
        };
        self.fire(&enter);
        self.push_activity(activity);
        let exit = CallbackData {
            site: CallbackSite::Exit,
            timestamp: self.clock.now(),
            ..enter
        };
        self.fire(&exit);
        Ok(())
    }

    /// Blocks (advances virtual time) until all streams of `device` are
    /// idle.
    ///
    /// # Errors
    ///
    /// Returns [`GpuError::NoSuchDevice`] for unknown devices.
    pub fn synchronize(&self, device: DeviceId) -> Result<(), GpuError> {
        let corr = CorrelationId(self.next_correlation.fetch_add(1, Ordering::SeqCst) + 1);
        let enter = CallbackData {
            site: CallbackSite::Enter,
            api: ApiKind::Synchronize,
            correlation_id: corr,
            device,
            stream: None,
            kernel: None,
            bytes: None,
            timestamp: self.clock.now(),
        };
        self.fire(&enter);
        let horizon = {
            let devices = self.devices.lock();
            devices
                .get(device.0 as usize)
                .ok_or(GpuError::NoSuchDevice(device.0))?
                .horizon()
        };
        self.clock.advance_to(horizon);
        let exit = CallbackData {
            site: CallbackSite::Exit,
            timestamp: self.clock.now(),
            ..enter
        };
        self.fire(&exit);
        Ok(())
    }

    /// Drains buffered activities whose completion time is ≤ `now`
    /// (the periodic `cuptiActivityFlushAll(0)` analogue).
    pub fn flush_completed(&self) -> Vec<Activity> {
        let now = self.clock.now();
        let mut buf = self.buffer.lock();
        let (done, pending): (Vec<_>, Vec<_>) = buf
            .drain(..)
            .partition(|a| a.end_time().map(|t| t <= now).unwrap_or(true));
        *buf = pending;
        done
    }

    /// Drains every buffered activity (the flush-on-finalize analogue).
    pub fn flush_all(&self) -> Vec<Activity> {
        std::mem::take(&mut *self.buffer.lock())
    }

    /// Currently buffered (undelivered) activity count.
    pub fn buffered_activities(&self) -> usize {
        self.buffer.lock().len()
    }

    /// Total kernel launches on a device.
    ///
    /// # Errors
    ///
    /// Returns [`GpuError::NoSuchDevice`] for unknown devices.
    pub fn kernel_count(&self, device: DeviceId) -> Result<u64, GpuError> {
        self.devices
            .lock()
            .get(device.0 as usize)
            .map(|d| d.kernel_count)
            .ok_or(GpuError::NoSuchDevice(device.0))
    }

    /// Accumulated busy time across kernels on a device.
    ///
    /// # Errors
    ///
    /// Returns [`GpuError::NoSuchDevice`] for unknown devices.
    pub fn device_busy_time(&self, device: DeviceId) -> Result<TimeNs, GpuError> {
        self.devices
            .lock()
            .get(device.0 as usize)
            .map(|d| d.busy_total)
            .ok_or(GpuError::NoSuchDevice(device.0))
    }

    /// Bytes currently allocated on a device.
    ///
    /// # Errors
    ///
    /// Returns [`GpuError::NoSuchDevice`] for unknown devices.
    pub fn allocated_bytes(&self, device: DeviceId) -> Result<u64, GpuError> {
        self.devices
            .lock()
            .get(device.0 as usize)
            .map(|d| d.allocated)
            .ok_or(GpuError::NoSuchDevice(device.0))
    }
}

impl std::fmt::Debug for GpuRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GpuRuntime")
            .field("devices", &self.device_count())
            .field("buffered_activities", &self.buffered_activities())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{InstructionProfile, LaunchConfig};
    use std::sync::atomic::AtomicUsize;

    fn runtime() -> Arc<GpuRuntime> {
        GpuRuntime::new(VirtualClock::new(), vec![DeviceSpec::a100_sxm()])
    }

    fn kernel(name: &str) -> Arc<KernelDesc> {
        Arc::new(
            KernelDesc::new(name, "libtest.so", 0x100, LaunchConfig::new(512, 256))
                .with_flops(1e10),
        )
    }

    #[test]
    fn launch_fires_enter_and_exit_callbacks_with_kernel_info() {
        let rt = runtime();
        let seen = Arc::new(Mutex::new(Vec::new()));
        let s = Arc::clone(&seen);
        rt.subscribe(move |data| {
            s.lock().push((data.site, data.api, data.correlation_id));
        });
        let corr = rt
            .launch_kernel(DeviceId(0), StreamId(0), kernel("k1"))
            .unwrap();
        let events = seen.lock().clone();
        assert_eq!(events.len(), 2);
        assert_eq!(
            events[0],
            (CallbackSite::Enter, ApiKind::LaunchKernel, corr)
        );
        assert_eq!(events[1], (CallbackSite::Exit, ApiKind::LaunchKernel, corr));
    }

    #[test]
    fn correlation_ids_are_unique_and_increasing() {
        let rt = runtime();
        let a = rt
            .launch_kernel(DeviceId(0), StreamId(0), kernel("a"))
            .unwrap();
        let b = rt
            .launch_kernel(DeviceId(0), StreamId(0), kernel("b"))
            .unwrap();
        let c = rt.memcpy_async(DeviceId(0), StreamId(0), 1024).unwrap();
        assert!(a < b && b < c);
    }

    #[test]
    fn kernels_on_one_stream_serialize() {
        let rt = runtime();
        rt.launch_kernel(DeviceId(0), StreamId(0), kernel("a"))
            .unwrap();
        rt.launch_kernel(DeviceId(0), StreamId(0), kernel("b"))
            .unwrap();
        rt.synchronize(DeviceId(0)).unwrap();
        let acts = rt.flush_all();
        let kernels: Vec<_> = acts
            .iter()
            .filter_map(|a| match &a.kind {
                ActivityKind::Kernel { start, end, .. } => Some((*start, *end)),
                _ => None,
            })
            .collect();
        assert_eq!(kernels.len(), 2);
        assert!(
            kernels[1].0 >= kernels[0].1,
            "second starts after first ends"
        );
    }

    #[test]
    fn kernels_on_different_streams_overlap() {
        let rt = runtime();
        let s1 = rt.create_stream(DeviceId(0)).unwrap();
        rt.launch_kernel(DeviceId(0), StreamId(0), kernel("a"))
            .unwrap();
        rt.launch_kernel(DeviceId(0), s1, kernel("b")).unwrap();
        rt.synchronize(DeviceId(0)).unwrap();
        let acts = rt.flush_all();
        let kernels: Vec<_> = acts
            .iter()
            .filter_map(|a| match &a.kind {
                ActivityKind::Kernel { start, end, .. } => Some((*start, *end)),
                _ => None,
            })
            .collect();
        // Second launch happens a launch-overhead later but before the
        // first kernel completes.
        assert!(kernels[1].0 < kernels[0].1);
    }

    #[test]
    fn synchronize_advances_clock_to_horizon() {
        let rt = runtime();
        rt.launch_kernel(DeviceId(0), StreamId(0), kernel("a"))
            .unwrap();
        let before = rt.clock().now();
        rt.synchronize(DeviceId(0)).unwrap();
        let after = rt.clock().now();
        assert!(after > before);
        // All activities now completed.
        let done = rt.flush_completed();
        assert_eq!(done.len(), 1);
        assert_eq!(rt.buffered_activities(), 0);
    }

    #[test]
    fn flush_completed_leaves_pending_kernels() {
        let rt = runtime();
        rt.launch_kernel(DeviceId(0), StreamId(0), kernel("a"))
            .unwrap();
        // Kernel ends in the future; nothing completed yet.
        let done = rt.flush_completed();
        assert!(done.is_empty());
        assert_eq!(rt.buffered_activities(), 1);
        rt.synchronize(DeviceId(0)).unwrap();
        assert_eq!(rt.flush_completed().len(), 1);
    }

    #[test]
    fn buffer_overflow_invokes_handler() {
        let rt = runtime();
        rt.set_buffer_capacity(4);
        let batches = Arc::new(AtomicUsize::new(0));
        let records = Arc::new(AtomicUsize::new(0));
        let b = Arc::clone(&batches);
        let r = Arc::clone(&records);
        rt.set_activity_handler(move |acts| {
            b.fetch_add(1, Ordering::SeqCst);
            r.fetch_add(acts.len(), Ordering::SeqCst);
        });
        for i in 0..10 {
            rt.launch_kernel(DeviceId(0), StreamId(0), kernel(&format!("k{i}")))
                .unwrap();
        }
        assert_eq!(batches.load(Ordering::SeqCst), 2);
        assert_eq!(records.load(Ordering::SeqCst), 8);
        assert_eq!(rt.buffered_activities(), 2);
    }

    #[test]
    fn malloc_free_accounting_and_oom() {
        let clock = VirtualClock::new();
        let mut spec = DeviceSpec::a100_sxm();
        spec.memory_bytes = 1_000;
        let rt = GpuRuntime::new(clock, vec![spec]);
        let p1 = rt.malloc(DeviceId(0), 600).unwrap();
        assert_eq!(rt.allocated_bytes(DeviceId(0)).unwrap(), 600);
        let err = rt.malloc(DeviceId(0), 600).unwrap_err();
        assert!(matches!(err, GpuError::OutOfMemory { available: 400, .. }));
        rt.free(DeviceId(0), p1).unwrap();
        assert_eq!(rt.allocated_bytes(DeviceId(0)).unwrap(), 0);
        assert!(matches!(
            rt.free(DeviceId(0), p1).unwrap_err(),
            GpuError::InvalidFree(_)
        ));
    }

    #[test]
    fn sampling_produces_pc_activity_when_enabled() {
        let rt = runtime();
        rt.set_sampling(Some(SamplingConfig {
            period: TimeNs(100),
            max_samples_per_kernel: 1000,
        }));
        let k = Arc::new(
            KernelDesc::new("cast", "m.so", 0x10, LaunchConfig::new(2048, 256))
                .with_flops(1e10)
                .with_profile(InstructionProfile::cast_kernel()),
        );
        rt.launch_kernel(DeviceId(0), StreamId(0), k).unwrap();
        rt.synchronize(DeviceId(0)).unwrap();
        let acts = rt.flush_all();
        let sampling: Vec<_> = acts
            .iter()
            .filter(|a| matches!(a.kind, ActivityKind::PcSampling { .. }))
            .collect();
        assert_eq!(sampling.len(), 1);
        // Disabled: no sampling records.
        rt.set_sampling(None);
        let k2 = Arc::new(
            KernelDesc::new("cast2", "m.so", 0x20, LaunchConfig::new(2048, 256))
                .with_flops(1e10)
                .with_profile(InstructionProfile::cast_kernel()),
        );
        rt.launch_kernel(DeviceId(0), StreamId(0), k2).unwrap();
        rt.synchronize(DeviceId(0)).unwrap();
        assert!(rt
            .flush_all()
            .iter()
            .all(|a| !matches!(a.kind, ActivityKind::PcSampling { .. })));
    }

    #[test]
    fn bad_targets_error() {
        let rt = runtime();
        assert!(matches!(
            rt.launch_kernel(DeviceId(9), StreamId(0), kernel("x")),
            Err(GpuError::NoSuchDevice(9))
        ));
        assert!(matches!(
            rt.launch_kernel(DeviceId(0), StreamId(7), kernel("x")),
            Err(GpuError::NoSuchStream(7))
        ));
        assert!(matches!(
            rt.synchronize(DeviceId(3)),
            Err(GpuError::NoSuchDevice(3))
        ));
    }

    #[test]
    fn unsubscribe_stops_callbacks() {
        let rt = runtime();
        let count = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&count);
        let id = rt.subscribe(move |_| {
            c.fetch_add(1, Ordering::SeqCst);
        });
        rt.launch_kernel(DeviceId(0), StreamId(0), kernel("a"))
            .unwrap();
        assert_eq!(count.load(Ordering::SeqCst), 2);
        rt.unsubscribe(id);
        rt.launch_kernel(DeviceId(0), StreamId(0), kernel("b"))
            .unwrap();
        assert_eq!(count.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn kernel_count_and_busy_time_accumulate() {
        let rt = runtime();
        for i in 0..3 {
            rt.launch_kernel(DeviceId(0), StreamId(0), kernel(&format!("k{i}")))
                .unwrap();
        }
        assert_eq!(rt.kernel_count(DeviceId(0)).unwrap(), 3);
        assert!(rt.device_busy_time(DeviceId(0)).unwrap() > TimeNs::ZERO);
    }
}
