//! [`HealthReport`]: the snapshot rolled into the handful of windowed
//! rates an overload controller would act on.
//!
//! The raw registry answers "what happened"; the health report answers
//! "is the profiler keeping up" — drop rate, queue saturation against
//! the configured capacity, worker busy-vs-parked utilization, and
//! latency summaries for the two operations that stall everything else
//! (producer flushes and snapshot folds). The ROADMAP's work-stealing /
//! adaptive-overload direction consumes exactly these signals.

use crate::metrics::HistogramSnapshot;
use crate::names;
use crate::registry::TelemetrySnapshot;

/// A distribution reduced to the four numbers rate decisions need.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DistributionSummary {
    /// Observations in the window.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Median (log₂-bucket upper bound).
    pub p50: u64,
    /// 99th percentile (log₂-bucket upper bound).
    pub p99: u64,
}

impl DistributionSummary {
    /// Reduces a histogram snapshot.
    pub fn from_histogram(h: &HistogramSnapshot) -> DistributionSummary {
        DistributionSummary {
            count: h.count,
            sum: h.sum,
            p50: h.p50(),
            p99: h.p99(),
        }
    }

    /// Exact arithmetic mean; zero when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// One overload edge a [`HealthReport`] is judged against: the report
/// breaches the edge when *either* signal crosses its threshold. A
/// supervisor pairs a trip edge with a stricter recovery edge to get
/// hysteresis on both sides.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthThresholds {
    /// Window drop rate (`events_dropped / events_enqueued`) at or above
    /// which the edge trips.
    pub drop_rate: f64,
    /// Queue saturation (`max_queue_depth / queue_capacity`) at or above
    /// which the edge trips.
    pub queue_saturation: f64,
}

impl HealthThresholds {
    /// Whether `report` crosses either threshold.
    pub fn breached(&self, report: &HealthReport) -> bool {
        report.drop_rate >= self.drop_rate || report.queue_saturation >= self.queue_saturation
    }
}

impl Default for HealthThresholds {
    /// The degrade edge the pipeline supervisor ships with: any drops at
    /// all above 1% of the window, or a shard queue that filled to 90%.
    fn default() -> Self {
        HealthThresholds {
            drop_rate: 0.01,
            queue_saturation: 0.9,
        }
    }
}

/// The profiler's own vital signs over one telemetry window.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct HealthReport {
    /// Window length: nanoseconds from the telemetry epoch (session
    /// start) to the moment the report was taken.
    pub window_ns: u64,
    /// Events accepted into the pipeline.
    pub events_enqueued: u64,
    /// Events evicted by `DropOldest` backpressure.
    pub events_dropped: u64,
    /// `events_dropped / events_enqueued` (0 when nothing was enqueued).
    pub drop_rate: f64,
    /// High-water queue depth across all shards.
    pub max_queue_depth: u64,
    /// The configured per-shard queue capacity (0 in sync mode — there
    /// is no queue).
    pub queue_capacity: u64,
    /// `max_queue_depth / queue_capacity` (0 without a queue) — 1.0
    /// means some shard queue was completely full at least once.
    pub queue_saturation: f64,
    /// Total nanoseconds workers spent draining shards.
    pub worker_busy_ns: u64,
    /// Total nanoseconds workers spent parked waiting for work.
    pub worker_parked_ns: u64,
    /// `busy / (busy + parked)` (0 when no worker ran).
    pub worker_utilization: f64,
    /// Observed queue depths at enqueue time (all shards merged).
    pub queue_depth: DistributionSummary,
    /// Producer batch-flush latency, nanoseconds.
    pub flush_latency: DistributionSummary,
    /// Incremental snapshot fold latency, nanoseconds.
    pub fold_latency: DistributionSummary,
}

impl HealthReport {
    /// Rolls a registry snapshot into the report. `window_ns` is the
    /// caller's measurement window (typically
    /// [`Telemetry::now_ns`](crate::Telemetry::now_ns) at report time).
    pub fn from_snapshot(snapshot: &TelemetrySnapshot, window_ns: u64) -> HealthReport {
        let events_enqueued = snapshot.counter_total(names::EVENTS_ENQUEUED);
        let events_dropped = snapshot.counter_total(names::EVENTS_DROPPED);
        let drop_rate = if events_enqueued == 0 {
            0.0
        } else {
            events_dropped as f64 / events_enqueued as f64
        };
        let max_queue_depth = snapshot.gauge_max(names::MAX_QUEUE_DEPTH);
        let queue_capacity = snapshot.gauge_max(names::QUEUE_CAPACITY);
        let queue_saturation = if queue_capacity == 0 {
            0.0
        } else {
            max_queue_depth as f64 / queue_capacity as f64
        };
        let worker_busy_ns = snapshot.counter_total(names::WORKER_BUSY_NS);
        let worker_parked_ns = snapshot.counter_total(names::WORKER_PARKED_NS);
        let worker_total = worker_busy_ns + worker_parked_ns;
        let worker_utilization = if worker_total == 0 {
            0.0
        } else {
            worker_busy_ns as f64 / worker_total as f64
        };
        HealthReport {
            window_ns,
            events_enqueued,
            events_dropped,
            drop_rate,
            max_queue_depth,
            queue_capacity,
            queue_saturation,
            worker_busy_ns,
            worker_parked_ns,
            worker_utilization,
            queue_depth: DistributionSummary::from_histogram(
                &snapshot.histogram_merged(names::QUEUE_DEPTH),
            ),
            flush_latency: DistributionSummary::from_histogram(
                &snapshot.histogram_merged(names::FLUSH_LATENCY_NS),
            ),
            fold_latency: DistributionSummary::from_histogram(
                &snapshot.histogram_merged(names::FOLD_LATENCY_NS),
            ),
        }
    }

    /// Enqueue rate over the window, events per second.
    pub fn enqueue_rate(&self) -> f64 {
        if self.window_ns == 0 {
            0.0
        } else {
            self.events_enqueued as f64 / (self.window_ns as f64 / 1e9)
        }
    }

    /// Whether the report carries no signal at all (telemetry was on
    /// but nothing instrumented ran).
    pub fn is_empty(&self) -> bool {
        self.events_enqueued == 0
            && self.events_dropped == 0
            && self.queue_depth.count == 0
            && self.flush_latency.count == 0
            && self.fold_latency.count == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Telemetry;

    #[test]
    fn empty_snapshot_rolls_into_an_empty_report() {
        let report = HealthReport::from_snapshot(&Telemetry::new().snapshot(), 0);
        assert!(report.is_empty());
        assert_eq!(report.drop_rate, 0.0);
        assert_eq!(report.worker_utilization, 0.0);
        assert_eq!(report.enqueue_rate(), 0.0);
    }

    #[test]
    fn thresholds_trip_on_either_signal() {
        let edge = HealthThresholds {
            drop_rate: 0.1,
            queue_saturation: 0.5,
        };
        let mut report = HealthReport::default();
        assert!(!edge.breached(&report));
        report.drop_rate = 0.2;
        assert!(edge.breached(&report));
        report.drop_rate = 0.0;
        report.queue_saturation = 0.5;
        assert!(edge.breached(&report));
    }

    #[test]
    fn rates_roll_up_from_well_known_names() {
        let t = Telemetry::new();
        t.counter(names::EVENTS_ENQUEUED, &[("shard", "0")]).add(90);
        t.counter(names::EVENTS_ENQUEUED, &[("shard", "1")]).add(10);
        t.counter(names::EVENTS_DROPPED, &[("shard", "1")]).add(25);
        t.gauge(names::MAX_QUEUE_DEPTH, &[]).record_max(64);
        t.gauge(names::QUEUE_CAPACITY, &[]).set(256);
        t.counter(names::WORKER_BUSY_NS, &[("worker", "0")])
            .add(300);
        t.counter(names::WORKER_PARKED_NS, &[("worker", "0")])
            .add(700);
        t.histogram(names::QUEUE_DEPTH, &[("shard", "0")]).record(5);
        t.histogram(names::FLUSH_LATENCY_NS, &[]).record(1_000);
        t.histogram(names::FOLD_LATENCY_NS, &[]).record(2_000);
        let report = HealthReport::from_snapshot(&t.snapshot(), 2_000_000_000);
        assert!(!report.is_empty());
        assert_eq!(report.events_enqueued, 100);
        assert_eq!(report.events_dropped, 25);
        assert!((report.drop_rate - 0.25).abs() < 1e-12);
        assert!((report.queue_saturation - 0.25).abs() < 1e-12);
        assert!((report.worker_utilization - 0.3).abs() < 1e-12);
        assert_eq!(report.queue_depth.count, 1);
        assert_eq!(report.flush_latency.count, 1);
        assert_eq!(report.flush_latency.p99, 1_023);
        assert_eq!(report.fold_latency.count, 1);
        assert!((report.enqueue_rate() - 50.0).abs() < 1e-9);
        assert!((report.flush_latency.mean() - 1_000.0).abs() < 1e-9);
    }
}
