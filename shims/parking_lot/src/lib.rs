//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! ships a minimal API-compatible subset implemented over `std::sync`
//! primitives. Semantics match what the rest of the workspace relies on:
//! `lock()`/`read()`/`write()` never return `Result` and never poison —
//! a panicked holder simply releases the lock for the next acquirer.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;

/// A non-poisoning mutual-exclusion lock.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized>(std::sync::MutexGuard<'a, T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(PoisonError::into_inner))
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard(p.into_inner())),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_tuple("Mutex").field(&&*guard).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// A non-poisoning reader-writer lock.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

/// Exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(PoisonError::into_inner))
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4);
        }
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn lock_survives_panicked_holder() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: no poisoning, lock still usable.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
