//! Self-telemetry: the profiler watching its own pipeline.
//!
//! DeepContext's pitch is low-overhead always-on profiling, but the
//! profiler's own behavior — queue-depth dynamics, flush latencies,
//! drop bursts, worker utilization — is invisible in end-of-run
//! aggregates. This crate is the introspection layer the rest of the
//! workspace instruments itself with:
//!
//! * [`Telemetry`] / [`Registry`] — a lock-striped registry of atomic
//!   [`Counter`]s, [`Gauge`]s, and log₂-bucketed [`Histogram`]s.
//!   Instrumented code registers once (taking a stripe lock) and holds
//!   `Arc` handles; per-event observations are a single relaxed atomic
//!   add. Disabled telemetry is the absence of the handle — an
//!   `Option<Telemetry>` branch is the entire cost.
//! * [`TelemetrySnapshot`] — a sorted, immutable copy of every metric,
//!   with [Prometheus text exposition](TelemetrySnapshot::to_prometheus)
//!   and [JSON](TelemetrySnapshot::to_json) exporters.
//! * [`HealthReport`] — the snapshot rolled into windowed rates (drop
//!   rate, queue saturation, worker utilization, flush/fold latency
//!   summaries) for programmatic overload decisions.
//! * [`Journal`] — the incident journal: a bounded, lock-striped ring
//!   of structured lifecycle events (supervisor transitions, shard
//!   quarantines, drop storms, store retries, failpoint fires) that
//!   persists with the profile and is cited by the analyzer.
//! * [`names`] — the well-known metric names shared between the
//!   instrumentation sites and the report.
//!
//! Recording is wired behind `ProfilerConfig::telemetry` (default off;
//! the `DEEPCONTEXT_TELEMETRY` environment variable flips the default —
//! see [`default_telemetry_config`]). The *self-timeline* — worker
//! batches, producer flushes, and snapshot folds as intervals on a
//! reserved timeline track — rides on the same config's
//! [`self_timeline`](TelemetryConfig::self_timeline) switch and the
//! existing `crates/timeline` ring machinery.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod export;
pub mod health;
pub mod journal;
pub mod metrics;
pub mod registry;

pub use export::{escape_label_value, sanitize_label_name, sanitize_metric_name};
pub use health::{DistributionSummary, HealthReport, HealthThresholds};
pub use journal::{
    default_journal_config, default_journal_enabled, journal_sites, Journal, JournalConfig,
    JournalSeverity, DEFAULT_JOURNAL_CAPACITY,
};
pub use metrics::{
    bucket_upper_bound, Counter, Gauge, Histogram, HistogramSnapshot, HISTOGRAM_BUCKETS,
};
pub use registry::{MetricSample, MetricValue, Registry, Telemetry, TelemetrySnapshot};

/// Well-known metric names: the vocabulary shared by the pipeline /
/// profiler / analyzer instrumentation sites, [`HealthReport`], and the
/// bench snapshot embeds. All names use the `deepcontext_` prefix so a
/// Prometheus scrape of a co-hosted process stays collision-free.
pub mod names {
    /// Counter: events accepted into the async pipeline.
    pub const EVENTS_ENQUEUED: &str = "deepcontext_pipeline_events_enqueued_total";
    /// Counter: events dropped (evicted by `DropOldest`, or lost to a
    /// shutdown race).
    pub const EVENTS_DROPPED: &str = "deepcontext_pipeline_events_dropped_total";
    /// Histogram, label `shard`: queue depth observed at enqueue time.
    pub const QUEUE_DEPTH: &str = "deepcontext_pipeline_queue_depth";
    /// Gauge: high-water queue depth across shards.
    pub const MAX_QUEUE_DEPTH: &str = "deepcontext_pipeline_max_queue_depth";
    /// Gauge: configured per-shard queue capacity (absent in sync mode).
    pub const QUEUE_CAPACITY: &str = "deepcontext_pipeline_queue_capacity";
    /// Histogram: events per producer batch flush.
    pub const FLUSH_SIZE: &str = "deepcontext_pipeline_flush_size";
    /// Histogram: producer batch-flush latency, nanoseconds.
    pub const FLUSH_LATENCY_NS: &str = "deepcontext_pipeline_flush_latency_ns";
    /// Histogram: shard-lock hold time on the attribution paths,
    /// nanoseconds.
    pub const SHARD_LOCK_HOLD_NS: &str = "deepcontext_pipeline_shard_lock_hold_ns";
    /// Counter, label `worker`: nanoseconds spent draining shards.
    pub const WORKER_BUSY_NS: &str = "deepcontext_pipeline_worker_busy_ns_total";
    /// Counter, label `worker`: nanoseconds spent parked.
    pub const WORKER_PARKED_NS: &str = "deepcontext_pipeline_worker_parked_ns_total";
    /// Histogram, label `worker`: events applied per worker wake.
    pub const WORKER_BATCH_SIZE: &str = "deepcontext_pipeline_worker_batch_size";
    /// Histogram: incremental snapshot fold latency, nanoseconds.
    pub const FOLD_LATENCY_NS: &str = "deepcontext_snapshot_fold_latency_ns";
    /// Gauge: approximate interner footprint, bytes.
    pub const INTERNER_BYTES: &str = "deepcontext_interner_bytes";
    /// Gauge: approximate timeline ring footprint, bytes.
    pub const TIMELINE_RING_BYTES: &str = "deepcontext_timeline_ring_bytes";
    /// Histogram: `ProfileStore::save` latency, nanoseconds.
    pub const STORE_SAVE_LATENCY_NS: &str = "deepcontext_store_save_latency_ns";
    /// Histogram: `ProfileStore::load` latency, nanoseconds.
    pub const STORE_LOAD_LATENCY_NS: &str = "deepcontext_store_load_latency_ns";
    /// Counter: worker panics caught by the pipeline's fault isolation
    /// (each quarantines the shard whose apply unwound).
    pub const WORKER_PANICS: &str = "deepcontext_pipeline_worker_panics_total";
    /// Counter: events accounted to the synthetic `<poisoned>` context
    /// after arriving at a quarantined shard.
    pub const EVENTS_POISONED: &str = "deepcontext_pipeline_events_poisoned_total";
    /// Counter: supervisor state transitions (every edge of
    /// `Healthy ⇄ Degraded ⇄ Bypass`).
    pub const SUPERVISOR_TRANSITIONS: &str = "deepcontext_supervisor_transitions_total";
    /// Gauge: current supervisor state (0 = Healthy, 1 = Degraded,
    /// 2 = Bypass).
    pub const SUPERVISOR_STATE: &str = "deepcontext_supervisor_state";
    /// Counter: events admitted by the supervisor's 1-in-N sampler while
    /// `Degraded` (rescale by the recorded sample rate for estimates).
    pub const SUPERVISOR_SAMPLED_EVENTS: &str = "deepcontext_supervisor_sampled_events_total";
    /// Counter: events rejected by the sampler while `Degraded`.
    pub const SUPERVISOR_REJECTED_EVENTS: &str = "deepcontext_supervisor_rejected_events_total";
    /// Counter: events discarded outright while `Bypass`.
    pub const SUPERVISOR_BYPASSED_EVENTS: &str = "deepcontext_supervisor_bypassed_events_total";
    /// Counter: lifecycle events recorded by the incident journal
    /// (kept + evicted — the conservation total).
    pub const JOURNAL_RECORDED: &str = "deepcontext_journal_recorded_total";
    /// Counter: journal events evicted by ring overflow.
    pub const JOURNAL_EVICTED: &str = "deepcontext_journal_evicted_total";
}

/// Self-telemetry knobs (the `ProfilerConfig::telemetry` field).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Whether the profiler records metrics about itself at all. Off by
    /// default: the disabled path is an `Option` branch per
    /// instrumentation site.
    pub enabled: bool,
    /// Whether worker batches, producer flushes, and snapshot folds are
    /// additionally recorded as intervals on the reserved self-timeline
    /// track (requires the timeline itself to be enabled; on by default
    /// *when* telemetry is on).
    pub self_timeline: bool,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            enabled: false,
            self_timeline: true,
        }
    }
}

impl TelemetryConfig {
    /// An enabled configuration with the self-timeline on.
    pub fn enabled() -> Self {
        TelemetryConfig {
            enabled: true,
            ..TelemetryConfig::default()
        }
    }
}

/// Whether the `DEEPCONTEXT_TELEMETRY` environment override asks for
/// self-telemetry (`1` / `true` / `on`, case-insensitive). Unset or
/// anything else means off — telemetry is strictly opt-in.
pub fn default_telemetry_enabled() -> bool {
    std::env::var("DEEPCONTEXT_TELEMETRY")
        .map(|v| {
            let v = v.trim();
            v == "1" || v.eq_ignore_ascii_case("true") || v.eq_ignore_ascii_case("on")
        })
        .unwrap_or(false)
}

/// The default telemetry configuration, honouring the
/// `DEEPCONTEXT_TELEMETRY` environment override CI uses to run the
/// whole suite with self-telemetry off (unset, the default) and on
/// (`=1`).
pub fn default_telemetry_config() -> TelemetryConfig {
    TelemetryConfig {
        enabled: default_telemetry_enabled(),
        ..TelemetryConfig::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_defaults_off_with_self_timeline_armed() {
        let config = TelemetryConfig::default();
        assert!(!config.enabled);
        assert!(config.self_timeline);
        assert!(TelemetryConfig::enabled().enabled);
    }

    #[test]
    fn from_config_gates_construction() {
        assert!(Telemetry::from_config(&TelemetryConfig::default()).is_none());
        assert!(Telemetry::from_config(&TelemetryConfig::enabled()).is_some());
    }
}
