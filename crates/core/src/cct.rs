//! The calling context tree (paper §4.2, Figure 5).
//!
//! Call paths obtained from DLMonitor are inserted into the tree; frames
//! that refer to the same location collapse into one node (see
//! [`Frame::key`]). Each node carries online metric aggregates; attributing
//! a sample at the bottom of a call path propagates it along the entire
//! path to the root, so every node always holds *inclusive* metrics.

use std::sync::Arc;

use crate::frame::{CallPath, Frame, FrameKey, FrameKind};
use crate::fx::FxHashMap;
use crate::interner::Interner;
use crate::metrics::{MetricKind, MetricStat, MetricStore};

/// Identifier of a node within one [`CallingContextTree`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The root node's id (always 0).
    pub const ROOT: NodeId = NodeId(0);

    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "node#{}", self.0)
    }
}

/// One node of the calling context tree.
#[derive(Debug, Clone)]
pub struct CctNode {
    frame: Frame,
    parent: Option<NodeId>,
    children: Vec<NodeId>,
    metrics: MetricStore,
}

impl CctNode {
    /// The frame this node represents.
    pub fn frame(&self) -> &Frame {
        &self.frame
    }

    /// Parent node (`None` only for the root).
    pub fn parent(&self) -> Option<NodeId> {
        self.parent
    }

    /// Children in first-insertion order.
    pub fn children(&self) -> &[NodeId] {
        &self.children
    }

    /// Inclusive metric aggregates at this context.
    pub fn metrics(&self) -> &MetricStore {
        &self.metrics
    }
}

/// A calling context tree with online metric aggregation.
///
/// See the [crate-level example](crate) for typical use. The tree owns (a
/// handle to) the [`Interner`] used by its frames, so labels can always be
/// resolved.
#[derive(Debug, Clone)]
pub struct CallingContextTree {
    interner: Arc<Interner>,
    nodes: Vec<CctNode>,
    // Fx-hashed: probed once per frame of every inserted call path, on
    // keys (node id + collapse key) that are small and attacker-free.
    child_index: FxHashMap<(NodeId, FrameKey), NodeId>,
}

impl CallingContextTree {
    /// Creates a tree with a fresh interner.
    pub fn new() -> Self {
        Self::with_interner(Interner::new())
    }

    /// Creates a tree sharing an existing interner (the normal case inside a
    /// profiling session, where DLMonitor and the profiler share symbols).
    pub fn with_interner(interner: Arc<Interner>) -> Self {
        CallingContextTree {
            interner,
            nodes: vec![CctNode {
                frame: Frame::Root,
                parent: None,
                children: Vec::new(),
                metrics: MetricStore::new(),
            }],
            child_index: FxHashMap::default(),
        }
    }

    /// The interner shared by this tree's frames.
    pub fn interner(&self) -> Arc<Interner> {
        Arc::clone(&self.interner)
    }

    /// The root node id.
    pub fn root(&self) -> NodeId {
        NodeId::ROOT
    }

    /// Borrow a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this tree.
    pub fn node(&self, id: NodeId) -> &CctNode {
        &self.nodes[id.index()]
    }

    /// Number of nodes, including the root.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Finds the child of `parent` matching `frame`'s collapse key, or
    /// creates it.
    pub fn insert_child(&mut self, parent: NodeId, frame: &Frame) -> NodeId {
        let key = (parent, frame.key());
        if let Some(&child) = self.child_index.get(&key) {
            return child;
        }
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(CctNode {
            frame: frame.clone(),
            parent: Some(parent),
            children: Vec::new(),
            metrics: MetricStore::new(),
        });
        self.nodes[parent.index()].children.push(id);
        self.child_index.insert(key, id);
        id
    }

    /// Inserts a root-to-leaf path, returning the leaf's node id
    /// ("Insert Call Path" in the paper's Figure 5).
    pub fn insert_path(&mut self, path: &[Frame]) -> NodeId {
        let mut cur = self.root();
        for frame in path {
            cur = self.insert_child(cur, frame);
        }
        cur
    }

    /// Inserts a [`CallPath`], returning the leaf node.
    pub fn insert_call_path(&mut self, path: &CallPath) -> NodeId {
        self.insert_path(path.frames())
    }

    /// Adds a metric sample at `node` and propagates it to the root
    /// ("Propagate Metrics" in Figure 5). Every ancestor's aggregate —
    /// including the root — receives the sample, so each node holds
    /// inclusive metrics.
    pub fn attribute(&mut self, node: NodeId, kind: MetricKind, value: f64) {
        let mut cur = Some(node);
        while let Some(id) = cur {
            let n = &mut self.nodes[id.index()];
            n.metrics.add(kind, value);
            cur = n.parent;
        }
    }

    /// Adds a metric sample at `node` only, without propagation (used for
    /// exclusive bookkeeping such as per-node launch parameters).
    pub fn attribute_exclusive(&mut self, node: NodeId, kind: MetricKind, value: f64) {
        self.nodes[node.index()].metrics.add(kind, value);
    }

    /// The aggregate of `kind` at `node`.
    pub fn metric(&self, node: NodeId, kind: MetricKind) -> Option<&MetricStat> {
        self.nodes[node.index()].metrics.get(kind)
    }

    /// The aggregate of `kind` at the root (i.e. the whole-program total).
    pub fn root_metric(&self, kind: MetricKind) -> Option<&MetricStat> {
        self.metric(self.root(), kind)
    }

    /// Root-level inclusive sum of `kind` (0 when absent).
    pub fn total(&self, kind: MetricKind) -> f64 {
        self.nodes[0].metrics.sum(kind)
    }

    /// The path of node ids from the root to `node`, root first.
    pub fn path_to_root(&self, node: NodeId) -> Vec<NodeId> {
        let mut ids = Vec::new();
        let mut cur = Some(node);
        while let Some(id) = cur {
            ids.push(id);
            cur = self.nodes[id.index()].parent;
        }
        ids.reverse();
        ids
    }

    /// The frames from the root (exclusive) down to `node`, root-side first.
    pub fn frames_to_root(&self, node: NodeId) -> CallPath {
        self.path_to_root(node)
            .into_iter()
            .skip(1) // omit the synthetic root frame
            .map(|id| self.nodes[id.index()].frame.clone())
            .collect()
    }

    /// Depth of `node` (root = 0).
    pub fn depth(&self, node: NodeId) -> usize {
        self.path_to_root(node).len() - 1
    }

    /// Iterates all node ids in depth-first (pre-order) order.
    pub fn dfs(&self) -> Dfs<'_> {
        Dfs {
            tree: self,
            stack: vec![self.root()],
        }
    }

    /// Iterates all node ids in breadth-first order (used by the analyzer's
    /// BFS-based rules).
    pub fn bfs(&self) -> Bfs<'_> {
        Bfs {
            tree: self,
            queue: std::collections::VecDeque::from([self.root()]),
        }
    }

    /// All node ids whose frame kind is `kind` (e.g. every GPU kernel node,
    /// the `call_tree.kernels` accessor of the paper's analysis snippets).
    pub fn nodes_of_kind(&self, kind: FrameKind) -> Vec<NodeId> {
        self.dfs()
            .filter(|id| self.node(*id).frame.kind() == kind)
            .collect()
    }

    /// All leaf node ids.
    pub fn leaves(&self) -> Vec<NodeId> {
        self.dfs()
            .filter(|id| self.node(*id).children.is_empty())
            .collect()
    }

    /// Merges `other` into `self`: contexts are unified by collapse keys and
    /// metric aggregates (inclusive and exclusive alike — both live in the
    /// per-node [`MetricStore`]) are merged node-wise, so exclusive metrics
    /// stay on their node and never propagate root-ward.
    ///
    /// Returns the node mapping: entry `i` is the id in `self` that
    /// `other`'s node `i` collapsed into. Callers holding per-tree side
    /// state keyed by [`NodeId`] — correlation maps in
    /// [`CctShard`](crate::CctShard), cached hot nodes — remap it through
    /// this table. Used to fold per-thread/per-stream shards into a master
    /// tree.
    ///
    /// `other` may use a different interner (e.g. a tree loaded from a
    /// stored profile): its frames are re-interned into `self`'s
    /// interner on the way in, so contexts still unify by the strings
    /// they denote. Same-interner merges (the shard fold path) skip
    /// that work entirely.
    pub fn merge(&mut self, other: &CallingContextTree) -> Vec<NodeId> {
        let foreign = !Arc::ptr_eq(&self.interner, &other.interner);
        // Map other's node ids to ours, walking other's tree top-down
        // (parents always precede children in the node vector).
        let mut mapping: Vec<NodeId> = Vec::with_capacity(other.nodes.len());
        for (idx, node) in other.nodes.iter().enumerate() {
            let my_id = if idx == 0 {
                self.root()
            } else {
                let my_parent = mapping[node.parent.expect("non-root has parent").index()];
                if foreign {
                    self.insert_child(
                        my_parent,
                        &node.frame.reintern(&other.interner, &self.interner),
                    )
                } else {
                    self.insert_child(my_parent, &node.frame)
                }
            };
            mapping.push(my_id);
            self.nodes[my_id.index()].metrics.merge(&node.metrics);
        }
        mapping
    }

    /// Incrementally folds `other` into `self`, resuming from `state`.
    ///
    /// The first call with a fresh [`FoldState`] is equivalent to
    /// [`merge`](Self::merge). Subsequent calls against a *grown* `other`
    /// (CCT shards only ever gain nodes and samples during profiling)
    /// fold in only what changed since the previous call: new contexts
    /// are inserted, and per-node aggregates advance by their
    /// [`MetricStore::merge_delta`] — unchanged nodes cost one equality
    /// check and contribute nothing. This is what makes cached profile
    /// snapshots O(dirty shards) instead of O(shards × tree).
    ///
    /// `state` must only ever be used with the same `(self, other)` pair,
    /// and `other` must evolve append-only between calls (no node or
    /// sample removal); both are upheld by the profiler's snapshot cache.
    pub fn merge_incremental(&mut self, other: &CallingContextTree, state: &mut FoldState) {
        let foreign = !Arc::ptr_eq(&self.interner, &other.interner);
        for (idx, node) in other.nodes.iter().enumerate() {
            let my_id = if idx < state.mapping.len() {
                state.mapping[idx]
            } else if idx == 0 {
                state.mapping.push(self.root());
                self.root()
            } else {
                let my_parent = state.mapping[node.parent.expect("non-root has parent").index()];
                let id = if foreign {
                    self.insert_child(
                        my_parent,
                        &node.frame.reintern(&other.interner, &self.interner),
                    )
                } else {
                    self.insert_child(my_parent, &node.frame)
                };
                state.mapping.push(id);
                id
            };
            if let Some(folded) = state.folded.get_mut(idx) {
                if *folded == node.metrics {
                    continue;
                }
                self.nodes[my_id.index()]
                    .metrics
                    .merge_delta(&node.metrics, folded);
                folded.clone_from(&node.metrics);
            } else {
                self.nodes[my_id.index()].metrics.merge(&node.metrics);
                state.folded.push(node.metrics.clone());
            }
        }
    }

    /// Compares two trees for *semantic* equality: the same contexts
    /// (matched by collapse key, ignoring node ids and child insertion
    /// order) carrying the same aggregates. Counts compare exactly;
    /// sums, extrema, means and standard deviations compare within
    /// relative 1e-9, since merge order perturbs Welford state at f64
    /// precision. Returns a description of the first difference found,
    /// or `None` when the trees are equivalent — the oracle behind the
    /// `cached == fresh` snapshot equivalence tests.
    pub fn semantic_diff(&self, other: &CallingContextTree) -> Option<String> {
        fn close(a: f64, b: f64) -> bool {
            let scale = a.abs().max(b.abs());
            (a - b).abs() <= 1e-9 * scale.max(1.0)
        }
        fn diff_nodes(
            a: &CallingContextTree,
            an: NodeId,
            b: &CallingContextTree,
            bn: NodeId,
        ) -> Option<String> {
            let (na, nb) = (a.node(an), b.node(bn));
            let at = format!("{} ({an})", na.frame.label(&a.interner));
            if na.metrics.len() != nb.metrics.len() {
                return Some(format!(
                    "{at}: {} metric kinds vs {}",
                    na.metrics.len(),
                    nb.metrics.len()
                ));
            }
            for (kind, sa) in na.metrics.iter() {
                let Some(sb) = nb.metrics.get(kind) else {
                    return Some(format!("{at}: metric {kind} missing on the right"));
                };
                if sa.count != sb.count {
                    return Some(format!("{at}: {kind} count {} vs {}", sa.count, sb.count));
                }
                if sa.count == 0 {
                    continue;
                }
                for (what, va, vb) in [
                    ("sum", sa.sum, sb.sum),
                    ("min", sa.min, sb.min),
                    ("max", sa.max, sb.max),
                    ("mean", sa.mean(), sb.mean()),
                    ("stddev", sa.stddev(), sb.stddev()),
                ] {
                    if !close(va, vb) {
                        return Some(format!("{at}: {kind} {what} {va} vs {vb}"));
                    }
                }
            }
            if na.children.len() != nb.children.len() {
                return Some(format!(
                    "{at}: {} children vs {}",
                    na.children.len(),
                    nb.children.len()
                ));
            }
            let index: FxHashMap<FrameKey, NodeId> = nb
                .children
                .iter()
                .map(|&c| (b.node(c).frame.key(), c))
                .collect();
            for &ca in &na.children {
                let Some(&cb) = index.get(&a.node(ca).frame.key()) else {
                    return Some(format!(
                        "{at}: child {} missing on the right",
                        a.node(ca).frame.label(&a.interner)
                    ));
                };
                if let Some(diff) = diff_nodes(a, ca, b, cb) {
                    return Some(diff);
                }
            }
            None
        }
        diff_nodes(self, self.root(), other, other.root())
    }

    /// Approximate resident bytes of the tree: nodes, child index, metric
    /// stores and interned strings. Drives the Figure 6c/6d memory
    /// comparison.
    pub fn approx_bytes(&self) -> usize {
        self.approx_tree_bytes() + self.interner.approx_bytes()
    }

    /// Like [`approx_bytes`](Self::approx_bytes) but without the interner,
    /// which is shared across trees in a profiling session — shard
    /// accounting sums this per shard and counts the interner once.
    pub fn approx_tree_bytes(&self) -> usize {
        let node_bytes: usize = self
            .nodes
            .iter()
            .map(|n| {
                std::mem::size_of::<CctNode>()
                    + n.children.capacity() * std::mem::size_of::<NodeId>()
                    + n.metrics.approx_bytes()
            })
            .sum();
        let index_bytes = self.child_index.capacity()
            * (std::mem::size_of::<(NodeId, FrameKey)>() + std::mem::size_of::<NodeId>() + 16);
        node_bytes + index_bytes
    }

    /// Renders the tree as an indented listing with one metric column,
    /// for debugging and golden tests.
    pub fn render(&self, kind: MetricKind) -> String {
        let mut out = String::new();
        self.render_into(self.root(), 0, kind, &mut out);
        out
    }

    fn render_into(&self, id: NodeId, depth: usize, kind: MetricKind, out: &mut String) {
        let node = self.node(id);
        for _ in 0..depth {
            out.push_str("  ");
        }
        let value = node.metrics.sum(kind);
        out.push_str(&format!(
            "{} [{}={value}]\n",
            node.frame.label(&self.interner),
            kind.name()
        ));
        for &child in &node.children {
            self.render_into(child, depth + 1, kind, out);
        }
    }

    pub(crate) fn nodes_raw(&self) -> &[CctNode] {
        &self.nodes
    }

    pub(crate) fn from_raw(
        interner: Arc<Interner>,
        raw: Vec<(Option<NodeId>, Frame, MetricStore)>,
    ) -> Result<Self, crate::CoreError> {
        let mut tree = CallingContextTree::with_interner(interner);
        for (idx, (parent, frame, metrics)) in raw.into_iter().enumerate() {
            if idx == 0 {
                if parent.is_some() || !matches!(frame, Frame::Root) {
                    return Err(crate::CoreError::parse(
                        "first node must be the root".into(),
                    ));
                }
                tree.nodes[0].metrics = metrics;
                continue;
            }
            let parent = parent
                .ok_or_else(|| crate::CoreError::parse("non-root node without parent".into()))?;
            if parent.index() >= idx {
                return Err(crate::CoreError::parse("parent id out of order".into()));
            }
            let id = tree.insert_child(parent, &frame);
            if id.index() != idx {
                return Err(crate::CoreError::parse(
                    "duplicate collapse key in stored tree".into(),
                ));
            }
            tree.nodes[id.index()].metrics = metrics;
        }
        Ok(tree)
    }
}

impl Default for CallingContextTree {
    fn default() -> Self {
        Self::new()
    }
}

/// Resumable state of one incremental fold (see
/// [`CallingContextTree::merge_incremental`]): the node mapping from the
/// source tree into the destination, plus each source node's aggregates
/// as of the last fold, so the next fold can compute deltas.
#[derive(Debug, Clone, Default)]
pub struct FoldState {
    mapping: Vec<NodeId>,
    folded: Vec<MetricStore>,
}

impl FoldState {
    /// A fresh state: the first fold through it behaves like a plain
    /// [`CallingContextTree::merge`].
    pub fn new() -> Self {
        Self::default()
    }

    /// The destination id each source node folded into so far (entry `i`
    /// is source node `i`), mirroring [`CallingContextTree::merge`]'s
    /// return value.
    pub fn mapping(&self) -> &[NodeId] {
        &self.mapping
    }

    /// Number of source nodes folded so far.
    pub fn folded_nodes(&self) -> usize {
        self.mapping.len()
    }

    /// Approximate resident bytes of the fold state (cache accounting).
    pub fn approx_bytes(&self) -> usize {
        self.mapping.capacity() * std::mem::size_of::<NodeId>()
            + self
                .folded
                .iter()
                .map(|s| std::mem::size_of::<MetricStore>() + s.approx_bytes())
                .sum::<usize>()
    }
}

/// Depth-first (pre-order) node iterator. See [`CallingContextTree::dfs`].
#[derive(Debug)]
pub struct Dfs<'a> {
    tree: &'a CallingContextTree,
    stack: Vec<NodeId>,
}

impl Iterator for Dfs<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let id = self.stack.pop()?;
        let node = self.tree.node(id);
        self.stack.extend(node.children.iter().rev().copied());
        Some(id)
    }
}

/// Breadth-first node iterator. See [`CallingContextTree::bfs`].
#[derive(Debug)]
pub struct Bfs<'a> {
    tree: &'a CallingContextTree,
    queue: std::collections::VecDeque<NodeId>,
}

impl Iterator for Bfs<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let id = self.queue.pop_front()?;
        self.queue
            .extend(self.tree.node(id).children.iter().copied());
        Some(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::OpPhase;

    fn sample_path(tree: &CallingContextTree, op: &str, kernel: &str) -> Vec<Frame> {
        let i = tree.interner();
        // Give each kernel a distinct entry address, as a loader would.
        let pc = 0x100 + kernel.bytes().map(u64::from).sum::<u64>();
        vec![
            Frame::python("train.py", 10, "train", &i),
            Frame::operator(op, &i),
            Frame::gpu_api("cuLaunchKernel", "libcuda.so", 0x10, &i),
            Frame::gpu_kernel(kernel, "module.so", pc, &i),
        ]
    }

    #[test]
    fn inserting_same_path_twice_reuses_nodes() {
        let mut t = CallingContextTree::new();
        let path = sample_path(&t, "aten::matmul", "sgemm");
        let a = t.insert_path(&path);
        let count = t.node_count();
        let b = t.insert_path(&path);
        assert_eq!(a, b);
        assert_eq!(t.node_count(), count);
    }

    #[test]
    fn diverging_paths_share_prefix() {
        let mut t = CallingContextTree::new();
        let a = t.insert_path(&sample_path(&t, "aten::matmul", "sgemm"));
        let b = t.insert_path(&sample_path(&t, "aten::matmul", "hgemm"));
        assert_ne!(a, b);
        // Root + python + operator + api shared, two kernels.
        assert_eq!(t.node_count(), 1 + 3 + 2);
        assert_eq!(t.node(a).parent(), t.node(b).parent());
    }

    #[test]
    fn attribute_propagates_to_root() {
        let mut t = CallingContextTree::new();
        let leaf = t.insert_path(&sample_path(&t, "aten::matmul", "sgemm"));
        t.attribute(leaf, MetricKind::GpuTime, 100.0);
        t.attribute(leaf, MetricKind::GpuTime, 50.0);
        for id in t.path_to_root(leaf) {
            let stat = t.metric(id, MetricKind::GpuTime).unwrap();
            assert_eq!(stat.sum, 150.0);
            assert_eq!(stat.count, 2);
            assert_eq!(stat.min, 50.0);
            assert_eq!(stat.max, 100.0);
        }
    }

    #[test]
    fn attribute_exclusive_does_not_propagate() {
        let mut t = CallingContextTree::new();
        let leaf = t.insert_path(&sample_path(&t, "aten::matmul", "sgemm"));
        t.attribute_exclusive(leaf, MetricKind::Warps, 32.0);
        assert_eq!(t.metric(leaf, MetricKind::Warps).unwrap().sum, 32.0);
        assert!(t.root_metric(MetricKind::Warps).is_none());
    }

    #[test]
    fn root_sum_equals_sum_over_leaf_attributions() {
        let mut t = CallingContextTree::new();
        let mut expected = 0.0;
        for (op, kernel, v) in [
            ("aten::matmul", "sgemm", 10.0),
            ("aten::conv2d", "implicit_gemm", 20.0),
            ("aten::matmul", "sgemm", 30.0),
        ] {
            let leaf = t.insert_path(&sample_path(&t, op, kernel));
            t.attribute(leaf, MetricKind::GpuTime, v);
            expected += v;
        }
        assert_eq!(t.total(MetricKind::GpuTime), expected);
    }

    #[test]
    fn parent_inclusive_sum_bounds_child() {
        let mut t = CallingContextTree::new();
        let a = t.insert_path(&sample_path(&t, "aten::matmul", "sgemm"));
        let b = t.insert_path(&sample_path(&t, "aten::conv2d", "implicit_gemm"));
        t.attribute(a, MetricKind::GpuTime, 5.0);
        t.attribute(b, MetricKind::GpuTime, 7.0);
        for id in t.dfs() {
            let here = t.node(id).metrics().sum(MetricKind::GpuTime);
            if let Some(parent) = t.node(id).parent() {
                let up = t.node(parent).metrics().sum(MetricKind::GpuTime);
                assert!(up >= here, "parent {up} < child {here}");
            }
        }
    }

    #[test]
    fn merge_reinterns_frames_from_a_foreign_tree() {
        // Two trees built independently (distinct interners), same
        // logical contexts. A fresh union must unify them by string,
        // not by raw Sym value.
        let mut a = CallingContextTree::new();
        let la = a.insert_path(&sample_path(&a, "aten::matmul", "sgemm"));
        a.attribute(la, MetricKind::GpuTime, 10.0);
        let mut b = CallingContextTree::new();
        let lb = b.insert_path(&sample_path(&b, "aten::matmul", "sgemm"));
        b.attribute(lb, MetricKind::GpuTime, 5.0);

        let mut union = CallingContextTree::new();
        let map_a = union.merge(&a);
        let map_b = union.merge(&b);
        assert_eq!(union.node_count(), a.node_count());
        assert_eq!(map_a[la.index()], map_b[lb.index()]);
        assert_eq!(union.total(MetricKind::GpuTime), 15.0);
        let interner = union.interner();
        let leaf = map_a[la.index()];
        assert_eq!(union.node(leaf).frame().short_label(&interner), "sgemm");
    }

    #[test]
    fn nodes_of_kind_finds_kernels() {
        let mut t = CallingContextTree::new();
        t.insert_path(&sample_path(&t, "aten::matmul", "sgemm"));
        t.insert_path(&sample_path(&t, "aten::conv2d", "implicit_gemm"));
        let kernels = t.nodes_of_kind(FrameKind::GpuKernel);
        assert_eq!(kernels.len(), 2);
        for k in kernels {
            assert_eq!(t.node(k).frame().kind(), FrameKind::GpuKernel);
        }
    }

    #[test]
    fn dfs_and_bfs_visit_every_node_once() {
        let mut t = CallingContextTree::new();
        t.insert_path(&sample_path(&t, "aten::matmul", "sgemm"));
        t.insert_path(&sample_path(&t, "aten::conv2d", "implicit_gemm"));
        let dfs: Vec<_> = t.dfs().collect();
        let bfs: Vec<_> = t.bfs().collect();
        assert_eq!(dfs.len(), t.node_count());
        assert_eq!(bfs.len(), t.node_count());
        let mut sorted_dfs = dfs.clone();
        sorted_dfs.sort();
        sorted_dfs.dedup();
        assert_eq!(sorted_dfs.len(), t.node_count());
        assert_eq!(dfs[0], t.root());
        assert_eq!(bfs[0], t.root());
    }

    #[test]
    fn frames_to_root_round_trips_insert_path() {
        let mut t = CallingContextTree::new();
        let path = sample_path(&t, "aten::matmul", "sgemm");
        let leaf = t.insert_path(&path);
        let back = t.frames_to_root(leaf);
        assert_eq!(back.frames(), &path[..]);
        assert_eq!(t.depth(leaf), path.len());
    }

    #[test]
    fn merge_unifies_contexts_and_metrics() {
        let mut a = CallingContextTree::new();
        let interner = a.interner();
        let mut b = CallingContextTree::with_interner(Arc::clone(&interner));

        let path1 = vec![
            Frame::python("m.py", 1, "f", &interner),
            Frame::operator("aten::relu", &interner),
        ];
        let path2 = vec![
            Frame::python("m.py", 1, "f", &interner),
            Frame::operator("aten::gelu", &interner),
        ];
        let la = a.insert_path(&path1);
        a.attribute(la, MetricKind::GpuTime, 10.0);
        let lb1 = b.insert_path(&path1);
        b.attribute(lb1, MetricKind::GpuTime, 5.0);
        let lb2 = b.insert_path(&path2);
        b.attribute(lb2, MetricKind::GpuTime, 2.0);

        a.merge(&b);
        assert_eq!(a.total(MetricKind::GpuTime), 17.0);
        // Root + python + relu + gelu
        assert_eq!(a.node_count(), 4);
        let relu = a.insert_path(&path1);
        assert_eq!(a.metric(relu, MetricKind::GpuTime).unwrap().sum, 15.0);
    }

    #[test]
    fn merge_incremental_first_fold_matches_merge() {
        let mut fresh = CallingContextTree::new();
        let interner = fresh.interner();
        let mut source = CallingContextTree::with_interner(Arc::clone(&interner));
        for (op, kernel, v) in [
            ("aten::matmul", "sgemm", 4.0),
            ("aten::relu", "relu_k", 2.0),
        ] {
            let leaf = source.insert_path(&sample_path(&source, op, kernel));
            source.attribute(leaf, MetricKind::GpuTime, v);
        }
        let mut incr = CallingContextTree::with_interner(Arc::clone(&interner));
        let mut state = FoldState::new();
        incr.merge_incremental(&source, &mut state);
        let mapping = fresh.merge(&source);
        assert_eq!(state.mapping(), &mapping[..]);
        assert_eq!(state.folded_nodes(), source.node_count());
        assert_eq!(incr.semantic_diff(&fresh), None);
    }

    #[test]
    fn merge_incremental_folds_only_the_delta() {
        let mut master = CallingContextTree::new();
        let interner = master.interner();
        let mut source = CallingContextTree::with_interner(Arc::clone(&interner));
        let mut state = FoldState::new();

        let a = source.insert_path(&sample_path(&source, "aten::matmul", "sgemm"));
        source.attribute(a, MetricKind::GpuTime, 10.0);
        master.merge_incremental(&source, &mut state);

        // Grow the source: more samples on an old node, plus a new context.
        source.attribute(a, MetricKind::GpuTime, 7.0);
        let b = source.insert_path(&sample_path(&source, "aten::conv2d", "implicit_gemm"));
        source.attribute(b, MetricKind::GpuTime, 5.0);
        master.merge_incremental(&source, &mut state);

        let mut fresh = CallingContextTree::with_interner(Arc::clone(&interner));
        fresh.merge(&source);
        assert_eq!(
            master.semantic_diff(&fresh),
            None,
            "\n{}",
            master.render(MetricKind::GpuTime)
        );

        // A third fold with nothing new is a no-op.
        let before = master.total(MetricKind::GpuTime);
        master.merge_incremental(&source, &mut state);
        assert_eq!(master.total(MetricKind::GpuTime), before);
    }

    #[test]
    fn semantic_diff_ignores_order_but_catches_differences() {
        let mut a = CallingContextTree::new();
        let interner = a.interner();
        let mut b = CallingContextTree::with_interner(Arc::clone(&interner));
        // Same contexts inserted in opposite orders.
        let pa = sample_path(&a, "aten::matmul", "sgemm");
        let pb = sample_path(&a, "aten::conv2d", "implicit_gemm");
        let la = a.insert_path(&pa);
        a.insert_path(&pb);
        let lb = b.insert_path(&pb);
        let lb2 = b.insert_path(&pa);
        a.attribute(la, MetricKind::GpuTime, 3.0);
        b.attribute(lb2, MetricKind::GpuTime, 3.0);
        assert_eq!(a.semantic_diff(&b), None);
        // Metric drift is caught.
        b.attribute(lb, MetricKind::GpuTime, 1.0);
        assert!(a.semantic_diff(&b).is_some());
    }

    #[test]
    fn backward_and_forward_operators_are_distinct_contexts() {
        let mut t = CallingContextTree::new();
        let i = t.interner();
        let fwd = vec![Frame::operator_with(
            "aten::index",
            OpPhase::Forward,
            Some(3),
            &i,
        )];
        let bwd = vec![Frame::operator_with(
            "aten::index",
            OpPhase::Backward,
            Some(3),
            &i,
        )];
        let f = t.insert_path(&fwd);
        let b = t.insert_path(&bwd);
        assert_ne!(f, b);
    }

    #[test]
    fn approx_bytes_grows_with_nodes() {
        let mut t = CallingContextTree::new();
        let before = t.approx_bytes();
        for n in 0..100 {
            let path = sample_path(&t, &format!("op{n}"), &format!("kernel{n}"));
            let leaf = t.insert_path(&path);
            t.attribute(leaf, MetricKind::GpuTime, 1.0);
        }
        assert!(t.approx_bytes() > before);
    }

    #[test]
    fn render_contains_labels_and_metric() {
        let mut t = CallingContextTree::new();
        let leaf = t.insert_path(&sample_path(&t, "aten::matmul", "sgemm"));
        t.attribute(leaf, MetricKind::GpuTime, 33.0);
        let rendered = t.render(MetricKind::GpuTime);
        assert!(rendered.contains("aten::matmul"));
        assert!(rendered.contains("sgemm"));
        assert!(rendered.contains("33"));
    }
}
