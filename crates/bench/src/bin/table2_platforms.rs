//! Regenerates **Table 2**: the evaluation platforms.

use sim_gpu::DeviceSpec;

fn main() {
    println!("Table 2: Evaluation Platforms\n");
    println!(
        "{:<10}{:<16}{:<12}{:<10}{:<14}{:<16}{:<12}",
        "Platform", "GPU", "Memory", "SMs/CUs", "Warp size", "Peak FLOP/s", "Bandwidth"
    );
    for spec in [DeviceSpec::a100_sxm(), DeviceSpec::mi250()] {
        println!(
            "{:<10}{:<16}{:<12}{:<10}{:<14}{:<16}{:<12}",
            format!("{}", spec.vendor),
            spec.name,
            format!("{} GB", spec.memory_bytes >> 30),
            spec.sm_count,
            spec.warp_size,
            format!("{:.1} TF", spec.peak_flops / 1e12),
            format!("{:.1} TB/s", spec.mem_bandwidth / 1e12),
        );
    }
}
