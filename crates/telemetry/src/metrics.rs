//! Atomic metric primitives: counters, gauges, and log₂-bucketed
//! histograms.
//!
//! Every primitive is a plain `AtomicU64` (or a fixed array of them)
//! updated with relaxed ordering: the hot paths these instrument —
//! producer enqueues, worker drains, shard-lock sections — must pay one
//! uncontended atomic add per observation and nothing more. Consistency
//! across metrics is only needed at snapshot time, where small races
//! (a `count` incremented before its `sum`) are acceptable by design.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// The current total.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-value gauge with a running-maximum helper.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// Overwrites the gauge.
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Raises the gauge to `v` if `v` is larger (high-water marks).
    pub fn record_max(&self, v: u64) {
        self.value.fetch_max(v, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: one per power of two over the `u64`
/// range, plus a dedicated zero bucket at index 0.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// The upper bound (inclusive) of bucket `i`: `0` for the zero bucket,
/// `2^i - 1` for `1 ≤ i < 64`, `u64::MAX` for the last.
pub fn bucket_upper_bound(i: usize) -> u64 {
    match i {
        0 => 0,
        1..=63 => (1u64 << i) - 1,
        _ => u64::MAX,
    }
}

fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        (64 - v.leading_zeros()) as usize
    }
}

/// A log₂-bucketed histogram: values land in the bucket whose upper
/// bound is the next power of two minus one. One relaxed atomic add per
/// observation (plus `count`/`sum` bookkeeping), no locks, fixed memory.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Records one observation.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the distribution.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// An immutable copy of a [`Histogram`]'s distribution, the unit the
/// exporters and [`HealthReport`](crate::HealthReport) consume.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts ([`HISTOGRAM_BUCKETS`] entries;
    /// bucket `i` spans `(bucket_upper_bound(i-1), bucket_upper_bound(i)]`).
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Folds another snapshot into this one bucket-by-bucket (used to
    /// aggregate per-shard or per-worker label sets into one
    /// distribution).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// The value at quantile `q` (0..=1), resolved to the upper bound of
    /// the bucket containing it — an over-estimate by at most 2x, which
    /// is the precision log₂ bucketing buys. Zero when empty.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (i, n) in self.buckets.iter().enumerate() {
            cumulative += n;
            if cumulative >= target {
                return bucket_upper_bound(i);
            }
        }
        bucket_upper_bound(HISTOGRAM_BUCKETS - 1)
    }

    /// Median (bucket upper bound).
    pub fn p50(&self) -> u64 {
        self.percentile(0.50)
    }

    /// 99th percentile (bucket upper bound).
    pub fn p99(&self) -> u64 {
        self.percentile(0.99)
    }

    /// Exact arithmetic mean (`sum / count`); zero when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Whether nothing was observed.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::default();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::default();
        g.set(7);
        g.record_max(3);
        assert_eq!(g.get(), 7);
        g.record_max(11);
        assert_eq!(g.get(), 11);
    }

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(1), 1);
        assert_eq!(bucket_upper_bound(2), 3);
        assert_eq!(bucket_upper_bound(64), u64::MAX);
    }

    #[test]
    fn histogram_percentiles_resolve_to_bucket_bounds() {
        let h = Histogram::default();
        for v in [0u64, 1, 2, 3, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1106);
        let snap = h.snapshot();
        // p50 → 3rd of 6 observations → value 2 → bucket (1,3] → bound 3.
        assert_eq!(snap.p50(), 3);
        // p99 → 6th observation → 1000 → bucket (511,1023] → bound 1023.
        assert_eq!(snap.p99(), 1023);
        assert!((snap.mean() - 1106.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_is_zero_everywhere() {
        let snap = Histogram::default().snapshot();
        assert!(snap.is_empty());
        assert_eq!(snap.p50(), 0);
        assert_eq!(snap.p99(), 0);
        assert_eq!(snap.mean(), 0.0);
    }

    #[test]
    fn merge_accumulates_buckets() {
        let a = Histogram::default();
        let b = Histogram::default();
        a.record(5);
        b.record(5);
        b.record(600);
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.count, 3);
        assert_eq!(merged.sum, 610);
        assert_eq!(merged.percentile(1.0), 1023);
    }
}
