//! Core data structures for the DeepContext profiler.
//!
//! This crate implements the representation layer of the paper
//! *"DeepContext: A Context-aware, Cross-platform, and Cross-framework Tool
//! for Performance Profiling and Analysis of Deep Learning Workloads"*
//! (ASPLOS 2025): unified multi-layer [`Frame`]s and [`CallPath`]s spanning
//! Python, framework-operator, native C/C++, GPU API and GPU kernel levels,
//! the [`CallingContextTree`] with the paper's frame-collapse rules, online
//! metric aggregation ([`MetricStat`]: sum / min / max / mean / stddev) with
//! root-ward propagation, a virtual clock, and a persistent profile
//! database.
//!
//! # Quick example
//!
//! ```
//! use deepcontext_core::{CallingContextTree, Frame, MetricKind};
//!
//! let mut cct = CallingContextTree::new();
//! let interner = cct.interner();
//! let path = vec![
//!     Frame::python("train.py", 10, "train_step", &interner),
//!     Frame::operator("aten::matmul", &interner),
//!     Frame::gpu_kernel("sgemm_128x128", "libtorch_cuda.so", 0x4000, &interner),
//! ];
//! let node = cct.insert_path(&path);
//! cct.attribute(node, MetricKind::GpuTime, 1_500.0);
//! assert_eq!(cct.root_metric(MetricKind::GpuTime).map(|s| s.sum), Some(1_500.0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cct;
mod clock;
mod db;
mod error;
pub mod failpoint;
mod frame;
mod fx;
mod interner;
mod journal;
mod metrics;
mod shard;
mod timeline;

pub use cct::{CallingContextTree, CctNode, FoldState, NodeId};
pub use clock::{TimeNs, VirtualClock};
pub use db::{ProfileDb, ProfileMeta};
pub use error::CoreError;
pub use failpoint::Failpoints;
pub use frame::{CallPath, Frame, FrameKey, FrameKind, OpPhase, ThreadRole};
pub use fx::{FxBuildHasher, FxHashMap, FxHashSet};
pub use interner::{Interner, Sym};
pub use journal::{severity_label, StoredJournal, StoredJournalEvent};
pub use metrics::{MetricKind, MetricStat, MetricStore, StallReason};
pub use shard::CctShard;
pub use timeline::{Interval, IntervalKind, StoredTimeline, TrackKey};

/// Convenient re-exports for downstream crates.
pub mod prelude {
    pub use crate::{
        CallPath, CallingContextTree, CctShard, Frame, FrameKind, Interner, MetricKind, MetricStat,
        NodeId, OpPhase, ProfileDb, StallReason, Sym, TimeNs, VirtualClock,
    };
}
