//! GPU runtime errors.

use std::fmt;

/// Errors surfaced by the simulated GPU runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GpuError {
    /// A device allocation exceeded device memory.
    OutOfMemory {
        /// Device that ran out.
        device: u32,
        /// Bytes requested.
        requested: u64,
        /// Bytes available.
        available: u64,
    },
    /// An unknown device id was used.
    NoSuchDevice(u32),
    /// An unknown stream id was used.
    NoSuchStream(u32),
    /// A free of an unknown device pointer.
    InvalidFree(u64),
}

impl fmt::Display for GpuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GpuError::OutOfMemory {
                device,
                requested,
                available,
            } => write!(
                f,
                "device {device} out of memory: requested {requested} bytes, {available} available"
            ),
            GpuError::NoSuchDevice(d) => write!(f, "no such device: {d}"),
            GpuError::NoSuchStream(s) => write!(f, "no such stream: {s}"),
            GpuError::InvalidFree(p) => write!(f, "invalid device pointer freed: {p:#x}"),
        }
    }
}

impl std::error::Error for GpuError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = GpuError::OutOfMemory {
            device: 0,
            requested: 100,
            available: 50,
        };
        let msg = e.to_string();
        assert!(msg.contains("out of memory"));
        assert!(msg.contains("100"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GpuError>();
    }
}
