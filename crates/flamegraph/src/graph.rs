//! The flame-graph model.

use std::collections::HashMap;

use deepcontext_analyzer::{AnalysisReport, Severity};
use deepcontext_core::{CallingContextTree, FrameKind, MetricKind, NodeId};

/// One box of a flame graph.
#[derive(Debug, Clone)]
pub struct FlameNode {
    /// Display label.
    pub label: String,
    /// Frame kind (drives colour coding).
    pub kind: FrameKind,
    /// Inclusive metric value.
    pub value: f64,
    /// Children, in insertion order.
    pub children: Vec<FlameNode>,
    /// Whether this box is on a hotspot path.
    pub hot: bool,
    /// Analyzer issues attached to this box (severity + message).
    pub issues: Vec<(Severity, String)>,
}

impl FlameNode {
    fn new(label: String, kind: FrameKind, value: f64) -> Self {
        FlameNode {
            label,
            kind,
            value,
            children: Vec::new(),
            hot: false,
            issues: Vec::new(),
        }
    }

    /// Value not covered by children (the "self" value).
    pub fn self_value(&self) -> f64 {
        (self.value - self.children.iter().map(|c| c.value).sum::<f64>()).max(0.0)
    }

    /// Total number of boxes in this subtree.
    pub fn node_count(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(FlameNode::node_count)
            .sum::<usize>()
    }

    /// Maximum depth of this subtree (a leaf has depth 1).
    pub fn depth(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(FlameNode::depth)
            .max()
            .unwrap_or(0)
    }

    fn find_child_mut(&mut self, label: &str) -> Option<usize> {
        self.children.iter().position(|c| c.label == label)
    }
}

/// A flame graph over one metric of a profile.
///
/// # Examples
///
/// ```
/// use deepcontext_core::{CallingContextTree, Frame, MetricKind};
/// use deepcontext_flamegraph::FlameGraph;
///
/// let mut cct = CallingContextTree::new();
/// let i = cct.interner();
/// let leaf = cct.insert_path(&[
///     Frame::python("train.py", 1, "main", &i),
///     Frame::gpu_kernel("sgemm", "m.so", 0x10, &i),
/// ]);
/// cct.attribute(leaf, MetricKind::GpuTime, 10.0);
///
/// let fg = FlameGraph::top_down(&cct, MetricKind::GpuTime);
/// assert_eq!(fg.root().value, 10.0);
/// println!("{}", fg.to_ascii(&Default::default()));
/// ```
#[derive(Debug, Clone)]
pub struct FlameGraph {
    root: FlameNode,
    metric: MetricKind,
    /// Tree-node provenance for top-down graphs (used by `annotate`).
    provenance: HashMap<String, Vec<NodeId>>,
}

impl FlameGraph {
    /// Builds the top-down view: a direct representation of the calling
    /// context tree, pruned to nodes carrying the metric.
    pub fn top_down(cct: &CallingContextTree, metric: MetricKind) -> FlameGraph {
        let mut provenance: HashMap<String, Vec<NodeId>> = HashMap::new();
        let root = Self::build_top_down(cct, cct.root(), metric, &mut provenance, String::new());
        FlameGraph {
            root: root.unwrap_or_else(|| FlameNode::new("<root>".into(), FrameKind::Root, 0.0)),
            metric,
            provenance,
        }
    }

    fn build_top_down(
        cct: &CallingContextTree,
        id: NodeId,
        metric: MetricKind,
        provenance: &mut HashMap<String, Vec<NodeId>>,
        path: String,
    ) -> Option<FlameNode> {
        let node = cct.node(id);
        let value = node.metrics().sum(metric);
        if value <= 0.0 {
            return None;
        }
        let interner = cct.interner();
        let label = node.frame().short_label(&interner);
        let key = if path.is_empty() {
            label.clone()
        } else {
            format!("{path};{label}")
        };
        provenance.entry(key.clone()).or_default().push(id);
        let mut fnode = FlameNode::new(label, node.frame().kind(), value);
        for &child in node.children() {
            if let Some(c) = Self::build_top_down(cct, child, metric, provenance, key.clone()) {
                fnode.children.push(c);
            }
        }
        Some(fnode)
    }

    /// Builds the bottom-up (inverted) view: each context's *self* value
    /// is attributed to its reversed call path, so identical frames
    /// (e.g. one kernel called from many sites) aggregate at the top
    /// level — the view of paper Figure 8.
    pub fn bottom_up(cct: &CallingContextTree, metric: MetricKind) -> FlameGraph {
        let interner = cct.interner();
        let mut root = FlameNode::new("<all>".into(), FrameKind::Root, 0.0);
        for id in cct.dfs() {
            let node = cct.node(id);
            let inclusive = node.metrics().sum(metric);
            let child_sum: f64 = node
                .children()
                .iter()
                .map(|c| cct.node(*c).metrics().sum(metric))
                .sum();
            let self_value = inclusive - child_sum;
            if self_value <= 0.0 {
                continue;
            }
            // Reversed path: leaf frame first.
            let mut labels: Vec<(String, FrameKind)> = cct
                .frames_to_root(id)
                .frames()
                .iter()
                .map(|f| (f.short_label(&interner), f.kind()))
                .collect();
            labels.reverse();
            let mut cur = &mut root;
            cur.value += self_value;
            for (label, kind) in labels {
                let idx = match cur.find_child_mut(&label) {
                    Some(i) => i,
                    None => {
                        cur.children.push(FlameNode::new(label, kind, 0.0));
                        cur.children.len() - 1
                    }
                };
                cur = &mut cur.children[idx];
                cur.value += self_value;
            }
        }
        // Sort top level by value (biggest consumers first), as the GUI does.
        root.children.sort_by(|a, b| b.value.total_cmp(&a.value));
        FlameGraph {
            root,
            metric,
            provenance: HashMap::new(),
        }
    }

    /// The root box.
    pub fn root(&self) -> &FlameNode {
        &self.root
    }

    /// The metric this graph visualises.
    pub fn metric(&self) -> MetricKind {
        self.metric
    }

    pub(crate) fn from_root(root: FlameNode, metric: MetricKind) -> FlameGraph {
        FlameGraph {
            root,
            metric,
            provenance: HashMap::new(),
        }
    }

    /// Marks hotspot paths: every box whose value exceeds
    /// `threshold × total` is flagged hot (the GUI's hotspot
    /// highlighting).
    pub fn highlight_hotspots(&mut self, threshold: f64) {
        let total = self.root.value;
        if total <= 0.0 {
            return;
        }
        fn mark(node: &mut FlameNode, threshold_value: f64) {
            node.hot = node.value >= threshold_value;
            for c in &mut node.children {
                mark(c, threshold_value);
            }
        }
        mark(&mut self.root, threshold * total);
    }

    /// Attaches analyzer issues to the boxes they point at (top-down
    /// graphs only — provenance is recorded during construction).
    pub fn annotate(&mut self, report: &AnalysisReport) {
        let mut by_node: HashMap<NodeId, Vec<(Severity, String)>> = HashMap::new();
        for issue in report.issues() {
            by_node
                .entry(issue.node)
                .or_default()
                .push((issue.severity, format!("{}: {}", issue.rule, issue.message)));
        }
        fn walk(
            node: &mut FlameNode,
            path: String,
            provenance: &HashMap<String, Vec<NodeId>>,
            by_node: &HashMap<NodeId, Vec<(Severity, String)>>,
        ) {
            let key = if path.is_empty() {
                node.label.clone()
            } else {
                format!("{path};{}", node.label)
            };
            if let Some(ids) = provenance.get(&key) {
                for id in ids {
                    if let Some(issues) = by_node.get(id) {
                        node.issues.extend(issues.iter().cloned());
                    }
                }
            }
            for c in &mut node.children {
                walk(c, key.clone(), provenance, by_node);
            }
        }
        let provenance = std::mem::take(&mut self.provenance);
        walk(&mut self.root, String::new(), &provenance, &by_node);
        self.provenance = provenance;
    }

    /// Total boxes.
    pub fn node_count(&self) -> usize {
        self.root.node_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepcontext_core::Frame;

    fn sample_cct() -> CallingContextTree {
        let mut cct = CallingContextTree::new();
        let i = cct.interner();
        let a = cct.insert_path(&[
            Frame::python("train.py", 1, "main", &i),
            Frame::operator("aten::conv2d", &i),
            Frame::gpu_kernel("implicit_gemm", "m.so", 0x10, &i),
        ]);
        let b = cct.insert_path(&[
            Frame::python("train.py", 9, "loss", &i),
            Frame::operator("aten::nll_loss", &i),
            Frame::gpu_kernel("nll_loss_kernel", "m.so", 0x20, &i),
        ]);
        // The same conversion kernel called from both sites.
        let conv1 = cct.insert_path(&[
            Frame::python("train.py", 1, "main", &i),
            Frame::operator("aten::conv2d", &i),
            Frame::gpu_kernel("nchwToNhwc", "m.so", 0x30, &i),
        ]);
        let conv2 = cct.insert_path(&[
            Frame::python("train.py", 9, "loss", &i),
            Frame::operator("aten::nll_loss", &i),
            Frame::gpu_kernel("nchwToNhwc", "m.so", 0x30, &i),
        ]);
        cct.attribute(a, MetricKind::GpuTime, 70.0);
        cct.attribute(b, MetricKind::GpuTime, 10.0);
        cct.attribute(conv1, MetricKind::GpuTime, 12.0);
        cct.attribute(conv2, MetricKind::GpuTime, 8.0);
        cct
    }

    #[test]
    fn top_down_mirrors_tree_values() {
        let cct = sample_cct();
        let fg = FlameGraph::top_down(&cct, MetricKind::GpuTime);
        assert_eq!(fg.root().value, 100.0);
        assert_eq!(fg.root().children.len(), 2);
        let main = &fg.root().children[0];
        assert_eq!(main.label, "train.py:1");
        assert_eq!(main.value, 82.0);
        // Depth: root, python, operator, kernel.
        assert_eq!(fg.root().depth(), 4);
    }

    #[test]
    fn top_down_prunes_zero_value_nodes() {
        let mut cct = sample_cct();
        let i = cct.interner();
        cct.insert_path(&[Frame::python("dead.py", 1, "unused", &i)]);
        let fg = FlameGraph::top_down(&cct, MetricKind::GpuTime);
        fn contains(node: &FlameNode, label: &str) -> bool {
            node.label == label || node.children.iter().any(|c| contains(c, label))
        }
        assert!(!contains(fg.root(), "dead.py:1"));
    }

    #[test]
    fn bottom_up_aggregates_shared_kernels() {
        let cct = sample_cct();
        let fg = FlameGraph::bottom_up(&cct, MetricKind::GpuTime);
        // Top-level children are leaf frames; nchwToNhwc appears once with
        // both call sites' contributions merged.
        let conv = fg
            .root()
            .children
            .iter()
            .find(|c| c.label == "nchwToNhwc")
            .expect("aggregated kernel");
        assert_eq!(conv.value, 20.0);
        // Its children are the distinct callers (reversed paths).
        assert_eq!(conv.children.len(), 2);
        // Biggest consumer sorts first.
        assert_eq!(fg.root().children[0].label, "implicit_gemm");
    }

    #[test]
    fn self_value_subtracts_children() {
        let cct = sample_cct();
        let fg = FlameGraph::top_down(&cct, MetricKind::GpuTime);
        let main = &fg.root().children[0];
        // All of main's time is in children.
        assert_eq!(main.self_value(), 0.0);
        let kernel = &main.children[0].children[0];
        assert_eq!(kernel.self_value(), kernel.value);
    }

    #[test]
    fn hotspot_highlighting_marks_heavy_paths() {
        let cct = sample_cct();
        let mut fg = FlameGraph::top_down(&cct, MetricKind::GpuTime);
        fg.highlight_hotspots(0.5);
        assert!(fg.root().hot);
        let main = &fg.root().children[0];
        assert!(main.hot, "82% path is hot");
        let loss = &fg.root().children[1];
        assert!(!loss.hot, "18% path is not hot");
    }

    #[test]
    fn annotate_attaches_issues_to_matching_boxes() {
        use deepcontext_analyzer::{Analyzer, HotspotRule};
        use deepcontext_core::{ProfileDb, ProfileMeta};
        let cct = sample_cct();
        let db = ProfileDb::new(ProfileMeta::default(), cct);
        let mut analyzer = Analyzer::new();
        analyzer.add_rule(HotspotRule { threshold: 0.5 });
        let report = analyzer.analyze(&db);
        assert_eq!(report.len(), 1);

        let mut fg = FlameGraph::top_down(db.cct(), MetricKind::GpuTime);
        fg.annotate(&report);
        fn flagged(node: &FlameNode) -> usize {
            (!node.issues.is_empty()) as usize + node.children.iter().map(flagged).sum::<usize>()
        }
        assert_eq!(flagged(fg.root()), 1);
        let gemm = &fg.root().children[0].children[0].children[0];
        assert_eq!(gemm.label, "implicit_gemm");
        assert!(!gemm.issues.is_empty());
    }
}
