//! Multi-threaded ingestion throughput: the sharded pipeline vs the
//! pre-refactor single-lock pipeline at 1/2/4/8 producer threads.
//!
//! The measured unit is one full producer run — every thread binds its
//! launches and delivers its activity batches into a fresh sink — so the
//! reported time includes both lock contention (multi-core hosts) and the
//! baseline's O(batch²) prune scan (any host).

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};

use deepcontext_bench::ingestion::{producer_stream, run_ingestion, IngestionEvent, SinkKind};
use deepcontext_core::Interner;

const OPS_PER_THREAD: usize = 4_096;

fn bench_ingestion(c: &mut Criterion) {
    let mut group = c.benchmark_group("ingestion");
    let interner = Interner::new();
    let streams: Vec<Vec<IngestionEvent>> = (0..8)
        .map(|p| producer_stream(&interner, p, OPS_PER_THREAD))
        .collect();

    for threads in [1usize, 2, 4, 8] {
        for kind in [SinkKind::SingleLock, SinkKind::Sharded(16)] {
            let id = BenchmarkId::new(kind.label(), format!("{threads}t"));
            let interner = &interner;
            let streams = &streams;
            group.bench_with_input(id, &threads, |b, &threads| {
                b.iter_batched(
                    || (),
                    |()| run_ingestion(interner, streams, threads, kind),
                    BatchSize::SmallInput,
                );
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_ingestion);
criterion_main!(benches);
