//! The DLMonitor runtime.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use deepcontext_core::{CallPath, Frame, Interner, OpPhase};
use dl_framework::{CallbackRegistry, FrameworkCallbackId, GraphEvent, MemEvent, OpEvent, Site};
use sim_gpu::{ApiKind, CallbackData, GpuRuntime, SubscriberId, Vendor};
use sim_runtime::{NativeFrameInfo, PyFrameInfo, RuntimeEnv, ThreadCtx, ThreadRegistry};

use crate::integrate::{integrate_call_path, IntegrationInput, ShadowOp};

/// Interception domains, mirroring `DLMONITOR_FRAMEWORK` /
/// `DLMONITOR_GPU`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Domain {
    /// Framework operators, graph compilation, tensor memory.
    Framework,
    /// GPU runtime APIs (launches, memcpys, mallocs, syncs).
    Gpu,
}

/// A GPU API interception, annotated with the intercepting vendor and the
/// thread it occurred on.
#[derive(Debug, Clone)]
pub struct GpuCallbackEvent {
    /// The raw callback payload (correlation id, API kind, kernel, ...).
    pub data: CallbackData,
    /// Which vendor runtime produced it (CUPTI vs RocTracer naming).
    pub vendor: Vendor,
    /// The simulated thread the API call ran on, when bound.
    pub thread: Option<Arc<ThreadCtx>>,
}

impl GpuCallbackEvent {
    /// The originating thread's id, when the call site was bound to one.
    pub fn tid(&self) -> Option<u64> {
        self.thread.as_ref().map(|t| t.tid())
    }

    /// Routing identity of this interception.
    pub fn origin(&self) -> EventOrigin {
        EventOrigin {
            tid: self.tid(),
            stream: self.data.stream,
            correlation: Some(self.data.correlation_id),
        }
    }
}

/// Where an event came from: the identity an ingestion pipeline routes on.
///
/// Sharded profiler sinks (see `deepcontext-profiler`) pick an ingestion
/// shard from these fields *before* taking any lock, so concurrent
/// producers on different threads/streams never serialize on a global
/// mutex. All fields are optional — events raised outside any bound thread
/// (e.g. a runtime-internal callback) simply carry less identity, and the
/// consumer falls back to whatever field is present.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EventOrigin {
    /// The originating simulated OS thread.
    pub tid: Option<u64>,
    /// The GPU stream targeted, for GPU API events that have one.
    pub stream: Option<sim_gpu::StreamId>,
    /// The GPU correlation id, for GPU API events.
    pub correlation: Option<sim_gpu::CorrelationId>,
}

impl EventOrigin {
    /// The routing key sharded ingestion pipelines hash a shard index
    /// from: `(tid, stream)` when both are known — so a *single* thread
    /// fanning kernels over many streams spreads across shards instead
    /// of serializing on one — `tid` alone for events without a stream
    /// (CPU samples), the correlation id for events raised outside any
    /// bound thread, and `None` when the event carries no identity at
    /// all. Events for the same `(tid, stream)` pair always share a key,
    /// which is what keeps one stream's launches in FIFO order through a
    /// per-shard queue.
    pub fn route_key(&self) -> Option<u64> {
        match (self.tid, self.stream) {
            (Some(tid), Some(stream)) => {
                Some(tid ^ (u64::from(stream.0) + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15))
            }
            (Some(tid), None) => Some(tid),
            (None, _) => self.correlation.map(|corr| corr.0),
        }
    }
}

/// Events delivered to registered profiler callbacks.
#[derive(Debug, Clone)]
pub enum DlEvent {
    /// A framework operator (enter/exit).
    Op(OpEvent),
    /// A compute-graph compilation event.
    Graph(GraphEvent),
    /// A tensor memory event.
    Mem(MemEvent),
    /// A GPU API callback.
    Gpu(GpuCallbackEvent),
}

impl DlEvent {
    /// The event's routing identity. Operator events carry their executing
    /// thread; GPU events carry thread, stream and correlation id; graph
    /// and memory events have no stable origin (they are process-global).
    pub fn origin(&self) -> EventOrigin {
        match self {
            DlEvent::Op(op) => EventOrigin {
                tid: Some(op.thread.tid()),
                ..EventOrigin::default()
            },
            DlEvent::Graph(_) | DlEvent::Mem(_) => EventOrigin::default(),
            DlEvent::Gpu(gpu) => gpu.origin(),
        }
    }
}

/// Which call-path sources `dlmonitor_callpath_get` integrates — the
/// paper's "allows users to choose which specific call path source to
/// integrate or ignore to reduce overhead".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CallPathSources {
    /// Include Python interpreter frames.
    pub python: bool,
    /// Include framework operator frames (the shadow stack).
    pub framework: bool,
    /// Include native C/C++ frames (requires unwinding — the expensive
    /// source).
    pub native: bool,
}

impl CallPathSources {
    /// Everything on (the paper's "DeepContext Native" configuration).
    pub fn all() -> Self {
        CallPathSources {
            python: true,
            framework: true,
            native: true,
        }
    }

    /// Python + framework only (the paper's default "DeepContext"
    /// configuration, with cheaper call paths).
    pub fn without_native() -> Self {
        CallPathSources {
            python: true,
            framework: true,
            native: false,
        }
    }
}

impl Default for CallPathSources {
    fn default() -> Self {
        Self::all()
    }
}

/// Identifier of a registered profiler callback.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RegistrationId(u64);

/// Counters describing monitor activity (drives the caching ablation).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MonitorStats {
    /// Unified call paths built.
    pub callpaths_built: u64,
    /// Call paths that reused a cached Python path.
    pub cache_hits: u64,
    /// Backward call paths recovered through sequence-id association.
    pub assoc_hits: u64,
}

#[derive(Debug, Clone)]
struct AssocRecord {
    python: Vec<PyFrameInfo>,
    operators: Vec<(Arc<str>, Option<u64>)>,
}

type EventCb = Arc<dyn Fn(&DlEvent) + Send + Sync>;

/// The DLMonitor shim.
///
/// See the [crate-level docs](crate) for the API mapping to the paper.
pub struct DlMonitor {
    env: RuntimeEnv,
    interner: Arc<Interner>,
    shadows: Mutex<HashMap<u64, Vec<ShadowOp>>>,
    assoc: Mutex<HashMap<u64, AssocRecord>>,
    callbacks: RwLock<Vec<(RegistrationId, Domain, EventCb)>>,
    next_id: AtomicU64,
    sources: RwLock<CallPathSources>,
    cache_enabled: AtomicBool,
    finalized: AtomicBool,
    attached_framework: Mutex<Vec<(Arc<CallbackRegistry>, Vec<FrameworkCallbackId>)>>,
    attached_gpu: Mutex<Vec<(Arc<GpuRuntime>, SubscriberId)>>,
    stat_built: AtomicU64,
    stat_cache_hits: AtomicU64,
    stat_assoc_hits: AtomicU64,
}

impl DlMonitor {
    /// `dlmonitor_init`: creates the monitor against a process
    /// environment. The interner is shared with the profiler so frame
    /// symbols agree.
    pub fn init(env: &RuntimeEnv, interner: Arc<Interner>) -> Arc<Self> {
        Arc::new(DlMonitor {
            env: env.clone(),
            interner,
            shadows: Mutex::new(HashMap::new()),
            assoc: Mutex::new(HashMap::new()),
            callbacks: RwLock::new(Vec::new()),
            next_id: AtomicU64::new(0),
            sources: RwLock::new(CallPathSources::default()),
            cache_enabled: AtomicBool::new(true),
            finalized: AtomicBool::new(false),
            attached_framework: Mutex::new(Vec::new()),
            attached_gpu: Mutex::new(Vec::new()),
            stat_built: AtomicU64::new(0),
            stat_cache_hits: AtomicU64::new(0),
            stat_assoc_hits: AtomicU64::new(0),
        })
    }

    /// The shared interner.
    pub fn interner(&self) -> Arc<Interner> {
        Arc::clone(&self.interner)
    }

    /// Selects which call-path sources to integrate.
    pub fn set_sources(&self, sources: CallPathSources) {
        *self.sources.write() = sources;
    }

    /// The current source selection.
    pub fn sources(&self) -> CallPathSources {
        *self.sources.read()
    }

    /// Enables/disables the call-path cache.
    pub fn set_cache_enabled(&self, enabled: bool) {
        self.cache_enabled.store(enabled, Ordering::SeqCst);
    }

    /// Whether the call-path cache is on.
    pub fn cache_enabled(&self) -> bool {
        self.cache_enabled.load(Ordering::SeqCst)
    }

    /// Activity counters.
    pub fn stats(&self) -> MonitorStats {
        MonitorStats {
            callpaths_built: self.stat_built.load(Ordering::Relaxed),
            cache_hits: self.stat_cache_hits.load(Ordering::Relaxed),
            assoc_hits: self.stat_assoc_hits.load(Ordering::Relaxed),
        }
    }

    /// `dlmonitor_callback_register`: registers a profiler callback for a
    /// domain.
    pub fn callback_register(
        &self,
        domain: Domain,
        cb: impl Fn(&DlEvent) + Send + Sync + 'static,
    ) -> RegistrationId {
        let id = RegistrationId(self.next_id.fetch_add(1, Ordering::SeqCst));
        self.callbacks.write().push((id, domain, Arc::new(cb)));
        id
    }

    /// Removes a registered callback.
    pub fn callback_unregister(&self, id: RegistrationId) {
        self.callbacks.write().retain(|(i, _, _)| *i != id);
    }

    fn fire(&self, domain: Domain, event: &DlEvent) {
        if self.finalized.load(Ordering::SeqCst) {
            return;
        }
        let cbs: Vec<EventCb> = self
            .callbacks
            .read()
            .iter()
            .filter(|(_, d, _)| *d == domain)
            .map(|(_, _, c)| Arc::clone(c))
            .collect();
        for cb in cbs {
            cb(event);
        }
    }

    /// Attaches to a framework's callback registry: maintains the shadow
    /// operator stack and forward/backward association, and forwards
    /// operator / graph / memory events to `Framework`-domain callbacks.
    ///
    /// Call this **before** registering profiler callbacks so the shadow
    /// stack is current when they fire.
    pub fn attach_framework(self: &Arc<Self>, callbacks: &Arc<CallbackRegistry>) {
        let mut ids = Vec::new();

        let me = Arc::clone(self);
        ids.push(callbacks.on_op(move |event| {
            me.on_op_event(event);
            me.fire(Domain::Framework, &DlEvent::Op(event.clone()));
        }));

        let me = Arc::clone(self);
        ids.push(callbacks.on_graph(move |event| {
            me.fire(Domain::Framework, &DlEvent::Graph(event.clone()));
        }));

        let me = Arc::clone(self);
        ids.push(callbacks.on_mem(move |event| {
            me.fire(Domain::Framework, &DlEvent::Mem(event.clone()));
        }));

        self.attached_framework
            .lock()
            .push((Arc::clone(callbacks), ids));
    }

    /// Attaches to a GPU runtime (CUPTI/RocTracer substitute), forwarding
    /// API callbacks to `Gpu`-domain callbacks.
    pub fn attach_gpu(self: &Arc<Self>, gpu: &Arc<GpuRuntime>) {
        let vendor = gpu
            .device_spec(sim_gpu::DeviceId(0))
            .map(|s| s.vendor)
            .unwrap_or(Vendor::Nvidia);
        let me = Arc::clone(self);
        let sub = gpu.subscribe(move |data| {
            let event = GpuCallbackEvent {
                data: data.clone(),
                vendor,
                thread: ThreadRegistry::current(),
            };
            me.fire(Domain::Gpu, &DlEvent::Gpu(event));
        });
        self.attached_gpu.lock().push((Arc::clone(gpu), sub));
    }

    fn on_op_event(&self, event: &OpEvent) {
        let tid = event.thread.tid();
        match event.site {
            Site::Enter => {
                let cached_python = if self.cache_enabled() {
                    event.thread.python().walk()
                } else {
                    Vec::new()
                };
                let entry = ShadowOp {
                    name: Arc::clone(&event.name),
                    phase: event.phase,
                    seq_id: event.seq_id,
                    native_depth: event.thread.native().depth(),
                    cached_python,
                };
                let mut shadows = self.shadows.lock();
                let stack = shadows.entry(tid).or_default();
                if event.phase == OpPhase::Forward {
                    if let Some(seq) = event.seq_id {
                        let mut operators: Vec<(Arc<str>, Option<u64>)> = stack
                            .iter()
                            .map(|e| (Arc::clone(&e.name), e.seq_id))
                            .collect();
                        operators.push((Arc::clone(&event.name), event.seq_id));
                        self.assoc.lock().insert(
                            seq,
                            AssocRecord {
                                python: event.thread.python().walk(),
                                operators,
                            },
                        );
                    }
                }
                stack.push(entry);
            }
            Site::Exit => {
                let mut shadows = self.shadows.lock();
                if let Some(stack) = shadows.get_mut(&tid) {
                    stack.pop();
                }
            }
        }
    }

    /// Drops recorded forward/backward associations (typically once per
    /// training iteration, after `backward()` completes, to bound memory).
    pub fn clear_associations(&self) {
        self.assoc.lock().clear();
    }

    /// `dlmonitor_callpath_get`: builds the unified multi-layer call path
    /// for `thread` under the configured sources and cache mode.
    pub fn callpath_get(&self, thread: &Arc<ThreadCtx>) -> CallPath {
        self.stat_built.fetch_add(1, Ordering::Relaxed);
        let sources = self.sources();
        let cache_on = self.cache_enabled();

        let shadow: Vec<ShadowOp> = if sources.framework {
            self.shadows
                .lock()
                .get(&thread.tid())
                .cloned()
                .unwrap_or_default()
        } else {
            Vec::new()
        };

        // Forward/backward association: a backward operator on this thread
        // recovers the forward context recorded under its sequence id.
        let assoc: Option<AssocRecord> = shadow
            .first()
            .filter(|e| e.phase == OpPhase::Backward)
            .and_then(|e| e.seq_id)
            .and_then(|seq| self.assoc.lock().get(&seq).cloned());

        let mut prefix = CallPath::new();
        let python: Vec<PyFrameInfo> = if !sources.python {
            Vec::new()
        } else if let Some(a) = &assoc {
            self.stat_assoc_hits.fetch_add(1, Ordering::Relaxed);
            for f in &a.python {
                prefix.push(Frame::python(&f.file, f.line, &f.function, &self.interner));
            }
            for (name, seq) in &a.operators {
                prefix.push(Frame::operator_with(
                    name,
                    OpPhase::Forward,
                    *seq,
                    &self.interner,
                ));
            }
            Vec::new()
        } else if cache_on {
            if let Some(innermost) = shadow.last() {
                self.stat_cache_hits.fetch_add(1, Ordering::Relaxed);
                innermost.cached_python.clone()
            } else {
                thread.python().walk()
            }
        } else {
            thread.python().walk()
        };

        // Native frames. Cached mode (or association) only needs the tail
        // below the relevant operator: a partial unwind.
        let (native, operators, depth_offset): (Vec<NativeFrameInfo>, Vec<ShadowOp>, usize) =
            if !sources.native {
                (Vec::new(), shadow, 0)
            } else if (cache_on || assoc.is_some()) && !shadow.is_empty() {
                let anchor = if assoc.is_some() {
                    shadow.first().expect("non-empty").native_depth
                } else {
                    shadow.last().expect("non-empty").native_depth
                };
                let depth_now = thread.native().depth();
                let needed = depth_now.saturating_sub(anchor);
                let mut cursor = self.env.unwinder().cursor(thread.native());
                let mut frames = Vec::with_capacity(needed);
                for _ in 0..needed {
                    match cursor.step() {
                        Some(f) => frames.push(f),
                        None => break,
                    }
                }
                frames.reverse();
                (frames, shadow, anchor)
            } else {
                (self.env.unwinder().backtrace(thread.native()), shadow, 0)
            };

        let operators: Vec<ShadowOp> = operators
            .into_iter()
            .map(|mut op| {
                op.native_depth = op.native_depth.saturating_sub(depth_offset);
                op
            })
            .collect();

        let native_is_python = native
            .iter()
            .map(|f| self.env.libraries().is_python_pc(f.pc))
            .collect();

        let input = IntegrationInput {
            python,
            operators,
            native,
            native_is_python,
        };
        let mut path = prefix;
        path.extend_from(&integrate_call_path(&input, &self.interner));
        path
    }

    /// Builds the call path for a GPU API callback: the thread's unified
    /// path plus the GPU API frame and (for launches) the kernel frame —
    /// the full Figure 3(b) shape.
    pub fn callpath_for_gpu(&self, event: &GpuCallbackEvent) -> CallPath {
        let mut path = event
            .thread
            .as_ref()
            .map(|t| self.callpath_get(t))
            .unwrap_or_default();
        let api = event.data.api;
        path.push(Frame::gpu_api(
            api.api_name(event.vendor),
            api.api_library(event.vendor),
            api_pseudo_pc(api),
            &self.interner,
        ));
        if let Some(kernel) = &event.data.kernel {
            path.push(Frame::gpu_kernel(
                &kernel.name,
                &kernel.module,
                kernel.entry_pc,
                &self.interner,
            ));
        }
        path
    }

    /// `dlmonitor_finalize`: detaches every interception and clears
    /// monitor state. Further events are ignored.
    pub fn finalize(&self) {
        self.finalized.store(true, Ordering::SeqCst);
        for (registry, ids) in self.attached_framework.lock().drain(..) {
            for id in ids {
                registry.remove(id);
            }
        }
        for (gpu, sub) in self.attached_gpu.lock().drain(..) {
            gpu.unsubscribe(sub);
        }
        self.callbacks.write().clear();
        self.shadows.lock().clear();
        self.assoc.lock().clear();
    }

    /// Depth of the shadow stack for a thread (test/diagnostic hook).
    pub fn shadow_depth(&self, tid: u64) -> usize {
        self.shadows.lock().get(&tid).map(Vec::len).unwrap_or(0)
    }
}

impl std::fmt::Debug for DlMonitor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DlMonitor")
            .field("stats", &self.stats())
            .field("sources", &self.sources())
            .field("cache_enabled", &self.cache_enabled())
            .finish()
    }
}

/// Stable pseudo-PC for GPU API frames (distinct per API kind).
fn api_pseudo_pc(api: ApiKind) -> u64 {
    match api {
        ApiKind::LaunchKernel => 0x10,
        ApiKind::MemcpyAsync => 0x20,
        ApiKind::MemAlloc => 0x30,
        ApiKind::MemFree => 0x40,
        ApiKind::Synchronize => 0x50,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepcontext_core::{FrameKind, ThreadRole, TimeNs};
    use dl_framework::{EagerEngine, FrameworkCore, Op, OpKind, TensorMeta};
    use sim_gpu::{CallbackSite, DeviceId, DeviceSpec, GpuRuntime};

    struct Rig {
        env: RuntimeEnv,
        engine: Arc<EagerEngine>,
        monitor: Arc<DlMonitor>,
    }

    fn rig() -> Rig {
        let env = RuntimeEnv::new();
        let gpu = GpuRuntime::new(env.clock().clone(), vec![DeviceSpec::a100_sxm()]);
        let core = FrameworkCore::new(
            env.clone(),
            Arc::clone(&gpu),
            DeviceId(0),
            "/lib/libtorch_cpu.so",
            "libtorch_cuda.so",
            TimeNs(3_000),
        );
        let engine = EagerEngine::new(Arc::clone(&core));
        let monitor = DlMonitor::init(&env, Interner::new());
        monitor.attach_framework(core.callbacks());
        monitor.attach_gpu(&gpu);
        Rig {
            env,
            engine,
            monitor,
        }
    }

    fn launch_paths(rig: &Rig) -> Arc<Mutex<Vec<CallPath>>> {
        let paths = Arc::new(Mutex::new(Vec::new()));
        let p = Arc::clone(&paths);
        let monitor = Arc::clone(&rig.monitor);
        rig.monitor.callback_register(Domain::Gpu, move |event| {
            if let DlEvent::Gpu(gpu_event) = event {
                if gpu_event.data.api == ApiKind::LaunchKernel
                    && gpu_event.data.site == CallbackSite::Enter
                {
                    p.lock().push(monitor.callpath_for_gpu(gpu_event));
                }
            }
        });
        paths
    }

    #[test]
    fn unified_path_spans_all_five_layers() {
        let rig = rig();
        let main = rig.env.threads().spawn(ThreadRole::Main);
        let _bind = ThreadRegistry::bind_current(&main);
        let paths = launch_paths(&rig);

        let core = Arc::clone(rig.engine.core());
        let _s1 = core.python().frame(&main, "train.py", 12, "main");
        let _s2 = core.python().frame(&main, "model.py", 34, "forward");
        rig.engine
            .op(Op::new(OpKind::Relu), &[TensorMeta::new([1 << 16])])
            .unwrap();

        let paths = paths.lock();
        assert_eq!(paths.len(), 1);
        let kinds: Vec<FrameKind> = paths[0].frames().iter().map(|f| f.kind()).collect();
        // Python, Python, Operator, Native(dispatcher), Native(impl), GpuApi, GpuKernel.
        assert_eq!(
            kinds,
            vec![
                FrameKind::Python,
                FrameKind::Python,
                FrameKind::Operator,
                FrameKind::Native,
                FrameKind::Native,
                FrameKind::GpuApi,
                FrameKind::GpuKernel
            ]
        );
        let interner = rig.monitor.interner();
        let labels: Vec<String> = paths[0]
            .frames()
            .iter()
            .map(|f| f.short_label(&interner))
            .collect();
        assert_eq!(labels[0], "train.py:12");
        assert_eq!(labels[1], "model.py:34");
        assert_eq!(labels[2], "aten::relu");
        assert_eq!(labels[5], "cuLaunchKernel");
        assert_eq!(labels[6], "vectorized_elementwise_kernel<relu>");
    }

    #[test]
    fn without_monitor_attachment_path_has_no_framework_context() {
        // The Figure 3(a) contrast: native-only unwinding.
        let rig = rig();
        let main = rig.env.threads().spawn(ThreadRole::Main);
        let _bind = ThreadRegistry::bind_current(&main);
        rig.monitor.set_sources(CallPathSources {
            python: false,
            framework: false,
            native: true,
        });
        let paths = launch_paths(&rig);
        let core = Arc::clone(rig.engine.core());
        let _s1 = core.python().frame(&main, "train.py", 12, "main");
        rig.engine
            .op(Op::new(OpKind::Relu), &[TensorMeta::new([64])])
            .unwrap();
        let paths = paths.lock();
        let kinds: Vec<FrameKind> = paths[0].frames().iter().map(|f| f.kind()).collect();
        assert!(!kinds.contains(&FrameKind::Python));
        assert!(!kinds.contains(&FrameKind::Operator));
        assert!(kinds.contains(&FrameKind::Native));
    }

    #[test]
    fn backward_paths_recover_forward_context_via_sequence_ids() {
        let rig = rig();
        let main = rig.env.threads().spawn(ThreadRole::Main);
        let _bind = ThreadRegistry::bind_current(&main);
        rig.engine.set_grad_enabled(true);
        let paths = launch_paths(&rig);

        {
            let core = Arc::clone(rig.engine.core());
            let _s1 = core.python().frame(&main, "train.py", 12, "train_step");
            rig.engine
                .op(
                    Op::new(OpKind::Index).with_duplicates(16.0),
                    &[TensorMeta::new([10_000, 64]), TensorMeta::new([512])],
                )
                .unwrap();
        }
        rig.engine.backward().unwrap();

        let paths = paths.lock();
        // One forward launch; backward lowers two kernels (zero + scatter).
        assert_eq!(paths.len(), 3, "forward launch + two backward launches");
        let interner = rig.monitor.interner();
        let bwd_labels: Vec<String> = paths[2]
            .frames()
            .iter()
            .map(|f| f.short_label(&interner))
            .collect();
        // The backward path begins with the *forward* Python context.
        assert_eq!(bwd_labels[0], "train.py:12");
        assert_eq!(bwd_labels[1], "aten::index");
        assert!(bwd_labels.contains(&"aten::index~bwd".to_owned()));
        assert!(bwd_labels.contains(&"indexing_backward_kernel".to_owned()));
        assert!(rig.monitor.stats().assoc_hits >= 1);
    }

    #[test]
    fn backward_without_association_has_no_python_context() {
        let rig = rig();
        let main = rig.env.threads().spawn(ThreadRole::Main);
        let _bind = ThreadRegistry::bind_current(&main);
        rig.engine.set_grad_enabled(true);
        let paths = launch_paths(&rig);

        {
            let core = Arc::clone(rig.engine.core());
            let _s1 = core.python().frame(&main, "train.py", 12, "train_step");
            rig.engine
                .op(Op::new(OpKind::Relu), &[TensorMeta::new([64])])
                .unwrap();
        }
        rig.monitor.clear_associations(); // simulate a monitor without the feature
        rig.engine.backward().unwrap();

        let paths = paths.lock();
        let bwd = &paths[1];
        assert!(
            bwd.frames().iter().all(|f| f.kind() != FrameKind::Python),
            "orphaned backward path must lack Python frames"
        );
    }

    #[test]
    fn cached_and_uncached_paths_agree_for_flat_dispatch() {
        let rig = rig();
        let main = rig.env.threads().spawn(ThreadRole::Main);
        let _bind = ThreadRegistry::bind_current(&main);
        let paths = launch_paths(&rig);
        let core = Arc::clone(rig.engine.core());

        rig.monitor.set_cache_enabled(true);
        {
            let _s = core.python().frame(&main, "a.py", 1, "f");
            rig.engine
                .op(Op::new(OpKind::Relu), &[TensorMeta::new([64])])
                .unwrap();
        }
        rig.monitor.set_cache_enabled(false);
        {
            let _s = core.python().frame(&main, "a.py", 1, "f");
            rig.engine
                .op(Op::new(OpKind::Relu), &[TensorMeta::new([64])])
                .unwrap();
        }
        let paths = paths.lock();
        assert_eq!(paths[0], paths[1]);
        assert!(rig.monitor.stats().cache_hits >= 1);
    }

    #[test]
    fn caching_reduces_unwind_steps() {
        let rig = rig();
        let main = rig.env.threads().spawn(ThreadRole::Main);
        let _bind = ThreadRegistry::bind_current(&main);
        let _paths = launch_paths(&rig);
        let core = Arc::clone(rig.engine.core());
        // Deep Python nesting makes full unwinds expensive.
        let _scopes: Vec<_> = (0..10)
            .map(|i| {
                core.python()
                    .frame(&main, "deep.py", i, &format!("level{i}"))
            })
            .collect();

        rig.monitor.set_cache_enabled(false);
        rig.env.unwinder().reset_counters();
        rig.engine
            .op(Op::new(OpKind::Relu), &[TensorMeta::new([64])])
            .unwrap();
        let uncached_steps = rig.env.unwinder().steps_taken();

        rig.monitor.set_cache_enabled(true);
        rig.env.unwinder().reset_counters();
        rig.engine
            .op(Op::new(OpKind::Relu), &[TensorMeta::new([64])])
            .unwrap();
        let cached_steps = rig.env.unwinder().steps_taken();

        assert!(
            cached_steps < uncached_steps,
            "cached {cached_steps} !< uncached {uncached_steps}"
        );
    }

    #[test]
    fn disabling_native_source_skips_unwinding_entirely() {
        let rig = rig();
        let main = rig.env.threads().spawn(ThreadRole::Main);
        let _bind = ThreadRegistry::bind_current(&main);
        rig.monitor.set_sources(CallPathSources::without_native());
        let paths = launch_paths(&rig);
        let core = Arc::clone(rig.engine.core());
        let _s = core.python().frame(&main, "a.py", 1, "f");

        rig.env.unwinder().reset_counters();
        rig.engine
            .op(Op::new(OpKind::Relu), &[TensorMeta::new([64])])
            .unwrap();
        assert_eq!(rig.env.unwinder().steps_taken(), 0);

        let paths = paths.lock();
        let kinds: Vec<FrameKind> = paths[0].frames().iter().map(|f| f.kind()).collect();
        assert_eq!(
            kinds,
            vec![
                FrameKind::Python,
                FrameKind::Operator,
                FrameKind::GpuApi,
                FrameKind::GpuKernel
            ]
        );
    }

    #[test]
    fn finalize_detaches_everything() {
        let rig = rig();
        let main = rig.env.threads().spawn(ThreadRole::Main);
        let _bind = ThreadRegistry::bind_current(&main);
        let paths = launch_paths(&rig);
        rig.monitor.finalize();
        rig.engine
            .op(Op::new(OpKind::Relu), &[TensorMeta::new([64])])
            .unwrap();
        assert!(paths.lock().is_empty());
        assert_eq!(rig.monitor.shadow_depth(main.tid()), 0);
    }

    #[test]
    fn shadow_stack_tracks_nesting_and_unwinds_on_exit() {
        let rig = rig();
        let main = rig.env.threads().spawn(ThreadRole::Main);
        let _bind = ThreadRegistry::bind_current(&main);
        let depths = Arc::new(Mutex::new(Vec::new()));
        let d = Arc::clone(&depths);
        let monitor = Arc::clone(&rig.monitor);
        let tid = main.tid();
        rig.monitor
            .callback_register(Domain::Framework, move |event| {
                if let DlEvent::Op(op) = event {
                    if op.site == Site::Enter {
                        d.lock().push(monitor.shadow_depth(tid));
                    }
                }
            });
        rig.engine
            .op(Op::new(OpKind::Relu), &[TensorMeta::new([8])])
            .unwrap();
        rig.engine
            .op(Op::new(OpKind::Gelu), &[TensorMeta::new([8])])
            .unwrap();
        // Depth observed at Enter is 1 for each (not nested; exits popped).
        assert_eq!(*depths.lock(), vec![1, 1]);
        assert_eq!(rig.monitor.shadow_depth(tid), 0);
    }

    #[test]
    fn mem_and_graph_events_are_forwarded() {
        let rig = rig();
        let main = rig.env.threads().spawn(ThreadRole::Main);
        let _bind = ThreadRegistry::bind_current(&main);
        let count = Arc::new(Mutex::new(0usize));
        let c = Arc::clone(&count);
        rig.monitor
            .callback_register(Domain::Framework, move |event| {
                if matches!(event, DlEvent::Mem(_)) {
                    *c.lock() += 1;
                }
            });
        let meta = TensorMeta::new([256]);
        let ptr = rig.engine.alloc_tensor(&meta).unwrap();
        rig.engine.free_tensor(ptr, meta.bytes() as u64).unwrap();
        assert_eq!(*count.lock(), 2);
    }
}
