//! Microbenchmarks for the calling context tree (paper Figure 5
//! operations: insert call path, aggregate metrics, propagate metrics).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::time::Duration;

use deepcontext_core::{CallingContextTree, Frame, MetricKind};

fn paths(cct: &CallingContextTree, distinct: usize, depth: usize) -> Vec<Vec<Frame>> {
    let interner = cct.interner();
    (0..distinct)
        .map(|p| {
            (0..depth)
                .map(|d| {
                    if d + 1 == depth {
                        Frame::gpu_kernel(
                            &format!("kernel_{p}"),
                            "m.so",
                            0x1000 + p as u64 * 0x10,
                            &interner,
                        )
                    } else {
                        Frame::python("model.py", (p * depth + d) as u32 % 97, "layer", &interner)
                    }
                })
                .collect()
        })
        .collect()
}

fn bench_cct(c: &mut Criterion) {
    let mut group = c.benchmark_group("cct");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));

    group.bench_function("insert_cold_1000_paths_depth8", |b| {
        let template = CallingContextTree::new();
        let ps = paths(&template, 1000, 8);
        b.iter_batched(
            || CallingContextTree::with_interner(template.interner()),
            |mut cct| {
                for p in &ps {
                    cct.insert_path(p);
                }
                cct
            },
            BatchSize::SmallInput,
        );
    });

    group.bench_function("insert_warm_reuses_nodes", |b| {
        let mut cct = CallingContextTree::new();
        let ps = paths(&cct, 200, 8);
        for p in &ps {
            cct.insert_path(p);
        }
        b.iter(|| {
            let mut last = None;
            for p in &ps {
                last = Some(cct.insert_path(p));
            }
            last
        });
    });

    group.bench_function("attribute_with_propagation_depth8", |b| {
        let mut cct = CallingContextTree::new();
        let ps = paths(&cct, 100, 8);
        let leaves: Vec<_> = ps.iter().map(|p| cct.insert_path(p)).collect();
        b.iter(|| {
            for leaf in &leaves {
                cct.attribute(*leaf, MetricKind::GpuTime, 123.0);
            }
        });
    });

    group.bench_function("merge_two_200_node_trees", |b| {
        let template = CallingContextTree::new();
        let ps_a = paths(&template, 100, 6);
        let ps_b = paths(&template, 100, 6);
        b.iter_batched(
            || {
                let mut a = CallingContextTree::with_interner(template.interner());
                let mut bt = CallingContextTree::with_interner(template.interner());
                for p in &ps_a {
                    let l = a.insert_path(p);
                    a.attribute(l, MetricKind::GpuTime, 1.0);
                }
                for p in &ps_b {
                    let l = bt.insert_path(p);
                    bt.attribute(l, MetricKind::GpuTime, 1.0);
                }
                (a, bt)
            },
            |(mut a, bt)| {
                a.merge(&bt);
                a
            },
            BatchSize::SmallInput,
        );
    });

    group.finish();
}

criterion_group!(benches, bench_cct);
criterion_main!(benches);
