//! The DeepContext event-ingestion pipeline.
//!
//! Every collection path of the profiler terminates in an [`EventSink`].
//! This crate owns that contract and both sinks that implement it:
//!
//! * [`ShardedSink`] — the synchronous pipeline: producers route each
//!   event to one of N [`CctShard`]s and attribute it inline under that
//!   shard's lock (see [`sharded`]);
//! * [`AsyncSink`] — the asynchronous pipeline: producers enqueue owned
//!   events into per-shard **bounded channels** and a worker pool
//!   performs correlation resolution, CCT mutation and metric folds off
//!   the producer's critical path, with explicit
//!   [backpressure](BackpressurePolicy) and deterministic drain barriers
//!   (see [`async_sink`]).
//!
//! The asynchronous mode drives the *same* per-shard entry points as the
//! synchronous mode ([`ShardedSink::apply_launch`] et al.), so the two
//! modes produce semantically identical profiles — an equivalence this
//! crate's proptests assert tree-by-tree via
//! `CallingContextTree::semantic_diff`.
//!
//! ```text
//!  producers (launch cb / activity flush / CPU sampler)
//!      │  route + bind corr→shard        (no shard lock)
//!      ▼
//!  per-shard bounded channels  ──ᴮˡᵒᶜᵏ/ᴰʳᵒᵖᴼˡᵈᵉˢᵗ──  backpressure
//!      │  FIFO per shard
//!      ▼
//!  worker pool (shard i → worker i mod W)
//!      │  apply_launch / apply_activities / apply_cpu_sample / epoch
//!      ▼
//!  CctShards ──merge_incremental──▶ cached master CCT
//! ```
//!
//! [`CctShard`]: deepcontext_core::CctShard

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod async_sink;
pub mod sharded;
pub mod sink;

pub use async_sink::{AsyncSink, BackpressurePolicy, PipelineConfig};
pub use sharded::ShardedSink;
pub use sink::{attribute_activity_metrics, EventSink, SinkCounters};

/// Whether attribution runs inline on producers or on the worker pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IngestionMode {
    /// Producers attribute inline under per-shard locks ([`ShardedSink`]).
    #[default]
    Sync,
    /// Producers enqueue into bounded channels; a worker pool attributes
    /// ([`AsyncSink`]).
    Async,
}

/// The default ingestion mode, honouring the
/// `DEEPCONTEXT_INGESTION_MODE` environment override (`sync` / `async`)
/// CI uses to run the whole suite under both pipelines. Falls back to
/// [`IngestionMode::Sync`] when unset or invalid, so the asynchronous
/// path is strictly opt-in.
pub fn default_ingestion_mode() -> IngestionMode {
    match std::env::var("DEEPCONTEXT_INGESTION_MODE") {
        Ok(v) if v.trim().eq_ignore_ascii_case("async") => IngestionMode::Async,
        _ => IngestionMode::Sync,
    }
}
