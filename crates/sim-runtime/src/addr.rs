//! Fake virtual address allocation.
//!
//! Gives every simulated shared library a disjoint address range, so
//! PC→library lookup behaves like a real process map.

use std::sync::atomic::{AtomicU64, Ordering};

/// Base of the simulated shared-library mapping region.
const LIB_REGION_BASE: u64 = 0x7f00_0000_0000;
/// Alignment/granule for library mappings.
const LIB_ALIGN: u64 = 0x1_0000;

/// Allocates non-overlapping address ranges for simulated libraries.
///
/// # Examples
///
/// ```
/// use sim_runtime::AddressSpace;
///
/// let space = AddressSpace::new();
/// let a = space.alloc(0x4000);
/// let b = space.alloc(0x4000);
/// assert!(b >= a + 0x4000);
/// ```
#[derive(Debug)]
pub struct AddressSpace {
    next: AtomicU64,
}

impl AddressSpace {
    /// Creates an allocator starting at the canonical library region.
    pub fn new() -> Self {
        AddressSpace {
            next: AtomicU64::new(LIB_REGION_BASE),
        }
    }

    /// Allocates `size` bytes of simulated address space, returning the
    /// base address. Ranges never overlap and are 64 KiB aligned.
    pub fn alloc(&self, size: u64) -> u64 {
        let aligned = size.div_ceil(LIB_ALIGN) * LIB_ALIGN;
        self.next.fetch_add(aligned, Ordering::SeqCst)
    }
}

impl Default for AddressSpace {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocations_are_disjoint_and_aligned() {
        let s = AddressSpace::new();
        let a = s.alloc(100);
        let b = s.alloc(0x2_0000);
        let c = s.alloc(1);
        assert_eq!(a % LIB_ALIGN, 0);
        assert_eq!(b % LIB_ALIGN, 0);
        assert!(b >= a + 100);
        assert!(c >= b + 0x2_0000);
    }

    #[test]
    fn concurrent_allocations_do_not_collide() {
        let s = std::sync::Arc::new(AddressSpace::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let s = std::sync::Arc::clone(&s);
                std::thread::spawn(move || (0..50).map(|_| s.alloc(0x1000)).collect::<Vec<_>>())
            })
            .collect();
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort();
        all.dedup();
        assert_eq!(all.len(), 400);
    }
}
