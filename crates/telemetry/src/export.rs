//! Snapshot exporters: Prometheus text exposition and JSON.
//!
//! Both renderings are fully deterministic — samples arrive
//! `(name, labels)`-sorted from the registry and are emitted in that
//! order, labels in sorted-key order — so goldens diff cleanly and
//! scrapes of an idle registry are byte-stable.

use std::fmt::Write as _;

use crate::metrics::{bucket_upper_bound, HistogramSnapshot};
use crate::registry::{MetricValue, TelemetrySnapshot};

/// Rewrites `name` into the Prometheus metric-name alphabet
/// (`[a-zA-Z0-9_:]`, not digit-leading): every illegal character
/// becomes `_`, and a leading digit gains a `_` prefix.
pub fn sanitize_metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let legal = c.is_ascii_alphanumeric() || c == '_' || c == ':';
        if i == 0 && c.is_ascii_digit() {
            out.push('_');
        }
        out.push(if legal { c } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Rewrites `name` into the Prometheus label-name alphabet
/// (`[a-zA-Z0-9_]`, not digit-leading).
pub fn sanitize_label_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let legal = c.is_ascii_alphanumeric() || c == '_';
        if i == 0 && c.is_ascii_digit() {
            out.push('_');
        }
        out.push(if legal { c } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Escapes a label value per the exposition format: backslash, double
/// quote, and newline.
pub fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Renders `{k="v",...}` (empty string when there are no labels).
/// `extra` appends one more pair after the sorted set (the histogram
/// `le` label).
fn label_block(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut pairs: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{}=\"{}\"", sanitize_label_name(k), escape_label_value(v)))
        .collect();
    if let Some((k, v)) = extra {
        pairs.push(format!("{k}=\"{v}\""));
    }
    if pairs.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", pairs.join(","))
    }
}

fn kind_of(value: &MetricValue) -> &'static str {
    match value {
        MetricValue::Counter(_) => "counter",
        MetricValue::Gauge(_) => "gauge",
        MetricValue::Histogram(_) => "histogram",
    }
}

fn push_histogram(
    out: &mut String,
    name: &str,
    labels: &[(String, String)],
    h: &HistogramSnapshot,
) {
    // Cumulative buckets up to the highest non-empty bound keep the
    // exposition compact; `+Inf` always closes the series.
    let top = h
        .buckets
        .iter()
        .rposition(|&n| n > 0)
        .map(|i| i + 1)
        .unwrap_or(0);
    let mut cumulative = 0u64;
    for (i, n) in h.buckets.iter().enumerate().take(top) {
        cumulative += n;
        let le = bucket_upper_bound(i).to_string();
        let _ = writeln!(
            out,
            "{name}_bucket{} {cumulative}",
            label_block(labels, Some(("le", &le)))
        );
    }
    let _ = writeln!(
        out,
        "{name}_bucket{} {}",
        label_block(labels, Some(("le", "+Inf"))),
        h.count
    );
    let _ = writeln!(out, "{name}_sum{} {}", label_block(labels, None), h.sum);
    let _ = writeln!(out, "{name}_count{} {}", label_block(labels, None), h.count);
}

/// Renders the snapshot in Prometheus text exposition format: one
/// `# TYPE` line per metric name, samples in `(name, labels)` order,
/// histograms as cumulative `_bucket{le=...}` series plus `_sum` /
/// `_count`.
pub fn to_prometheus(snapshot: &TelemetrySnapshot) -> String {
    let mut out = String::new();
    let mut last_name: Option<&str> = None;
    for sample in &snapshot.samples {
        let name = sanitize_metric_name(&sample.name);
        if last_name != Some(sample.name.as_str()) {
            let _ = writeln!(out, "# TYPE {name} {}", kind_of(&sample.value));
            last_name = Some(sample.name.as_str());
        }
        match &sample.value {
            MetricValue::Counter(v) | MetricValue::Gauge(v) => {
                let _ = writeln!(out, "{name}{} {v}", label_block(&sample.labels, None));
            }
            MetricValue::Histogram(h) => push_histogram(&mut out, &name, &sample.labels, h),
        }
    }
    out
}

fn escape_json(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Renders the snapshot as a self-contained JSON object:
/// `{"samples":[{"name":...,"labels":{...},"kind":...,...}]}`, with
/// histograms carrying `count`/`sum`/`p50`/`p99` plus sparse
/// `[upper_bound, count]` bucket pairs.
pub fn to_json(snapshot: &TelemetrySnapshot) -> String {
    let mut out = String::from("{\"samples\":[");
    for (i, sample) in snapshot.samples.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n  {\"name\":\"");
        escape_json(&mut out, &sample.name);
        out.push_str("\",\"labels\":{");
        for (j, (k, v)) in sample.labels.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push('"');
            escape_json(&mut out, k);
            out.push_str("\":\"");
            escape_json(&mut out, v);
            out.push('"');
        }
        out.push_str("},\"kind\":\"");
        out.push_str(kind_of(&sample.value));
        out.push('"');
        match &sample.value {
            MetricValue::Counter(v) | MetricValue::Gauge(v) => {
                let _ = write!(out, ",\"value\":{v}");
            }
            MetricValue::Histogram(h) => {
                let _ = write!(
                    out,
                    ",\"count\":{},\"sum\":{},\"p50\":{},\"p99\":{},\"buckets\":[",
                    h.count,
                    h.sum,
                    h.p50(),
                    h.p99()
                );
                let mut first = true;
                for (b, n) in h.buckets.iter().enumerate().filter(|(_, &n)| n > 0) {
                    if !std::mem::take(&mut first) {
                        out.push(',');
                    }
                    let _ = write!(out, "[{},{n}]", bucket_upper_bound(b));
                }
                out.push(']');
            }
        }
        out.push('}');
    }
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Telemetry;

    #[test]
    fn sanitizers_rewrite_illegal_characters() {
        assert_eq!(sanitize_metric_name("a.b-c"), "a_b_c");
        assert_eq!(sanitize_metric_name("0abc"), "_0abc");
        assert_eq!(sanitize_metric_name("ns:total"), "ns:total");
        assert_eq!(sanitize_label_name("a:b"), "a_b");
        assert_eq!(sanitize_label_name("9x"), "_9x");
        assert_eq!(escape_label_value("a\\b\"c\nd"), "a\\\\b\\\"c\\nd");
    }

    #[test]
    fn counter_and_gauge_exposition() {
        let t = Telemetry::new();
        t.counter("events_total", &[("shard", "0")]).add(5);
        t.gauge("depth", &[]).set(3);
        let text = t.snapshot().to_prometheus();
        assert!(text.contains("# TYPE events_total counter\n"));
        assert!(text.contains("events_total{shard=\"0\"} 5\n"));
        assert!(text.contains("# TYPE depth gauge\n"));
        assert!(text.contains("depth 3\n"));
    }

    #[test]
    fn histogram_exposition_is_cumulative_and_closed_by_inf() {
        let t = Telemetry::new();
        let h = t.histogram("lat_ns", &[]);
        h.record(1);
        h.record(3);
        h.record(3);
        let text = t.snapshot().to_prometheus();
        assert!(text.contains("# TYPE lat_ns histogram\n"));
        assert!(text.contains("lat_ns_bucket{le=\"1\"} 1\n"));
        assert!(text.contains("lat_ns_bucket{le=\"3\"} 3\n"));
        assert!(text.contains("lat_ns_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("lat_ns_sum 7\n"));
        assert!(text.contains("lat_ns_count 3\n"));
    }

    #[test]
    fn json_is_balanced_and_carries_percentiles() {
        let t = Telemetry::new();
        t.histogram("h", &[("k", "v\"q")]).record(100);
        t.counter("c_total", &[]).inc();
        let json = t.snapshot().to_json();
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.contains("\"kind\":\"histogram\""));
        assert!(json.contains("\"p99\":127"));
        assert!(json.contains("\\\"q"));
        assert!(json.contains("\"value\":1"));
    }
}
