//! Property-based tests for the core invariants the rest of DeepContext
//! relies on: CCT structural consistency, inclusive-metric propagation,
//! Welford aggregation accuracy, merge correctness, and database
//! round-tripping.

use std::sync::Arc;

use deepcontext_core::{
    CallingContextTree, CctShard, Frame, Interner, MetricKind, MetricStat, OpPhase, ProfileDb,
    ProfileMeta,
};
use proptest::prelude::*;

/// A compact generator language for frames: small alphabets force collisions
/// so collapse rules actually get exercised.
fn arb_frame(interner: Arc<Interner>) -> impl Strategy<Value = Frame> {
    let i2 = Arc::clone(&interner);
    let i3 = Arc::clone(&interner);
    let i4 = Arc::clone(&interner);
    prop_oneof![
        (0u8..4, 1u32..5, 0u8..3).prop_map(move |(f, line, func)| Frame::python(
            &format!("file{f}.py"),
            line,
            &format!("fn{func}"),
            &interner
        )),
        (0u8..5, prop::bool::ANY).prop_map(move |(n, bwd)| Frame::operator_with(
            &format!("aten::op{n}"),
            if bwd {
                OpPhase::Backward
            } else {
                OpPhase::Forward
            },
            None,
            &i2
        )),
        (0u8..3, 0u64..6).prop_map(move |(lib, pc)| Frame::native(
            &format!("lib{lib}.so"),
            pc * 0x10,
            &format!("sym{pc}"),
            &i3
        )),
        (0u8..4, 0u64..4).prop_map(move |(k, pc)| Frame::gpu_kernel(
            &format!("kernel{k}"),
            "module.so",
            pc * 0x100,
            &i4
        )),
    ]
}

fn arb_paths() -> impl Strategy<Value = (Arc<Interner>, Vec<Vec<Frame>>)> {
    let interner = Interner::new();
    let frames = arb_frame(Arc::clone(&interner));
    prop::collection::vec(prop::collection::vec(frames, 1..8), 1..40)
        .prop_map(move |paths| (Arc::clone(&interner), paths))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cct_structure_is_consistent((interner, paths) in arb_paths()) {
        let mut cct = CallingContextTree::with_interner(interner);
        for p in &paths {
            cct.insert_path(p);
        }
        // Every node except root has a parent that lists it as a child.
        for id in cct.dfs() {
            let node = cct.node(id);
            match node.parent() {
                None => prop_assert_eq!(id, cct.root()),
                Some(parent) => {
                    prop_assert!(cct.node(parent).children().contains(&id));
                }
            }
            // Children of one node never share a collapse key.
            let keys: Vec<_> = node.children().iter().map(|c| cct.node(*c).frame().key()).collect();
            let mut dedup = keys.clone();
            dedup.sort_by_key(|k| format!("{k:?}"));
            dedup.dedup();
            prop_assert_eq!(keys.len(), dedup.len());
        }
        // DFS visits every node exactly once.
        prop_assert_eq!(cct.dfs().count(), cct.node_count());
    }

    #[test]
    fn reinsertion_is_idempotent((interner, paths) in arb_paths()) {
        let mut cct = CallingContextTree::with_interner(interner);
        let leaves: Vec<_> = paths.iter().map(|p| cct.insert_path(p)).collect();
        let count = cct.node_count();
        for (p, leaf) in paths.iter().zip(&leaves) {
            prop_assert_eq!(cct.insert_path(p), *leaf);
        }
        prop_assert_eq!(cct.node_count(), count);
    }

    #[test]
    fn node_count_bounded_by_total_frames((interner, paths) in arb_paths()) {
        let mut cct = CallingContextTree::with_interner(interner);
        for p in &paths {
            cct.insert_path(p);
        }
        let total_frames: usize = paths.iter().map(Vec::len).sum();
        prop_assert!(cct.node_count() <= 1 + total_frames);
    }

    #[test]
    fn propagation_keeps_root_equal_to_sample_total(
        (interner, paths) in arb_paths(),
        values in prop::collection::vec(0.0f64..1e6, 1..40),
    ) {
        let mut cct = CallingContextTree::with_interner(interner);
        let mut expected_sum = 0.0;
        let mut expected_count = 0u64;
        for (p, v) in paths.iter().zip(values.iter().cycle()) {
            let leaf = cct.insert_path(p);
            cct.attribute(leaf, MetricKind::GpuTime, *v);
            expected_sum += *v;
            expected_count += 1;
        }
        let root = cct.root_metric(MetricKind::GpuTime).unwrap();
        prop_assert!((root.sum - expected_sum).abs() < 1e-6 * expected_sum.max(1.0));
        prop_assert_eq!(root.count, expected_count);
    }

    #[test]
    fn parent_inclusive_metric_dominates_children(
        (interner, paths) in arb_paths(),
        values in prop::collection::vec(0.0f64..1e6, 1..40),
    ) {
        let mut cct = CallingContextTree::with_interner(interner);
        for (p, v) in paths.iter().zip(values.iter().cycle()) {
            let leaf = cct.insert_path(p);
            cct.attribute(leaf, MetricKind::GpuTime, *v);
        }
        for id in cct.dfs() {
            let parent_sum = cct.node(id).metrics().sum(MetricKind::GpuTime);
            let child_total: f64 = cct
                .node(id)
                .children()
                .iter()
                .map(|c| cct.node(*c).metrics().sum(MetricKind::GpuTime))
                .sum();
            prop_assert!(parent_sum + 1e-9 >= child_total - 1e-6 * child_total.abs());
        }
    }

    #[test]
    fn welford_matches_naive(values in prop::collection::vec(-1e7f64..1e7, 1..200)) {
        let mut stat = MetricStat::new();
        for v in &values {
            stat.add(*v);
        }
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
        prop_assert!((stat.mean() - mean).abs() <= 1e-6 * mean.abs().max(1.0));
        prop_assert!((stat.stddev() - var.sqrt()).abs() <= 1e-5 * var.sqrt().max(1.0));
        prop_assert_eq!(stat.min, values.iter().copied().fold(f64::INFINITY, f64::min));
        prop_assert_eq!(stat.max, values.iter().copied().fold(f64::NEG_INFINITY, f64::max));
    }

    #[test]
    fn stat_merge_is_equivalent_to_concatenation(
        a in prop::collection::vec(-1e6f64..1e6, 0..100),
        b in prop::collection::vec(-1e6f64..1e6, 0..100),
    ) {
        let mut merged = MetricStat::new();
        for v in &a {
            merged.add(*v);
        }
        let mut other = MetricStat::new();
        for v in &b {
            other.add(*v);
        }
        merged.merge(&other);

        let mut whole = MetricStat::new();
        for v in a.iter().chain(&b) {
            whole.add(*v);
        }
        prop_assert_eq!(merged.count, whole.count);
        prop_assert!((merged.sum - whole.sum).abs() <= 1e-6 * whole.sum.abs().max(1.0));
        prop_assert!((merged.mean() - whole.mean()).abs() <= 1e-6 * whole.mean().abs().max(1.0));
        prop_assert!((merged.stddev() - whole.stddev()).abs() <= 1e-5 * whole.stddev().max(1.0));
    }

    #[test]
    fn tree_merge_preserves_totals(
        (interner, paths) in arb_paths(),
        split in 0usize..40,
    ) {
        let mut whole = CallingContextTree::with_interner(Arc::clone(&interner));
        let mut left = CallingContextTree::with_interner(Arc::clone(&interner));
        let mut right = CallingContextTree::with_interner(interner);
        for (idx, p) in paths.iter().enumerate() {
            let lw = whole.insert_path(p);
            whole.attribute(lw, MetricKind::GpuTime, 1.0);
            let target = if idx < split % paths.len().max(1) { &mut left } else { &mut right };
            let l = target.insert_path(p);
            target.attribute(l, MetricKind::GpuTime, 1.0);
        }
        left.merge(&right);
        prop_assert_eq!(left.node_count(), whole.node_count());
        prop_assert_eq!(
            left.total(MetricKind::GpuTime),
            whole.total(MetricKind::GpuTime)
        );
    }

    #[test]
    fn tree_merge_commutes_on_metric_sums(
        (interner, paths) in arb_paths(),
        values in prop::collection::vec(0.0f64..1e6, 1..40),
        split in 0usize..40,
    ) {
        let mut left = CallingContextTree::with_interner(Arc::clone(&interner));
        let mut right = CallingContextTree::with_interner(interner);
        for (idx, (p, v)) in paths.iter().zip(values.iter().cycle()).enumerate() {
            let target = if idx < split % paths.len().max(1) { &mut left } else { &mut right };
            let leaf = target.insert_path(p);
            target.attribute(leaf, MetricKind::GpuTime, *v);
        }
        let mut ab = left.clone();
        ab.merge(&right);
        let mut ba = right.clone();
        ba.merge(&left);
        prop_assert_eq!(ab.node_count(), ba.node_count());
        let sa = ab.total(MetricKind::GpuTime);
        let sb = ba.total(MetricKind::GpuTime);
        prop_assert!((sa - sb).abs() <= 1e-9 * sa.abs().max(1.0));
        let ra = ab.root_metric(MetricKind::GpuTime).map(|s| s.count).unwrap_or(0);
        let rb = ba.root_metric(MetricKind::GpuTime).map(|s| s.count).unwrap_or(0);
        prop_assert_eq!(ra, rb);
    }

    #[test]
    fn merge_preserves_frame_collapse_rules((interner, paths) in arb_paths(), split in 0usize..40) {
        let mut left = CallingContextTree::with_interner(Arc::clone(&interner));
        let mut right = CallingContextTree::with_interner(interner);
        for (idx, p) in paths.iter().enumerate() {
            let target = if idx < split % paths.len().max(1) { &mut left } else { &mut right };
            target.insert_path(p);
        }
        left.merge(&right);
        // No parent ends up with two children sharing a collapse key, and
        // re-inserting every path finds existing nodes (no duplicates).
        for id in left.dfs() {
            let keys: Vec<_> = left
                .node(id)
                .children()
                .iter()
                .map(|c| left.node(*c).frame().key())
                .collect();
            let mut dedup = keys.clone();
            dedup.sort_by_key(|k| format!("{k:?}"));
            dedup.dedup();
            prop_assert_eq!(keys.len(), dedup.len());
        }
        let count = left.node_count();
        for p in &paths {
            left.insert_path(p);
        }
        prop_assert_eq!(left.node_count(), count);
    }

    #[test]
    fn merge_never_propagates_exclusive_metrics_rootward(
        (interner, paths) in arb_paths(),
        warps in prop::collection::vec(1.0f64..64.0, 1..40),
    ) {
        let mut left = CallingContextTree::with_interner(Arc::clone(&interner));
        let mut right = CallingContextTree::with_interner(interner);
        let mut expected = 0.0;
        for (idx, (p, w)) in paths.iter().zip(warps.iter().cycle()).enumerate() {
            let target = if idx % 2 == 0 { &mut left } else { &mut right };
            let leaf = target.insert_path(p);
            target.attribute_exclusive(leaf, MetricKind::Warps, *w);
            expected += *w;
        }
        left.merge(&right);
        // Exclusive metrics live only where they were attributed: the sum
        // over all nodes equals the sum of samples, and any node carrying
        // Warps either was a leaf-attribution target or absorbed one —
        // never the root unless a path was empty (arb paths are non-empty).
        let mut total = 0.0;
        for id in left.dfs() {
            total += left.node(id).metrics().sum(MetricKind::Warps);
        }
        prop_assert!((total - expected).abs() <= 1e-9 * expected.max(1.0));
        prop_assert!(left.root_metric(MetricKind::Warps).is_none());
    }

    #[test]
    fn merge_mapping_points_at_equivalent_contexts((interner, paths) in arb_paths()) {
        let mut target = CallingContextTree::with_interner(Arc::clone(&interner));
        let mut other = CallingContextTree::with_interner(interner);
        for (idx, p) in paths.iter().enumerate() {
            if idx % 2 == 0 {
                target.insert_path(p);
            } else {
                other.insert_path(p);
            }
        }
        let mapping = target.merge(&other);
        prop_assert_eq!(mapping.len(), other.node_count());
        for id in other.dfs() {
            let mapped = mapping[id.index()];
            // Same collapse key, and the parent relationship survives.
            prop_assert_eq!(
                format!("{:?}", target.node(mapped).frame().key()),
                format!("{:?}", other.node(id).frame().key())
            );
            if let Some(parent) = other.node(id).parent() {
                prop_assert_eq!(target.node(mapped).parent(), Some(mapping[parent.index()]));
            }
        }
    }

    #[test]
    fn shard_fold_equals_direct_ingestion(
        (interner, paths) in arb_paths(),
        values in prop::collection::vec(0.0f64..1e6, 1..40),
        shard_count in 1usize..9,
    ) {
        // Ingesting through round-robin shards then folding must agree
        // with one tree ingesting everything (the sharded pipeline's
        // correctness core).
        let mut whole = CallingContextTree::with_interner(Arc::clone(&interner));
        let mut shards: Vec<CctShard> = (0..shard_count)
            .map(|_| CctShard::new(Arc::clone(&interner)))
            .collect();
        for (idx, (p, v)) in paths.iter().zip(values.iter().cycle()).enumerate() {
            let leaf = whole.insert_path(p);
            whole.attribute(leaf, MetricKind::GpuTime, *v);
            let shard = &mut shards[idx % shard_count];
            let leaf = shard.tree_mut().insert_path(p);
            shard.tree_mut().attribute(leaf, MetricKind::GpuTime, *v);
        }
        let mut master = CctShard::new(interner);
        for shard in &shards {
            master.merge_from(shard);
        }
        let folded = master.into_tree();
        prop_assert_eq!(folded.node_count(), whole.node_count());
        let fs = folded.total(MetricKind::GpuTime);
        let ws = whole.total(MetricKind::GpuTime);
        prop_assert!((fs - ws).abs() <= 1e-9 * ws.abs().max(1.0));
        prop_assert_eq!(
            folded.root_metric(MetricKind::GpuTime).unwrap().count,
            whole.root_metric(MetricKind::GpuTime).unwrap().count
        );
    }

    #[test]
    fn profile_db_round_trips(
        (interner, paths) in arb_paths(),
        values in prop::collection::vec(0.0f64..1e6, 1..40),
        iterations in 0u64..1000,
    ) {
        let mut cct = CallingContextTree::with_interner(interner);
        for (p, v) in paths.iter().zip(values.iter().cycle()) {
            let leaf = cct.insert_path(p);
            cct.attribute(leaf, MetricKind::GpuTime, *v);
            cct.attribute_exclusive(leaf, MetricKind::Warps, 32.0);
        }
        let db = ProfileDb::new(
            ProfileMeta {
                workload: "prop".into(),
                framework: "eager".into(),
                platform: "nvidia-a100".into(),
                iterations,
                ..Default::default()
            },
            cct,
        );
        let mut buf = Vec::new();
        db.save(&mut buf).unwrap();
        let back = ProfileDb::load(&buf[..]).unwrap();
        prop_assert_eq!(back.meta(), db.meta());
        prop_assert_eq!(back.cct().node_count(), db.cct().node_count());
        prop_assert_eq!(
            back.cct().render(MetricKind::GpuTime),
            db.cct().render(MetricKind::GpuTime)
        );
        prop_assert_eq!(
            back.cct().render(MetricKind::Warps),
            db.cct().render(MetricKind::Warps)
        );
    }

    #[test]
    fn incremental_fold_of_a_growing_tree_matches_one_shot_merge(
        (interner, paths) in arb_paths(),
        values in prop::collection::vec(1u32..1000, 1..40),
        fold_every in 1usize..6,
    ) {
        // Grow a source tree path by path, folding it into a master
        // every few steps through one resumed FoldState; the master
        // must always equal a one-shot merge of the source's current
        // state (the shard-level guarantee behind snapshot caching).
        let mut source = CallingContextTree::with_interner(Arc::clone(&interner));
        let mut master = CallingContextTree::with_interner(Arc::clone(&interner));
        let mut state = deepcontext_core::FoldState::new();
        for (step, (p, v)) in paths.iter().zip(values.iter().cycle()).enumerate() {
            let leaf = source.insert_path(p);
            source.attribute(leaf, MetricKind::GpuTime, f64::from(*v));
            source.attribute_exclusive(leaf, MetricKind::Warps, 32.0);
            if step % fold_every == 0 {
                master.merge_incremental(&source, &mut state);
                let mut fresh = CallingContextTree::with_interner(Arc::clone(&interner));
                fresh.merge(&source);
                prop_assert_eq!(master.semantic_diff(&fresh), None);
            }
        }
        master.merge_incremental(&source, &mut state);
        let mut fresh = CallingContextTree::with_interner(Arc::clone(&interner));
        fresh.merge(&source);
        prop_assert_eq!(master.semantic_diff(&fresh), None);
        prop_assert_eq!(state.folded_nodes(), source.node_count());
    }
}
