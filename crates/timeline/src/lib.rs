//! The context-aware timeline subsystem.
//!
//! The profiler's calling context tree answers *where did the time go*;
//! it folds every activity's `start`/`end` into aggregates and discards
//! the intervals, so latency questions — device utilization, cross-stream
//! kernel overlap, idle gaps between launches — cannot be asked of it.
//! This crate keeps the intervals: per-`(device, stream)` **tracks**
//! recorded from the same event flow that feeds the CCT, each interval
//! tagged with its resolved CCT context id, stored in bounded per-shard
//! ring buffers so timeline memory is capped regardless of run length
//! (overflow evicts the oldest intervals and is counted, like the
//! pipeline's `<dropped>` telemetry).
//!
//! Layers:
//!
//! * [`TimelineSink`] — the recording side: lock-striped (one ring per
//!   ingestion shard, locked only under that shard's existing
//!   serialization) bounded interval storage, written by the ingestion
//!   pipeline while it attributes kernel/memcpy records;
//! * [`TimelineSnapshot`] — the analysis side: intervals assembled into
//!   per-track, start-sorted vectors, with shard-local context ids
//!   remapped into the folded master CCT;
//! * [`TimelineStats`] — per-device utilization, cross-stream overlap
//!   factor, and idle gaps attributed to the contexts of their bounding
//!   launches;
//! * [`chrome`] — a Chrome Trace Format exporter
//!   ([`TimelineSnapshot::to_chrome_trace`]): load the JSON in
//!   `chrome://tracing` or [Perfetto](https://ui.perfetto.dev) to see
//!   one swim-lane per `(device, stream)` track.
//!
//! Recording is wired behind `ProfilerConfig::timeline` (default off;
//! the `DEEPCONTEXT_TIMELINE` environment variable CI uses flips the
//! default — see [`default_timeline_config`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chrome;
pub mod ring;
pub mod snapshot;

pub use ring::{IntervalRing, TimelineCounters, TimelineSink};
pub use snapshot::{DeviceStats, Gap, TimelineSnapshot, TimelineStats, Track};

// The shared vocabulary lives in core; re-export it so timeline users
// need no direct core import for the data types.
pub use deepcontext_core::{Interval, IntervalKind, TrackKey};

/// Default per-shard ring capacity, in intervals. Large enough that the
/// benchmark workloads (and an iteration window of a real training loop)
/// fit without eviction, small enough that a full ring stays a bounded
/// slice of profile memory (intervals are ~100 bytes; a full default
/// ring is ~6 MiB, allocated lazily).
pub const DEFAULT_RING_CAPACITY: usize = 65_536;

/// Timeline recording knobs (the `ProfilerConfig::timeline` field).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimelineConfig {
    /// Whether kernel/memcpy intervals are recorded at all. Off by
    /// default: aggregate-only profiling pays nothing for the timeline.
    pub enabled: bool,
    /// Bounded capacity of each ingestion shard's interval ring. When a
    /// ring is full the oldest interval is evicted and counted
    /// ([`TimelineCounters::dropped`]), so the timeline becomes a
    /// trailing window rather than growing without bound.
    pub ring_capacity: usize,
}

impl Default for TimelineConfig {
    fn default() -> Self {
        TimelineConfig {
            enabled: false,
            ring_capacity: DEFAULT_RING_CAPACITY,
        }
    }
}

impl TimelineConfig {
    /// An enabled configuration at the default ring capacity.
    pub fn enabled() -> Self {
        TimelineConfig {
            enabled: true,
            ..TimelineConfig::default()
        }
    }
}

/// Whether the `DEEPCONTEXT_TIMELINE` environment override asks for
/// timeline recording (`1` / `true` / `on`, case-insensitive). Unset or
/// anything else means off — the timeline is strictly opt-in.
pub fn default_timeline_enabled() -> bool {
    std::env::var("DEEPCONTEXT_TIMELINE")
        .map(|v| {
            let v = v.trim();
            v == "1" || v.eq_ignore_ascii_case("true") || v.eq_ignore_ascii_case("on")
        })
        .unwrap_or(false)
}

/// The default timeline configuration, honouring the
/// `DEEPCONTEXT_TIMELINE` environment override CI uses to run the whole
/// suite with recording off (`=0`, the default) and on (`=1`).
pub fn default_timeline_config() -> TimelineConfig {
    TimelineConfig {
        enabled: default_timeline_enabled(),
        ..TimelineConfig::default()
    }
}
