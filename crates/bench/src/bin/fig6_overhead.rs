//! Regenerates **Figure 6**: time and memory overheads of the ten
//! workloads under the framework profiler, DeepContext, and DeepContext
//! with native call paths, on both platforms and both engines.
//!
//! ```text
//! cargo run --release -p deepcontext-bench --bin fig6_overhead -- \
//!     [--framework eager|jit|both] [--metric time|memory|both] \
//!     [--platform nvidia|amd|both] [--iters N]
//! ```
//!
//! Time overhead is real host wall time relative to the unprofiled run
//! (the profilers do real work — unwinding, tree insertion, trace
//! appends). Memory overhead is the profile's peak bytes over a host
//! memory model; `inf` marks runs whose trace outgrew the DRAM budget,
//! matching the ∞ bars of the paper's chart.

use deepcontext_bench::{measure, memory_overhead, EngineKind, ProfilerKind};
use dl_models::{all_workloads, WorkloadOptions};
use sim_gpu::DeviceSpec;

/// DRAM budget for the memory-overhead OOM cutoff.
const DRAM_BUDGET: usize = 192 << 20;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let get = |flag: &str, default: &str| -> String {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
            .unwrap_or_else(|| default.to_owned())
    };
    let framework = get("--framework", "both");
    let metric = get("--metric", "both");
    let platform = get("--platform", "both");
    let iters: u32 = get("--iters", "20").parse().expect("--iters N");

    let engines: Vec<EngineKind> = match framework.as_str() {
        "eager" => vec![EngineKind::Eager],
        "jit" => vec![EngineKind::Jit],
        _ => vec![EngineKind::Eager, EngineKind::Jit],
    };
    let platforms: Vec<DeviceSpec> = match platform.as_str() {
        "nvidia" => vec![DeviceSpec::a100_sxm()],
        "amd" => vec![DeviceSpec::mi250()],
        _ => vec![DeviceSpec::a100_sxm(), DeviceSpec::mi250()],
    };
    let opts = WorkloadOptions::default();

    for engine in &engines {
        for spec in &platforms {
            let figure = match (engine, metric.as_str()) {
                (EngineKind::Eager, "time") => "6a (time, PyTorch-style)",
                (EngineKind::Jit, "time") => "6b (time, JAX-style)",
                (EngineKind::Eager, "memory") => "6c (memory, PyTorch-style)",
                (EngineKind::Jit, "memory") => "6d (memory, JAX-style)",
                (EngineKind::Eager, _) => "6a/6c (PyTorch-style)",
                (EngineKind::Jit, _) => "6b/6d (JAX-style)",
            };
            println!(
                "\nFigure {figure} — {} on {} ({iters} iterations)",
                engine.tag(),
                spec.platform_tag()
            );
            println!(
                "{:<18}{:>12}{:>14}{:>14}{:>14}{:>12}{:>12}{:>12}",
                "workload",
                "base_ms",
                "trace_time_x",
                "dc_time_x",
                "dcnat_time_x",
                "trace_mem_x",
                "dc_mem_x",
                "dcnat_mem_x"
            );
            for workload in all_workloads() {
                let base = measure(
                    spec,
                    workload.as_ref(),
                    &opts,
                    *engine,
                    ProfilerKind::None,
                    iters,
                );
                let base_ms = base.real.as_secs_f64() * 1e3;
                let mut time_cols = Vec::new();
                let mut mem_cols = Vec::new();
                for kind in ProfilerKind::PROFILED {
                    let run = measure(spec, workload.as_ref(), &opts, *engine, kind, iters);
                    let time_x = run.real.as_secs_f64() / base.real.as_secs_f64().max(1e-9);
                    time_cols.push(format!("{time_x:.2}"));
                    let mem = memory_overhead(workload.as_ref(), run.profile_bytes, DRAM_BUDGET);
                    mem_cols.push(match mem {
                        Some(x) => format!("{x:.2}"),
                        None => "inf".to_owned(),
                    });
                }
                println!(
                    "{:<18}{:>12.2}{:>14}{:>14}{:>14}{:>12}{:>12}{:>12}",
                    workload.name(),
                    base_ms,
                    time_cols[0],
                    time_cols[1],
                    time_cols[2],
                    mem_cols[0],
                    mem_cols[1],
                    mem_cols[2],
                );
            }
        }
    }
}
