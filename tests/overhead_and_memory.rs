//! Figure 6 shape invariants, tested with deterministic proxies rather
//! than wall-clock time: unwinding work ordering (DeepContext-Native >
//! DeepContext = 0 native steps) and profile-memory growth (trace linear,
//! CCT bounded).

use deepcontext::baselines::{TraceProfiler, TraceStyle};
use deepcontext::prelude::*;

struct Bed {
    bed: TestBed,
    monitor: std::sync::Arc<DlMonitor>,
}

fn monitored_bed() -> Bed {
    let bed = TestBed::new(DeviceSpec::a100_sxm());
    let monitor = DlMonitor::init(bed.env(), Interner::new());
    monitor.attach_framework(bed.eager().core().callbacks());
    monitor.attach_gpu(bed.gpu());
    Bed { bed, monitor }
}

#[test]
fn native_configuration_unwinds_and_default_does_not() {
    // DeepContext (no native): zero unwinder steps.
    let rig = monitored_bed();
    let profiler = Profiler::attach(
        ProfilerConfig::deepcontext(),
        rig.bed.env(),
        &rig.monitor,
        rig.bed.gpu(),
    );
    rig.bed
        .run_eager(&NanoGpt, &WorkloadOptions::default(), 1)
        .unwrap();
    drop(profiler);
    assert_eq!(
        rig.bed.env().unwinder().steps_taken(),
        0,
        "the no-native configuration must never unwind"
    );

    // DeepContext-Native: many steps.
    let rig = monitored_bed();
    let profiler = Profiler::attach(
        ProfilerConfig::deepcontext_native(),
        rig.bed.env(),
        &rig.monitor,
        rig.bed.gpu(),
    );
    rig.bed
        .run_eager(&NanoGpt, &WorkloadOptions::default(), 1)
        .unwrap();
    drop(profiler);
    assert!(rig.bed.env().unwinder().steps_taken() > 100);
}

#[test]
fn call_path_caching_reduces_unwinding_work() {
    let steps_with_cache = {
        let rig = monitored_bed();
        rig.monitor.set_cache_enabled(true);
        let _profiler = Profiler::attach(
            ProfilerConfig::deepcontext_native(),
            rig.bed.env(),
            &rig.monitor,
            rig.bed.gpu(),
        );
        rig.bed
            .run_eager(&NanoGpt, &WorkloadOptions::default(), 1)
            .unwrap();
        rig.bed.env().unwinder().steps_taken()
    };
    let steps_without_cache = {
        let rig = monitored_bed();
        let _profiler = Profiler::attach(
            ProfilerConfig::deepcontext_native(),
            rig.bed.env(),
            &rig.monitor,
            rig.bed.gpu(),
        );
        rig.monitor.set_cache_enabled(false);
        rig.bed
            .run_eager(&NanoGpt, &WorkloadOptions::default(), 1)
            .unwrap();
        rig.bed.env().unwinder().steps_taken()
    };
    assert!(
        steps_with_cache < steps_without_cache,
        "caching must reduce unw_step calls: {steps_with_cache} !< {steps_without_cache}"
    );
}

#[test]
fn trace_grows_linearly_while_cct_stays_bounded() {
    // Trace profiler: events scale with iterations.
    let bytes_for = |iters: u32| {
        let bed = TestBed::new(DeviceSpec::a100_sxm());
        let mut trace = TraceProfiler::new(TraceStyle::Torch);
        trace.attach_framework(bed.eager().core().callbacks(), bed.env().clock().clone());
        trace.attach_gpu(bed.gpu());
        bed.run_eager(&NanoGpt, &WorkloadOptions::default(), iters)
            .unwrap();
        trace.flush();
        trace.approx_bytes()
    };
    let trace_2 = bytes_for(2);
    let trace_8 = bytes_for(8);
    assert!(
        trace_8 as f64 > trace_2 as f64 * 2.5,
        "trace must grow with iterations: {trace_2} -> {trace_8}"
    );

    // DeepContext: the CCT converges after the first iteration. Timeline
    // recording is pinned off regardless of the DEEPCONTEXT_TIMELINE
    // matrix: interval rings are bounded by their capacity, not by the
    // iteration count, so they would legitimately grow inside the
    // measured window — this test is about the aggregate profile.
    let dc_bytes = |iters: u32| {
        let rig = monitored_bed();
        let profiler = Profiler::attach(
            ProfilerConfig {
                timeline: deepcontext::profiler::TimelineConfig::default(),
                ..ProfilerConfig::deepcontext_native()
            },
            rig.bed.env(),
            &rig.monitor,
            rig.bed.gpu(),
        );
        rig.bed
            .run_eager(&NanoGpt, &WorkloadOptions::default(), iters)
            .unwrap();
        profiler.flush();
        profiler.stats().peak_bytes
    };
    let dc_2 = dc_bytes(2);
    let dc_8 = dc_bytes(8);
    assert!(
        (dc_8 as f64) < dc_2 as f64 * 1.5,
        "CCT memory must not scale with iterations: {dc_2} -> {dc_8}"
    );
    // And the trace dwarfs the CCT at higher iteration counts.
    assert!(trace_8 > dc_8);
}

#[test]
fn trace_export_can_oom_where_deepcontext_profile_stays_small() {
    // The paper's Llama observation: the PyTorch profiler OOMs exporting
    // its database while DeepContext's stays compact.
    let bed = TestBed::new(DeviceSpec::a100_sxm());
    let mut trace = TraceProfiler::new(TraceStyle::Torch).with_memory_budget(256 << 10);
    trace.attach_framework(bed.eager().core().callbacks(), bed.env().clock().clone());
    trace.attach_gpu(bed.gpu());
    bed.run_eager(&Llama3, &WorkloadOptions::default(), 3)
        .unwrap();
    trace.flush();
    assert!(trace.export_chrome_trace(Vec::new()).is_err());

    let rig = monitored_bed();
    let profiler = Profiler::attach(
        ProfilerConfig::deepcontext_native(),
        rig.bed.env(),
        &rig.monitor,
        rig.bed.gpu(),
    );
    rig.bed
        .run_eager(&Llama3, &WorkloadOptions::default(), 3)
        .unwrap();
    let db = profiler.finish(ProfileMeta::default());
    let mut out = Vec::new();
    db.save(&mut out).unwrap();
    assert!(
        out.len() < (256 << 10),
        "CCT profile fits where the trace OOMed"
    );
}

#[test]
fn jit_profiles_work_cross_framework() {
    // The same monitor/profiler stack observes the JIT engine: fused
    // operators appear as contexts.
    let bed = TestBed::new(DeviceSpec::a100_sxm());
    let monitor = DlMonitor::init(bed.env(), Interner::new());
    monitor.attach_framework(bed.jit().core().callbacks());
    monitor.attach_gpu(bed.gpu());
    let profiler = Profiler::attach(
        ProfilerConfig::deepcontext(),
        bed.env(),
        &monitor,
        bed.gpu(),
    );
    bed.run_jit(&NanoGpt, &WorkloadOptions::default(), 2)
        .unwrap();
    let db = profiler.finish(ProfileMeta {
        framework: "jit".into(),
        ..Default::default()
    });
    let cct = db.cct();
    let interner = cct.interner();
    let has_fusion = cct.nodes_of_kind(FrameKind::Operator).into_iter().any(|n| {
        cct.node(n)
            .frame()
            .short_label(&interner)
            .starts_with("fusion.")
    });
    assert!(
        has_fusion,
        "JIT profile must contain fused operator contexts"
    );
    assert!(cct.total(MetricKind::GpuTime) > 0.0);
}
