//! Regenerates **Table 1**: the profiler capability matrix.

fn main() {
    println!("Table 1: Comparison of DeepContext with existing profiling tools\n");
    print!("{}", deepcontext_baselines::features::render_table1());
}
