//! Multi-threaded ingestion throughput harness.
//!
//! Drives the profiler's [`EventSink`] directly — launch bindings plus
//! asynchronous activity batches, the exact hot path of §4.2 online
//! aggregation — from N producer threads, comparing the sharded pipeline
//! against [`SingleLockSink`], a faithful reproduction of the pipeline
//! this refactor replaced (one global tree mutex, one correlation-map
//! mutex, and the `Vec::contains`-based two-phase prune, all taken per
//! record). Used by `benches/ingestion.rs` and the `bench_ingestion`
//! snapshot binary.
//!
//! Two effects separate the pipelines: per-record global locking
//! serializes producers (visible on multi-core hosts), and the baseline's
//! O(batch²) prune scan burns time proportional to the activity-buffer
//! capacity on *any* host.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

use deepcontext_core::{CallPath, CallingContextTree, Frame, Interner, MetricKind, NodeId, TimeNs};
use deepcontext_profiler::{attribute_activity_metrics, EventSink, ShardedSink, SinkCounters};
use dlmonitor::EventOrigin;
use sim_gpu::{Activity, ActivityKind, ApiKind, CorrelationId, DeviceId, StreamId};

/// Activity records per delivered batch: the profiler's default
/// `activity_buffer_capacity` is 4096, so real flushes arrive in batches
/// of this order.
pub const BATCH: usize = 2_048;

/// One pre-built launch event: routing identity, call path, matching
/// asynchronous activity record.
pub struct IngestionEvent {
    /// Routing identity (producer thread id, stream, correlation).
    pub origin: EventOrigin,
    /// The unified call path bound at the launch site.
    pub path: CallPath,
    /// The activity record that later resolves through the correlation.
    pub activity: Activity,
}

/// Builds one producer's event stream: `ops` launches over a handful of
/// repeating contexts (a training loop's shape), with unique correlation
/// ids per event.
pub fn producer_stream(
    interner: &Arc<Interner>,
    producer: usize,
    ops: usize,
) -> Vec<IngestionEvent> {
    (0..ops)
        .map(|k| {
            let kernel = format!("kernel_{}", k % 8);
            let corr = (producer as u64) << 32 | k as u64;
            let mut path = CallPath::new();
            path.push(Frame::python(
                &format!("worker{producer}.py"),
                7,
                "train_step",
                interner,
            ));
            path.push(Frame::operator(&format!("aten::op{}", k % 5), interner));
            path.push(Frame::gpu_api(
                "cuLaunchKernel",
                "libcuda.so",
                0x10,
                interner,
            ));
            path.push(Frame::gpu_kernel(
                &kernel,
                "module.so",
                0x1000 + (k % 8) as u64,
                interner,
            ));
            let start = TimeNs(k as u64 * 300);
            IngestionEvent {
                origin: EventOrigin {
                    tid: Some(producer as u64 + 1),
                    stream: Some(StreamId(producer as u32)),
                    correlation: Some(CorrelationId(corr)),
                },
                path,
                activity: Activity {
                    correlation_id: CorrelationId(corr),
                    device: DeviceId(0),
                    kind: ActivityKind::Kernel {
                        name: Arc::from(kernel.as_str()),
                        module: Arc::from("module.so"),
                        entry_pc: 0x1000 + (k % 8) as u64,
                        stream: StreamId(producer as u32),
                        start,
                        end: start + TimeNs(250),
                        blocks: 16,
                        warps: 128,
                        occupancy: 0.6,
                        shared_mem_per_block: 0,
                        registers_per_thread: 32,
                    },
                },
            }
        })
        .collect()
}

/// The pre-refactor ingestion pipeline, kept as the benchmark baseline:
/// one `Mutex<CallingContextTree>`, one correlation-map mutex and one
/// prune-queue mutex, taken in sequence per record, with the original
/// `Vec`-scan two-phase prune and per-orphan re-interning.
pub struct SingleLockSink {
    cct: Mutex<CallingContextTree>,
    corr: Mutex<HashMap<CorrelationId, NodeId>>,
    prune_queue: Mutex<Vec<CorrelationId>>,
    activities: AtomicU64,
    instruction_samples: AtomicU64,
}

impl SingleLockSink {
    /// Creates the baseline sink over a shared interner.
    pub fn new(interner: Arc<Interner>) -> Arc<Self> {
        Arc::new(SingleLockSink {
            cct: Mutex::new(CallingContextTree::with_interner(interner)),
            corr: Mutex::new(HashMap::new()),
            prune_queue: Mutex::new(Vec::new()),
            activities: AtomicU64::new(0),
            instruction_samples: AtomicU64::new(0),
        })
    }

    fn attribute_activity(&self, activity: &Activity) {
        let node = {
            let corr = self.corr.lock();
            corr.get(&activity.correlation_id).copied()
        };
        let mut cct = self.cct.lock();
        let node = match node {
            Some(n) => n,
            None => {
                // The seed's orphan path: re-intern and re-insert the
                // catch-all per orphaned record.
                let interner = cct.interner();
                let frame = Frame::gpu_kernel("<unattributed>", "<none>", 0, &interner);
                cct.insert_path(std::slice::from_ref(&frame))
            }
        };
        self.activities.fetch_add(1, Ordering::Relaxed);
        // Same metric mapping as the sharded sink — only the locking and
        // prune structure differ between the two pipelines.
        let samples = attribute_activity_metrics(&mut cct, node, activity);
        drop(cct);
        if matches!(activity.kind, ActivityKind::PcSampling { .. }) {
            self.instruction_samples
                .fetch_add(samples, Ordering::Relaxed);
        } else {
            self.prune_queue.lock().push(activity.correlation_id);
        }
    }
}

impl EventSink for SingleLockSink {
    fn gpu_launch(&self, origin: &EventOrigin, path: &CallPath, api: ApiKind) {
        let mut cct = self.cct.lock();
        let node = cct.insert_call_path(path);
        if api == ApiKind::LaunchKernel {
            cct.attribute(node, MetricKind::KernelLaunches, 1.0);
        }
        drop(cct);
        if let Some(corr) = origin.correlation {
            self.corr.lock().insert(corr, node);
        }
    }

    fn activity_batch(&self, batch: &[Activity]) {
        for activity in batch {
            self.attribute_activity(activity);
        }
        // The seed's two-phase prune: O(queue × batch) Vec scans.
        let mut queue = self.prune_queue.lock();
        let keep: Vec<CorrelationId> = queue.iter().rev().take(batch.len()).copied().collect();
        let mut corr = self.corr.lock();
        for id in queue.drain(..) {
            if !keep.contains(&id) {
                corr.remove(&id);
            }
        }
        *queue = keep;
    }

    fn cpu_sample(&self, _origin: &EventOrigin, path: &CallPath, metric: MetricKind, value: f64) {
        let mut cct = self.cct.lock();
        let node = cct.insert_call_path(path);
        cct.attribute(node, metric, value);
    }

    fn snapshot(&self) -> CallingContextTree {
        self.cct.lock().clone()
    }

    fn counters(&self) -> SinkCounters {
        SinkCounters {
            activities: self.activities.load(Ordering::Relaxed),
            instruction_samples: self.instruction_samples.load(Ordering::Relaxed),
            ..SinkCounters::default()
        }
    }

    fn approx_bytes(&self) -> usize {
        self.cct.lock().approx_bytes()
    }
}

/// Which pipeline a measurement drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SinkKind {
    /// The pre-refactor global-lock pipeline.
    SingleLock,
    /// The sharded pipeline with this many shards.
    Sharded(usize),
}

impl SinkKind {
    /// Short label for reports.
    pub fn label(self) -> String {
        match self {
            SinkKind::SingleLock => "single-lock".into(),
            SinkKind::Sharded(n) => format!("sharded-{n}"),
        }
    }

    /// Builds a fresh sink of this kind.
    pub fn build(self, interner: &Arc<Interner>) -> Arc<dyn EventSink> {
        match self {
            SinkKind::SingleLock => SingleLockSink::new(Arc::clone(interner)),
            SinkKind::Sharded(n) => ShardedSink::new(Arc::clone(interner), n),
        }
    }
}

/// Ingests one stream into `sink`: interleaves launches with activity
/// batches the way a runtime delivers them (launch burst, buffer flush).
pub fn ingest_stream(sink: &dyn EventSink, events: &[IngestionEvent]) {
    for chunk in events.chunks(BATCH) {
        for e in chunk {
            sink.gpu_launch(&e.origin, &e.path, ApiKind::LaunchKernel);
        }
        let batch: Vec<Activity> = chunk.iter().map(|e| e.activity.clone()).collect();
        sink.activity_batch(&batch);
    }
}

/// Runs `threads` producers over pre-built `streams` (one per producer)
/// into a fresh sink of `kind`. Returns elapsed seconds.
pub fn run_ingestion(
    interner: &Arc<Interner>,
    streams: &[Vec<IngestionEvent>],
    threads: usize,
    kind: SinkKind,
) -> f64 {
    assert!(threads <= streams.len());
    let sink = kind.build(interner);
    let start = Instant::now();
    std::thread::scope(|scope| {
        for stream in streams.iter().take(threads) {
            let sink = Arc::clone(&sink);
            scope.spawn(move || ingest_stream(sink.as_ref(), stream));
        }
    });
    let secs = start.elapsed().as_secs_f64();
    // Sanity: nothing was dropped on the floor.
    let expected: u64 = streams.iter().take(threads).map(|s| s.len() as u64).sum();
    assert_eq!(sink.counters().activities, expected);
    secs
}

/// One measured configuration of the throughput comparison.
#[derive(Debug, Clone, Copy)]
pub struct IngestionPoint {
    /// Producer threads.
    pub threads: usize,
    /// Pipeline measured.
    pub kind: SinkKind,
    /// Events ingested per second (launch + activity pairs).
    pub events_per_sec: f64,
}

/// Measures events/sec for each `(threads, kind)` combination, best of
/// `repeats` runs, `ops` events per producer thread.
pub fn throughput_matrix(
    thread_counts: &[usize],
    kinds: &[SinkKind],
    ops: usize,
    repeats: usize,
) -> Vec<IngestionPoint> {
    let interner = Interner::new();
    let max_threads = thread_counts.iter().copied().max().unwrap_or(1);
    let streams: Vec<Vec<IngestionEvent>> = (0..max_threads)
        .map(|p| producer_stream(&interner, p, ops))
        .collect();
    let mut points = Vec::new();
    for &threads in thread_counts {
        for &kind in kinds {
            let events = (threads * ops) as f64;
            let best = (0..repeats.max(1))
                .map(|_| run_ingestion(&interner, &streams, threads, kind))
                .fold(f64::INFINITY, f64::min);
            points.push(IngestionPoint {
                threads,
                kind,
                events_per_sec: events / best,
            });
        }
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepcontext_core::MetricKind;

    #[test]
    fn streams_have_unique_correlations() {
        let interner = Interner::new();
        let a = producer_stream(&interner, 0, 100);
        let b = producer_stream(&interner, 1, 100);
        let mut ids: Vec<u64> = a
            .iter()
            .chain(&b)
            .map(|e| e.activity.correlation_id.0)
            .collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 200);
    }

    #[test]
    fn ingestion_attributes_every_event() {
        let interner = Interner::new();
        let streams = vec![producer_stream(&interner, 0, 128)];
        let secs = run_ingestion(&interner, &streams, 1, SinkKind::Sharded(4));
        assert!(secs >= 0.0);
        // Totals check through a fresh sink (run_ingestion consumes its own).
        let sink = ShardedSink::new(Arc::clone(&interner), 4);
        ingest_stream(sink.as_ref(), &streams[0]);
        let cct = sink.snapshot();
        assert_eq!(cct.total(MetricKind::KernelLaunches), 128.0);
        assert_eq!(cct.total(MetricKind::GpuTime), 128.0 * 250.0);
    }

    #[test]
    fn baseline_and_sharded_pipelines_agree_on_totals() {
        let interner = Interner::new();
        let streams = [producer_stream(&interner, 0, 256)];
        let baseline = SinkKind::SingleLock.build(&interner);
        let sharded = SinkKind::Sharded(8).build(&interner);
        ingest_stream(baseline.as_ref(), &streams[0]);
        ingest_stream(sharded.as_ref(), &streams[0]);
        let (b, s) = (baseline.snapshot(), sharded.snapshot());
        assert_eq!(b.node_count(), s.node_count());
        assert_eq!(b.total(MetricKind::GpuTime), s.total(MetricKind::GpuTime));
        assert_eq!(
            b.total(MetricKind::KernelLaunches),
            s.total(MetricKind::KernelLaunches)
        );
    }

    #[test]
    fn throughput_matrix_covers_requested_grid() {
        let points = throughput_matrix(
            &[1, 2],
            &[SinkKind::SingleLock, SinkKind::Sharded(4)],
            64,
            1,
        );
        assert_eq!(points.len(), 4);
        for p in points {
            assert!(p.events_per_sec > 0.0);
        }
    }
}
