//! Asynchronous-pipeline cost harness.
//!
//! Two questions, answered over the same pre-built event streams:
//!
//! 1. **Producer-side cost** — what does the monitored workload pay per
//!    event? Inline (synchronous) ingestion pays routing + shard lock +
//!    tree mutation + metric folds on the producer thread; asynchronous
//!    ingestion pays routing + a directory bind + a bounded-channel
//!    push of the owned event. The async sink is given queue headroom
//!    for the whole measured window so the number isolates the enqueue
//!    path (backpressure never engages — the regime the pipeline is
//!    designed to run in). Launch paths are handed over by value
//!    (`gpu_launch_owned`), as the profiler's callback does, so neither
//!    mode clones a path in the timed loop.
//! 2. **End-to-end throughput** — events/sec from first enqueue to full
//!    drain, where the asynchronous pipeline must also pay its workers.
//!    On a single-core host this bounds the overhead of the decoupling;
//!    on multi-core hosts attribution overlaps the workload.
//!
//! Both questions are asked for two stream shapes: **coarse** (kernel
//! records only — the cheapest possible attribution) and
//! **fine-grained** (each kernel preceded by a PC-sampling record, the
//! paper's §6.7 instruction-level mode) — where inline attribution must
//! extend call paths per sampled PC and the producer-side win is
//! largest.

use std::sync::Arc;
use std::time::Instant;

use deepcontext_core::{CallPath, Interner, StallReason};
use deepcontext_profiler::{
    AsyncSink, BackpressurePolicy, BatchingSink, DirectoryMapKind, EventSink, HealthReport,
    PipelineConfig, ShardedSink, SinkCounters, TelemetryConfig, TimelineConfig,
    DEFAULT_LAUNCH_BATCH,
};
use dlmonitor::EventOrigin;
use sim_gpu::{Activity, ActivityKind, ApiKind, PcSample};

use crate::ingestion::{producer_stream, BATCH};

/// Shards both sinks use (the profiler default).
pub const SHARDS: usize = 16;

/// One pre-built launch with every activity record it produces.
pub struct PipelineEvent {
    /// Routing identity (thread, stream, correlation).
    pub origin: EventOrigin,
    /// The unified call path bound at the launch site.
    pub path: CallPath,
    /// The activity records that later resolve through the correlation
    /// (sampling records first, terminal kernel record last).
    pub activities: Vec<Activity>,
}

/// Kernel-record-only stream: the cheapest attribution per event.
pub fn coarse_stream(interner: &Arc<Interner>, ops: usize) -> Vec<PipelineEvent> {
    producer_stream(interner, 0, ops)
        .into_iter()
        .map(|e| PipelineEvent {
            origin: e.origin,
            path: e.path,
            activities: vec![e.activity],
        })
        .collect()
}

/// Fine-grained stream: each kernel also delivers a PC-sampling record
/// with `samples_per_kernel` instruction samples (stall-reason rotation),
/// the §6.7 instruction-level profiling shape.
pub fn fine_grained_stream(
    interner: &Arc<Interner>,
    ops: usize,
    samples_per_kernel: usize,
) -> Vec<PipelineEvent> {
    const STALLS: [StallReason; 4] = [
        StallReason::MemoryDependency,
        StallReason::ExecutionDependency,
        StallReason::ConstantMemory,
        StallReason::None,
    ];
    producer_stream(interner, 0, ops)
        .into_iter()
        .map(|e| {
            let name = match &e.activity.kind {
                ActivityKind::Kernel { name, .. } => Arc::clone(name),
                _ => Arc::from("kernel"),
            };
            let samples: Vec<PcSample> = (0..samples_per_kernel)
                .map(|s| PcSample {
                    pc: 0x40 + (s as u64 % 16) * 8,
                    stall: STALLS[s % STALLS.len()],
                })
                .collect();
            let sampling = Activity {
                correlation_id: e.activity.correlation_id,
                device: e.activity.device,
                kind: ActivityKind::PcSampling { name, samples },
            };
            PipelineEvent {
                origin: e.origin,
                path: e.path,
                activities: vec![sampling, e.activity],
            }
        })
        .collect()
}

/// One measured pipeline configuration.
#[derive(Debug, Clone)]
pub struct PipelinePoint {
    /// Scenario label (report key).
    pub scenario: String,
    /// Producer-side nanoseconds per event (launch + its activities).
    pub producer_ns_per_event: f64,
    /// End-to-end nanoseconds per event (producers + full drain).
    pub total_ns_per_event: f64,
    /// Pipeline counters after the run (drops, queue depth, utilization).
    pub counters: SinkCounters,
}

/// The per-repeat owned inputs a producer hands the sink: one path per
/// launch and one runtime-owned activity buffer per chunk — prepared
/// outside the timed region, exactly as the real collection paths
/// receive them (the monitor builds each `CallPath` fresh, the GPU
/// runtime owns the buffers it flushes).
pub(crate) struct ProducerInputs {
    paths: Vec<CallPath>,
    batches: Vec<Vec<Activity>>,
}

pub(crate) fn prepare(events: &[PipelineEvent]) -> ProducerInputs {
    ProducerInputs {
        paths: events.iter().map(|e| e.path.clone()).collect(),
        batches: events
            .chunks(BATCH)
            .map(|chunk| {
                chunk
                    .iter()
                    .flat_map(|e| e.activities.iter().cloned())
                    .collect()
            })
            .collect(),
    }
}

/// Drives one stream: launch bursts handing paths over by value, then
/// the chunk's activity buffer by value — the shape the GPU runtime
/// delivers them in.
pub(crate) fn drive_producer(
    sink: &dyn EventSink,
    events: &[PipelineEvent],
    inputs: ProducerInputs,
) {
    let mut paths = inputs.paths.into_iter();
    let mut batches = inputs.batches.into_iter();
    for chunk in events.chunks(BATCH) {
        for e in chunk {
            let path = paths.next().expect("one pre-built path per event");
            sink.gpu_launch_owned(&e.origin, path, ApiKind::LaunchKernel);
        }
        let batch = batches.next().expect("one pre-built batch per chunk");
        sink.activity_batch_owned(batch);
    }
}

fn measure_once(
    sink: &dyn EventSink,
    events: &[PipelineEvent],
    inputs: ProducerInputs,
    finish: impl FnOnce(),
) -> (f64, f64) {
    let start = Instant::now();
    drive_producer(sink, events, inputs);
    let producer = start.elapsed().as_nanos() as f64;
    finish();
    let total = start.elapsed().as_nanos() as f64;
    let n = events.len() as f64;
    (producer / n, total / n)
}

/// Measures inline (synchronous) ingestion of `events`: the producer
/// loop *is* the whole pipeline.
pub fn measure_sync(
    label: &str,
    events: &[PipelineEvent],
    interner: &Arc<Interner>,
    repeats: usize,
) -> PipelinePoint {
    let mut best: Option<(f64, f64)> = None;
    let mut counters = SinkCounters::default();
    for _ in 0..repeats.max(1) {
        let sink = ShardedSink::new(Arc::clone(interner), SHARDS);
        let inputs = prepare(events);
        let point = measure_once(sink.as_ref(), events, inputs, || {});
        counters = sink.counters();
        best = Some(match best {
            Some((p, t)) => (p.min(point.0), t.min(point.1)),
            None => point,
        });
    }
    let (producer, total) = best.expect("at least one repeat");
    PipelinePoint {
        scenario: format!("{label}_sync_inline"),
        producer_ns_per_event: producer,
        total_ns_per_event: total,
        counters,
    }
}

/// Measures asynchronous ingestion of `events` under the default `Block`
/// policy with queue headroom for the entire stream and the worker pool
/// **parked** during the producer loop — so the producer number isolates
/// the enqueue path itself (no backpressure, and on few-core hosts no
/// worker stealing the producer's core mid-measurement) — then resumes
/// the pool and drains for the end-to-end number. `launch_batch` sets
/// the thread-local producer-batching threshold (1 = unbatched).
pub fn measure_async(
    label: &str,
    events: &[PipelineEvent],
    interner: &Arc<Interner>,
    workers: usize,
    repeats: usize,
    launch_batch: usize,
) -> PipelinePoint {
    let mut best: Option<(f64, f64)> = None;
    let mut counters = SinkCounters::default();
    for _ in 0..repeats.max(1) {
        let inner = ShardedSink::new(Arc::clone(interner), SHARDS);
        let sink = AsyncSink::new(
            inner,
            PipelineConfig {
                workers,
                // Headroom for every message of the stream: backpressure
                // never engages inside the measured window.
                queue_capacity: events.len() + events.len() / BATCH + SHARDS + 1,
                backpressure: BackpressurePolicy::Block,
                launch_batch,
                ..PipelineConfig::default()
            },
        );
        let inputs = prepare(events);
        sink.pause();
        let point = measure_once(sink.as_ref(), events, inputs, || {
            sink.resume();
            sink.drain();
        });
        counters = sink.counters();
        assert_eq!(
            counters.dropped_events, 0,
            "Block policy must never drop events"
        );
        best = Some(match best {
            Some((p, t)) => (p.min(point.0), t.min(point.1)),
            None => point,
        });
    }
    let (producer, total) = best.expect("at least one repeat");
    PipelinePoint {
        scenario: format!("{label}_async_enqueue_w{workers}_b{launch_batch}"),
        producer_ns_per_event: producer,
        total_ns_per_event: total,
        counters,
    }
}

/// Measures synchronous ingestion through the thread-local batching
/// wrapper ([`BatchingSink`]): producers buffer `launch_batch` events,
/// then apply each shard's run under one lock acquisition.
pub fn measure_sync_batched(
    label: &str,
    events: &[PipelineEvent],
    interner: &Arc<Interner>,
    repeats: usize,
    launch_batch: usize,
) -> PipelinePoint {
    let mut best: Option<(f64, f64)> = None;
    let mut counters = SinkCounters::default();
    for _ in 0..repeats.max(1) {
        let sink = BatchingSink::new(ShardedSink::new(Arc::clone(interner), SHARDS), launch_batch);
        let inputs = prepare(events);
        let point = measure_once(sink.as_ref(), events, inputs, || sink.flush_batches());
        counters = sink.counters();
        best = Some(match best {
            Some((p, t)) => (p.min(point.0), t.min(point.1)),
            None => point,
        });
    }
    let (producer, total) = best.expect("at least one repeat");
    PipelinePoint {
        scenario: format!("{label}_sync_batched_b{launch_batch}"),
        producer_ns_per_event: producer,
        total_ns_per_event: total,
        counters,
    }
}

/// Inline ingestion head-to-head over the pluggable correlation
/// directory layouts ([`DirectoryMapKind`]): the same stream, one
/// `ShardedSink` pinned to each layout, timeline off — every event pays
/// one directory bind at launch plus one lookup + remove at activity
/// resolution, so the producer number isolates the directory's cost.
pub fn measure_directory_map(
    label: &str,
    kind: DirectoryMapKind,
    events: &[PipelineEvent],
    interner: &Arc<Interner>,
    repeats: usize,
) -> PipelinePoint {
    let mut best: Option<(f64, f64)> = None;
    let mut counters = SinkCounters::default();
    for _ in 0..repeats.max(1) {
        let sink = ShardedSink::with_directory_map(
            Arc::clone(interner),
            SHARDS,
            true,
            &TimelineConfig::default(),
            kind,
        );
        let inputs = prepare(events);
        let point = measure_once(sink.as_ref(), events, inputs, || {});
        counters = sink.counters();
        best = Some(match best {
            Some((p, t)) => (p.min(point.0), t.min(point.1)),
            None => point,
        });
    }
    let (producer, total) = best.expect("at least one repeat");
    PipelinePoint {
        scenario: format!("{label}_directory_{}", kind.name()),
        producer_ns_per_event: producer,
        total_ns_per_event: total,
        counters,
    }
}

/// The directory layouts the head-to-head measures.
pub const DIRECTORY_SWEEP: [DirectoryMapKind; 2] =
    [DirectoryMapKind::Striped, DirectoryMapKind::Flat];

/// The batch sizes the sweep measures (1 = unbatched baseline).
pub const BATCH_SWEEP: [usize; 4] = [1, 8, 64, 256];

/// The full comparison: sync inline vs async enqueue over the coarse and
/// fine-grained streams — the asynchronous side swept across
/// [`BATCH_SWEEP`] producer batch sizes, plus one batched synchronous
/// point at the default batch — one producer, `ops` events, best of
/// `repeats`.
pub fn pipeline_matrix(
    ops: usize,
    samples_per_kernel: usize,
    repeats: usize,
) -> Vec<PipelinePoint> {
    let interner = Interner::new();
    let workers = std::thread::available_parallelism()
        .map(|n| n.get().min(SHARDS))
        .unwrap_or(1);
    let coarse = coarse_stream(&interner, ops);
    let fine = fine_grained_stream(&interner, ops, samples_per_kernel);
    let mut points = vec![
        measure_sync("coarse", &coarse, &interner, repeats),
        measure_sync("fine", &fine, &interner, repeats),
    ];
    for &batch in &BATCH_SWEEP {
        points.push(measure_async(
            "coarse", &coarse, &interner, workers, repeats, batch,
        ));
        points.push(measure_async(
            "fine", &fine, &interner, workers, repeats, batch,
        ));
    }
    points.push(measure_sync_batched(
        "coarse",
        &coarse,
        &interner,
        repeats,
        DEFAULT_LAUNCH_BATCH,
    ));
    points.push(measure_sync_batched(
        "fine",
        &fine,
        &interner,
        repeats,
        DEFAULT_LAUNCH_BATCH,
    ));
    for kind in DIRECTORY_SWEEP {
        points.push(measure_directory_map(
            "coarse", kind, &coarse, &interner, repeats,
        ));
    }
    points
}

/// End-of-run figures from the self-telemetry pass, embedded verbatim
/// into the bench JSONs (as `telemetry_*` fields — informational, never
/// `target_`-prefixed, so `bench_check` does not gate on them).
#[derive(Debug, Clone, Copy)]
pub struct TelemetrySummary {
    /// High-water bounded-queue depth observed across the run.
    pub max_queue_depth: u64,
    /// Events dropped by backpressure (always 0 under `Block`).
    pub dropped_events: u64,
    /// Producer batch-flush latency p99, nanoseconds.
    pub flush_p99_ns: u64,
    /// Producer batch flushes observed.
    pub flushes: u64,
}

/// One extra *untimed* pass of `events` through the asynchronous
/// pipeline with self-telemetry enabled, rolled up into the figures the
/// bench JSONs embed. Kept separate from every measured scenario so the
/// measured numbers stay on the shipping default (telemetry compiled in
/// but off) while the scoreboard still gets the profiler's own vitals
/// at the same commit.
pub fn telemetry_pass(
    events: &[PipelineEvent],
    interner: &Arc<Interner>,
    workers: usize,
) -> TelemetrySummary {
    let inner = ShardedSink::with_telemetry(
        Arc::clone(interner),
        SHARDS,
        true,
        &TimelineConfig::default(),
        DirectoryMapKind::default(),
        &TelemetryConfig::enabled(),
    );
    let telemetry = Arc::clone(inner.telemetry().expect("telemetry enabled"));
    let sink = AsyncSink::new(
        inner,
        PipelineConfig {
            workers,
            // Same headroom as the measured async scenarios: the embed
            // reports the regime the pipeline is designed to run in.
            queue_capacity: events.len() + events.len() / BATCH + SHARDS + 1,
            backpressure: BackpressurePolicy::Block,
            launch_batch: DEFAULT_LAUNCH_BATCH,
            ..PipelineConfig::default()
        },
    );
    drive_producer(sink.as_ref(), events, prepare(events));
    sink.drain();
    let report = HealthReport::from_snapshot(&telemetry.handle().snapshot(), telemetry.now_ns());
    TelemetrySummary {
        max_queue_depth: report.max_queue_depth,
        dropped_events: report.events_dropped,
        flush_p99_ns: report.flush_latency.p99,
        flushes: report.flush_latency.count,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepcontext_core::MetricKind;

    #[test]
    fn telemetry_pass_reports_populated_figures_with_zero_drops() {
        let interner = Interner::new();
        let events = fine_grained_stream(&interner, 512, 4);
        let summary = telemetry_pass(&events, &interner, 2);
        assert_eq!(summary.dropped_events, 0, "Block policy never drops");
        assert!(summary.max_queue_depth > 0, "queue depth observed");
        assert!(summary.flushes > 0, "producer batching flushed");
        assert!(summary.flush_p99_ns > 0, "flush latency recorded");
    }

    #[test]
    fn matrix_produces_all_scenarios_with_zero_drops() {
        let points = pipeline_matrix(256, 4, 1);
        // 2 sync baselines + (coarse, fine) × batch sweep + 2 batched
        // sync + the directory-layout head-to-head.
        assert_eq!(
            points.len(),
            4 + 2 * BATCH_SWEEP.len() + DIRECTORY_SWEEP.len()
        );
        for p in &points {
            assert!(p.producer_ns_per_event > 0.0, "{}", p.scenario);
            assert!(p.total_ns_per_event >= p.producer_ns_per_event);
            assert_eq!(p.counters.dropped_events, 0, "{}", p.scenario);
        }
        let by = |prefix: &str| {
            points
                .iter()
                .find(|p| p.scenario.starts_with(prefix))
                .unwrap_or_else(|| panic!("scenario {prefix} measured"))
        };
        // Fine-grained streams attribute instruction samples too.
        assert!(by("fine_sync_inline").counters.instruction_samples > 0);
        assert!(by("fine_async").counters.enqueued_events > 0);
        // Batched scenarios actually batched; the unbatched ones did not.
        let async_at = |batch: usize| {
            let suffix = format!("_b{batch}");
            points
                .iter()
                .find(|p| p.scenario.starts_with("coarse_async") && p.scenario.ends_with(&suffix))
                .unwrap_or_else(|| panic!("coarse async point at batch {batch}"))
        };
        let batched = async_at(DEFAULT_LAUNCH_BATCH);
        assert!(batched.counters.producer_flushes > 0);
        assert!(batched.counters.batched_events > 0);
        assert_eq!(async_at(1).counters.batched_events, 0);
        assert!(by("coarse_sync_batched").counters.producer_flushes > 0);
        // Both directory layouts measured, each resolving every record.
        for kind in DIRECTORY_SWEEP {
            let p = by(&format!("coarse_directory_{}", kind.name()));
            assert_eq!(p.counters.orphans, 0, "{}", p.scenario);
            assert!(p.counters.activities > 0, "{}", p.scenario);
        }
    }

    #[test]
    fn async_and_batched_profiles_match_the_sync_profile() {
        let interner = Interner::new();
        for events in [
            coarse_stream(&interner, 192),
            fine_grained_stream(&interner, 192, 4),
        ] {
            let sync = ShardedSink::new(Arc::clone(&interner), SHARDS);
            drive_producer(sync.as_ref(), &events, prepare(&events));
            let s = sync.snapshot();
            let async_sink = AsyncSink::new(
                ShardedSink::new(Arc::clone(&interner), SHARDS),
                PipelineConfig::default(),
            );
            drive_producer(async_sink.as_ref(), &events, prepare(&events));
            let a = async_sink.snapshot();
            assert_eq!(s.semantic_diff(&a), None);
            assert_eq!(s.total(MetricKind::GpuTime), a.total(MetricKind::GpuTime));
            let batched = BatchingSink::new(
                ShardedSink::new(Arc::clone(&interner), SHARDS),
                DEFAULT_LAUNCH_BATCH,
            );
            drive_producer(batched.as_ref(), &events, prepare(&events));
            let b = batched.snapshot();
            assert_eq!(s.semantic_diff(&b), None);
        }
    }
}
