//! Simulated CPython interpreter frames.
//!
//! DeepContext obtains the Python call path "using CPython's
//! PyFrame-related APIs" (paper §4.1). The simulation keeps an explicit
//! per-thread frame stack that workload code pushes/pops via RAII guards,
//! and exposes the same bottom-up walk a profiler performs with
//! `PyEval_GetFrame` / `PyFrame_GetBack`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

/// One simulated Python frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PyFrameInfo {
    /// Source file, e.g. `train.py`.
    pub file: Arc<str>,
    /// Line number currently executing in this frame.
    pub line: u32,
    /// Function name.
    pub function: Arc<str>,
}

impl PyFrameInfo {
    /// Creates a frame description.
    pub fn new(file: &str, line: u32, function: &str) -> Self {
        PyFrameInfo {
            file: Arc::from(file),
            line,
            function: Arc::from(function),
        }
    }
}

/// A per-thread simulated interpreter stack.
///
/// The `version` counter increments on every push/pop so call-path caches
/// can cheaply detect staleness.
#[derive(Debug, Default)]
pub struct PythonStack {
    frames: Mutex<Vec<PyFrameInfo>>,
    version: AtomicU64,
}

impl PythonStack {
    /// Creates an empty stack.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pushes a frame (function call).
    pub fn push(&self, frame: PyFrameInfo) {
        self.frames.lock().push(frame);
        self.version.fetch_add(1, Ordering::SeqCst);
    }

    /// Pops the innermost frame (function return).
    pub fn pop(&self) -> Option<PyFrameInfo> {
        let popped = self.frames.lock().pop();
        if popped.is_some() {
            self.version.fetch_add(1, Ordering::SeqCst);
        }
        popped
    }

    /// Updates the line number of the innermost frame (the interpreter
    /// advancing within a function body).
    pub fn set_line(&self, line: u32) {
        if let Some(top) = self.frames.lock().last_mut() {
            top.line = line;
            self.version.fetch_add(1, Ordering::SeqCst);
        }
    }

    /// Snapshot of the stack, **root-first** (outermost caller first),
    /// which is the order the unified call path wants.
    pub fn walk(&self) -> Vec<PyFrameInfo> {
        self.frames.lock().clone()
    }

    /// Current stack depth.
    pub fn depth(&self) -> usize {
        self.frames.lock().len()
    }

    /// Monotonic change counter (push/pop/set_line all bump it).
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::SeqCst)
    }

    /// Whether no Python code is on the stack.
    pub fn is_empty(&self) -> bool {
        self.depth() == 0
    }
}

/// RAII guard that pops its pushed Python frame on drop.
///
/// # Examples
///
/// ```
/// use sim_runtime::{PyFrameGuard, PyFrameInfo, PythonStack};
/// use std::sync::Arc;
///
/// let stack = Arc::new(PythonStack::new());
/// {
///     let _frame = PyFrameGuard::enter(&stack, PyFrameInfo::new("train.py", 3, "main"));
///     assert_eq!(stack.depth(), 1);
/// }
/// assert_eq!(stack.depth(), 0);
/// ```
#[derive(Debug)]
pub struct PyFrameGuard {
    stack: Arc<PythonStack>,
}

impl PyFrameGuard {
    /// Pushes `frame` onto `stack`, returning the guard that pops it.
    pub fn enter(stack: &Arc<PythonStack>, frame: PyFrameInfo) -> Self {
        stack.push(frame);
        PyFrameGuard {
            stack: Arc::clone(stack),
        }
    }
}

impl Drop for PyFrameGuard {
    fn drop(&mut self) {
        self.stack.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walk_is_root_first() {
        let s = PythonStack::new();
        s.push(PyFrameInfo::new("main.py", 1, "main"));
        s.push(PyFrameInfo::new("model.py", 20, "forward"));
        let frames = s.walk();
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[0].function.as_ref(), "main");
        assert_eq!(frames[1].function.as_ref(), "forward");
    }

    #[test]
    fn version_changes_on_mutation() {
        let s = PythonStack::new();
        let v0 = s.version();
        s.push(PyFrameInfo::new("a.py", 1, "f"));
        let v1 = s.version();
        assert_ne!(v0, v1);
        s.set_line(2);
        let v2 = s.version();
        assert_ne!(v1, v2);
        s.pop();
        assert_ne!(v2, s.version());
        // Popping empty stack does not bump.
        let v3 = s.version();
        assert!(s.pop().is_none());
        assert_eq!(v3, s.version());
    }

    #[test]
    fn set_line_updates_top_frame() {
        let s = PythonStack::new();
        s.push(PyFrameInfo::new("a.py", 1, "f"));
        s.set_line(99);
        assert_eq!(s.walk()[0].line, 99);
    }

    #[test]
    fn guards_nest_correctly() {
        let s = Arc::new(PythonStack::new());
        let g1 = PyFrameGuard::enter(&s, PyFrameInfo::new("a.py", 1, "outer"));
        {
            let _g2 = PyFrameGuard::enter(&s, PyFrameInfo::new("b.py", 2, "inner"));
            assert_eq!(s.depth(), 2);
        }
        assert_eq!(s.depth(), 1);
        assert_eq!(s.walk()[0].function.as_ref(), "outer");
        drop(g1);
        assert!(s.is_empty());
    }
}
