//! Reproduces the paper's Figure 1 / Figure 3 contrast: the same kernel
//! launch seen (a) as a bare native call path and (b) as DeepContext's
//! unified call path with Python, framework-operator, native, GPU-API and
//! kernel frames.
//!
//! ```text
//! cargo run --release --example callpath_integration
//! ```

use std::sync::Arc;

use deepcontext::prelude::*;
use dl_framework::FrameworkCore;
use parking_lot::Mutex;
use sim_gpu::{ApiKind, CallbackSite};

fn collect_launch_path(
    monitor: &Arc<DlMonitor>,
    sources: CallPathSources,
    bed: &TestBed,
    core: &Arc<FrameworkCore>,
) -> CallPath {
    monitor.set_sources(sources);
    let paths = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&paths);
    let m = Arc::clone(monitor);
    let reg = monitor.callback_register(Domain::Gpu, move |event| {
        if let DlEvent::Gpu(gpu_event) = event {
            if gpu_event.data.api == ApiKind::LaunchKernel
                && gpu_event.data.site == CallbackSite::Enter
            {
                sink.lock().push(m.callpath_for_gpu(gpu_event));
            }
        }
    });

    let main = bed.main_thread();
    let _bind = ThreadRegistry::bind_current(main);
    {
        let _s1 = core.python().frame(main, "train.py", 12, "train_step");
        let _s2 = core.python().frame(main, "model.py", 87, "forward");
        let _s3 = core.python().frame(main, "conv_layer.py", 45, "__call__");
        bed.eager()
            .op(
                Op::new(OpKind::Conv2d).with_weight([64, 32, 3, 3]),
                &[TensorMeta::new([4, 32, 56, 56]).with_layout(Layout::ChannelsLast)],
            )
            .expect("conv");
    }
    monitor.callback_unregister(reg);
    let mut paths = paths.lock();
    paths.remove(0)
}

fn main() {
    let bed = TestBed::new(DeviceSpec::a100_sxm());
    let monitor = DlMonitor::init(bed.env(), Interner::new());
    let core = Arc::clone(bed.eager().core());
    monitor.attach_framework(core.callbacks());
    monitor.attach_gpu(bed.gpu());
    let interner = monitor.interner();

    println!("(a) hot call path WITHOUT framework context (native-only, Figure 3a):\n");
    let native_only = collect_launch_path(
        &monitor,
        CallPathSources {
            python: false,
            framework: false,
            native: true,
        },
        &bed,
        &core,
    );
    print!("{}", native_only.render(&interner));

    println!("\n(b) hot call path WITH DLMonitor's unified context (Figure 3b):\n");
    let unified = collect_launch_path(&monitor, CallPathSources::all(), &bed, &core);
    print!("{}", unified.render(&interner));

    println!("\nlayers in (a): {:?}", layer_set(&native_only));
    println!("layers in (b): {:?}", layer_set(&unified));
}

fn layer_set(path: &CallPath) -> Vec<FrameKind> {
    let mut kinds: Vec<FrameKind> = path.frames().iter().map(|f| f.kind()).collect();
    kinds.dedup();
    kinds
}
