//! Operator sinks: the two execution backends a workload can emit into.

use std::sync::Arc;

use dl_framework::{EagerEngine, FrameworkError, Op, TensorMeta, Tracer};

/// Anything that can execute (or record) a stream of operators.
pub trait OpSink {
    /// Executes/records one operator.
    ///
    /// # Errors
    ///
    /// Propagates shape-inference or dispatch failures.
    fn op(&mut self, op: Op, inputs: &[TensorMeta]) -> Result<TensorMeta, FrameworkError>;

    /// Runs (or records) the backward pass for everything emitted so far.
    ///
    /// # Errors
    ///
    /// Propagates backward failures.
    fn backward(&mut self) -> Result<(), FrameworkError>;
}

/// Eager execution: operators dispatch immediately; backward replays the
/// autograd tape on the backward thread.
pub struct EagerSink {
    engine: Arc<EagerEngine>,
}

impl EagerSink {
    /// Wraps an eager engine.
    pub fn new(engine: Arc<EagerEngine>) -> Self {
        EagerSink { engine }
    }
}

impl OpSink for EagerSink {
    fn op(&mut self, op: Op, inputs: &[TensorMeta]) -> Result<TensorMeta, FrameworkError> {
        self.engine.op(op, inputs)
    }

    fn backward(&mut self) -> Result<(), FrameworkError> {
        self.engine.backward()
    }
}

/// Tracing execution: operators are recorded into a JIT graph; backward
/// synthesizes reverse ops into the same graph.
pub struct TraceSink<'t> {
    tracer: &'t mut Tracer,
}

impl<'t> TraceSink<'t> {
    /// Wraps a JIT tracer.
    pub fn new(tracer: &'t mut Tracer) -> Self {
        TraceSink { tracer }
    }
}

impl OpSink for TraceSink<'_> {
    fn op(&mut self, op: Op, inputs: &[TensorMeta]) -> Result<TensorMeta, FrameworkError> {
        self.tracer.op(op, inputs)
    }

    fn backward(&mut self) -> Result<(), FrameworkError> {
        self.tracer.emit_backward()
    }
}
