//! Kernel name → entry-address registry.
//!
//! Real GPU kernels live at fixed addresses in loaded modules; profilers
//! collapse kernel frames on (module, entry PC). The registry assigns each
//! distinct kernel name a stable simulated entry address within its
//! module.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use sim_gpu::{KernelDesc, LaunchConfig};

/// Allocates and remembers kernel entry addresses for one module.
#[derive(Debug)]
pub struct KernelRegistry {
    module: Arc<str>,
    next_pc: AtomicU64,
    map: Mutex<HashMap<String, u64>>,
}

impl KernelRegistry {
    /// Creates a registry for `module` (e.g. `libtorch_cuda.so`).
    pub fn new(module: &str) -> Self {
        KernelRegistry {
            module: Arc::from(module),
            next_pc: AtomicU64::new(0x1000),
            map: Mutex::new(HashMap::new()),
        }
    }

    /// The module name.
    pub fn module(&self) -> &str {
        &self.module
    }

    /// The entry PC for `name`, allocating one on first use.
    pub fn entry_pc(&self, name: &str) -> u64 {
        let mut map = self.map.lock();
        if let Some(&pc) = map.get(name) {
            return pc;
        }
        let pc = self.next_pc.fetch_add(0x1000, Ordering::SeqCst);
        map.insert(name.to_owned(), pc);
        pc
    }

    /// Builds a kernel descriptor bound to this module.
    pub fn kernel(&self, name: &str, config: LaunchConfig) -> KernelDesc {
        KernelDesc::new(name, &self.module, self.entry_pc(name), config)
    }

    /// Number of distinct kernels registered.
    pub fn len(&self) -> usize {
        self.map.lock().len()
    }

    /// Whether no kernels are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_pcs_are_stable_and_distinct() {
        let reg = KernelRegistry::new("libtorch_cuda.so");
        let a1 = reg.entry_pc("sgemm");
        let b = reg.entry_pc("hgemm");
        let a2 = reg.entry_pc("sgemm");
        assert_eq!(a1, a2);
        assert_ne!(a1, b);
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn kernel_builder_binds_module_and_pc() {
        let reg = KernelRegistry::new("libxla.so");
        let k = reg.kernel("fusion_0", LaunchConfig::new(8, 128));
        assert_eq!(k.module.as_ref(), "libxla.so");
        assert_eq!(k.entry_pc, reg.entry_pc("fusion_0"));
    }
}
