//! End-to-end pipeline test: workload → DLMonitor → profiler → profile
//! database → analyzer → flame graphs, all crates working together.

use deepcontext::prelude::*;
use deepcontext_flamegraph::{parse_folded, AsciiOptions, SvgOptions};

fn profile_dlrm(iterations: u32) -> ProfileDb {
    let bed = TestBed::new(DeviceSpec::a100_sxm());
    let monitor = DlMonitor::init(bed.env(), Interner::new());
    monitor.attach_framework(bed.eager().core().callbacks());
    monitor.attach_gpu(bed.gpu());
    let profiler = Profiler::attach(
        ProfilerConfig::deepcontext_native(),
        bed.env(),
        &monitor,
        bed.gpu(),
    );
    bed.run_eager(&DlrmSmall, &WorkloadOptions::default(), iterations)
        .expect("workload run");
    profiler.finish(ProfileMeta {
        workload: "dlrm-small".into(),
        framework: "eager".into(),
        platform: "nvidia-a100".into(),
        iterations: u64::from(iterations),
        ..Default::default()
    })
}

#[test]
fn profile_contains_all_five_stack_layers() {
    let db = profile_dlrm(2);
    let cct = db.cct();
    for kind in [
        FrameKind::Python,
        FrameKind::Operator,
        FrameKind::Native,
        FrameKind::GpuApi,
        FrameKind::GpuKernel,
    ] {
        assert!(
            !cct.nodes_of_kind(kind).is_empty(),
            "missing {kind} frames in the unified profile"
        );
    }
    assert!(cct.total(MetricKind::GpuTime) > 0.0);
    assert!(cct.total(MetricKind::CpuTime) > 0.0);
    assert!(cct.root_metric(MetricKind::KernelLaunches).unwrap().sum > 0.0);
}

#[test]
fn analyzer_finds_the_dlrm_index_abnormality() {
    let db = profile_dlrm(2);
    let report = Analyzer::with_default_rules().analyze(&db);
    let fwd_bwd = report.by_rule("fwd-bwd");
    assert!(
        fwd_bwd.iter().any(|i| i.message.contains("aten::index")),
        "expected an aten::index backward abnormality, got: {report}"
    );
    assert!(fwd_bwd
        .iter()
        .any(|i| i.suggestion.contains("index_select")));
    // The serialized backward kernel is also the hotspot.
    let hotspots = report.by_rule("hotspot");
    assert!(hotspots
        .iter()
        .any(|i| i.message.contains("indexing_backward_kernel")));
}

#[test]
fn backward_kernels_are_attributed_to_forward_python_context() {
    let db = profile_dlrm(2);
    let cct = db.cct();
    let interner = cct.interner();
    let bwd_kernel = cct
        .nodes_of_kind(FrameKind::GpuKernel)
        .into_iter()
        .find(|n| cct.node(*n).frame().short_label(&interner) == "indexing_backward_kernel")
        .expect("backward kernel present");
    let path = cct.frames_to_root(bwd_kernel);
    let kinds: Vec<FrameKind> = path.frames().iter().map(|f| f.kind()).collect();
    // Association: the path must START with Python frames even though the
    // kernel launched from the Python-less backward thread.
    assert_eq!(kinds[0], FrameKind::Python);
    let labels: Vec<String> = path
        .frames()
        .iter()
        .map(|f| f.short_label(&interner))
        .collect();
    assert!(labels.contains(&"dlrm.py:24".to_owned()), "{labels:?}");
    assert!(labels.contains(&"aten::index".to_owned()));
    assert!(labels.contains(&"aten::index~bwd".to_owned()));
}

#[test]
fn profile_database_round_trips_with_identical_analysis() {
    let db = profile_dlrm(2);
    let mut buf = Vec::new();
    db.save(&mut buf).unwrap();
    let restored = ProfileDb::load(&buf[..]).unwrap();
    assert_eq!(restored.meta(), db.meta());
    assert_eq!(restored.cct().node_count(), db.cct().node_count());

    let before = Analyzer::with_default_rules().analyze(&db);
    let after = Analyzer::with_default_rules().analyze(&restored);
    assert_eq!(before.len(), after.len());
    for (a, b) in before.issues().iter().zip(after.issues()) {
        assert_eq!(a.rule, b.rule);
        assert_eq!(a.message, b.message);
    }
}

#[test]
fn flame_graph_exports_are_consistent() {
    let db = profile_dlrm(2);
    let mut top = FlameGraph::top_down(db.cct(), MetricKind::GpuTime);
    top.highlight_hotspots(0.25);
    let bottom = FlameGraph::bottom_up(db.cct(), MetricKind::GpuTime);

    // Both views conserve total GPU time.
    let total = db.cct().total(MetricKind::GpuTime);
    assert!((top.root().value - total).abs() < 1e-6 * total);
    assert!((bottom.root().value - total).abs() < 1e-6 * total);

    // Folded round-trips.
    let folded = top.to_folded();
    let parsed = parse_folded(&folded, MetricKind::GpuTime).unwrap();
    assert_eq!(parsed.to_folded(), folded);

    // Renderers produce non-trivial output.
    let ascii = top.to_ascii(&AsciiOptions::default());
    assert!(ascii.contains("indexing_backward_kernel"));
    let svg = top.to_svg(&SvgOptions::default());
    assert!(svg.contains("</svg>"));
    let json = top.to_json();
    assert_eq!(json.matches('{').count(), json.matches('}').count());
}

#[test]
fn multi_stream_routing_attributes_every_stream_to_its_call_path() {
    // Two devices, three streams each, with overlapping kernels — the
    // stream-keyed routing path end to end: launches carry stream
    // identity, activity records resolve through correlation, and every
    // branch's GPU time must land under that branch's own Python scope.
    const ITERATIONS: u32 = 3;
    let workload = MultiStream::default();
    let bed = TestBed::with_devices(vec![DeviceSpec::a100_sxm(), DeviceSpec::a100_sxm()]);
    let monitor = DlMonitor::init(bed.env(), Interner::new());
    monitor.attach_framework(bed.eager().core().callbacks());
    monitor.attach_gpu(bed.gpu());
    let profiler = Profiler::attach(
        ProfilerConfig::deepcontext(),
        bed.env(),
        &monitor,
        bed.gpu(),
    );
    let stats = bed
        .run_eager(&workload, &WorkloadOptions::default(), ITERATIONS)
        .expect("workload run");
    assert_eq!(
        stats.kernels,
        u64::from(ITERATIONS) * workload.kernels_per_iteration()
    );
    profiler.flush();

    let pstats = profiler.stats();
    assert_eq!(pstats.orphans, 0, "every activity resolved its context");
    assert_eq!(
        pstats.launches,
        u64::from(ITERATIONS) * workload.kernels_per_iteration()
    );

    profiler.with_cct(|cct| {
        let interner = cct.interner();
        // Each (device, stream) branch owns a distinct Python scope; all
        // of its kernel activity must be attributed beneath it.
        for device in 0..workload.devices() {
            for stream in 0..workload.streams() {
                let label = format!(
                    "multi_stream.py:{}",
                    MultiStream::scope_line(device, stream)
                );
                let scope = cct
                    .dfs()
                    .find(|n| cct.node(*n).frame().short_label(&interner) == label)
                    .unwrap_or_else(|| panic!("missing scope {label}"));
                let gpu = cct
                    .metric(scope, MetricKind::GpuTime)
                    .unwrap_or_else(|| panic!("no GPU time under {label}"));
                assert_eq!(
                    gpu.count,
                    u64::from(ITERATIONS) * MultiStream::OPS_PER_BRANCH as u64,
                    "kernel records under {label}"
                );
                assert_eq!(
                    cct.metric(scope, MetricKind::KernelLaunches).unwrap().sum,
                    f64::from(ITERATIONS) * MultiStream::OPS_PER_BRANCH as f64,
                    "launches under {label}"
                );
            }
        }
        // The branch scopes partition the workload's activity: the whole
        // profile's GPU time equals the sum over branches (branch scope
        // lines are always >= 100, the model's own scopes are below).
        let branch_sum: f64 = cct
            .dfs()
            .filter(|n| {
                cct.node(*n)
                    .frame()
                    .short_label(&interner)
                    .strip_prefix("multi_stream.py:")
                    .and_then(|l| l.parse::<u32>().ok())
                    .is_some_and(|l| l >= 100)
            })
            .map(|n| cct.node(n).metrics().sum(MetricKind::GpuTime))
            .sum();
        assert_eq!(branch_sum, cct.total(MetricKind::GpuTime));
    });

    // Streams really overlapped *within each device*: a device's
    // accumulated kernel time can only exceed the run's wall-clock
    // window if its streams executed concurrently (serial execution on
    // one device is bounded by the wall window). Checking per device
    // also rules out plain device-level parallelism masquerading as
    // stream overlap.
    for d in 0..workload.devices() as u32 {
        let busy = bed.gpu().device_busy_time(DeviceId(d)).unwrap();
        assert!(
            busy > stats.wall,
            "no stream overlap on device {d}: busy {busy:?} vs wall {:?}",
            stats.wall
        );
    }
}

#[test]
fn multi_stream_async_ingestion_matches_sync() {
    // The same multi-device multi-stream workload through both ingestion
    // modes explicitly (independent of the DEEPCONTEXT_INGESTION_MODE
    // matrix): the bounded-channel worker pipeline must attribute every
    // branch identically to inline attribution, and the default Block
    // backpressure must lose nothing.
    use deepcontext::profiler::IngestionMode;
    const ITERATIONS: u32 = 3;
    let run = |mode: IngestionMode| {
        let workload = MultiStream::default();
        let bed = TestBed::with_devices(vec![DeviceSpec::a100_sxm(), DeviceSpec::a100_sxm()]);
        let monitor = DlMonitor::init(bed.env(), Interner::new());
        monitor.attach_framework(bed.eager().core().callbacks());
        monitor.attach_gpu(bed.gpu());
        let profiler = Profiler::attach(
            ProfilerConfig {
                ingestion_mode: mode,
                ..ProfilerConfig::deepcontext()
            },
            bed.env(),
            &monitor,
            bed.gpu(),
        );
        bed.run_eager(&workload, &WorkloadOptions::default(), ITERATIONS)
            .expect("workload run");
        profiler.flush();
        let stats = profiler.stats();
        // Per-branch attribution fingerprint: (scope label, records, launches).
        let branches = profiler.with_cct(|cct| {
            let interner = cct.interner();
            let mut branches = Vec::new();
            for device in 0..workload.devices() {
                for stream in 0..workload.streams() {
                    let label = format!(
                        "multi_stream.py:{}",
                        MultiStream::scope_line(device, stream)
                    );
                    let scope = cct
                        .dfs()
                        .find(|n| cct.node(*n).frame().short_label(&interner) == label)
                        .unwrap_or_else(|| panic!("missing scope {label}"));
                    branches.push((
                        label,
                        cct.metric(scope, MetricKind::GpuTime).map(|s| s.count),
                        cct.metric(scope, MetricKind::KernelLaunches).map(|s| s.sum),
                    ));
                }
            }
            branches.push((
                "total".into(),
                Some(cct.node_count() as u64),
                Some(cct.total(MetricKind::GpuTime)),
            ));
            branches
        });
        (stats, branches)
    };
    let (sync_stats, sync_branches) = run(IngestionMode::Sync);
    let (async_stats, async_branches) = run(IngestionMode::Async);
    assert_eq!(sync_branches, async_branches);
    assert_eq!(sync_stats.launches, async_stats.launches);
    assert_eq!(sync_stats.activities, async_stats.activities);
    assert_eq!(async_stats.orphans, 0);
    assert!(
        async_stats.enqueued_events > 0,
        "events flowed through queues"
    );
    assert_eq!(async_stats.dropped_events, 0, "Block policy loses nothing");
}

#[test]
fn analyzer_preview_runs_on_the_live_cached_snapshot() {
    // Preview queries over a *running* profiler: analysis runs inside
    // with_cct against the cached snapshot (no ProfileDb round-trip) and
    // must agree with the postmortem analysis of the finished profile.
    let bed = TestBed::new(DeviceSpec::a100_sxm());
    let monitor = DlMonitor::init(bed.env(), Interner::new());
    monitor.attach_framework(bed.eager().core().callbacks());
    monitor.attach_gpu(bed.gpu());
    let profiler = Profiler::attach(
        ProfilerConfig::deepcontext_native(),
        bed.env(),
        &monitor,
        bed.gpu(),
    );
    bed.run_eager(&DlrmSmall, &WorkloadOptions::default(), 2)
        .expect("workload run");
    profiler.flush();

    let analyzer = Analyzer::with_default_rules();
    let live = profiler.with_cct(|cct| analyzer.preview(cct));
    assert!(
        live.by_rule("fwd-bwd")
            .iter()
            .any(|i| i.message.contains("aten::index")),
        "live preview misses the dlrm abnormality: {live}"
    );
    // A second preview with no new events is served from the cache.
    let again = profiler.with_cct(|cct| analyzer.preview(cct));
    assert_eq!(live.len(), again.len());
    let stats = profiler.stats();
    assert!(stats.shards_skipped > 0, "cache was never hit");

    let db = profiler.finish(ProfileMeta {
        workload: "dlrm-small".into(),
        framework: "eager".into(),
        platform: "nvidia-a100".into(),
        iterations: 2,
        ..Default::default()
    });
    let post = analyzer.analyze(&db);
    assert_eq!(live.len(), post.len(), "live and postmortem reports agree");
    for (a, b) in live.issues().iter().zip(post.issues()) {
        assert_eq!(a.rule, b.rule);
        assert_eq!(a.message, b.message);
    }
}

#[test]
fn cct_size_is_independent_of_iteration_count() {
    let small = profile_dlrm(1);
    let large = profile_dlrm(4);
    assert_eq!(
        small.cct().node_count(),
        large.cct().node_count(),
        "online aggregation must keep the tree size fixed across iterations"
    );
    // But the metrics keep accumulating.
    assert!(large.cct().total(MetricKind::GpuTime) > small.cct().total(MetricKind::GpuTime) * 2.0);
}
