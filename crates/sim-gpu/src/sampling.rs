//! Deterministic GPU instruction sampling.
//!
//! "If fine-grained metrics, such as instruction samples, are collected,
//! we will extend the call path by inserting the PC of each instruction
//! collected" (paper §4.2). The simulated sampler draws samples from a
//! kernel's [`InstructionProfile`] in
//! proportion to instruction weights and assigns stall reasons from each
//! instruction's stall mix. Sampling is seeded by correlation id, so runs
//! are reproducible.

use deepcontext_core::{StallReason, TimeNs};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::kernel::InstructionProfile;
use crate::runtime::CorrelationId;

/// Instruction-sampling configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SamplingConfig {
    /// Virtual nanoseconds between samples.
    pub period: TimeNs,
    /// Maximum samples kept per kernel execution (buffer size guard).
    pub max_samples_per_kernel: usize,
}

impl Default for SamplingConfig {
    fn default() -> Self {
        SamplingConfig {
            period: TimeNs(2_000),
            max_samples_per_kernel: 4_096,
        }
    }
}

/// One instruction sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PcSample {
    /// Sampled PC, relative to the kernel entry.
    pub pc: u64,
    /// The stall observed (or [`StallReason::None`] if the warp issued).
    pub stall: StallReason,
}

/// Draws the samples for one kernel execution of `duration`.
///
/// Returns an empty vector for kernels without instruction profiles.
pub fn sample_kernel(
    profile: &InstructionProfile,
    duration: TimeNs,
    config: &SamplingConfig,
    correlation_id: CorrelationId,
) -> Vec<PcSample> {
    if profile.is_empty() || config.period.as_nanos() == 0 {
        return Vec::new();
    }
    let total_weight = profile.total_weight();
    if total_weight <= 0.0 {
        return Vec::new();
    }
    let n = ((duration.as_nanos() / config.period.as_nanos()) as usize)
        .min(config.max_samples_per_kernel);
    let mut rng = SmallRng::seed_from_u64(correlation_id.0 ^ 0x5eed_cafe);
    let mut samples = Vec::with_capacity(n);
    for _ in 0..n {
        // Pick an instruction by weight.
        let mut pick = rng.gen_range(0.0..total_weight);
        let mut chosen = profile.instrs().last().expect("non-empty profile");
        for instr in profile.instrs() {
            if pick < instr.weight {
                chosen = instr;
                break;
            }
            pick -= instr.weight;
        }
        // Pick a stall reason from the instruction's mix.
        let mut stall = StallReason::None;
        let mut p = rng.gen_range(0.0..1.0);
        for (reason, share) in &chosen.stall_mix {
            if p < *share {
                stall = *reason;
                break;
            }
            p -= share;
        }
        samples.push(PcSample {
            pc: chosen.pc,
            stall,
        });
    }
    samples
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::InstrInfo;

    fn profile() -> std::sync::Arc<InstructionProfile> {
        InstructionProfile::new(vec![
            InstrInfo {
                pc: 0x10,
                opcode: "LDC".into(),
                weight: 0.9,
                stall_mix: vec![(StallReason::ConstantMemory, 1.0)],
            },
            InstrInfo {
                pc: 0x20,
                opcode: "FADD".into(),
                weight: 0.1,
                stall_mix: vec![],
            },
        ])
    }

    #[test]
    fn sample_count_follows_duration_and_period() {
        let p = profile();
        let cfg = SamplingConfig {
            period: TimeNs(100),
            max_samples_per_kernel: 1_000,
        };
        let samples = sample_kernel(&p, TimeNs(2_500), &cfg, CorrelationId(7));
        assert_eq!(samples.len(), 25);
    }

    #[test]
    fn sampling_is_deterministic_per_correlation_id() {
        let p = profile();
        let cfg = SamplingConfig::default();
        let a = sample_kernel(&p, TimeNs(100_000), &cfg, CorrelationId(42));
        let b = sample_kernel(&p, TimeNs(100_000), &cfg, CorrelationId(42));
        let c = sample_kernel(&p, TimeNs(100_000), &cfg, CorrelationId(43));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn heavy_instruction_dominates_samples() {
        let p = profile();
        let cfg = SamplingConfig {
            period: TimeNs(10),
            max_samples_per_kernel: 100_000,
        };
        let samples = sample_kernel(&p, TimeNs(1_000_000), &cfg, CorrelationId(1));
        let hot = samples.iter().filter(|s| s.pc == 0x10).count();
        let ratio = hot as f64 / samples.len() as f64;
        assert!((ratio - 0.9).abs() < 0.05, "hot ratio {ratio}");
        // The hot instruction always stalls on constant memory.
        assert!(samples
            .iter()
            .filter(|s| s.pc == 0x10)
            .all(|s| s.stall == StallReason::ConstantMemory));
    }

    #[test]
    fn max_samples_cap_is_respected() {
        let p = profile();
        let cfg = SamplingConfig {
            period: TimeNs(1),
            max_samples_per_kernel: 64,
        };
        let samples = sample_kernel(&p, TimeNs(1_000_000), &cfg, CorrelationId(5));
        assert_eq!(samples.len(), 64);
    }

    #[test]
    fn empty_profile_yields_no_samples() {
        let p = InstructionProfile::empty();
        let cfg = SamplingConfig::default();
        assert!(sample_kernel(&p, TimeNs(1_000_000), &cfg, CorrelationId(1)).is_empty());
    }
}
