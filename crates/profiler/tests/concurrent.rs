//! Concurrent-ingestion correctness: attributing the same event set from
//! 8 producer threads through the sharded sink must yield exactly the
//! totals of a single-threaded run through one shard (the historical
//! single-lock pipeline).

use std::sync::Arc;

use deepcontext_core::{CallPath, Frame, FrameKind, Interner, MetricKind, TimeNs};
use deepcontext_profiler::{EventSink, ShardedSink};
use dlmonitor::EventOrigin;
use sim_gpu::{Activity, ActivityKind, ApiKind, CorrelationId, DeviceId, StreamId};

const PRODUCERS: usize = 8;
const OPS_PER_PRODUCER: usize = 200;

/// One producer's event stream: a launch (call path + correlation id) and
/// the matching asynchronous kernel activity.
struct LaunchEvent {
    origin: EventOrigin,
    path: CallPath,
    activity: Activity,
}

fn producer_events(interner: &Arc<Interner>, producer: usize) -> Vec<LaunchEvent> {
    (0..OPS_PER_PRODUCER)
        .map(|k| {
            // A few distinct contexts per producer so trees have shape;
            // kernels repeat so contexts collapse like a real training loop.
            let kernel = format!("kernel_{}", k % 4);
            let corr = (producer * 1_000_000 + k) as u64;
            let mut path = CallPath::new();
            path.push(Frame::python(
                &format!("worker{producer}.py"),
                10,
                "step",
                interner,
            ));
            path.push(Frame::operator(&format!("aten::op{}", k % 3), interner));
            path.push(Frame::gpu_api(
                "cuLaunchKernel",
                "libcuda.so",
                0x10,
                interner,
            ));
            path.push(Frame::gpu_kernel(
                &kernel,
                "module.so",
                0x100 + (k % 4) as u64,
                interner,
            ));
            let start = TimeNs((k as u64) * 100);
            LaunchEvent {
                origin: EventOrigin {
                    tid: Some(producer as u64 + 1),
                    stream: Some(StreamId(producer as u32)),
                    correlation: Some(CorrelationId(corr)),
                },
                path,
                activity: Activity {
                    correlation_id: CorrelationId(corr),
                    device: DeviceId(0),
                    kind: ActivityKind::Kernel {
                        name: Arc::from(kernel.as_str()),
                        module: Arc::from("module.so"),
                        entry_pc: 0x100 + (k % 4) as u64,
                        stream: StreamId(producer as u32),
                        start,
                        end: start + TimeNs(250),
                        blocks: 8,
                        warps: 64,
                        occupancy: 0.5,
                        shared_mem_per_block: 0,
                        registers_per_thread: 32,
                    },
                },
            }
        })
        .collect()
}

/// Ingests one producer's stream: launches first, then activities in
/// buffer-sized batches, like the GPU runtime delivers them.
fn ingest(sink: &ShardedSink, events: &[LaunchEvent]) {
    for e in events {
        sink.gpu_launch(&e.origin, &e.path, ApiKind::LaunchKernel);
    }
    for chunk in events.chunks(64) {
        let batch: Vec<Activity> = chunk.iter().map(|e| e.activity.clone()).collect();
        sink.activity_batch(&batch);
    }
}

fn fingerprint(sink: &ShardedSink) -> (usize, f64, f64, u64, f64) {
    let cct = sink.snapshot();
    let gpu_time = cct.total(MetricKind::GpuTime);
    let launches = cct.total(MetricKind::KernelLaunches);
    let count = cct
        .root_metric(MetricKind::GpuTime)
        .map(|s| s.count)
        .unwrap_or(0);
    // Exclusive metrics: summed across all kernel nodes.
    let warps: f64 = cct
        .nodes_of_kind(FrameKind::GpuKernel)
        .iter()
        .map(|n| cct.node(*n).metrics().sum(MetricKind::Warps))
        .sum();
    (cct.node_count(), gpu_time, launches, count, warps)
}

#[test]
fn eight_threads_match_single_thread_totals() {
    let interner = Interner::new();
    let streams: Vec<Vec<LaunchEvent>> = (0..PRODUCERS)
        .map(|p| producer_events(&interner, p))
        .collect();

    // Baseline: everything through one shard, one thread.
    let single = ShardedSink::new(Arc::clone(&interner), 1);
    for events in &streams {
        ingest(&single, events);
    }

    // Concurrent: 8 OS threads into a 16-way sharded sink.
    let sharded = ShardedSink::new(Arc::clone(&interner), 16);
    let streams = Arc::new(streams);
    std::thread::scope(|scope| {
        for p in 0..PRODUCERS {
            let sink = Arc::clone(&sharded);
            let streams = Arc::clone(&streams);
            scope.spawn(move || ingest(&sink, &streams[p]));
        }
    });

    let base = fingerprint(&single);
    let conc = fingerprint(&sharded);
    assert_eq!(
        base, conc,
        "sharded concurrent ingestion must match the single-lock run"
    );

    // Nothing fell through to the catch-all and every record arrived.
    let expected = (PRODUCERS * OPS_PER_PRODUCER) as u64;
    assert_eq!(sharded.counters().activities, expected);
    assert_eq!(sharded.counters().orphans, 0);
    assert_eq!(base.3, expected, "every kernel sample aggregated");
}

#[test]
fn cached_snapshots_stay_consistent_under_eight_producers() {
    // 8 producer threads ingest while a reader loops over the *cached*
    // snapshot path: every intermediate snapshot must be internally
    // consistent, the final totals must be exact, and the cache must
    // demonstrably skip clean shards.
    let interner = Interner::new();
    let sharded = ShardedSink::new(Arc::clone(&interner), 16);
    let streams: Vec<Vec<LaunchEvent>> = (0..PRODUCERS)
        .map(|p| producer_events(&interner, p))
        .collect();
    let streams = Arc::new(streams);
    std::thread::scope(|scope| {
        for p in 0..PRODUCERS {
            let sink = Arc::clone(&sharded);
            let streams = Arc::clone(&streams);
            scope.spawn(move || ingest(&sink, &streams[p]));
        }
        // Reader: repeated cached snapshots while producers are live.
        let sink = Arc::clone(&sharded);
        scope.spawn(move || {
            let mut last_time = 0.0;
            for _ in 0..30 {
                sink.with_snapshot(&mut |cct| {
                    let root = cct.total(MetricKind::GpuTime);
                    // Inclusive-metric invariant at every node.
                    for id in cct.dfs() {
                        assert!(root >= cct.node(id).metrics().sum(MetricKind::GpuTime) - 1e-6);
                    }
                    // Aggregates only grow while producers run.
                    assert!(root >= last_time, "snapshot went backwards");
                    last_time = root;
                });
            }
        });
    });

    // Producers are done: totals are exact and match an uncached fold.
    let expected_time = (PRODUCERS * OPS_PER_PRODUCER) as f64 * 250.0;
    let final_cached = sharded.snapshot();
    assert_eq!(final_cached.total(MetricKind::GpuTime), expected_time);
    assert_eq!(
        final_cached.total(MetricKind::KernelLaunches),
        (PRODUCERS * OPS_PER_PRODUCER) as f64
    );
    assert_eq!(
        sharded.snapshot_uncached().semantic_diff(&final_cached),
        None
    );

    // A second quiescent snapshot folds nothing: all 16 shards skip —
    // proof the reader was hitting the cache, not re-folding.
    let merges_before = sharded.counters().snapshot_merges;
    let skipped_before = sharded.counters().shards_skipped;
    let again = sharded.snapshot();
    assert_eq!(again.total(MetricKind::GpuTime), expected_time);
    let counters = sharded.counters();
    assert_eq!(counters.snapshot_merges, merges_before);
    assert_eq!(counters.shards_skipped, skipped_before + 16);
    assert!(counters.shards_skipped > 0);
}

#[test]
fn snapshot_is_stable_while_producers_run() {
    // Folding shards must not disturb ongoing ingestion: interleave
    // snapshots with producer threads and verify the final totals.
    let interner = Interner::new();
    let sharded = ShardedSink::new(Arc::clone(&interner), 8);
    let streams: Vec<Vec<LaunchEvent>> = (0..4).map(|p| producer_events(&interner, p)).collect();
    let streams = Arc::new(streams);
    std::thread::scope(|scope| {
        for p in 0..4 {
            let sink = Arc::clone(&sharded);
            let streams = Arc::clone(&streams);
            scope.spawn(move || ingest(&sink, &streams[p]));
        }
        // Reader thread: snapshots must always be internally consistent
        // (inclusive root >= any child) even mid-ingestion.
        let sink = Arc::clone(&sharded);
        scope.spawn(move || {
            for _ in 0..20 {
                let cct = sink.snapshot();
                let root = cct.total(MetricKind::GpuTime);
                for id in cct.dfs() {
                    assert!(root >= cct.node(id).metrics().sum(MetricKind::GpuTime) - 1e-6);
                }
            }
        });
    });
    let final_time = sharded.snapshot().total(MetricKind::GpuTime);
    assert_eq!(final_time, (4 * OPS_PER_PRODUCER) as f64 * 250.0);
}
