//! Simulated native stacks and libunwind-style unwinding.
//!
//! The "native" call path, with C/C++ symbols, is captured in the paper
//! using libunwind, stepping frame by frame (`unw_step`) from the leaf
//! upward. Stepping is the expensive part — the paper's call-path caching
//! optimization exists precisely to bound the number of steps — so the
//! simulated [`Unwinder`] counts every step globally, letting benches and
//! tests quantify the optimization exactly.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

/// One simulated native frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NativeFrameInfo {
    /// Containing library path.
    pub library: Arc<str>,
    /// Program counter (call-site address).
    pub pc: u64,
    /// Resolved symbol name.
    pub symbol: Arc<str>,
}

impl NativeFrameInfo {
    /// Creates a frame description.
    pub fn new(library: &str, pc: u64, symbol: &str) -> Self {
        NativeFrameInfo {
            library: Arc::from(library),
            pc,
            symbol: Arc::from(symbol),
        }
    }
}

/// A per-thread simulated native call stack.
#[derive(Debug, Default)]
pub struct NativeStack {
    frames: Mutex<Vec<NativeFrameInfo>>,
    version: AtomicU64,
}

impl NativeStack {
    /// Creates an empty stack.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pushes a frame (function entry).
    pub fn push(&self, frame: NativeFrameInfo) {
        self.frames.lock().push(frame);
        self.version.fetch_add(1, Ordering::SeqCst);
    }

    /// Pops the innermost frame (function exit).
    pub fn pop(&self) -> Option<NativeFrameInfo> {
        let popped = self.frames.lock().pop();
        if popped.is_some() {
            self.version.fetch_add(1, Ordering::SeqCst);
        }
        popped
    }

    /// Snapshot, root-first.
    pub fn walk(&self) -> Vec<NativeFrameInfo> {
        self.frames.lock().clone()
    }

    /// Current depth.
    pub fn depth(&self) -> usize {
        self.frames.lock().len()
    }

    /// Monotonic change counter.
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::SeqCst)
    }

    /// Whether the stack is empty.
    pub fn is_empty(&self) -> bool {
        self.depth() == 0
    }
}

/// RAII guard popping its native frame on drop.
#[derive(Debug)]
pub struct NativeFrameGuard {
    stack: Arc<NativeStack>,
}

impl NativeFrameGuard {
    /// Pushes `frame` onto `stack`, returning the popping guard.
    pub fn enter(stack: &Arc<NativeStack>, frame: NativeFrameInfo) -> Self {
        stack.push(frame);
        NativeFrameGuard {
            stack: Arc::clone(stack),
        }
    }
}

impl Drop for NativeFrameGuard {
    fn drop(&mut self) {
        self.stack.pop();
    }
}

/// The libunwind analogue: produces step-wise cursors over native stacks
/// and counts total steps taken process-wide.
///
/// # Examples
///
/// ```
/// use sim_runtime::{NativeFrameInfo, NativeStack, Unwinder};
///
/// let stack = NativeStack::new();
/// stack.push(NativeFrameInfo::new("libc.so", 0x10, "start"));
/// stack.push(NativeFrameInfo::new("libtorch.so", 0x20, "launch"));
///
/// let unwinder = Unwinder::new();
/// let mut cursor = unwinder.cursor(&stack);
/// // Leaf-first, like unw_step.
/// assert_eq!(cursor.step().unwrap().symbol.as_ref(), "launch");
/// assert_eq!(cursor.step().unwrap().symbol.as_ref(), "start");
/// assert!(cursor.step().is_none());
/// assert_eq!(unwinder.steps_taken(), 2);
/// ```
#[derive(Debug, Default)]
pub struct Unwinder {
    steps: AtomicU64,
    unwinds: AtomicU64,
}

impl Unwinder {
    /// Creates an unwinder with zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Begins unwinding `stack` from the leaf (`unw_getcontext` +
    /// `unw_init_local`).
    pub fn cursor(&self, stack: &NativeStack) -> UnwindCursor<'_> {
        self.unwinds.fetch_add(1, Ordering::Relaxed);
        UnwindCursor {
            unwinder: self,
            frames: stack.walk(),
        }
    }

    /// Fully unwinds `stack`, returning frames **root-first** (the order
    /// call paths want). Costs one step per frame.
    pub fn backtrace(&self, stack: &NativeStack) -> Vec<NativeFrameInfo> {
        let mut cursor = self.cursor(stack);
        let mut frames = Vec::new();
        while let Some(f) = cursor.step() {
            frames.push(f);
        }
        frames.reverse();
        frames
    }

    /// Total `step()` calls ever taken through this unwinder.
    pub fn steps_taken(&self) -> u64 {
        self.steps.load(Ordering::Relaxed)
    }

    /// Total cursors created (unwind operations started).
    pub fn unwinds_started(&self) -> u64 {
        self.unwinds.load(Ordering::Relaxed)
    }

    /// Resets the counters (between bench phases).
    pub fn reset_counters(&self) {
        self.steps.store(0, Ordering::Relaxed);
        self.unwinds.store(0, Ordering::Relaxed);
    }
}

/// A step-wise unwind cursor, leaf-first like `unw_step`.
#[derive(Debug)]
pub struct UnwindCursor<'a> {
    unwinder: &'a Unwinder,
    frames: Vec<NativeFrameInfo>,
}

impl UnwindCursor<'_> {
    /// Steps to the next outer frame, returning it; `None` past the root.
    /// Each call increments the unwinder's global step counter.
    pub fn step(&mut self) -> Option<NativeFrameInfo> {
        let frame = self.frames.pop()?;
        self.unwinder.steps.fetch_add(1, Ordering::Relaxed);
        Some(frame)
    }

    /// Steps until `pred` matches a frame, returning the frames stepped
    /// over **leaf-first**, excluding the matching frame. Returns the pair
    /// `(stepped, matched)`; `matched` is `None` if the root was reached.
    ///
    /// This is the primitive behind the paper's *call path caching* mode
    /// with native collection enabled: "retrieve native frames step-by-step
    /// ... until we reach the cached deep learning operator".
    pub fn step_until(
        &mut self,
        mut pred: impl FnMut(&NativeFrameInfo) -> bool,
    ) -> (Vec<NativeFrameInfo>, Option<NativeFrameInfo>) {
        let mut stepped = Vec::new();
        while let Some(frame) = self.step() {
            if pred(&frame) {
                return (stepped, Some(frame));
            }
            stepped.push(frame);
        }
        (stepped, None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stack_of(symbols: &[&str]) -> NativeStack {
        let s = NativeStack::new();
        for (i, sym) in symbols.iter().enumerate() {
            s.push(NativeFrameInfo::new("lib.so", 0x100 + i as u64, sym));
        }
        s
    }

    #[test]
    fn backtrace_is_root_first_and_counts_steps() {
        let stack = stack_of(&["main", "dispatch", "launch"]);
        let u = Unwinder::new();
        let bt = u.backtrace(&stack);
        assert_eq!(
            bt.iter().map(|f| f.symbol.as_ref()).collect::<Vec<_>>(),
            vec!["main", "dispatch", "launch"]
        );
        assert_eq!(u.steps_taken(), 3);
        assert_eq!(u.unwinds_started(), 1);
    }

    #[test]
    fn step_until_stops_at_match() {
        let stack = stack_of(&["main", "op_entry", "helper", "launch"]);
        let u = Unwinder::new();
        let mut cursor = u.cursor(&stack);
        let (stepped, matched) = cursor.step_until(|f| f.symbol.as_ref() == "op_entry");
        assert_eq!(
            stepped
                .iter()
                .map(|f| f.symbol.as_ref())
                .collect::<Vec<_>>(),
            vec!["launch", "helper"]
        );
        assert_eq!(matched.unwrap().symbol.as_ref(), "op_entry");
        // Only 3 steps: launch, helper, op_entry — main untouched.
        assert_eq!(u.steps_taken(), 3);
    }

    #[test]
    fn step_until_without_match_reaches_root() {
        let stack = stack_of(&["main", "launch"]);
        let u = Unwinder::new();
        let mut cursor = u.cursor(&stack);
        let (stepped, matched) = cursor.step_until(|_| false);
        assert_eq!(stepped.len(), 2);
        assert!(matched.is_none());
    }

    #[test]
    fn guards_pop_on_drop() {
        let s = Arc::new(NativeStack::new());
        {
            let _g = NativeFrameGuard::enter(&s, NativeFrameInfo::new("lib.so", 1, "f"));
            assert_eq!(s.depth(), 1);
        }
        assert!(s.is_empty());
    }

    #[test]
    fn reset_counters_zeroes() {
        let stack = stack_of(&["a"]);
        let u = Unwinder::new();
        u.backtrace(&stack);
        assert!(u.steps_taken() > 0);
        u.reset_counters();
        assert_eq!(u.steps_taken(), 0);
        assert_eq!(u.unwinds_started(), 0);
    }
}
