//! Simulated process runtime for DeepContext.
//!
//! The real DeepContext obtains Python frames from CPython's `PyFrame`
//! APIs, native frames from libunwind, and library address ranges from
//! `LD_AUDIT`. None of those exist in this environment, so this crate
//! provides drop-in simulated equivalents with the same *interfaces and
//! costs*:
//!
//! * [`PythonStack`] — a per-thread interpreter frame stack walked exactly
//!   like `PyFrame_GetBack`;
//! * [`NativeStack`] + [`Unwinder`] — per-thread native frames with a
//!   step-wise cursor mirroring `unw_step`, including a global step counter
//!   so the paper's call-path-caching optimization can be quantified;
//! * [`LibraryMap`] — `LD_AUDIT`-style library load registration and
//!   PC→library lookup (this is how DLMonitor recognises `libpython.so`
//!   frames);
//! * [`SymbolTable`] / [`LineMap`] — symbol and DWARF-like line resolution
//!   used by the analyzer;
//! * [`ThreadCtx`] / [`ThreadRegistry`] — simulated OS threads carrying the
//!   stacks, with CPU-time accounting and `sigaction`-style sampling hooks
//!   ([`CpuSamplerRegistry`]).
//!
//! Frameworks (crate `dl-framework`) drive these structures; DLMonitor
//! (crate `dlmonitor`) reads them back to assemble unified call paths.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod addr;
mod cpu;
mod env;
mod library;
mod native;
mod python;
mod symbols;
mod thread;

pub use addr::AddressSpace;
pub use cpu::{CpuSamplerRegistry, CpuWork, SampleEvent, SampleKind, SamplerId};
pub use env::RuntimeEnv;
pub use library::{LibraryInfo, LibraryMap};
pub use native::{NativeFrameGuard, NativeFrameInfo, NativeStack, UnwindCursor, Unwinder};
pub use python::{PyFrameGuard, PyFrameInfo, PythonStack};
pub use symbols::{FunctionInfo, LineMap, SymbolTable};
pub use thread::{ThreadCtx, ThreadRegistry};
