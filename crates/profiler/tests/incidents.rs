//! End-to-end incident-journal acceptance: a fault-injected run (worker
//! panic + forced degradation + transient store I/O faults) round-trips
//! through the on-disk profile container with its journal intact, and
//! the analyzer's `IncidentRule` / `DegradedRunRule` name the incidents
//! citing journaled timestamps.

use std::sync::Arc;

use deepcontext_analyzer::{Analyzer, ProfileStore, RunFilter, Severity};
use deepcontext_core::{MetricKind, ProfileMeta, ThreadRole, TimeNs};
use deepcontext_profiler::{
    journal_sites, Failpoints, IngestionMode, JournalConfig, PipelineConfig, Profiler,
    ProfilerConfig, SupervisorConfig, SupervisorState, TelemetryConfig,
};
use dl_framework::{EagerEngine, FrameworkCore, Op, OpKind, TensorMeta};
use dlmonitor::DlMonitor;
use sim_gpu::{DeviceId, DeviceSpec, GpuRuntime};
use sim_runtime::{RuntimeEnv, ThreadRegistry};

struct Rig {
    env: RuntimeEnv,
    gpu: Arc<GpuRuntime>,
    engine: Arc<EagerEngine>,
    monitor: Arc<DlMonitor>,
}

fn rig() -> Rig {
    let env = RuntimeEnv::new();
    let gpu = GpuRuntime::new(env.clock().clone(), vec![DeviceSpec::a100_sxm()]);
    let core = FrameworkCore::new(
        env.clone(),
        Arc::clone(&gpu),
        DeviceId(0),
        "/lib/libtorch_cpu.so",
        "libtorch_cuda.so",
        TimeNs(3_000),
    );
    let engine = EagerEngine::new(Arc::clone(&core));
    let monitor = DlMonitor::init(&env, deepcontext_core::Interner::new());
    monitor.attach_framework(core.callbacks());
    monitor.attach_gpu(&gpu);
    Rig {
        env,
        gpu,
        engine,
        monitor,
    }
}

fn run_relu(rig: &Rig, n: usize) {
    let main = rig.env.threads().spawn(ThreadRole::Main);
    let _bind = ThreadRegistry::bind_current(&main);
    let core = Arc::clone(rig.engine.core());
    let _py = core.python().frame(&main, "train.py", 7, "step");
    for _ in 0..n {
        rig.engine
            .op(Op::new(OpKind::Relu), &[TensorMeta::new([1 << 18])])
            .unwrap();
    }
    rig.gpu.synchronize(DeviceId(0)).unwrap();
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "deepcontext-incidents-{tag}-{}",
        std::process::id()
    ))
}

#[test]
fn fault_injected_run_round_trips_with_journal_and_analyzer_cites_it() {
    let rig = rig();
    let config = ProfilerConfig {
        ingestion_mode: IngestionMode::Async,
        ingestion_shards: 2,
        telemetry: TelemetryConfig::enabled(),
        journal: JournalConfig::enabled(),
        supervisor: Some(SupervisorConfig {
            sample_stride: 4,
            ..SupervisorConfig::default()
        }),
        pipeline: PipelineConfig {
            workers: 1,
            launch_batch: 1,
            failpoints: Failpoints::parse("worker_panic@shard0").expect("valid spec"),
            ..PipelineConfig::default()
        },
        ..ProfilerConfig::default()
    };
    let profiler = Profiler::attach(config, &rig.env, &rig.monitor, &rig.gpu);
    let journal = Arc::clone(profiler.journal().expect("journal enabled"));
    let supervisor = Arc::clone(profiler.supervisor().expect("supervisor configured"));

    // Phase 1: the injected worker panic quarantines shard 0; events
    // keep flowing so the quarantined shard poisons its share.
    run_relu(&rig, 8);
    profiler.flush();
    // Phase 2: forced degradation, then more sampled ingestion.
    supervisor.force_state(SupervisorState::Degraded);
    run_relu(&rig, 8);
    profiler.flush();

    // The live journal already holds the causal record.
    let live = journal.snapshot();
    assert!(live.has_site(journal_sites::SHARD_QUARANTINE));
    assert!(live.has_site(journal_sites::SUPERVISOR_TRANSITION));
    assert_eq!(
        live.recorded,
        live.event_count() as u64 + live.evicted,
        "conservation"
    );

    let db = profiler.finish(ProfileMeta {
        workload: "relu-faulted".into(),
        ..Default::default()
    });

    // The journal tail is embedded in the profile, with header stamps.
    let stored = db.journal().expect("journal persisted with the profile");
    assert!(stored.has_site(journal_sites::SHARD_QUARANTINE));
    assert!(stored.has_site(journal_sites::SUPERVISOR_TRANSITION));
    assert!(stored.to_jsonl().contains("\"site\":\"shard.quarantine\""));
    let extra = |key: &str| {
        db.meta()
            .extra
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.clone())
            .unwrap_or_else(|| panic!("meta key {key} missing"))
    };
    assert_eq!(
        extra("journal.events").parse::<usize>().unwrap(),
        stored.event_count()
    );
    assert!(extra("journal.sites").contains("shard.quarantine"));
    assert!(
        extra("supervisor.first_degraded_ns")
            .parse::<u64>()
            .unwrap()
            > 0,
        "first-degraded stamp present for header-only listings"
    );

    // Round-trip through the store, riding out transient I/O faults that
    // the store journals as retries (into the live journal — the profile
    // was already snapshotted, so they are post-run events).
    let dir = temp_dir("roundtrip");
    let store = ProfileStore::open(&dir)
        .unwrap()
        .with_failpoints(Failpoints::parse("store_io_err@first;store_read_err@first").unwrap())
        .with_journal(Arc::clone(&journal));
    let id = store.save(&db).unwrap();
    let back = store.load(&id).unwrap();
    assert_eq!(back.journal(), db.journal(), "journal survives the disk");
    assert_eq!(back.meta(), db.meta());
    let post = journal.snapshot();
    assert_eq!(
        post.events_at(journal_sites::STORE_RETRY).count(),
        2,
        "one retried save, one retried load"
    );

    // Header-only incident filtering finds the run by its journal stamp.
    let hits = store
        .list_filtered(&RunFilter::any().incident(journal_sites::SHARD_QUARANTINE))
        .unwrap();
    assert_eq!(hits.len(), 1);
    assert_eq!(hits[0].id, id);
    assert!(store
        .list_filtered(&RunFilter::any().incident(journal_sites::STORE_RETRY))
        .unwrap()
        .is_empty());

    // The analyzer names the incidents, citing journaled timestamps.
    let report = Analyzer::with_default_rules().analyze(&back);
    let incident = report
        .issues()
        .iter()
        .find(|i| i.rule == "incident" && i.message.contains("quarantine"))
        .expect("IncidentRule names the quarantine");
    assert!(
        incident.message.contains("t=+"),
        "cites a journaled time: {}",
        incident.message
    );
    if back.cct().total(MetricKind::PoisonedEvents) > 0.0 {
        assert_eq!(incident.severity, Severity::Critical);
        assert!(incident.call_path.contains("<poisoned>"));
    }
    let degraded = report
        .issues()
        .iter()
        .find(|i| i.rule == "degraded-run")
        .expect("DegradedRunRule fires on the degraded run");
    assert!(
        degraded.message.contains("journaled transitions:")
            && degraded.message.contains("Degraded at t=+"),
        "cites the journaled transition time: {}",
        degraded.message
    );

    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn journal_disabled_run_has_no_journal_and_analyzer_stays_silent() {
    let rig = rig();
    let config = ProfilerConfig {
        journal: JournalConfig::default(),
        telemetry: TelemetryConfig::default(),
        ..ProfilerConfig::default()
    };
    let profiler = Profiler::attach(config, &rig.env, &rig.monitor, &rig.gpu);
    assert!(profiler.journal().is_none(), "disabled journal is absent");
    run_relu(&rig, 2);
    let db = profiler.finish(ProfileMeta::default());
    assert!(db.journal().is_none());
    assert!(!db
        .meta()
        .extra
        .iter()
        .any(|(k, _)| k.starts_with("journal.")));
    let report = Analyzer::with_default_rules().analyze(&db);
    assert!(!report.issues().iter().any(|i| i.rule == "incident"));
}
