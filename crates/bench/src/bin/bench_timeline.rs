//! Emits `BENCH_timeline.json`: producer-side cost of timeline
//! recording (interval tap inside inline synchronous attribution — the
//! worst case for the monitored workload) with recording off vs on,
//! over a coarse single-stream and a multi-stream (2 devices × 3
//! streams) kernel stream.
//!
//! Acceptance bar: `producer(on) / producer(off) ≤ 1.15` per shape, with
//! zero ring overflows at the default capacity.
//!
//! Run from the repo root: `cargo run --release -p deepcontext-bench
//! --bin bench_timeline`.

use std::io::Write;

use deepcontext_bench::pipeline::telemetry_pass;
use deepcontext_bench::timeline::{multi_stream_events, timeline_matrix, TimelinePoint, SHARDS};
use deepcontext_core::Interner;
use deepcontext_timeline::DEFAULT_RING_CAPACITY;

const OPS: usize = 30_000;
const REPEATS: usize = 7;
const TARGET_MAX_OVERHEAD: f64 = 1.15;

fn point<'a>(points: &'a [TimelinePoint], scenario: &str) -> &'a TimelinePoint {
    points
        .iter()
        .find(|p| p.scenario == scenario)
        .unwrap_or_else(|| panic!("measured scenario {scenario}"))
}

fn main() {
    let parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    eprintln!(
        "measuring timeline recording overhead ({SHARDS} shards, {OPS} events, ring capacity \
         {DEFAULT_RING_CAPACITY}, host parallelism {parallelism}, best of {REPEATS})..."
    );
    let points = timeline_matrix(OPS, REPEATS);
    let overhead = |label: &str| {
        point(&points, &format!("{label}_on")).producer_ns_per_event
            / point(&points, &format!("{label}_off")).producer_ns_per_event
    };
    let coarse = overhead("coarse");
    let multi = overhead("multi_stream");
    let max_overhead = coarse.max(multi);
    let total_dropped: u64 = points.iter().map(|p| p.counters.timeline_dropped).sum();
    // One extra untimed pass of the multi-stream shape through the async
    // pipeline with self-telemetry on: the measured points above stay
    // telemetry-free; this embed tracks the profiler's own vitals.
    let telemetry = {
        let interner = Interner::new();
        let multi_events = multi_stream_events(&interner, OPS, 2, 3);
        let workers = parallelism.min(SHARDS);
        telemetry_pass(&multi_events, &interner, workers)
    };

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"timeline\",\n");
    json.push_str("  \"unit\": \"ns_per_event\",\n");
    json.push_str(
        "  \"baseline\": \"inline synchronous attribution with timeline recording off\",\n",
    );
    json.push_str(&format!("  \"shards\": {SHARDS},\n"));
    json.push_str(&format!("  \"events\": {OPS},\n"));
    json.push_str(&format!("  \"repeats\": {REPEATS},\n"));
    json.push_str(&format!("  \"host_parallelism\": {parallelism},\n"));
    json.push_str(&format!(
        "  \"ring_capacity_default\": {DEFAULT_RING_CAPACITY},\n"
    ));
    json.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        let sep = if i + 1 == points.len() { "" } else { "," };
        json.push_str(&format!(
            "    {{\"scenario\": \"{}\", \"producer_ns_per_event\": {:.0}, \
             \"timeline_intervals\": {}, \"timeline_dropped\": {}}}{}\n",
            p.scenario,
            p.producer_ns_per_event,
            p.counters.timeline_intervals,
            p.counters.timeline_dropped,
            sep
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!("  \"overhead_coarse\": {coarse:.3},\n"));
    json.push_str(&format!("  \"overhead_multi_stream\": {multi:.3},\n"));
    json.push_str(&format!("  \"max_overhead\": {max_overhead:.3},\n"));
    json.push_str(&format!("  \"ring_overflows\": {total_dropped},\n"));
    // Self-telemetry embed (informational — never `target_`-prefixed, so
    // bench-check reports it without gating on it).
    json.push_str(&format!(
        "  \"telemetry_max_queue_depth\": {},\n",
        telemetry.max_queue_depth
    ));
    json.push_str(&format!(
        "  \"telemetry_dropped_events\": {},\n",
        telemetry.dropped_events
    ));
    json.push_str(&format!(
        "  \"telemetry_flush_p99_ns\": {},\n",
        telemetry.flush_p99_ns
    ));
    json.push_str(&format!(
        "  \"target_max_overhead\": {TARGET_MAX_OVERHEAD}\n"
    ));
    json.push_str("}\n");

    let mut file =
        std::fs::File::create("BENCH_timeline.json").expect("create BENCH_timeline.json");
    file.write_all(json.as_bytes()).expect("write bench json");
    eprintln!("{json}");
    eprintln!(
        "timeline-on producer overhead: coarse {coarse:.3}x, multi-stream {multi:.3}x \
         (target ≤ {TARGET_MAX_OVERHEAD}x), ring overflows: {total_dropped}"
    );
    eprintln!(
        "self-telemetry (multi-stream, telemetry on): max queue depth {}, dropped {}, \
         flush p99 {} ns over {} flushes",
        telemetry.max_queue_depth,
        telemetry.dropped_events,
        telemetry.flush_p99_ns,
        telemetry.flushes
    );
    assert!(
        total_dropped == 0,
        "default ring capacity must not overflow"
    );
    if max_overhead > TARGET_MAX_OVERHEAD {
        eprintln!(
            "WARNING: overhead {max_overhead:.3}x exceeds the {TARGET_MAX_OVERHEAD}x target \
             on this host"
        );
    }
}
