//! Profile differencing: the §6.5/§6.6 comparison workflow as a
//! first-class API. Profiles U-Net on both Table 2 platforms and prints
//! the contexts with the largest GPU-time changes — the norm template
//! regression surfaces at the top.
//!
//! ```text
//! cargo run --release --example profile_diff
//! ```

use deepcontext::analyzer::ProfileDiff;
use deepcontext::prelude::*;

fn profile(spec: DeviceSpec) -> Result<ProfileDb, Box<dyn std::error::Error>> {
    let platform = spec.platform_tag();
    let bed = TestBed::new(spec);
    let monitor = DlMonitor::init(bed.env(), Interner::new());
    monitor.attach_framework(bed.eager().core().callbacks());
    monitor.attach_gpu(bed.gpu());
    let profiler = Profiler::attach(
        ProfilerConfig::deepcontext(),
        bed.env(),
        &monitor,
        bed.gpu(),
    );
    bed.run_eager(&UNet, &WorkloadOptions::default(), 2)?;
    Ok(profiler.finish(ProfileMeta {
        workload: "unet".into(),
        platform,
        ..Default::default()
    }))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let nvidia = profile(DeviceSpec::a100_sxm())?;
    let amd = profile(DeviceSpec::mi250())?;

    let diff = ProfileDiff::compare(&nvidia, &amd, MetricKind::GpuTime);
    println!("U-Net GPU time, nvidia-a100 (baseline) vs amd-mi250 (candidate):\n");
    print!("{}", diff.render_top(8));

    println!("\nlargest regressions on MI250:");
    for entry in diff.regressions().take(3) {
        println!("  {:+.1}%  {}", (entry.ratio() - 1.0) * 100.0, entry.path);
    }
    println!("\nlargest improvements on MI250:");
    for entry in diff.improvements().take(3) {
        println!("  {:+.1}%  {}", (entry.ratio() - 1.0) * 100.0, entry.path);
    }
    Ok(())
}
