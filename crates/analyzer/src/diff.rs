//! Profile differencing.
//!
//! The paper's cross-platform (§6.5) and cross-framework (§6.6) studies
//! are comparisons between two profiles of the same workload. This module
//! makes that workflow first-class: align two profiles by *context label
//! paths* and report the largest regressions/improvements of any metric.

use std::collections::HashMap;

use deepcontext_core::{CallingContextTree, MetricKind, NodeId, ProfileDb};

use crate::view::ProfileView;

/// One aligned context with its metric value in both profiles.
#[derive(Debug, Clone)]
pub struct DiffEntry {
    /// ` > `-joined short-label path identifying the context.
    pub path: String,
    /// Metric value in the baseline profile (0 when absent).
    pub baseline: f64,
    /// Metric value in the candidate profile (0 when absent).
    pub candidate: f64,
}

impl DiffEntry {
    /// candidate − baseline.
    pub fn delta(&self) -> f64 {
        self.candidate - self.baseline
    }

    /// candidate / baseline (`f64::INFINITY` for new contexts).
    pub fn ratio(&self) -> f64 {
        if self.baseline == 0.0 {
            if self.candidate == 0.0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            self.candidate / self.baseline
        }
    }
}

/// The comparison of one metric across two profiles.
#[derive(Debug, Clone)]
pub struct ProfileDiff {
    metric: MetricKind,
    entries: Vec<DiffEntry>,
    baseline_total: f64,
    candidate_total: f64,
}

impl ProfileDiff {
    /// Aligns `baseline` and `candidate` on context label paths and
    /// compares `metric`. Only *leaf-ward* aggregation matters, so every
    /// node of both trees participates; entries are sorted by
    /// `|delta|` descending.
    pub fn compare(baseline: &ProfileDb, candidate: &ProfileDb, metric: MetricKind) -> ProfileDiff {
        let collect = |db: &ProfileDb| -> HashMap<String, f64> {
            let view = ProfileView::new(db);
            let mut map = HashMap::new();
            for node in db.cct().dfs() {
                if node == db.cct().root() {
                    continue;
                }
                let value = view.sum(node, metric);
                if value > 0.0 {
                    // Short-label paths align across platforms/frameworks
                    // (kernel PCs and libraries may differ; labels do not).
                    let path = db
                        .cct()
                        .frames_to_root(node)
                        .frames()
                        .iter()
                        .map(|f| f.short_label(&db.cct().interner()))
                        .collect::<Vec<_>>()
                        .join(" > ");
                    map.insert(path, value);
                }
            }
            map
        };

        let base = collect(baseline);
        let cand = collect(candidate);
        let mut keys: Vec<&String> = base.keys().chain(cand.keys()).collect();
        keys.sort();
        keys.dedup();
        let mut entries: Vec<DiffEntry> = keys
            .into_iter()
            .map(|k| DiffEntry {
                path: k.clone(),
                baseline: base.get(k).copied().unwrap_or(0.0),
                candidate: cand.get(k).copied().unwrap_or(0.0),
            })
            .collect();
        entries.sort_by(|a, b| b.delta().abs().total_cmp(&a.delta().abs()));
        ProfileDiff {
            metric,
            entries,
            baseline_total: baseline.cct().total(metric),
            candidate_total: candidate.cct().total(metric),
        }
    }

    /// Compares `metric` by structural identity instead of label-path
    /// hashing: both trees are folded into a fresh union tree, reusing
    /// [`CallingContextTree::merge`]'s node mapping to align contexts,
    /// and values are compared per union node in O(1) each. The
    /// expensive part of a diff — rendering ` > `-joined call paths —
    /// runs **only for changed nodes**, making repeated cross-run
    /// comparisons against a stored baseline O(changed subtree) in
    /// string work rather than O(tree).
    ///
    /// Unlike [`compare`](Self::compare), unchanged contexts are
    /// omitted entirely (no unit-ratio entries), and alignment uses
    /// frame *collapse keys* (which distinguish e.g. same-named kernels
    /// at different PCs) rather than short-label paths.
    pub fn compare_mapped(
        baseline: &ProfileDb,
        candidate: &ProfileDb,
        metric: MetricKind,
    ) -> ProfileDiff {
        let mut union = CallingContextTree::new();
        let base_map = union.merge(baseline.cct());
        let cand_map = union.merge(candidate.cct());

        // Each input tree has unique (parent, collapse key) children, so
        // its merge mapping is injective: plain assignment indexed by the
        // union id captures every node's inclusive sum.
        let mut base_vals = vec![0.0f64; union.node_count()];
        let mut cand_vals = vec![0.0f64; union.node_count()];
        let fill = |vals: &mut Vec<f64>, db: &ProfileDb, map: &[NodeId]| {
            let view = ProfileView::new(db);
            for node in db.cct().dfs() {
                vals[map[node.index()].index()] = view.sum(node, metric);
            }
        };
        fill(&mut base_vals, baseline, &base_map);
        fill(&mut cand_vals, candidate, &cand_map);

        let interner = union.interner();
        let mut entries: Vec<DiffEntry> = Vec::new();
        for node in union.dfs() {
            if node == union.root() {
                continue;
            }
            let (b, c) = (base_vals[node.index()], cand_vals[node.index()]);
            if b == c {
                continue;
            }
            let path = union
                .frames_to_root(node)
                .frames()
                .iter()
                .map(|f| f.short_label(&interner))
                .collect::<Vec<_>>()
                .join(" > ");
            entries.push(DiffEntry {
                path,
                baseline: b,
                candidate: c,
            });
        }
        entries.sort_by(|a, b| {
            b.delta()
                .abs()
                .total_cmp(&a.delta().abs())
                .then_with(|| a.path.cmp(&b.path))
        });
        ProfileDiff {
            metric,
            entries,
            baseline_total: baseline.cct().total(metric),
            candidate_total: candidate.cct().total(metric),
        }
    }

    /// The compared metric.
    pub fn metric(&self) -> MetricKind {
        self.metric
    }

    /// All aligned entries, largest |delta| first.
    pub fn entries(&self) -> &[DiffEntry] {
        &self.entries
    }

    /// Contexts that got worse (delta > 0), largest first.
    pub fn regressions(&self) -> impl Iterator<Item = &DiffEntry> {
        self.entries.iter().filter(|e| e.delta() > 0.0)
    }

    /// Contexts that improved (delta < 0), largest first.
    pub fn improvements(&self) -> impl Iterator<Item = &DiffEntry> {
        self.entries.iter().filter(|e| e.delta() < 0.0)
    }

    /// Whole-profile totals (baseline, candidate).
    pub fn totals(&self) -> (f64, f64) {
        (self.baseline_total, self.candidate_total)
    }

    /// Renders the top `n` changes as a text table.
    pub fn render_top(&self, n: usize) -> String {
        let (b, c) = self.totals();
        let mut out = format!(
            "metric {}: total {:.3e} -> {:.3e} ({:+.1}%)\n",
            self.metric.name(),
            b,
            c,
            if b > 0.0 { (c - b) / b * 100.0 } else { 0.0 }
        );
        for entry in self.entries.iter().take(n) {
            out.push_str(&format!(
                "{:>12.3e} -> {:>12.3e}  ({:+.1}%)  {}\n",
                entry.baseline,
                entry.candidate,
                if entry.baseline > 0.0 {
                    entry.delta() / entry.baseline * 100.0
                } else {
                    100.0
                },
                entry.path
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepcontext_core::{CallingContextTree, Frame, ProfileMeta};

    fn profile(conv_time: f64, norm_time: f64) -> ProfileDb {
        let mut cct = CallingContextTree::new();
        let i = cct.interner();
        let conv = cct.insert_path(&[
            Frame::python("unet.py", 30, "down_block", &i),
            Frame::gpu_kernel("implicit_gemm", "m.so", 0x10, &i),
        ]);
        let norm = cct.insert_path(&[
            Frame::python("unet.py", 30, "down_block", &i),
            Frame::gpu_kernel("batch_norm_template", "m.so", 0x20, &i),
        ]);
        cct.attribute(conv, MetricKind::GpuTime, conv_time);
        cct.attribute(norm, MetricKind::GpuTime, norm_time);
        ProfileDb::new(ProfileMeta::default(), cct)
    }

    #[test]
    fn diff_finds_the_regressed_context() {
        let nv = profile(100.0, 40.0);
        let amd = profile(80.0, 120.0);
        let diff = ProfileDiff::compare(&nv, &amd, MetricKind::GpuTime);
        let top = &diff.entries()[0];
        assert!(top.path.contains("batch_norm_template"));
        assert_eq!(top.delta(), 80.0);
        assert_eq!(top.ratio(), 3.0);
        assert_eq!(diff.totals(), (140.0, 200.0));
        assert!(diff.regressions().any(|e| e.path.contains("batch_norm")));
        assert!(diff
            .improvements()
            .any(|e| e.path.contains("implicit_gemm")));
    }

    #[test]
    fn contexts_missing_on_one_side_are_reported() {
        let base = profile(100.0, 40.0);
        let mut other_cct = CallingContextTree::new();
        let i = other_cct.interner();
        let only = other_cct.insert_path(&[Frame::gpu_kernel("new_kernel", "m.so", 0x30, &i)]);
        other_cct.attribute(only, MetricKind::GpuTime, 7.0);
        let other = ProfileDb::new(ProfileMeta::default(), other_cct);

        let diff = ProfileDiff::compare(&base, &other, MetricKind::GpuTime);
        let new_entry = diff
            .entries()
            .iter()
            .find(|e| e.path.contains("new_kernel"))
            .unwrap();
        assert_eq!(new_entry.baseline, 0.0);
        assert_eq!(new_entry.ratio(), f64::INFINITY);
        let gone = diff
            .entries()
            .iter()
            .find(|e| e.path.ends_with("implicit_gemm"))
            .unwrap();
        assert_eq!(gone.candidate, 0.0);
    }

    #[test]
    fn mapped_diff_matches_path_diff_on_changed_contexts() {
        let nv = profile(100.0, 40.0);
        let amd = profile(80.0, 120.0);
        let by_path = ProfileDiff::compare(&nv, &amd, MetricKind::GpuTime);
        let mapped = ProfileDiff::compare_mapped(&nv, &amd, MetricKind::GpuTime);
        assert_eq!(mapped.totals(), by_path.totals());
        let changed: Vec<_> = by_path
            .entries()
            .iter()
            .filter(|e| e.delta() != 0.0)
            .collect();
        assert_eq!(mapped.entries().len(), changed.len());
        for (m, p) in mapped.entries().iter().zip(changed) {
            assert_eq!(m.path, p.path);
            assert_eq!(m.baseline, p.baseline);
            assert_eq!(m.candidate, p.candidate);
        }
    }

    #[test]
    fn mapped_diff_omits_unchanged_contexts() {
        let a = profile(10.0, 40.0);
        let b = profile(10.0, 90.0);
        let mapped = ProfileDiff::compare_mapped(&a, &b, MetricKind::GpuTime);
        // The shared python parent changed (inclusive sums differ), and
        // the batch_norm leaf changed; the conv leaf is identical.
        assert!(mapped.entries().iter().all(|e| e.delta() != 0.0));
        assert!(!mapped
            .entries()
            .iter()
            .any(|e| e.path.ends_with("implicit_gemm")));
        assert!(mapped
            .entries()
            .iter()
            .any(|e| e.path.ends_with("batch_norm_template")));
    }

    #[test]
    fn mapped_diff_reports_one_sided_contexts() {
        let base = profile(100.0, 40.0);
        let mut other_cct = CallingContextTree::new();
        let i = other_cct.interner();
        let only = other_cct.insert_path(&[Frame::gpu_kernel("new_kernel", "m.so", 0x30, &i)]);
        other_cct.attribute(only, MetricKind::GpuTime, 7.0);
        let other = ProfileDb::new(ProfileMeta::default(), other_cct);

        let mapped = ProfileDiff::compare_mapped(&base, &other, MetricKind::GpuTime);
        let new_entry = mapped
            .entries()
            .iter()
            .find(|e| e.path.contains("new_kernel"))
            .unwrap();
        assert_eq!(new_entry.baseline, 0.0);
        assert_eq!(new_entry.candidate, 7.0);
        let gone = mapped
            .entries()
            .iter()
            .find(|e| e.path.ends_with("implicit_gemm"))
            .unwrap();
        assert_eq!(gone.candidate, 0.0);
    }

    #[test]
    fn identical_profiles_have_unit_ratios() {
        let a = profile(10.0, 10.0);
        let b = profile(10.0, 10.0);
        let diff = ProfileDiff::compare(&a, &b, MetricKind::GpuTime);
        assert!(diff.entries().iter().all(|e| e.ratio() == 1.0));
        let text = diff.render_top(3);
        assert!(text.contains("+0.0%"));
        let mapped = ProfileDiff::compare_mapped(&a, &b, MetricKind::GpuTime);
        assert!(mapped.entries().is_empty());
    }
}
