//! Online metric-aggregation throughput: the mechanism that keeps
//! DeepContext's profiles iteration-count-independent (Figure 6c/6d)
//! versus appending to a trace.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

use deepcontext_core::{MetricKind, MetricStat, MetricStore};

fn bench_aggregation(c: &mut Criterion) {
    let mut group = c.benchmark_group("aggregation");
    group
        .sample_size(30)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));

    group.bench_function("stat_add_10k_samples", |b| {
        b.iter(|| {
            let mut stat = MetricStat::new();
            for i in 0..10_000 {
                stat.add(i as f64);
            }
            stat
        });
    });

    group.bench_function("stat_merge_1k_pairs", |b| {
        let mut lhs = MetricStat::new();
        let mut rhs = MetricStat::new();
        for i in 0..100 {
            lhs.add(i as f64);
            rhs.add(i as f64 * 2.0);
        }
        b.iter(|| {
            let mut acc = lhs;
            for _ in 0..1_000 {
                acc.merge(&rhs);
            }
            acc
        });
    });

    group.bench_function("store_mixed_kinds_add", |b| {
        let kinds = [
            MetricKind::GpuTime,
            MetricKind::KernelLaunches,
            MetricKind::CpuTime,
            MetricKind::Warps,
            MetricKind::Occupancy,
        ];
        b.iter(|| {
            let mut store = MetricStore::new();
            for i in 0..2_000 {
                store.add(kinds[i % kinds.len()], i as f64);
            }
            store
        });
    });

    // The contrast baseline: what a trace profiler does per event.
    group.bench_function("trace_append_10k_events", |b| {
        b.iter(|| {
            let mut trace: Vec<(String, f64)> = Vec::new();
            for i in 0..10_000 {
                trace.push((format!("event_{}", i % 32), i as f64));
            }
            trace
        });
    });

    group.finish();
}

criterion_group!(benches, bench_aggregation);
criterion_main!(benches);
