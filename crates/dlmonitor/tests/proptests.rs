//! Property tests for the call-path integration algorithm: for any
//! combination of Python stack, shadow operator stack and native stack,
//! the unified path preserves ordering, loses no operators, and respects
//! the libpython cutover.

use std::sync::Arc;

use deepcontext_core::{FrameKind, Interner, OpPhase};
use dlmonitor::{integrate_call_path, IntegrationInput, ShadowOp};
use proptest::prelude::*;
use sim_runtime::{NativeFrameInfo, PyFrameInfo};

#[derive(Debug, Clone)]
struct Scenario {
    input: IntegrationInput,
    n_python: usize,
    n_operators: usize,
    n_native_tail: usize,
}

fn arb_scenario() -> impl Strategy<Value = Scenario> {
    (
        0usize..6,       // python frames
        0usize..4,       // operators
        0usize..8,       // native frames below the interpreter
        prop::bool::ANY, // whether an interpreter frame exists at all
    )
        .prop_map(|(n_py, n_ops, n_native, has_interp)| {
            let python: Vec<PyFrameInfo> = (0..n_py)
                .map(|i| PyFrameInfo::new("model.py", i as u32, "fn"))
                .collect();
            let mut native = Vec::new();
            let mut native_is_python = Vec::new();
            if has_interp {
                native.push(NativeFrameInfo::new(
                    "libpython3.11.so",
                    0x1,
                    "_PyEval_EvalFrameDefault",
                ));
                native_is_python.push(true);
            }
            let base = native.len();
            for i in 0..n_native {
                native.push(NativeFrameInfo::new(
                    "libtorch.so",
                    0x100 + i as u64,
                    "impl",
                ));
                native_is_python.push(false);
            }
            // Operators anchored at increasing depths within the tail.
            let operators: Vec<ShadowOp> = (0..n_ops)
                .map(|i| ShadowOp {
                    name: Arc::from(format!("aten::op{i}")),
                    phase: if i % 2 == 0 {
                        OpPhase::Forward
                    } else {
                        OpPhase::Backward
                    },
                    seq_id: Some(i as u64),
                    native_depth: base + (i * n_native.max(1) / n_ops.max(1)),
                    cached_python: Vec::new(),
                })
                .collect();
            Scenario {
                input: IntegrationInput {
                    python,
                    operators,
                    native,
                    native_is_python,
                },
                n_python: n_py,
                n_operators: n_ops,
                n_native_tail: n_native,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn integration_preserves_counts_and_order(scenario in arb_scenario()) {
        let interner = Interner::new();
        let path = integrate_call_path(&scenario.input, &interner);
        let kinds: Vec<FrameKind> = path.frames().iter().map(|f| f.kind()).collect();

        // Counts: every python frame, every operator, and every native
        // frame below the cutover appears exactly once.
        let n_py = kinds.iter().filter(|k| **k == FrameKind::Python).count();
        let n_op = kinds.iter().filter(|k| **k == FrameKind::Operator).count();
        let n_native = kinds.iter().filter(|k| **k == FrameKind::Native).count();
        prop_assert_eq!(n_py, scenario.n_python);
        prop_assert_eq!(n_op, scenario.n_operators);
        prop_assert!(n_native <= scenario.n_native_tail + 1);

        // Ordering: all Python frames come before any operator or native
        // frame (Python is always the outermost layer).
        if let Some(first_non_py) = kinds.iter().position(|k| *k != FrameKind::Python) {
            prop_assert!(kinds[first_non_py..].iter().all(|k| *k != FrameKind::Python));
        }

        // Operators retain shadow-stack order.
        let op_labels: Vec<String> = path
            .frames()
            .iter()
            .filter(|f| f.kind() == FrameKind::Operator)
            .map(|f| f.short_label(&interner))
            .collect();
        let mut sorted = op_labels.clone();
        sorted.sort_by_key(|l| {
            l.trim_start_matches("aten::op")
                .trim_end_matches("~bwd")
                .parse::<u64>()
                .unwrap_or(0)
        });
        prop_assert_eq!(op_labels, sorted);
    }

    #[test]
    fn interpreter_frames_never_survive_integration(scenario in arb_scenario()) {
        let interner = Interner::new();
        let path = integrate_call_path(&scenario.input, &interner);
        // The libpython frame must be replaced by the Python source path.
        prop_assert!(path
            .frames()
            .iter()
            .all(|f| !f.label(&interner).contains("_PyEval_EvalFrameDefault")));
    }

    #[test]
    fn integration_is_deterministic(scenario in arb_scenario()) {
        let interner = Interner::new();
        let a = integrate_call_path(&scenario.input, &interner);
        let b = integrate_call_path(&scenario.input, &interner);
        prop_assert_eq!(a, b);
    }
}
