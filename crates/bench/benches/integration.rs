//! Cost of the pure call-path integration merge (paper §4.1, "Call Path
//! Integration") at varying stack depths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;
use std::time::Duration;

use deepcontext_core::{Interner, OpPhase};
use dlmonitor::{integrate_call_path, IntegrationInput, ShadowOp};
use sim_runtime::{NativeFrameInfo, PyFrameInfo};

fn input(py_depth: usize, native_depth: usize) -> IntegrationInput {
    let python: Vec<PyFrameInfo> = (0..py_depth)
        .map(|i| PyFrameInfo::new("model.py", i as u32, "layer"))
        .collect();
    let mut native = vec![NativeFrameInfo::new(
        "libpython3.11.so",
        0x1,
        "_PyEval_EvalFrameDefault",
    )];
    native.extend(
        (0..native_depth).map(|i| NativeFrameInfo::new("libtorch.so", 0x100 + i as u64, "impl")),
    );
    let native_is_python: Vec<bool> = std::iter::once(true)
        .chain(std::iter::repeat_n(false, native_depth))
        .collect();
    IntegrationInput {
        python,
        operators: vec![ShadowOp {
            name: Arc::from("aten::conv2d"),
            phase: OpPhase::Forward,
            seq_id: Some(1),
            native_depth: 1,
            cached_python: Vec::new(),
        }],
        native,
        native_is_python,
    }
}

fn bench_integration(c: &mut Criterion) {
    let mut group = c.benchmark_group("integration");
    group
        .sample_size(30)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));

    let interner = Interner::new();
    for depth in [4usize, 16, 64] {
        let inp = input(depth, depth);
        group.bench_with_input(BenchmarkId::new("merge_depth", depth), &inp, |b, inp| {
            b.iter(|| integrate_call_path(inp, &interner));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_integration);
criterion_main!(benches);
