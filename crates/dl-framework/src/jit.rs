//! The JIT (JAX-like) engine.
//!
//! Models are *traced* into a [`Graph`], *compiled* through passes
//! (canonicalize → elementwise fusion → kernel assignment), and the
//! compiled artifact is executed repeatedly. Two properties matter for
//! DeepContext (paper §4.1, Figure 4):
//!
//! 1. compilation fires interceptable events, and callbacks around each
//!    *post-fusion* operator are available at runtime;
//! 2. the fusion pass records the **fused → original** operator mapping,
//!    with the *trace-time* (compile-time) Python call path of every
//!    original operator — because at runtime the original call paths no
//!    longer exist.

use std::collections::HashMap;
use std::sync::Arc;

use deepcontext_core::{OpPhase, TimeNs};
use sim_gpu::{DeviceId, InstructionProfile, KernelDesc, LaunchConfig, StreamId};
use sim_runtime::{CpuWork, NativeFrameGuard, NativeFrameInfo, PyFrameInfo};

use crate::callbacks::{GraphEvent, OpEvent, Site};
use crate::core::FrameworkCore;
use crate::error::FrameworkError;
use crate::ops::{backward_ops, Op};
use crate::tensor::TensorMeta;

/// Identifier of a node within one traced graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(pub usize);

/// One traced operator.
#[derive(Debug, Clone)]
pub struct GraphNode {
    /// Node id (position in trace order).
    pub id: NodeId,
    /// The operator.
    pub op: Op,
    /// Input tensors.
    pub inputs: Vec<TensorMeta>,
    /// Output tensor.
    pub output: TensorMeta,
    /// Forward or (synthesized) backward.
    pub phase: OpPhase,
    /// Python call path captured when the op was traced — the "actual call
    /// path" of Figure 4.
    pub trace_path: Vec<PyFrameInfo>,
}

/// A traced, uncompiled computation graph.
#[derive(Debug, Clone)]
pub struct Graph {
    name: Arc<str>,
    nodes: Vec<GraphNode>,
}

impl Graph {
    /// Graph name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Traced nodes in order.
    pub fn nodes(&self) -> &[GraphNode] {
        &self.nodes
    }
}

/// Records operators during tracing.
#[derive(Debug)]
pub struct Tracer {
    core: Arc<FrameworkCore>,
    nodes: Vec<GraphNode>,
}

impl Tracer {
    /// Traces one operator, returning its (abstract) output.
    ///
    /// # Errors
    ///
    /// Returns shape-inference failures; requires a bound thread (for the
    /// trace-time Python call path).
    pub fn op(&mut self, op: Op, inputs: &[TensorMeta]) -> Result<TensorMeta, FrameworkError> {
        self.record(op, inputs, OpPhase::Forward)
    }

    /// Synthesizes the backward pass for every differentiable forward node
    /// traced so far, in reverse order (the `jax.grad` analogue).
    ///
    /// # Errors
    ///
    /// Returns shape-inference failures from backward operators.
    pub fn emit_backward(&mut self) -> Result<(), FrameworkError> {
        let forward: Vec<GraphNode> = self
            .nodes
            .iter()
            .filter(|n| n.phase == OpPhase::Forward && n.op.kind.differentiable())
            .cloned()
            .collect();
        for node in forward.iter().rev() {
            for (bop, binputs) in backward_ops(&node.op, &node.inputs, &node.output) {
                self.record(bop, &binputs, OpPhase::Backward)?;
            }
        }
        Ok(())
    }

    fn record(
        &mut self,
        op: Op,
        inputs: &[TensorMeta],
        phase: OpPhase,
    ) -> Result<TensorMeta, FrameworkError> {
        let thread = self.core.current_thread()?;
        let output = op.infer_shape(inputs)?;
        // Tracing itself costs a little host time.
        self.core
            .env()
            .do_cpu_work(&thread, CpuWork::compute(TimeNs(500)));
        let id = NodeId(self.nodes.len());
        self.nodes.push(GraphNode {
            id,
            op,
            inputs: inputs.to_vec(),
            output: output.clone(),
            phase,
            trace_path: thread.python().walk(),
        });
        Ok(output)
    }
}

/// The fused→original operator mapping recorded during compilation
/// (paper Figure 4).
#[derive(Debug, Clone, Default)]
pub struct FusionMapping {
    map: HashMap<String, Vec<(String, Vec<PyFrameInfo>)>>,
}

impl FusionMapping {
    /// The original operators (name + trace-time Python call path) behind
    /// a compiled operator.
    pub fn origins(&self, compiled_name: &str) -> Option<&[(String, Vec<PyFrameInfo>)]> {
        self.map.get(compiled_name).map(Vec::as_slice)
    }

    /// All compiled operator names with recorded origins.
    pub fn compiled_names(&self) -> impl Iterator<Item = &str> {
        self.map.keys().map(String::as_str)
    }

    /// Number of compiled operators with origins.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the mapping is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[derive(Debug)]
struct CompiledItem {
    name: Arc<str>,
    phase: OpPhase,
    kernels: Vec<Arc<KernelDesc>>,
    /// Placement from the traced op's attributes; `None` falls back to
    /// the core's current device/stream at execution time.
    device: Option<DeviceId>,
    stream: Option<StreamId>,
}

/// A compiled, executable graph.
#[derive(Debug)]
pub struct CompiledGraph {
    name: Arc<str>,
    core: Arc<FrameworkCore>,
    items: Vec<CompiledItem>,
    mapping: FusionMapping,
    original_ops: usize,
}

impl CompiledGraph {
    /// Graph name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of operators before fusion.
    pub fn original_op_count(&self) -> usize {
        self.original_ops
    }

    /// Number of compiled (post-fusion) operators.
    pub fn compiled_op_count(&self) -> usize {
        self.items.len()
    }

    /// Total kernels launched per execution.
    pub fn kernel_count(&self) -> usize {
        self.items.iter().map(|i| i.kernels.len()).sum()
    }

    /// The fused→original mapping.
    pub fn mapping(&self) -> &FusionMapping {
        &self.mapping
    }

    /// Executes the compiled graph once.
    ///
    /// # Errors
    ///
    /// Propagates GPU failures; requires a bound thread.
    pub fn execute(&self) -> Result<(), FrameworkError> {
        let thread = self.core.current_thread()?;
        let exec_fn = self
            .core
            .native_fn("xla::gpu::GpuExecutable::ExecuteAsyncOnStream");
        let _g = NativeFrameGuard::enter(
            thread.native(),
            NativeFrameInfo::new(&exec_fn.library, exec_fn.addr, &exec_fn.name),
        );
        for item in &self.items {
            self.core.callbacks().fire_op(&OpEvent {
                name: Arc::clone(&item.name),
                phase: item.phase,
                seq_id: None,
                site: Site::Enter,
                thread: Arc::clone(&thread),
                inputs: Vec::new(),
            });
            // Compiled executors have little per-op host overhead.
            self.core
                .env()
                .do_cpu_work(&thread, CpuWork::compute(TimeNs(800)));
            let device = item.device.unwrap_or_else(|| self.core.device());
            let stream = item.stream.unwrap_or_else(|| self.core.stream());
            for kernel in &item.kernels {
                self.core
                    .gpu()
                    .launch_kernel(device, stream, Arc::clone(kernel))?;
            }
            self.core.callbacks().fire_op(&OpEvent {
                name: Arc::clone(&item.name),
                phase: item.phase,
                seq_id: None,
                site: Site::Exit,
                thread: Arc::clone(&thread),
                inputs: Vec::new(),
            });
        }
        Ok(())
    }
}

/// The JIT engine.
///
/// # Examples
///
/// ```
/// use dl_framework::{FrameworkCore, JitEngine, Op, OpKind, TensorMeta};
/// use deepcontext_core::{ThreadRole, TimeNs};
/// use sim_gpu::{DeviceId, DeviceSpec, GpuRuntime};
/// use sim_runtime::{RuntimeEnv, ThreadRegistry};
///
/// let env = RuntimeEnv::new();
/// let gpu = GpuRuntime::new(env.clock().clone(), vec![DeviceSpec::a100_sxm()]);
/// let core = FrameworkCore::new(env.clone(), gpu, DeviceId(0),
///     "/lib/libjax.so", "libxla.so", TimeNs(1_000));
/// let jit = JitEngine::new(core);
///
/// let main = env.threads().spawn(ThreadRole::Main);
/// let _bind = ThreadRegistry::bind_current(&main);
///
/// let graph = jit.trace("step", |tr| {
///     let x = TensorMeta::new([256, 256]);
///     let y = tr.op(Op::new(OpKind::Mul), &[x.clone(), x.clone()])?;
///     let z = tr.op(Op::new(OpKind::Add), &[y.clone(), x])?;
///     tr.op(Op::new(OpKind::Relu), &[z])?;
///     Ok(())
/// })?;
/// let compiled = jit.compile(&graph)?;
/// // Three elementwise ops fused into one.
/// assert_eq!(compiled.compiled_op_count(), 1);
/// compiled.execute()?;
/// # Ok::<(), dl_framework::FrameworkError>(())
/// ```
#[derive(Debug)]
pub struct JitEngine {
    core: Arc<FrameworkCore>,
}

impl JitEngine {
    /// Creates a JIT engine over the shared core.
    pub fn new(core: Arc<FrameworkCore>) -> Arc<Self> {
        Arc::new(JitEngine { core })
    }

    /// The shared core.
    pub fn core(&self) -> &Arc<FrameworkCore> {
        &self.core
    }

    /// Traces `f` into a graph.
    ///
    /// # Errors
    ///
    /// Propagates tracing failures from `f`.
    pub fn trace(
        &self,
        name: &str,
        f: impl FnOnce(&mut Tracer) -> Result<(), FrameworkError>,
    ) -> Result<Graph, FrameworkError> {
        let mut tracer = Tracer {
            core: Arc::clone(&self.core),
            nodes: Vec::new(),
        };
        f(&mut tracer)?;
        Ok(Graph {
            name: Arc::from(name),
            nodes: tracer.nodes,
        })
    }

    /// Compiles a traced graph: canonicalize, fuse elementwise chains,
    /// assign kernels. Fires [`GraphEvent`]s around the passes.
    ///
    /// # Errors
    ///
    /// Requires a bound thread (compilation consumes host time).
    pub fn compile(&self, graph: &Graph) -> Result<CompiledGraph, FrameworkError> {
        let thread = self.core.current_thread()?;
        self.core.callbacks().fire_graph(&GraphEvent::CompileStart {
            graph: Arc::clone(&graph.name),
        });

        // Pass 1: canonicalize — drop metadata-only ops.
        let nodes: Vec<&GraphNode> = graph
            .nodes
            .iter()
            .filter(|n| n.op.kind != crate::ops::OpKind::Reshape)
            .collect();

        // Compilation cost scales with graph size.
        self.core.env().do_cpu_work(
            &thread,
            CpuWork::compute(TimeNs(20_000 * graph.nodes.len().max(1) as u64)),
        );

        // Pass 2: fuse maximal runs of same-shape elementwise ops, and
        // epilogue-fuse lone elementwise ops into their producer (the
        // conv→norm→relu pattern), as XLA does. Fusion groups are
        // partitioned by `(device, stream)` placement: a fused kernel is
        // one launch on one stream, so ops bound for different placements
        // must never share a group (they would silently serialize a
        // multi-stream model onto one stream).
        struct Pending {
            name: Arc<str>,
            phase: OpPhase,
            kernels: Vec<KernelDesc>,
            out_numel: usize,
            device: Option<DeviceId>,
            stream: Option<StreamId>,
        }
        let placement = |n: &GraphNode| (n.op.attrs.device, n.op.attrs.stream);
        let mut pending: Vec<Pending> = Vec::new();
        let mut mapping = FusionMapping::default();
        let mut fusion_idx = 0usize;
        let mut i = 0;
        while i < nodes.len() {
            let node = nodes[i];
            let mut j = i;
            if node.op.kind.is_elementwise() {
                while j + 1 < nodes.len()
                    && nodes[j + 1].op.kind.is_elementwise()
                    && nodes[j + 1].phase == node.phase
                    && nodes[j + 1].output.numel() == node.output.numel()
                    && placement(nodes[j + 1]) == placement(node)
                {
                    j += 1;
                }
            }
            if j > i {
                // Fused group [i..=j].
                let members = &nodes[i..=j];
                let fused_name: Arc<str> = Arc::from(format!("fusion.{fusion_idx}"));
                fusion_idx += 1;
                let kernel = self.build_fused_kernel(&fused_name, members);
                mapping.map.insert(
                    fused_name.to_string(),
                    members
                        .iter()
                        .map(|m| (m.op.name().to_owned(), m.trace_path.clone()))
                        .collect(),
                );
                pending.push(Pending {
                    name: fused_name,
                    phase: node.phase,
                    kernels: vec![kernel],
                    out_numel: node.output.numel(),
                    device: node.op.attrs.device,
                    stream: node.op.attrs.stream,
                });
            } else if node.op.kind.is_elementwise()
                && pending
                    .last()
                    .map(|p| {
                        p.phase == node.phase
                            && p.out_numel == node.output.numel()
                            && (p.device, p.stream) == placement(node)
                            && !p.kernels.is_empty()
                    })
                    .unwrap_or(false)
            {
                // Epilogue fusion: fold the lone map into the producer's
                // last kernel — the arithmetic rides along, the extra
                // memory round-trip disappears.
                let prev = pending.last_mut().expect("checked above");
                let last = prev.kernels.last_mut().expect("checked above");
                last.flops += node.output.numel() as f64;
                mapping
                    .map
                    .entry(prev.name.to_string())
                    .or_default()
                    .push((node.op.name().to_owned(), node.trace_path.clone()));
            } else {
                // Unfused operator keeps its own kernels (and still records
                // its trace path as its "origin").
                let kernels =
                    node.op
                        .lower(&node.inputs, &node.output, node.phase, self.core.kernels());
                mapping
                    .map
                    .entry(node.op.name().to_owned())
                    .or_default()
                    .push((node.op.name().to_owned(), node.trace_path.clone()));
                pending.push(Pending {
                    name: Arc::from(node.op.name()),
                    phase: node.phase,
                    kernels,
                    out_numel: node.output.numel(),
                    device: node.op.attrs.device,
                    stream: node.op.attrs.stream,
                });
            }
            i = j + 1;
        }
        let items: Vec<CompiledItem> = pending
            .into_iter()
            .map(|p| CompiledItem {
                name: p.name,
                phase: p.phase,
                kernels: p.kernels.into_iter().map(Arc::new).collect(),
                device: p.device,
                stream: p.stream,
            })
            .collect();

        self.core.callbacks().fire_graph(&GraphEvent::CompileEnd {
            graph: Arc::clone(&graph.name),
            original_ops: graph.nodes.len(),
            compiled_ops: items.len(),
        });

        Ok(CompiledGraph {
            name: Arc::clone(&graph.name),
            core: Arc::clone(&self.core),
            items,
            mapping,
            original_ops: graph.nodes.len(),
        })
    }

    /// One fused kernel for an elementwise chain: arithmetic adds up, but
    /// intermediate tensors never touch memory — the XLA advantage behind
    /// the §6.6 JAX-vs-PyTorch comparison.
    fn build_fused_kernel(&self, name: &str, members: &[&GraphNode]) -> KernelDesc {
        let out = &members.last().expect("non-empty fusion").output;
        let elems = out.numel() as f64;
        let esize = out.dtype.size_bytes() as f64;
        let flops: f64 = elems * members.len() as f64;
        // Distinct external inputs of the chain + one output.
        let external_inputs = members.first().map(|m| m.inputs.len().max(1)).unwrap_or(1) as f64;
        let bytes = (external_inputs + 1.0) * elems * esize;
        self.core
            .kernels()
            .kernel(name, LaunchConfig::new(grid_for(out.numel()), 256))
            .with_flops(flops)
            .with_bytes(bytes)
            .with_registers(64)
            .with_profile(InstructionProfile::memory_bound())
    }
}

fn grid_for(numel: usize) -> u32 {
    numel.div_ceil(1024).clamp(1, 1 << 20) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::OpKind;
    use deepcontext_core::ThreadRole;
    use parking_lot::Mutex;
    use sim_gpu::{DeviceId, DeviceSpec, GpuRuntime};
    use sim_runtime::{RuntimeEnv, ThreadRegistry};

    fn jit() -> (Arc<JitEngine>, RuntimeEnv) {
        let env = RuntimeEnv::new();
        let gpu = GpuRuntime::new(env.clock().clone(), vec![DeviceSpec::a100_sxm()]);
        let core = FrameworkCore::new(
            env.clone(),
            gpu,
            DeviceId(0),
            "/lib/libjax.so",
            "libxla.so",
            TimeNs(1_000),
        );
        (JitEngine::new(core), env)
    }

    fn mlp_graph(jit: &JitEngine) -> Graph {
        jit.trace("mlp", |tr| {
            let x = TensorMeta::new([64, 128]);
            let w = TensorMeta::new([128, 128]);
            let h = tr.op(Op::new(OpKind::MatMul), &[x, w])?;
            let a = tr.op(Op::new(OpKind::Add), &[h.clone(), h.clone()])?;
            let b = tr.op(Op::new(OpKind::Mul), &[a.clone(), a.clone()])?;
            tr.op(Op::new(OpKind::Relu), &[b])?;
            Ok(())
        })
        .unwrap()
    }

    #[test]
    fn fusion_merges_elementwise_chain() {
        let (jit, env) = jit();
        let t = env.threads().spawn(ThreadRole::Main);
        let _bind = ThreadRegistry::bind_current(&t);
        let graph = mlp_graph(&jit);
        assert_eq!(graph.nodes().len(), 4);
        let compiled = jit.compile(&graph).unwrap();
        // matmul + fused(add, mul, relu).
        assert_eq!(compiled.compiled_op_count(), 2);
        assert_eq!(compiled.original_op_count(), 4);
        let origins = compiled.mapping().origins("fusion.0").unwrap();
        let names: Vec<_> = origins.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["aten::add", "aten::mul", "aten::relu"]);
    }

    #[test]
    fn fused_kernel_moves_less_memory_than_eager_equivalent() {
        let (jit, env) = jit();
        let t = env.threads().spawn(ThreadRole::Main);
        let _bind = ThreadRegistry::bind_current(&t);
        let graph = jit
            .trace("chain", |tr| {
                let x = TensorMeta::new([1 << 20]);
                let a = tr.op(Op::new(OpKind::Mul), &[x.clone(), x.clone()])?;
                let b = tr.op(Op::new(OpKind::Add), &[a.clone(), a.clone()])?;
                tr.op(Op::new(OpKind::Relu), &[b])?;
                Ok(())
            })
            .unwrap();
        let compiled = jit.compile(&graph).unwrap();
        assert_eq!(compiled.kernel_count(), 1);
        // Eager: 3 kernels * ~3 passes over memory. Fused: 3 passes total.
        let elems = (1usize << 20) as f64 * 4.0;
        let fused_bytes = compiled.items[0].kernels[0].bytes;
        assert!(fused_bytes <= 3.0 * elems + 1.0);
    }

    #[test]
    fn trace_records_python_paths_at_trace_time() {
        let (jit, env) = jit();
        let t = env.threads().spawn(ThreadRole::Main);
        let _bind = ThreadRegistry::bind_current(&t);
        let core = Arc::clone(jit.core());
        let graph = jit
            .trace("with_py", |tr| {
                let _scope = core.python().frame(&t, "model.py", 33, "apply_layer");
                let x = TensorMeta::new([16]);
                tr.op(Op::new(OpKind::Relu), &[x])?;
                Ok(())
            })
            .unwrap();
        let path = &graph.nodes()[0].trace_path;
        assert_eq!(path.len(), 1);
        assert_eq!(path[0].function.as_ref(), "apply_layer");
        assert_eq!(path[0].line, 33);
    }

    #[test]
    fn compile_fires_graph_events() {
        let (jit, env) = jit();
        let t = env.threads().spawn(ThreadRole::Main);
        let _bind = ThreadRegistry::bind_current(&t);
        let events = Arc::new(Mutex::new(Vec::new()));
        let ev = Arc::clone(&events);
        jit.core().callbacks().on_graph(move |e| {
            ev.lock().push(match e {
                GraphEvent::CompileStart { .. } => "start".to_owned(),
                GraphEvent::CompileEnd {
                    original_ops,
                    compiled_ops,
                    ..
                } => format!("end:{original_ops}->{compiled_ops}"),
            });
        });
        let graph = mlp_graph(&jit);
        jit.compile(&graph).unwrap();
        let ev = events.lock().clone();
        assert_eq!(ev, vec!["start".to_owned(), "end:4->2".to_owned()]);
    }

    #[test]
    fn execute_fires_op_events_and_launches_kernels() {
        let (jit, env) = jit();
        let t = env.threads().spawn(ThreadRole::Main);
        let _bind = ThreadRegistry::bind_current(&t);
        let graph = mlp_graph(&jit);
        let compiled = jit.compile(&graph).unwrap();

        let names = Arc::new(Mutex::new(Vec::new()));
        let n = Arc::clone(&names);
        jit.core().callbacks().on_op(move |e| {
            if e.site == Site::Enter {
                n.lock().push(e.name.to_string());
            }
        });
        compiled.execute().unwrap();
        assert_eq!(
            *names.lock(),
            vec!["aten::matmul".to_owned(), "fusion.0".to_owned()]
        );
        assert_eq!(
            jit.core().gpu().kernel_count(DeviceId(0)).unwrap(),
            compiled.kernel_count() as u64
        );
    }

    #[test]
    fn emit_backward_appends_reverse_ops() {
        let (jit, env) = jit();
        let t = env.threads().spawn(ThreadRole::Main);
        let _bind = ThreadRegistry::bind_current(&t);
        let graph = jit
            .trace("train", |tr| {
                let x = TensorMeta::new([32, 64]);
                let w = TensorMeta::new([64, 16]);
                let h = tr.op(Op::new(OpKind::MatMul), &[x, w])?;
                tr.op(Op::new(OpKind::Relu), &[h])?;
                tr.emit_backward()?;
                Ok(())
            })
            .unwrap();
        let phases: Vec<_> = graph.nodes().iter().map(|n| n.phase).collect();
        assert_eq!(phases.iter().filter(|p| **p == OpPhase::Forward).count(), 2);
        // relu backward (1) + matmul backward (2 matmuls).
        assert_eq!(
            phases.iter().filter(|p| **p == OpPhase::Backward).count(),
            3
        );
        // Backward of the last forward op comes first.
        let first_bwd = graph
            .nodes()
            .iter()
            .find(|n| n.phase == OpPhase::Backward)
            .unwrap();
        assert_eq!(first_bwd.op.name(), "aten::relu");
    }

    #[test]
    fn fusion_partitions_by_stream_placement() {
        let (jit, env) = jit();
        let t = env.threads().spawn(ThreadRole::Main);
        let _bind = ThreadRegistry::bind_current(&t);
        // Four same-shape elementwise ops, alternating streams: without
        // placement partitioning they would fuse into one kernel on one
        // stream, serializing the model's parallelism.
        let graph = jit
            .trace("two_streams", |tr| {
                let x = TensorMeta::new([1 << 16]);
                for stream in [0u32, 1, 0, 1] {
                    tr.op(
                        Op::new(OpKind::Relu).on_stream(StreamId(stream)),
                        std::slice::from_ref(&x),
                    )?;
                }
                Ok(())
            })
            .unwrap();
        let compiled = jit.compile(&graph).unwrap();
        assert_eq!(
            compiled.compiled_op_count(),
            4,
            "alternating placements must not fuse"
        );
        // Same streams back to back still fuse within their partition.
        let graph = jit
            .trace("grouped", |tr| {
                let x = TensorMeta::new([1 << 16]);
                for stream in [0u32, 0, 1, 1] {
                    tr.op(
                        Op::new(OpKind::Relu).on_stream(StreamId(stream)),
                        std::slice::from_ref(&x),
                    )?;
                }
                Ok(())
            })
            .unwrap();
        let compiled = jit.compile(&graph).unwrap();
        assert_eq!(compiled.compiled_op_count(), 2, "per-stream runs fuse");
    }

    #[test]
    fn execute_honours_op_placement() {
        let env = RuntimeEnv::new();
        let gpu = GpuRuntime::new(
            env.clock().clone(),
            vec![DeviceSpec::a100_sxm(), DeviceSpec::a100_sxm()],
        );
        let core = FrameworkCore::new(
            env.clone(),
            gpu,
            DeviceId(0),
            "/lib/libjax.so",
            "libxla.so",
            TimeNs(1_000),
        );
        let jit = JitEngine::new(core);
        jit.core().gpu().ensure_streams(DeviceId(1), 3).unwrap();
        let t = env.threads().spawn(ThreadRole::Main);
        let _bind = ThreadRegistry::bind_current(&t);
        let graph = jit
            .trace("cross_device", |tr| {
                let x = TensorMeta::new([1 << 12]);
                tr.op(Op::new(OpKind::Relu), std::slice::from_ref(&x))?;
                tr.op(
                    Op::new(OpKind::Add)
                        .on_device(DeviceId(1))
                        .on_stream(StreamId(2)),
                    &[x.clone(), x],
                )?;
                Ok(())
            })
            .unwrap();
        let compiled = jit.compile(&graph).unwrap();
        assert_eq!(
            compiled.compiled_op_count(),
            2,
            "cross-device ops must not fuse"
        );
        compiled.execute().unwrap();
        assert_eq!(jit.core().gpu().kernel_count(DeviceId(0)).unwrap(), 1);
        assert_eq!(
            jit.core().gpu().kernel_count(DeviceId(1)).unwrap(),
            1,
            "placed op launches on its own device"
        );
    }

    #[test]
    fn reshape_is_canonicalized_away() {
        let (jit, env) = jit();
        let t = env.threads().spawn(ThreadRole::Main);
        let _bind = ThreadRegistry::bind_current(&t);
        let graph = jit
            .trace("g", |tr| {
                let x = TensorMeta::new([64]);
                let r = tr.op(Op::new(OpKind::Reshape).with_out_shape([8, 8]), &[x])?;
                tr.op(Op::new(OpKind::Relu), &[r])?;
                Ok(())
            })
            .unwrap();
        let compiled = jit.compile(&graph).unwrap();
        assert_eq!(compiled.compiled_op_count(), 1);
    }
}
