//! Reproduces the §6.7 case study: fine-grained instruction sampling of
//! the Llama3 decode step, surfacing constant-memory and math-dependency
//! stalls inside the `aten::to` cast kernels of `LlamaRMSNorm`.
//!
//! ```text
//! cargo run --release --example fine_grained_stalls
//! ```

use deepcontext::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bed = TestBed::new(DeviceSpec::a100_sxm());
    let monitor = DlMonitor::init(bed.env(), Interner::new());
    monitor.attach_framework(bed.eager().core().callbacks());
    monitor.attach_gpu(bed.gpu());

    // Enable instruction sampling (the fine-grained path of §4.2).
    let config = ProfilerConfig {
        instruction_sampling: Some(SamplingConfig {
            period: TimeNs(500),
            max_samples_per_kernel: 2048,
        }),
        ..ProfilerConfig::deepcontext_native()
    };
    let profiler = Profiler::attach(config, bed.env(), &monitor, bed.gpu());

    bed.run_eager(&Llama3, &WorkloadOptions::default(), 3)?;
    profiler.flush();
    println!(
        "collected {} instruction samples",
        profiler.stats().instruction_samples
    );

    let db = profiler.finish(ProfileMeta {
        workload: "llama3-8b".into(),
        framework: "eager".into(),
        platform: "nvidia-a100".into(),
        iterations: 3,
        ..Default::default()
    });

    // Stall breakdown over the whole run.
    println!("\nstall breakdown (all kernels):");
    let total = db.cct().total(MetricKind::InstructionSamples);
    for reason in StallReason::ALL {
        let n = db.cct().total(MetricKind::Stall(reason));
        if n > 0.0 {
            println!("  {:<22}{:>6.1}%", reason.to_string(), n / total * 100.0);
        }
    }

    // The analyzer's fine-grained stall findings.
    let report = Analyzer::with_default_rules().analyze(&db);
    println!("\nfine-grained stall analysis:");
    for issue in report.by_rule("fine-grained-stall").iter().take(4) {
        println!("  {}", issue.message);
        println!("    suggestion: {}", issue.suggestion);
    }

    println!(
        "\n(the fix — vectorized/fused casts — removes {} standalone cast kernels per decode)",
        64
    );
    Ok(())
}
