//! Unified multi-layer frames and call paths.
//!
//! DeepContext's key innovation (paper §4.1, "Call Path Integration") is a
//! single call path whose frames span every layer of the deep learning
//! stack. [`Frame`] models one entry of such a path; [`CallPath`] is the
//! root-to-leaf sequence handed to the calling context tree.

use std::fmt;

use crate::interner::{Interner, Sym};

/// Which layer of the software stack a frame belongs to.
///
/// Mirrors the columns of the paper's Table 1 (Python context, framework
/// context, C++ context, device context) plus the structural `Root`,
/// `Thread` and fine-grained `Instruction` levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FrameKind {
    /// The synthetic process root.
    Root,
    /// A CPU thread boundary (used for unmerged per-thread views).
    Thread,
    /// A Python interpreter frame.
    Python,
    /// A deep-learning framework operator (e.g. `aten::matmul`).
    Operator,
    /// A native C/C++ frame.
    Native,
    /// A GPU runtime API call (kernel launch, memcpy, malloc...).
    GpuApi,
    /// A device kernel.
    GpuKernel,
    /// A sampled instruction PC within a kernel (fine-grained metrics).
    Instruction,
}

impl FrameKind {
    /// All kinds, ordered from coarse to fine.
    pub const ALL: [FrameKind; 8] = [
        FrameKind::Root,
        FrameKind::Thread,
        FrameKind::Python,
        FrameKind::Operator,
        FrameKind::Native,
        FrameKind::GpuApi,
        FrameKind::GpuKernel,
        FrameKind::Instruction,
    ];
}

impl fmt::Display for FrameKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FrameKind::Root => "root",
            FrameKind::Thread => "thread",
            FrameKind::Python => "python",
            FrameKind::Operator => "operator",
            FrameKind::Native => "native",
            FrameKind::GpuApi => "gpu_api",
            FrameKind::GpuKernel => "gpu_kernel",
            FrameKind::Instruction => "instruction",
        };
        f.write_str(s)
    }
}

/// The role a CPU thread plays in a deep learning framework.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ThreadRole {
    /// The main (forward) Python thread.
    #[default]
    Main,
    /// A dedicated autograd backward thread (paper §4.1, "Forward and
    /// backward operator association").
    Backward,
    /// A data-loader worker thread.
    DataLoader,
    /// Any other helper thread.
    Worker,
}

impl fmt::Display for ThreadRole {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ThreadRole::Main => "main",
            ThreadRole::Backward => "backward",
            ThreadRole::DataLoader => "dataloader",
            ThreadRole::Worker => "worker",
        };
        f.write_str(s)
    }
}

/// Whether an operator frame was recorded in the forward or backward phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum OpPhase {
    /// Forward execution (or inference).
    #[default]
    Forward,
    /// Backward (gradient) execution.
    Backward,
}

impl fmt::Display for OpPhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpPhase::Forward => f.write_str("forward"),
            OpPhase::Backward => f.write_str("backward"),
        }
    }
}

/// One frame of a unified call path.
///
/// Construct frames with the typed constructors ([`Frame::python`],
/// [`Frame::operator`], [`Frame::native`], ...) so that collapse keys stay
/// consistent with the paper's rules (§4.2 "Calling Context Tree"):
///
/// * native / GPU API / GPU kernel frames collapse on (library, PC),
/// * Python frames collapse on (file, line),
/// * operator frames collapse on (name, phase).
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub enum Frame {
    /// The synthetic process root.
    #[default]
    Root,
    /// A CPU thread boundary.
    Thread {
        /// Simulated OS thread id.
        tid: u64,
        /// What the thread does.
        role: ThreadRole,
    },
    /// A Python interpreter frame.
    Python {
        /// Source file.
        file: Sym,
        /// Line number of the call site.
        line: u32,
        /// Enclosing function name (display only; not part of the key).
        function: Sym,
    },
    /// A deep-learning operator frame maintained by the shadow stack.
    Operator {
        /// Operator name, e.g. `aten::index`.
        name: Sym,
        /// Forward or backward instance.
        phase: OpPhase,
        /// Autograd sequence id linking forward and backward instances
        /// (display/association only; not part of the key).
        seq_id: Option<u64>,
    },
    /// A native C/C++ frame.
    Native {
        /// Containing shared library.
        library: Sym,
        /// Program counter.
        pc: u64,
        /// Resolved symbol (display only; not part of the key).
        symbol: Sym,
    },
    /// A GPU runtime API call.
    GpuApi {
        /// API name, e.g. `cuLaunchKernel`.
        name: Sym,
        /// Library providing the API (part of the key with `pc`).
        library: Sym,
        /// Call-site program counter.
        pc: u64,
    },
    /// A device kernel frame.
    GpuKernel {
        /// Demangled kernel name.
        name: Sym,
        /// Module ("library") the kernel comes from.
        module: Sym,
        /// Kernel entry address.
        pc: u64,
    },
    /// A sampled instruction inside a kernel.
    Instruction {
        /// Instruction PC relative to the kernel entry.
        pc: u64,
    },
}

impl Frame {
    // The typed constructors intern through the caller's thread-local
    // cache (`Interner::intern_cached`): producers (DLMonitor's event
    // builders, the sim-GPU runtime) rebuild frames for the same hot
    // names every training step, so the striped locks are skipped on
    // everything but the first sighting per thread.

    /// Creates a Python frame.
    pub fn python(file: &str, line: u32, function: &str, interner: &Interner) -> Self {
        Frame::Python {
            file: interner.intern_cached(file),
            line,
            function: interner.intern_cached(function),
        }
    }

    /// Creates a forward operator frame.
    pub fn operator(name: &str, interner: &Interner) -> Self {
        Frame::Operator {
            name: interner.intern_cached(name),
            phase: OpPhase::Forward,
            seq_id: None,
        }
    }

    /// Creates an operator frame with an explicit phase and sequence id.
    pub fn operator_with(
        name: &str,
        phase: OpPhase,
        seq_id: Option<u64>,
        interner: &Interner,
    ) -> Self {
        Frame::Operator {
            name: interner.intern_cached(name),
            phase,
            seq_id,
        }
    }

    /// Creates a native frame.
    pub fn native(library: &str, pc: u64, symbol: &str, interner: &Interner) -> Self {
        Frame::Native {
            library: interner.intern_cached(library),
            pc,
            symbol: interner.intern_cached(symbol),
        }
    }

    /// Creates a GPU API frame.
    pub fn gpu_api(name: &str, library: &str, pc: u64, interner: &Interner) -> Self {
        Frame::GpuApi {
            name: interner.intern_cached(name),
            library: interner.intern_cached(library),
            pc,
        }
    }

    /// Creates a GPU kernel frame.
    pub fn gpu_kernel(name: &str, module: &str, pc: u64, interner: &Interner) -> Self {
        Frame::GpuKernel {
            name: interner.intern_cached(name),
            module: interner.intern_cached(module),
            pc,
        }
    }

    /// Creates an instruction frame.
    pub fn instruction(pc: u64) -> Self {
        Frame::Instruction { pc }
    }

    /// Creates a thread frame.
    pub fn thread(tid: u64, role: ThreadRole) -> Self {
        Frame::Thread { tid, role }
    }

    /// The interned kernel name when this is a device-kernel frame.
    /// Attribution taps use this to reuse the `Sym` the launch path
    /// already interned instead of re-interning the activity record's
    /// name string.
    pub fn gpu_kernel_name(&self) -> Option<Sym> {
        match self {
            Frame::GpuKernel { name, .. } => Some(*name),
            _ => None,
        }
    }

    /// Re-creates this frame with its strings interned in `to` instead
    /// of `from`. Identity (modulo `Sym` values) for frames that carry
    /// no interned strings. This is what lets trees with *different*
    /// interners be merged — e.g. two profiles loaded independently
    /// from a store — since `Sym`s are only meaningful within the
    /// interner that produced them.
    pub fn reintern(&self, from: &Interner, to: &Interner) -> Frame {
        let re = |s: Sym| to.intern(&from.resolve(s));
        match *self {
            Frame::Root => Frame::Root,
            Frame::Thread { tid, role } => Frame::Thread { tid, role },
            Frame::Python {
                file,
                line,
                function,
            } => Frame::Python {
                file: re(file),
                line,
                function: re(function),
            },
            Frame::Operator {
                name,
                phase,
                seq_id,
            } => Frame::Operator {
                name: re(name),
                phase,
                seq_id,
            },
            Frame::Native {
                library,
                pc,
                symbol,
            } => Frame::Native {
                library: re(library),
                pc,
                symbol: re(symbol),
            },
            Frame::GpuApi { name, library, pc } => Frame::GpuApi {
                name: re(name),
                library: re(library),
                pc,
            },
            Frame::GpuKernel { name, module, pc } => Frame::GpuKernel {
                name: re(name),
                module: re(module),
                pc,
            },
            Frame::Instruction { pc } => Frame::Instruction { pc },
        }
    }

    /// The layer this frame belongs to.
    pub fn kind(&self) -> FrameKind {
        match self {
            Frame::Root => FrameKind::Root,
            Frame::Thread { .. } => FrameKind::Thread,
            Frame::Python { .. } => FrameKind::Python,
            Frame::Operator { .. } => FrameKind::Operator,
            Frame::Native { .. } => FrameKind::Native,
            Frame::GpuApi { .. } => FrameKind::GpuApi,
            Frame::GpuKernel { .. } => FrameKind::GpuKernel,
            Frame::Instruction { .. } => FrameKind::Instruction,
        }
    }

    /// The collapse key under which the calling context tree unifies frames
    /// that refer to the same location (paper §4.2).
    pub fn key(&self) -> FrameKey {
        match *self {
            Frame::Root => FrameKey::Root,
            Frame::Thread { tid, role } => FrameKey::Thread { tid, role },
            Frame::Python { file, line, .. } => FrameKey::Python { file, line },
            Frame::Operator { name, phase, .. } => FrameKey::Operator { name, phase },
            Frame::Native { library, pc, .. } => FrameKey::Code {
                library,
                pc,
                kind: FrameKind::Native,
            },
            Frame::GpuApi { library, pc, .. } => FrameKey::Code {
                library,
                pc,
                kind: FrameKind::GpuApi,
            },
            Frame::GpuKernel { module, pc, .. } => FrameKey::Code {
                library: module,
                pc,
                kind: FrameKind::GpuKernel,
            },
            Frame::Instruction { pc } => FrameKey::Instruction { pc },
        }
    }

    /// Human-readable label, resolving interned names through `interner`.
    pub fn label(&self, interner: &Interner) -> String {
        match *self {
            Frame::Root => "<root>".to_owned(),
            Frame::Thread { tid, role } => format!("<thread {tid} ({role})>"),
            Frame::Python {
                file,
                line,
                function,
            } => {
                format!(
                    "{}:{} ({})",
                    interner.resolve(file),
                    line,
                    interner.resolve(function)
                )
            }
            Frame::Operator {
                name,
                phase,
                seq_id,
            } => {
                let name = interner.resolve(name);
                let seq = seq_id.map(|s| format!(" seq={s}")).unwrap_or_default();
                match phase {
                    OpPhase::Forward => format!("{name}{seq}"),
                    OpPhase::Backward => format!("{name} [backward]{seq}"),
                }
            }
            Frame::Native {
                library,
                pc,
                symbol,
            } => {
                format!(
                    "{} ({}+{pc:#x})",
                    interner.resolve(symbol),
                    interner.resolve(library)
                )
            }
            Frame::GpuApi { name, library, pc } => {
                format!(
                    "{} ({}+{pc:#x})",
                    interner.resolve(name),
                    interner.resolve(library)
                )
            }
            Frame::GpuKernel { name, module, pc } => {
                format!(
                    "{} [kernel] ({}+{pc:#x})",
                    interner.resolve(name),
                    interner.resolve(module)
                )
            }
            Frame::Instruction { pc } => format!("pc {pc:#x}"),
        }
    }

    /// Short name suitable for flame graph boxes.
    pub fn short_label(&self, interner: &Interner) -> String {
        match *self {
            Frame::Root => "root".to_owned(),
            Frame::Thread { tid, role } => format!("thread-{tid}-{role}"),
            Frame::Python { file, line, .. } => {
                let file = interner.resolve(file);
                let base = file.rsplit('/').next().unwrap_or(&file).to_owned();
                format!("{base}:{line}")
            }
            Frame::Operator { name, phase, .. } => match phase {
                OpPhase::Forward => interner.resolve(name).to_string(),
                OpPhase::Backward => format!("{}~bwd", interner.resolve(name)),
            },
            Frame::Native { symbol, .. } => interner.resolve(symbol).to_string(),
            Frame::GpuApi { name, .. } => interner.resolve(name).to_string(),
            Frame::GpuKernel { name, .. } => interner.resolve(name).to_string(),
            Frame::Instruction { pc } => format!("pc_{pc:#x}"),
        }
    }
}

/// The identity under which frames collapse in the calling context tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FrameKey {
    /// Root key.
    Root,
    /// Thread key.
    Thread {
        /// Thread id.
        tid: u64,
        /// Thread role.
        role: ThreadRole,
    },
    /// Python frames collapse on (file, line).
    Python {
        /// Source file.
        file: Sym,
        /// Line number.
        line: u32,
    },
    /// Operator frames collapse on (name, phase).
    Operator {
        /// Operator name.
        name: Sym,
        /// Phase.
        phase: OpPhase,
    },
    /// Native, GPU-API and GPU-kernel frames collapse on (library, pc).
    Code {
        /// Library / module.
        library: Sym,
        /// Program counter.
        pc: u64,
        /// Distinguishes native vs GPU API vs kernel at identical addresses.
        kind: FrameKind,
    },
    /// Instruction frames collapse on pc.
    Instruction {
        /// Instruction PC.
        pc: u64,
    },
}

/// A root-to-leaf sequence of frames.
///
/// The first element is closest to the root (outermost caller); the last is
/// the innermost frame (e.g. a GPU kernel). This is the unit produced by
/// DLMonitor's `dlmonitor_callpath_get` and consumed by
/// [`CallingContextTree::insert_path`](crate::CallingContextTree::insert_path).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CallPath {
    frames: Vec<Frame>,
}

impl CallPath {
    /// Creates an empty path.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a path from root-to-leaf frames.
    pub fn from_frames(frames: Vec<Frame>) -> Self {
        CallPath { frames }
    }

    /// Appends a frame at the leaf end.
    pub fn push(&mut self, frame: Frame) {
        self.frames.push(frame);
    }

    /// Removes and returns the leaf frame.
    pub fn pop(&mut self) -> Option<Frame> {
        self.frames.pop()
    }

    /// Appends all frames of `other` below the current leaf.
    pub fn extend_from(&mut self, other: &CallPath) {
        self.frames.extend_from_slice(&other.frames);
    }

    /// The frames, root first.
    pub fn frames(&self) -> &[Frame] {
        &self.frames
    }

    /// The innermost frame, if any.
    pub fn leaf(&self) -> Option<&Frame> {
        self.frames.last()
    }

    /// Number of frames.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Whether the path has no frames.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Renders the path as a multi-line, indented string (root at top) —
    /// the textual analogue of the paper's Figure 3.
    pub fn render(&self, interner: &Interner) -> String {
        let mut out = String::new();
        for (depth, frame) in self.frames.iter().enumerate() {
            for _ in 0..depth {
                out.push_str("  ");
            }
            out.push_str(&frame.label(interner));
            out.push('\n');
        }
        out
    }

    /// Iterates frames root-first.
    pub fn iter(&self) -> std::slice::Iter<'_, Frame> {
        self.frames.iter()
    }
}

impl From<Vec<Frame>> for CallPath {
    fn from(frames: Vec<Frame>) -> Self {
        CallPath::from_frames(frames)
    }
}

impl FromIterator<Frame> for CallPath {
    fn from_iter<I: IntoIterator<Item = Frame>>(iter: I) -> Self {
        CallPath::from_frames(iter.into_iter().collect())
    }
}

impl IntoIterator for CallPath {
    type Item = Frame;
    type IntoIter = std::vec::IntoIter<Frame>;

    fn into_iter(self) -> Self::IntoIter {
        self.frames.into_iter()
    }
}

impl<'a> IntoIterator for &'a CallPath {
    type Item = &'a Frame;
    type IntoIter = std::slice::Iter<'a, Frame>;

    fn into_iter(self) -> Self::IntoIter {
        self.frames.iter()
    }
}

impl Extend<Frame> for CallPath {
    fn extend<I: IntoIterator<Item = Frame>>(&mut self, iter: I) {
        self.frames.extend(iter);
    }
}

/// Serialization helpers shared by the profile database.
impl Frame {
    pub(crate) fn to_record(&self) -> String {
        match *self {
            Frame::Root => "R".to_owned(),
            Frame::Thread { tid, role } => format!("T\t{tid}\t{}", role_code(role)),
            Frame::Python {
                file,
                line,
                function,
            } => format!("P\t{}\t{line}\t{}", file.0, function.0),
            Frame::Operator {
                name,
                phase,
                seq_id,
            } => format!(
                "O\t{}\t{}\t{}",
                name.0,
                phase_code(phase),
                seq_id.map(|s| s as i64).unwrap_or(-1)
            ),
            Frame::Native {
                library,
                pc,
                symbol,
            } => format!("N\t{}\t{pc}\t{}", library.0, symbol.0),
            Frame::GpuApi { name, library, pc } => format!("A\t{}\t{}\t{pc}", name.0, library.0),
            Frame::GpuKernel { name, module, pc } => format!("K\t{}\t{}\t{pc}", name.0, module.0),
            Frame::Instruction { pc } => format!("I\t{pc}"),
        }
    }

    pub(crate) fn from_record(record: &str) -> Result<Frame, crate::CoreError> {
        let mut parts = record.split('\t');
        let tag = parts.next().unwrap_or("");
        let mut num = |what: &str| -> Result<u64, crate::CoreError> {
            parts
                .next()
                .ok_or_else(|| crate::CoreError::parse(format!("missing {what} in frame record")))?
                .parse::<i64>()
                .map(|v| v as u64)
                .map_err(|e| crate::CoreError::parse(format!("bad {what}: {e}")))
        };
        let frame = match tag {
            "R" => Frame::Root,
            "T" => {
                let tid = num("tid")?;
                let role = role_from_code(num("role")? as u8)?;
                Frame::Thread { tid, role }
            }
            "P" => {
                let file = Sym(num("file")? as u32);
                let line = num("line")? as u32;
                let function = Sym(num("function")? as u32);
                Frame::Python {
                    file,
                    line,
                    function,
                }
            }
            "O" => {
                let name = Sym(num("name")? as u32);
                let phase = phase_from_code(num("phase")? as u8)?;
                let raw = num("seq")? as i64;
                let seq_id = if raw < 0 { None } else { Some(raw as u64) };
                Frame::Operator {
                    name,
                    phase,
                    seq_id,
                }
            }
            "N" => {
                let library = Sym(num("library")? as u32);
                let pc = num("pc")?;
                let symbol = Sym(num("symbol")? as u32);
                Frame::Native {
                    library,
                    pc,
                    symbol,
                }
            }
            "A" => {
                let name = Sym(num("name")? as u32);
                let library = Sym(num("library")? as u32);
                let pc = num("pc")?;
                Frame::GpuApi { name, library, pc }
            }
            "K" => {
                let name = Sym(num("name")? as u32);
                let module = Sym(num("module")? as u32);
                let pc = num("pc")?;
                Frame::GpuKernel { name, module, pc }
            }
            "I" => Frame::Instruction { pc: num("pc")? },
            other => {
                return Err(crate::CoreError::parse(format!(
                    "unknown frame tag {other:?}"
                )))
            }
        };
        Ok(frame)
    }
}

fn role_code(role: ThreadRole) -> u8 {
    match role {
        ThreadRole::Main => 0,
        ThreadRole::Backward => 1,
        ThreadRole::DataLoader => 2,
        ThreadRole::Worker => 3,
    }
}

fn role_from_code(code: u8) -> Result<ThreadRole, crate::CoreError> {
    Ok(match code {
        0 => ThreadRole::Main,
        1 => ThreadRole::Backward,
        2 => ThreadRole::DataLoader,
        3 => ThreadRole::Worker,
        other => {
            return Err(crate::CoreError::parse(format!(
                "unknown thread role {other}"
            )))
        }
    })
}

fn phase_code(phase: OpPhase) -> u8 {
    match phase {
        OpPhase::Forward => 0,
        OpPhase::Backward => 1,
    }
}

fn phase_from_code(code: u8) -> Result<OpPhase, crate::CoreError> {
    Ok(match code {
        0 => OpPhase::Forward,
        1 => OpPhase::Backward,
        other => return Err(crate::CoreError::parse(format!("unknown phase {other}"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn interner() -> std::sync::Arc<Interner> {
        Interner::new()
    }

    #[test]
    fn python_frames_collapse_on_file_and_line() {
        let i = interner();
        let a = Frame::python("m.py", 3, "f", &i);
        let b = Frame::python("m.py", 3, "g", &i); // different function
        let c = Frame::python("m.py", 4, "f", &i);
        assert_eq!(a.key(), b.key());
        assert_ne!(a.key(), c.key());
    }

    #[test]
    fn native_frames_collapse_on_library_and_pc() {
        let i = interner();
        let a = Frame::native("libtorch.so", 0x10, "sym_a", &i);
        let b = Frame::native("libtorch.so", 0x10, "sym_b", &i);
        let c = Frame::native("libtorch.so", 0x20, "sym_a", &i);
        let d = Frame::native("libother.so", 0x10, "sym_a", &i);
        assert_eq!(a.key(), b.key());
        assert_ne!(a.key(), c.key());
        assert_ne!(a.key(), d.key());
    }

    #[test]
    fn operator_frames_collapse_on_name_and_phase() {
        let i = interner();
        let fwd1 = Frame::operator_with("aten::index", OpPhase::Forward, Some(1), &i);
        let fwd2 = Frame::operator_with("aten::index", OpPhase::Forward, Some(2), &i);
        let bwd = Frame::operator_with("aten::index", OpPhase::Backward, Some(1), &i);
        assert_eq!(fwd1.key(), fwd2.key());
        assert_ne!(fwd1.key(), bwd.key());
    }

    #[test]
    fn gpu_api_and_native_do_not_collapse_at_same_address() {
        let i = interner();
        let native = Frame::native("libcudart.so", 0x77, "cudaLaunchKernel", &i);
        let api = Frame::gpu_api("cudaLaunchKernel", "libcudart.so", 0x77, &i);
        assert_ne!(native.key(), api.key());
    }

    #[test]
    fn call_path_push_pop_and_render() {
        let i = interner();
        let mut path = CallPath::new();
        assert!(path.is_empty());
        path.push(Frame::python("train.py", 1, "main", &i));
        path.push(Frame::operator("aten::relu", &i));
        assert_eq!(path.len(), 2);
        assert_eq!(path.leaf().unwrap().kind(), FrameKind::Operator);
        let rendered = path.render(&i);
        assert!(rendered.contains("train.py:1"));
        assert!(rendered.contains("aten::relu"));
        assert_eq!(path.pop().unwrap().kind(), FrameKind::Operator);
        assert_eq!(path.len(), 1);
    }

    #[test]
    fn frame_record_round_trip() {
        let i = interner();
        let frames = vec![
            Frame::Root,
            Frame::thread(7, ThreadRole::Backward),
            Frame::python("a.py", 42, "fn", &i),
            Frame::operator_with("aten::index", OpPhase::Backward, Some(9), &i),
            Frame::operator("aten::relu", &i),
            Frame::native("libc.so", 0xdeadbeef, "memcpy", &i),
            Frame::gpu_api("cuLaunchKernel", "libcuda.so", 0x99, &i),
            Frame::gpu_kernel("sgemm", "libtorch_cuda.so", 0x1234, &i),
            Frame::instruction(0x40),
        ];
        for f in frames {
            let rec = f.to_record();
            let back = Frame::from_record(&rec).unwrap();
            assert_eq!(f, back, "record {rec:?}");
        }
    }

    #[test]
    fn labels_resolve_names() {
        let i = interner();
        let f = Frame::gpu_kernel("nchwToNhwcKernel", "libcudnn.so", 0x10, &i);
        assert!(f.label(&i).contains("nchwToNhwcKernel"));
        assert_eq!(f.short_label(&i), "nchwToNhwcKernel");
        let b = Frame::operator_with("aten::index", OpPhase::Backward, None, &i);
        assert!(b.short_label(&i).ends_with("~bwd"));
    }
}
