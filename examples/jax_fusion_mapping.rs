//! Reproduces the paper's Figure 4: the JIT engine's compilation pass
//! fuses operators, and DLMonitor-style interception records the mapping
//! from each *fused* (runtime) operator back to the *original* operators
//! and their trace-time Python call paths.
//!
//! ```text
//! cargo run --release --example jax_fusion_mapping
//! ```

use std::sync::Arc;

use deepcontext::prelude::*;
use dl_framework::GraphEvent;
use parking_lot::Mutex;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bed = TestBed::new(DeviceSpec::a100_sxm());
    let jit = bed.jit();
    let core = Arc::clone(jit.core());
    let main = bed.main_thread();
    let _bind = ThreadRegistry::bind_current(main);

    // Watch compilation events, as DLMonitor's framework domain does.
    let events = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&events);
    core.callbacks().on_graph(move |event| {
        if let GraphEvent::CompileEnd {
            original_ops,
            compiled_ops,
            ..
        } = event
        {
            sink.lock().push((*original_ops, *compiled_ops));
        }
    });

    // Trace a small model: matmul followed by an elementwise chain, each
    // op called from its own Python context (captured at trace time).
    let graph = jit.trace("mlp_block", |tracer| {
        let x = TensorMeta::new([128, 256]);
        let w = TensorMeta::new([256, 256]);
        let h = {
            let _scope = core.python().frame(main, "model.py", 21, "dense");
            tracer.op(Op::new(OpKind::MatMul), &[x, w])?
        };
        let a = {
            let _scope = core.python().frame(main, "model.py", 34, "bias_add");
            tracer.op(Op::new(OpKind::Add), &[h.clone(), h])?
        };
        let s = {
            let _scope = core.python().frame(main, "model.py", 35, "scale");
            tracer.op(Op::new(OpKind::Mul), &[a.clone(), a])?
        };
        let _out = {
            let _scope = core.python().frame(main, "model.py", 36, "activate");
            tracer.op(Op::new(OpKind::Relu), &[s])?
        };
        Ok(())
    })?;

    let compiled = jit.compile(&graph)?;
    let (orig, comp) = events.lock()[0];
    println!("compilation: {orig} original operators -> {comp} compiled operators\n");

    println!("fused -> original mapping (with trace-time call paths):");
    let mut names: Vec<&str> = compiled.mapping().compiled_names().collect();
    names.sort();
    for name in names {
        println!("  {name}");
        for (orig_name, trace_path) in compiled.mapping().origins(name).unwrap() {
            let site = trace_path
                .last()
                .map(|f| format!("{}:{} ({})", f.file, f.line, f.function))
                .unwrap_or_else(|| "<no python context>".into());
            println!("    <- {orig_name:<14} traced at {site}");
        }
    }

    // Execute: at runtime only the fused operators exist.
    compiled.execute()?;
    println!(
        "\nexecuted: {} kernels launched for {} compiled operators",
        compiled.kernel_count(),
        compiled.compiled_op_count()
    );
    Ok(())
}
