//! The call-path-caching ablation (paper §4.1 "Optimizations"): cost of
//! building unified call paths with caching on vs off, and with native
//! collection disabled — the design choices behind the Figure 6
//! DeepContext vs DeepContext-Native gap.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

use deepcontext_core::{Interner, ThreadRole, TimeNs};
use dl_framework::{EagerEngine, FrameworkCore, Op, OpKind, TensorMeta};
use dlmonitor::{CallPathSources, DlMonitor};
use sim_gpu::{DeviceId, DeviceSpec, GpuRuntime};
use sim_runtime::{RuntimeEnv, ThreadRegistry};

struct Rig {
    env: RuntimeEnv,
    engine: std::sync::Arc<EagerEngine>,
    monitor: std::sync::Arc<DlMonitor>,
}

fn rig() -> Rig {
    let env = RuntimeEnv::new();
    let gpu = GpuRuntime::new(env.clock().clone(), vec![DeviceSpec::a100_sxm()]);
    let core = FrameworkCore::new(
        env.clone(),
        gpu.clone(),
        DeviceId(0),
        "/lib/libtorch_cpu.so",
        "libtorch_cuda.so",
        TimeNs(3_000),
    );
    let engine = EagerEngine::new(core);
    let monitor = DlMonitor::init(&env, Interner::new());
    monitor.attach_framework(engine.core().callbacks());
    monitor.attach_gpu(&gpu);
    Rig {
        env,
        engine,
        monitor,
    }
}

fn bench_unwind(c: &mut Criterion) {
    let mut group = c.benchmark_group("callpath");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));

    for (name, sources, cache) in [
        ("uncached_full_native", CallPathSources::all(), false),
        ("cached_partial_native", CallPathSources::all(), true),
        ("cached_no_native", CallPathSources::without_native(), true),
    ] {
        group.bench_function(name, |b| {
            let rig = rig();
            rig.monitor.set_sources(sources);
            rig.monitor.set_cache_enabled(cache);
            let main = rig.env.threads().spawn(ThreadRole::Main);
            let _bind = ThreadRegistry::bind_current(&main);
            let core = std::sync::Arc::clone(rig.engine.core());
            // Ten Python frames of depth, like a real model stack.
            let _scopes: Vec<_> = (0..10)
                .map(|i| core.python().frame(&main, "model.py", i, "layer"))
                .collect();
            let x = TensorMeta::new([1 << 12]);
            b.iter(|| {
                rig.engine
                    .op(Op::new(OpKind::Relu), std::slice::from_ref(&x))
                    .unwrap()
            });
        });
    }

    group.bench_function("raw_unwinder_backtrace_depth30", |b| {
        let env = RuntimeEnv::new();
        let t = env.threads().spawn(ThreadRole::Main);
        for i in 0..30 {
            t.native().push(sim_runtime::NativeFrameInfo::new(
                "lib.so",
                0x100 + i,
                "frame",
            ));
        }
        b.iter(|| env.unwinder().backtrace(t.native()));
    });

    group.finish();
}

criterion_group!(benches, bench_unwind);
criterion_main!(benches);
