//! The framework-agnostic operator vocabulary.
//!
//! DLMonitor's core idea is converting "deep learning framework-specific
//! data into a framework-agnostic format" (paper §1). Both simulated
//! engines dispatch the same [`Op`]s; the eager engine reports them under
//! their canonical `aten::*` names while the JIT engine compiles them into
//! fused kernels. Each op knows how to infer its output shape, how to
//! *lower* itself to simulated GPU kernels (with realistic kernel names,
//! launch shapes and cost parameters), and what its backward pass
//! dispatches.

use sim_gpu::{DeviceId, InstructionProfile, KernelDesc, LaunchConfig, MemoryPattern, StreamId};

use crate::error::FrameworkError;
use crate::registry::KernelRegistry;
use crate::tensor::{DType, Layout, TensorMeta};
use deepcontext_core::OpPhase;

/// Operator kinds. Backward-only kinds (`*Backward`) share their forward
/// operator's display name; they exist because their kernels differ
/// fundamentally (e.g. deterministic serialized scatter vs atomics).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // Names are self-describing operator mnemonics.
pub enum OpKind {
    MatMul,
    Conv2d,
    Conv2dBackward,
    Embedding,
    EmbeddingBackward,
    Index,
    IndexBackward,
    IndexSelect,
    IndexSelectBackward,
    Gather,
    ScatterAdd,
    Add,
    Sub,
    Mul,
    Div,
    Relu,
    Gelu,
    Silu,
    Sigmoid,
    Tanh,
    Dropout,
    Copy,
    Cast,
    Softmax,
    LogSoftmax,
    NllLoss,
    Mean,
    Sum,
    LayerNorm,
    InstanceNorm,
    InstanceNormBackward,
    BatchNorm,
    RmsNorm,
    Transpose,
    Reshape,
    Concat,
    Pad,
    ToLayout,
    MaxPool2d,
    Upsample2d,
    SgdStep,
    AdamStep,
}

impl OpKind {
    /// Canonical (framework-agnostic) operator name. Backward kinds report
    /// their forward name; the [`OpPhase`] on the operator frame carries
    /// the direction.
    pub fn name(self) -> &'static str {
        match self {
            OpKind::MatMul => "aten::matmul",
            OpKind::Conv2d | OpKind::Conv2dBackward => "aten::conv2d",
            OpKind::Embedding | OpKind::EmbeddingBackward => "aten::embedding",
            OpKind::Index | OpKind::IndexBackward => "aten::index",
            OpKind::IndexSelect | OpKind::IndexSelectBackward => "aten::index_select",
            OpKind::Gather => "aten::gather",
            OpKind::ScatterAdd => "aten::scatter_add",
            OpKind::Add => "aten::add",
            OpKind::Sub => "aten::sub",
            OpKind::Mul => "aten::mul",
            OpKind::Div => "aten::div",
            OpKind::Relu => "aten::relu",
            OpKind::Gelu => "aten::gelu",
            OpKind::Silu => "aten::silu",
            OpKind::Sigmoid => "aten::sigmoid",
            OpKind::Tanh => "aten::tanh",
            OpKind::Dropout => "aten::dropout",
            OpKind::Copy => "aten::copy_",
            OpKind::Cast => "aten::to",
            OpKind::Softmax => "aten::softmax",
            OpKind::LogSoftmax => "aten::log_softmax",
            OpKind::NllLoss => "aten::nll_loss",
            OpKind::Mean => "aten::mean",
            OpKind::Sum => "aten::sum",
            OpKind::LayerNorm => "aten::layer_norm",
            OpKind::InstanceNorm | OpKind::InstanceNormBackward => "aten::instance_norm",
            OpKind::BatchNorm => "aten::batch_norm",
            OpKind::RmsNorm => "aten::rms_norm",
            OpKind::Transpose => "aten::transpose",
            OpKind::Reshape => "aten::reshape",
            OpKind::Concat => "aten::cat",
            OpKind::Pad => "aten::pad",
            OpKind::ToLayout => "aten::contiguous",
            OpKind::MaxPool2d => "aten::max_pool2d",
            OpKind::Upsample2d => "aten::upsample_nearest2d",
            OpKind::SgdStep => "aten::sgd_step",
            OpKind::AdamStep => "aten::adam_step",
        }
    }

    /// Whether this op participates in autograd taping.
    pub fn differentiable(self) -> bool {
        !matches!(
            self,
            OpKind::SgdStep
                | OpKind::AdamStep
                | OpKind::Reshape
                | OpKind::Copy
                | OpKind::Conv2dBackward
                | OpKind::EmbeddingBackward
                | OpKind::IndexBackward
                | OpKind::IndexSelectBackward
                | OpKind::InstanceNormBackward
        )
    }

    /// Whether this op is a pure elementwise map (fusable by the JIT
    /// engine's fusion pass).
    pub fn is_elementwise(self) -> bool {
        matches!(
            self,
            OpKind::Add
                | OpKind::Sub
                | OpKind::Mul
                | OpKind::Div
                | OpKind::Relu
                | OpKind::Gelu
                | OpKind::Silu
                | OpKind::Sigmoid
                | OpKind::Tanh
                | OpKind::Dropout
                | OpKind::Copy
                | OpKind::Cast
        )
    }
}

/// Optional operator attributes.
#[derive(Debug, Clone, PartialEq)]
pub struct OpAttrs {
    /// Explicit output shape (overrides inference).
    pub out_shape: Option<Vec<usize>>,
    /// Weight shape: `[K, C, R, S]` for conv, `[V, D]` for embedding.
    pub weight_shape: Option<Vec<usize>>,
    /// Mean duplicates per index for index/scatter ops; drives the
    /// deterministic-serialization cost (paper §6.1).
    pub duplicate_ratio: f64,
    /// Whether index backward must be deterministic (serialized) rather
    /// than atomic.
    pub deterministic: bool,
    /// Fixed CTA size override (the §6.5 kernel-template parameter).
    pub threads_per_block: Option<u32>,
    /// Target layout for [`OpKind::ToLayout`].
    pub target_layout: Option<Layout>,
    /// Target dtype for [`OpKind::Cast`].
    pub target_dtype: Option<DType>,
    /// Explicit device placement (multi-GPU workloads); `None` launches
    /// on the engine's default device.
    pub device: Option<DeviceId>,
    /// Explicit stream placement (multi-stream workloads); `None`
    /// launches on the engine's default stream.
    pub stream: Option<StreamId>,
}

impl Default for OpAttrs {
    fn default() -> Self {
        OpAttrs {
            out_shape: None,
            weight_shape: None,
            duplicate_ratio: 1.0,
            deterministic: true,
            threads_per_block: None,
            target_layout: None,
            target_dtype: None,
            device: None,
            stream: None,
        }
    }
}

/// A framework-agnostic operator instance.
#[derive(Debug, Clone, PartialEq)]
pub struct Op {
    /// What the operator does.
    pub kind: OpKind,
    /// Attributes.
    pub attrs: OpAttrs,
}

impl Op {
    /// Creates an operator with default attributes.
    pub fn new(kind: OpKind) -> Self {
        Op {
            kind,
            attrs: OpAttrs::default(),
        }
    }

    /// Canonical operator name.
    pub fn name(&self) -> &'static str {
        self.kind.name()
    }

    /// Sets the explicit output shape.
    pub fn with_out_shape(mut self, shape: impl Into<Vec<usize>>) -> Self {
        self.attrs.out_shape = Some(shape.into());
        self
    }

    /// Sets the weight shape.
    pub fn with_weight(mut self, shape: impl Into<Vec<usize>>) -> Self {
        self.attrs.weight_shape = Some(shape.into());
        self
    }

    /// Sets the duplicate ratio for index-style ops.
    pub fn with_duplicates(mut self, ratio: f64) -> Self {
        self.attrs.duplicate_ratio = ratio.max(1.0);
        self
    }

    /// Chooses deterministic (serialized) or atomic index backward.
    pub fn deterministic(mut self, deterministic: bool) -> Self {
        self.attrs.deterministic = deterministic;
        self
    }

    /// Overrides the threads-per-CTA of the lowered kernels.
    pub fn with_threads_per_block(mut self, threads: u32) -> Self {
        self.attrs.threads_per_block = Some(threads);
        self
    }

    /// Sets the target layout (for [`OpKind::ToLayout`]).
    pub fn with_target_layout(mut self, layout: Layout) -> Self {
        self.attrs.target_layout = Some(layout);
        self
    }

    /// Sets the target dtype (for [`OpKind::Cast`]).
    pub fn with_target_dtype(mut self, dtype: DType) -> Self {
        self.attrs.target_dtype = Some(dtype);
        self
    }

    /// Places this op's kernels on an explicit device (multi-GPU
    /// workloads).
    pub fn on_device(mut self, device: DeviceId) -> Self {
        self.attrs.device = Some(device);
        self
    }

    /// Places this op's kernels on an explicit stream of its device
    /// (multi-stream workloads; the stream must exist — see
    /// `GpuRuntime::ensure_streams`).
    pub fn on_stream(mut self, stream: StreamId) -> Self {
        self.attrs.stream = Some(stream);
        self
    }

    /// Infers the output tensor of this op applied to `inputs`.
    ///
    /// # Errors
    ///
    /// Returns [`FrameworkError::ShapeMismatch`] when inputs are
    /// inconsistent with the operator.
    pub fn infer_shape(&self, inputs: &[TensorMeta]) -> Result<TensorMeta, FrameworkError> {
        let first = inputs
            .first()
            .ok_or_else(|| self.shape_err("operator requires at least one input"))?;
        let mut out = first.clone();

        if let Some(shape) = &self.attrs.out_shape {
            out.shape = shape.clone();
        } else {
            match self.kind {
                OpKind::MatMul => {
                    let rhs = inputs
                        .get(1)
                        .ok_or_else(|| self.shape_err("matmul requires two inputs"))?;
                    let (m, k1) = last_two(&first.shape)
                        .ok_or_else(|| self.shape_err("matmul lhs must be >=2-D"))?;
                    let (k2, n) = last_two(&rhs.shape)
                        .ok_or_else(|| self.shape_err("matmul rhs must be >=2-D"))?;
                    if k1 != k2 {
                        return Err(self.shape_err(&format!("inner dims differ: {k1} vs {k2}")));
                    }
                    let mut shape = first.shape[..first.shape.len() - 2].to_vec();
                    shape.extend_from_slice(&[m, n]);
                    out.shape = shape;
                }
                OpKind::Conv2d | OpKind::Conv2dBackward => {
                    let w =
                        self.attrs.weight_shape.as_ref().ok_or_else(|| {
                            self.shape_err("conv2d requires weight_shape [K,C,R,S]")
                        })?;
                    if first.shape.len() != 4 || w.len() != 4 {
                        return Err(self.shape_err("conv2d expects 4-D input and weight"));
                    }
                    if w[1] != first.shape[1] {
                        return Err(self.shape_err("conv2d channel mismatch"));
                    }
                    out.shape = vec![first.shape[0], w[0], first.shape[2], first.shape[3]];
                }
                OpKind::Embedding => {
                    let w =
                        self.attrs.weight_shape.as_ref().ok_or_else(|| {
                            self.shape_err("embedding requires weight_shape [V,D]")
                        })?;
                    let mut shape = first.shape.clone();
                    shape.push(w[1]);
                    out.shape = shape;
                    out.dtype = DType::F32;
                }
                OpKind::Index | OpKind::IndexSelect | OpKind::Gather => {
                    // inputs: [table, indices] -> indices-rows of table.
                    let idx = inputs
                        .get(1)
                        .ok_or_else(|| self.shape_err("index ops require [table, indices]"))?;
                    let mut shape = idx.shape.clone();
                    shape.extend_from_slice(&first.shape[1..]);
                    out.shape = shape;
                }
                OpKind::NllLoss | OpKind::Mean | OpKind::Sum => {
                    out.shape = vec![1];
                }
                OpKind::Transpose => {
                    let n = out.shape.len();
                    if n >= 2 {
                        out.shape.swap(n - 1, n - 2);
                    }
                }
                OpKind::MaxPool2d => {
                    if first.shape.len() != 4 {
                        return Err(self.shape_err("pool2d expects 4-D input"));
                    }
                    out.shape = vec![
                        first.shape[0],
                        first.shape[1],
                        (first.shape[2] / 2).max(1),
                        (first.shape[3] / 2).max(1),
                    ];
                }
                OpKind::Upsample2d => {
                    if first.shape.len() != 4 {
                        return Err(self.shape_err("upsample expects 4-D input"));
                    }
                    out.shape = vec![
                        first.shape[0],
                        first.shape[1],
                        first.shape[2] * 2,
                        first.shape[3] * 2,
                    ];
                }
                OpKind::Concat => {
                    let dim0: usize = inputs
                        .iter()
                        .map(|t| t.shape.first().copied().unwrap_or(1))
                        .sum();
                    let mut shape = first.shape.clone();
                    if !shape.is_empty() {
                        shape[0] = dim0;
                    }
                    out.shape = shape;
                }
                OpKind::Reshape => {
                    return Err(self.shape_err("reshape requires an explicit out_shape"));
                }
                // Same-shape operators.
                _ => {}
            }
        }
        if let Some(dtype) = self.attrs.target_dtype {
            if self.kind == OpKind::Cast {
                out.dtype = dtype;
            }
        }
        if let Some(layout) = self.attrs.target_layout {
            if self.kind == OpKind::ToLayout {
                out.layout = layout;
            }
        }
        Ok(out)
    }

    fn shape_err(&self, msg: &str) -> FrameworkError {
        FrameworkError::ShapeMismatch {
            op: self.name().to_owned(),
            message: msg.to_owned(),
        }
    }

    /// Lowers the op into the GPU kernels it launches.
    ///
    /// The eager engine launches these one by one; the JIT engine merges
    /// elementwise chains first. Conversion kernels for
    /// channels-first convolutions (the §6.2 behaviour) are inserted here.
    pub fn lower(
        &self,
        inputs: &[TensorMeta],
        output: &TensorMeta,
        phase: OpPhase,
        registry: &KernelRegistry,
    ) -> Vec<KernelDesc> {
        let first = inputs.first().cloned().unwrap_or_else(|| output.clone());
        let out_elems = output.numel() as f64;
        let esize = output.dtype.size_bytes() as f64;
        let block = self.attrs.threads_per_block.unwrap_or(256);

        let mut kernels = Vec::new();
        match self.kind {
            OpKind::MatMul => {
                let rhs = inputs.get(1).cloned().unwrap_or_else(|| first.clone());
                let (m, k) = last_two(&first.shape).unwrap_or((1, 1));
                let n = last_two(&rhs.shape).map(|(_, n)| n).unwrap_or(1);
                let batch: usize = first.shape[..first.shape.len().saturating_sub(2)]
                    .iter()
                    .product::<usize>()
                    .max(1);
                let flops = 2.0 * batch as f64 * m as f64 * k as f64 * n as f64;
                let bytes = esize * batch as f64 * (m * k + k * n + m * n) as f64;
                let mut tiles = m.div_ceil(128) * n.div_ceil(128) * batch;
                if tiles < 128 {
                    // Skinny GEMMs (gradient shapes) parallelise over K
                    // (split-K), as real GEMM libraries do.
                    tiles = (tiles * k.div_ceil(512).max(1)).min(128);
                }
                let name = match output.dtype {
                    DType::F16 | DType::F8 => "ampere_hgemm_128x128_tn",
                    _ => "ampere_sgemm_128x128_tn",
                };
                kernels.push(
                    registry
                        .kernel(name, LaunchConfig::new(clamp_grid(tiles), 256))
                        .with_flops(flops)
                        .with_bytes(bytes)
                        .with_registers(128)
                        .with_shared_mem(48 * 1024)
                        .with_profile(InstructionProfile::compute_bound()),
                );
            }
            OpKind::Conv2d | OpKind::Conv2dBackward => {
                let w = self.attrs.weight_shape.clone().unwrap_or(vec![1, 1, 1, 1]);
                let (n_, c, h, wdt) = (
                    first.shape[0],
                    first.shape[1],
                    first.shape[2],
                    first.shape[3],
                );
                let (kout, r, s) = (w[0], w[2], w[3]);
                let flops = 2.0 * (n_ * kout * h * wdt * c * r * s) as f64;
                let in_bytes = first.bytes() as f64;
                let out_bytes = output.bytes() as f64;
                let w_bytes = (w.iter().product::<usize>() * 4) as f64;
                let needs_conversion = first.layout == Layout::ChannelsFirst;
                if needs_conversion {
                    kernels.push(conversion_kernel(
                        registry,
                        "cudnn::nchwToNhwcKernel",
                        in_bytes,
                        block,
                    ));
                }
                let main_name = match (self.kind, phase) {
                    (OpKind::Conv2dBackward, _) | (_, OpPhase::Backward) => {
                        "cudnn::implicit_gemm_dgrad"
                    }
                    _ => "cudnn::implicit_gemm_fprop",
                };
                let tiles = (n_ * h * wdt).div_ceil(64) * kout.div_ceil(64);
                kernels.push(
                    registry
                        .kernel(main_name, LaunchConfig::new(clamp_grid(tiles), 256))
                        .with_flops(flops)
                        .with_bytes(in_bytes + out_bytes + w_bytes)
                        .with_registers(168)
                        .with_shared_mem(64 * 1024)
                        .with_profile(InstructionProfile::compute_bound()),
                );
                if self.kind == OpKind::Conv2dBackward {
                    kernels.push(
                        registry
                            .kernel(
                                "cudnn::implicit_gemm_wgrad",
                                LaunchConfig::new(clamp_grid(tiles), 256),
                            )
                            .with_flops(flops)
                            .with_bytes(in_bytes + w_bytes)
                            .with_registers(168)
                            .with_shared_mem(64 * 1024)
                            .with_profile(InstructionProfile::compute_bound()),
                    );
                }
                if needs_conversion {
                    kernels.push(conversion_kernel(
                        registry,
                        "cudnn::nhwcToNchwKernel",
                        out_bytes,
                        block,
                    ));
                }
            }
            OpKind::Embedding | OpKind::Index | OpKind::IndexSelect | OpKind::Gather => {
                let name = match self.kind {
                    OpKind::Embedding => "embedding_kernel",
                    OpKind::Index => "index_kernel",
                    OpKind::IndexSelect => "index_select_kernel",
                    _ => "gather_kernel",
                };
                let bytes = 2.0 * out_elems * esize;
                kernels.push(
                    registry
                        .kernel(
                            name,
                            LaunchConfig::new(grid_for(output.numel(), block), block),
                        )
                        .with_flops(out_elems * 0.5)
                        .with_bytes(bytes)
                        .with_memory_pattern(MemoryPattern::Strided)
                        .with_profile(InstructionProfile::memory_bound()),
                );
            }
            OpKind::IndexBackward
            | OpKind::IndexSelectBackward
            | OpKind::EmbeddingBackward
            | OpKind::ScatterAdd => {
                // Scatter-style backward: zero the gradient buffer (sized
                // like the table), then scatter the incoming gradient
                // rows. Traffic scales with the *gradient* (inputs[0]),
                // not the table; duplicate indices either serialize the
                // scatter (deterministic `indexing_backward_kernel`,
                // §6.1) or add mild atomic contention.
                let grad_elems = first.numel() as f64;
                if self.kind != OpKind::ScatterAdd {
                    kernels.push(
                        registry
                            .kernel(
                                "vectorized_elementwise_kernel<zero_>",
                                LaunchConfig::new(grid_for(output.numel(), block), block),
                            )
                            .with_bytes(out_elems * esize)
                            .with_profile(InstructionProfile::memory_bound()),
                    );
                }
                let contention = 1.0 + (self.attrs.duplicate_ratio.max(1.0)).ln() * 0.15;
                let (name, factor) = match self.kind {
                    OpKind::IndexBackward => (
                        "indexing_backward_kernel",
                        self.attrs.duplicate_ratio.max(1.0),
                    ),
                    OpKind::IndexSelectBackward => ("index_select_backward_kernel", contention),
                    OpKind::EmbeddingBackward => ("embedding_dense_backward_kernel", contention),
                    _ => ("scatter_add_kernel", contention),
                };
                kernels.push(
                    registry
                        .kernel(
                            name,
                            LaunchConfig::new(grid_for(grad_elems as usize, block), block),
                        )
                        .with_flops(grad_elems)
                        .with_bytes(3.0 * grad_elems * esize)
                        .with_serialization(factor)
                        .with_memory_pattern(MemoryPattern::Strided)
                        .with_profile(InstructionProfile::memory_bound()),
                );
            }
            OpKind::Cast => {
                let in_bytes = first.bytes() as f64;
                let out_bytes = output.bytes() as f64;
                kernels.push(
                    registry
                        .kernel(
                            "vectorized_elementwise_kernel<to_copy>",
                            LaunchConfig::new(grid_for(output.numel(), block), block),
                        )
                        .with_flops(out_elems)
                        .with_bytes(in_bytes + out_bytes)
                        .with_profile(InstructionProfile::cast_kernel()),
                );
            }
            OpKind::ToLayout => {
                let name = match (first.layout, output.layout) {
                    (Layout::ChannelsFirst, Layout::ChannelsLast) => "cudnn::nchwToNhwcKernel",
                    (Layout::ChannelsLast, Layout::ChannelsFirst) => "cudnn::nhwcToNchwKernel",
                    _ => "copy_kernel",
                };
                kernels.push(conversion_kernel(
                    registry,
                    name,
                    2.0 * out_elems * esize,
                    block,
                ));
            }
            OpKind::Softmax | OpKind::LogSoftmax => {
                let name = match (self.kind, phase) {
                    (OpKind::Softmax, OpPhase::Forward) => "softmax_warp_forward",
                    (OpKind::Softmax, OpPhase::Backward) => "softmax_warp_backward",
                    (_, OpPhase::Forward) => "log_softmax_warp_forward",
                    (_, OpPhase::Backward) => "log_softmax_warp_backward",
                };
                kernels.push(
                    registry
                        .kernel(
                            name,
                            LaunchConfig::new(grid_for(output.numel(), block), block),
                        )
                        .with_flops(4.0 * out_elems)
                        .with_bytes(3.0 * out_elems * esize)
                        .with_registers(40)
                        .with_profile(InstructionProfile::memory_bound()),
                );
            }
            OpKind::NllLoss => {
                let in_elems = first.numel() as f64;
                kernels.push(
                    registry
                        .kernel(
                            "nll_loss_forward_reduce_cuda_kernel_2d",
                            LaunchConfig::new(grid_for(first.numel() / 64 + 1, block), block),
                        )
                        .with_flops(in_elems)
                        .with_bytes(in_elems * esize)
                        .with_registers(32)
                        .with_profile(InstructionProfile::memory_bound()),
                );
            }
            OpKind::Mean | OpKind::Sum => {
                let in_elems = first.numel() as f64;
                kernels.push(
                    registry
                        .kernel(
                            "reduce_kernel",
                            LaunchConfig::new(grid_for(first.numel() / 4 + 1, block), block),
                        )
                        .with_flops(in_elems)
                        .with_bytes(in_elems * esize)
                        .with_profile(InstructionProfile::memory_bound()),
                );
            }
            OpKind::LayerNorm | OpKind::RmsNorm => {
                let name = match (self.kind, phase) {
                    (OpKind::RmsNorm, _) => "rms_norm_kernel",
                    (_, OpPhase::Forward) => "vectorized_layer_norm_kernel",
                    (_, OpPhase::Backward) => "layer_norm_grad_input_kernel",
                };
                let rows = first.shape[..first.shape.len().saturating_sub(1)]
                    .iter()
                    .product::<usize>()
                    .max(1);
                kernels.push(
                    registry
                        .kernel(name, LaunchConfig::new(clamp_grid(rows), block))
                        .with_flops(6.0 * out_elems)
                        .with_bytes(3.0 * out_elems * esize)
                        .with_registers(48)
                        .with_profile(InstructionProfile::memory_bound()),
                );
            }
            OpKind::InstanceNorm | OpKind::BatchNorm | OpKind::InstanceNormBackward => {
                // The shared CTA-size template of the §6.5 case study.
                let tpb = self.attrs.threads_per_block.unwrap_or(512);
                let (n_, c) = (first.shape[0], first.shape.get(1).copied().unwrap_or(1));
                let grid = clamp_grid(n_ * c);
                let (stats, transform) = match (self.kind, phase) {
                    (OpKind::InstanceNormBackward, _) | (_, OpPhase::Backward) => (
                        "batch_norm_backward_reduce_kernel",
                        "batch_norm_backward_cuda_template",
                    ),
                    _ => (
                        "batch_norm_collect_statistics_kernel",
                        "batch_norm_transform_input_kernel",
                    ),
                };
                for name in [stats, transform] {
                    // NCHW per-(n,c) statistics walk the image plane with
                    // strided, poorly-coalesced accesses; each of the two
                    // kernels effectively re-reads the tensor more than
                    // twice, which is why this template is expensive
                    // relative to its element count.
                    kernels.push(
                        registry
                            .kernel(name, LaunchConfig::new(grid, tpb))
                            .with_flops(4.0 * out_elems)
                            .with_bytes(5.0 * out_elems * esize)
                            .with_registers(64)
                            .with_shared_mem(4 * 1024)
                            .with_memory_pattern(MemoryPattern::Strided)
                            .with_profile(InstructionProfile::memory_bound()),
                    );
                }
            }
            OpKind::MaxPool2d
            | OpKind::Upsample2d
            | OpKind::Concat
            | OpKind::Pad
            | OpKind::Transpose => {
                let name = match self.kind {
                    OpKind::MaxPool2d => "max_pool_forward_nchw",
                    OpKind::Upsample2d => "upsample_nearest2d_out_frame",
                    OpKind::Concat => "CatArrayBatchedCopy",
                    OpKind::Pad => "elementwise_kernel<pad>",
                    _ => "transpose_kernel",
                };
                kernels.push(conversion_kernel(
                    registry,
                    name,
                    2.0 * out_elems * esize,
                    block,
                ));
            }
            OpKind::SgdStep | OpKind::AdamStep => {
                kernels.push(
                    registry
                        .kernel(
                            "multi_tensor_apply_kernel",
                            LaunchConfig::new(grid_for(output.numel(), block), block),
                        )
                        .with_flops(
                            if self.kind == OpKind::AdamStep {
                                8.0
                            } else {
                                2.0
                            } * out_elems,
                        )
                        .with_bytes(4.0 * out_elems * esize)
                        .with_profile(InstructionProfile::memory_bound()),
                );
            }
            OpKind::Reshape => {
                // Metadata-only: no kernels.
            }
            // Elementwise family.
            _ => {
                let tag = self.name().trim_start_matches("aten::");
                let suffix = match phase {
                    OpPhase::Forward => String::new(),
                    OpPhase::Backward => "_backward".to_owned(),
                };
                let name = format!("vectorized_elementwise_kernel<{tag}{suffix}>");
                let n_in = inputs.len().max(1) as f64;
                kernels.push(
                    registry
                        .kernel(
                            &name,
                            LaunchConfig::new(grid_for(output.numel(), block), block),
                        )
                        .with_flops(out_elems)
                        .with_bytes((n_in + 1.0) * out_elems * esize)
                        .with_profile(InstructionProfile::memory_bound()),
                );
            }
        }
        kernels
    }
}

/// The backward dispatch of a taped forward op.
///
/// Returns the ops the autograd engine executes (in order) for one tape
/// entry, each paired with the inputs it consumes. Notably:
///
/// * `aten::index` lowers to the deterministic serialized
///   `indexing_backward_kernel` while `aten::index_select` uses atomics —
///   the 1.66× DLRM case study (§6.1);
/// * `aten::matmul` produces two gradient matmuls;
/// * `aten::conv2d` produces dgrad + wgrad (plus layout conversions).
pub fn backward_ops(
    op: &Op,
    inputs: &[TensorMeta],
    output: &TensorMeta,
) -> Vec<(Op, Vec<TensorMeta>)> {
    let grad_out = output.clone();
    match op.kind {
        OpKind::MatMul => {
            let lhs = inputs.first().cloned().unwrap_or_else(|| output.clone());
            let rhs = inputs.get(1).cloned().unwrap_or_else(|| output.clone());
            // grad_lhs = grad_out @ rhs^T ; grad_rhs = lhs^T @ grad_out.
            // Pass explicitly transposed operand shapes so the lowered
            // GEMMs carry the true (m, k, n) dimensions.
            let rhs_t = transpose_meta(&rhs);
            let lhs_t = transpose_meta(&lhs);
            vec![
                (
                    Op::new(OpKind::MatMul).with_out_shape(lhs.shape.clone()),
                    vec![grad_out.clone(), rhs_t],
                ),
                (
                    Op::new(OpKind::MatMul).with_out_shape(rhs.shape.clone()),
                    vec![lhs_t, grad_out],
                ),
            ]
        }
        OpKind::Conv2d => {
            let input = inputs.first().cloned().unwrap_or_else(|| output.clone());
            let mut bwd = Op::new(OpKind::Conv2dBackward).with_out_shape(input.shape.clone());
            bwd.attrs.weight_shape = op.attrs.weight_shape.clone();
            vec![(bwd, vec![grad_out, input])]
        }
        OpKind::Index => {
            let table = inputs.first().cloned().unwrap_or_else(|| output.clone());
            let kind = if op.attrs.deterministic {
                OpKind::IndexBackward
            } else {
                OpKind::IndexSelectBackward
            };
            let mut bwd = Op::new(kind).with_out_shape(table.shape.clone());
            bwd.attrs.duplicate_ratio = op.attrs.duplicate_ratio;
            vec![(bwd, vec![grad_out, table])]
        }
        OpKind::IndexSelect | OpKind::Gather => {
            let table = inputs.first().cloned().unwrap_or_else(|| output.clone());
            let mut bwd = Op::new(OpKind::IndexSelectBackward).with_out_shape(table.shape.clone());
            bwd.attrs.duplicate_ratio = op.attrs.duplicate_ratio;
            vec![(bwd, vec![grad_out, table])]
        }
        OpKind::Embedding => {
            let table_shape = op.attrs.weight_shape.clone().unwrap_or_else(|| vec![1, 1]);
            let mut bwd = Op::new(OpKind::EmbeddingBackward).with_out_shape(table_shape);
            bwd.attrs.duplicate_ratio = op.attrs.duplicate_ratio;
            vec![(bwd, vec![grad_out])]
        }
        OpKind::InstanceNorm | OpKind::BatchNorm => {
            let input = inputs.first().cloned().unwrap_or_else(|| output.clone());
            let mut bwd = Op::new(OpKind::InstanceNormBackward).with_out_shape(input.shape.clone());
            bwd.attrs.threads_per_block = op.attrs.threads_per_block;
            vec![(bwd, vec![grad_out, input])]
        }
        // Non-differentiable bookkeeping ops have no backward.
        k if !k.differentiable() => Vec::new(),
        // Default: a same-cost mirrored op (elementwise/backwards of
        // softmax, norms, pools, etc. cost roughly what forward costs).
        _ => {
            let input = inputs.first().cloned().unwrap_or_else(|| output.clone());
            let mut bwd = op.clone();
            bwd.attrs.out_shape = Some(input.shape.clone());
            vec![(bwd, vec![grad_out, input])]
        }
    }
}

fn transpose_meta(t: &TensorMeta) -> TensorMeta {
    let mut out = t.clone();
    let n = out.shape.len();
    if n >= 2 {
        out.shape.swap(n - 1, n - 2);
    }
    out
}

fn last_two(shape: &[usize]) -> Option<(usize, usize)> {
    if shape.len() < 2 {
        return None;
    }
    Some((shape[shape.len() - 2], shape[shape.len() - 1]))
}

fn grid_for(numel: usize, block: u32) -> u32 {
    let per_block = (block as usize) * 4; // 4 items per thread
    clamp_grid(numel.div_ceil(per_block))
}

fn clamp_grid(grid: usize) -> u32 {
    grid.clamp(1, 1 << 20) as u32
}

fn conversion_kernel(registry: &KernelRegistry, name: &str, bytes: f64, block: u32) -> KernelDesc {
    let elems = (bytes / 4.0).max(1.0) as usize;
    // cuDNN's layout-conversion kernels are tiled through shared memory
    // and achieve near-coalesced bandwidth; their cost is the bytes moved.
    registry
        .kernel(name, LaunchConfig::new(grid_for(elems, block), block))
        .with_flops(bytes / 8.0)
        .with_bytes(bytes)
        .with_profile(InstructionProfile::memory_bound())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry() -> KernelRegistry {
        KernelRegistry::new("libtorch_cuda.so")
    }

    #[test]
    fn matmul_shape_inference() {
        let op = Op::new(OpKind::MatMul);
        let out = op
            .infer_shape(&[TensorMeta::new([8, 64, 32]), TensorMeta::new([8, 32, 16])])
            .unwrap();
        assert_eq!(out.shape, vec![8, 64, 16]);
        assert!(op
            .infer_shape(&[TensorMeta::new([4, 8]), TensorMeta::new([9, 4])])
            .is_err());
    }

    #[test]
    fn conv2d_shape_inference_and_channel_check() {
        let op = Op::new(OpKind::Conv2d).with_weight([64, 3, 3, 3]);
        let out = op.infer_shape(&[TensorMeta::new([2, 3, 32, 32])]).unwrap();
        assert_eq!(out.shape, vec![2, 64, 32, 32]);
        assert!(op.infer_shape(&[TensorMeta::new([2, 5, 32, 32])]).is_err());
    }

    #[test]
    fn index_shape_takes_rows() {
        let op = Op::new(OpKind::Index);
        let out = op
            .infer_shape(&[
                TensorMeta::new([1000, 64]),
                TensorMeta::new([128]).with_dtype(DType::I64),
            ])
            .unwrap();
        assert_eq!(out.shape, vec![128, 64]);
    }

    #[test]
    fn cast_changes_dtype_tolayout_changes_layout() {
        let cast = Op::new(OpKind::Cast).with_target_dtype(DType::F16);
        let out = cast.infer_shape(&[TensorMeta::new([4, 4])]).unwrap();
        assert_eq!(out.dtype, DType::F16);

        let conv = Op::new(OpKind::ToLayout).with_target_layout(Layout::ChannelsLast);
        let out = conv
            .infer_shape(&[TensorMeta::new([1, 3, 8, 8]).with_layout(Layout::ChannelsFirst)])
            .unwrap();
        assert_eq!(out.layout, Layout::ChannelsLast);
    }

    #[test]
    fn channels_first_conv_inserts_conversion_kernels() {
        let reg = registry();
        let op = Op::new(OpKind::Conv2d).with_weight([64, 32, 3, 3]);
        let input = TensorMeta::new([4, 32, 64, 64]).with_layout(Layout::ChannelsFirst);
        let out = op.infer_shape(std::slice::from_ref(&input)).unwrap();
        let kernels = op.lower(std::slice::from_ref(&input), &out, OpPhase::Forward, &reg);
        let names: Vec<_> = kernels.iter().map(|k| k.name.as_ref().to_owned()).collect();
        assert_eq!(
            names,
            vec![
                "cudnn::nchwToNhwcKernel",
                "cudnn::implicit_gemm_fprop",
                "cudnn::nhwcToNchwKernel"
            ]
        );

        let nhwc = input.with_layout(Layout::ChannelsLast);
        let out = op.infer_shape(std::slice::from_ref(&nhwc)).unwrap();
        let kernels = op.lower(&[nhwc], &out, OpPhase::Forward, &reg);
        assert_eq!(kernels.len(), 1);
        assert_eq!(kernels[0].name.as_ref(), "cudnn::implicit_gemm_fprop");
    }

    #[test]
    fn index_backward_is_serialized_index_select_backward_is_atomic() {
        let table = TensorMeta::new([100_000, 64]);
        let idx = TensorMeta::new([4096]).with_dtype(DType::I64);
        let reg = registry();

        let index = Op::new(OpKind::Index).with_duplicates(48.0);
        let out = index.infer_shape(&[table.clone(), idx.clone()]).unwrap();
        let bwd = backward_ops(&index, &[table.clone(), idx.clone()], &out);
        assert_eq!(bwd.len(), 1);
        assert_eq!(bwd[0].0.kind, OpKind::IndexBackward);
        let bout = bwd[0].0.infer_shape(&bwd[0].1).unwrap();
        let kernels = bwd[0].0.lower(&bwd[0].1, &bout, OpPhase::Backward, &reg);
        assert_eq!(
            kernels[0].name.as_ref(),
            "vectorized_elementwise_kernel<zero_>"
        );
        assert_eq!(kernels[1].name.as_ref(), "indexing_backward_kernel");
        assert_eq!(kernels[1].serialization_factor, 48.0);

        let select = Op::new(OpKind::IndexSelect).with_duplicates(48.0);
        let out = select.infer_shape(&[table.clone(), idx.clone()]).unwrap();
        let bwd = backward_ops(&select, &[table, idx], &out);
        assert_eq!(bwd[0].0.kind, OpKind::IndexSelectBackward);
        let bout = bwd[0].0.infer_shape(&bwd[0].1).unwrap();
        let kernels = bwd[0].0.lower(&bwd[0].1, &bout, OpPhase::Backward, &reg);
        assert_eq!(kernels[1].name.as_ref(), "index_select_backward_kernel");
        assert!(kernels[1].serialization_factor < 3.0);
    }

    #[test]
    fn matmul_backward_is_two_matmuls() {
        let a = TensorMeta::new([64, 32]);
        let b = TensorMeta::new([32, 16]);
        let op = Op::new(OpKind::MatMul);
        let out = op.infer_shape(&[a.clone(), b.clone()]).unwrap();
        let bwd = backward_ops(&op, &[a, b], &out);
        assert_eq!(bwd.len(), 2);
        assert!(bwd.iter().all(|(o, _)| o.kind == OpKind::MatMul));
    }

    #[test]
    fn nondifferentiable_ops_have_no_backward() {
        let t = TensorMeta::new([8]);
        for kind in [
            OpKind::SgdStep,
            OpKind::AdamStep,
            OpKind::Reshape,
            OpKind::Copy,
        ] {
            let op = Op::new(kind).with_out_shape([8]);
            let out = op.infer_shape(std::slice::from_ref(&t)).unwrap();
            assert!(
                backward_ops(&op, std::slice::from_ref(&t), &out).is_empty(),
                "{kind:?}"
            );
        }
    }

    #[test]
    fn instance_norm_backward_uses_shared_template() {
        let x = TensorMeta::new([4, 32, 64, 64]);
        let op = Op::new(OpKind::InstanceNorm).with_threads_per_block(512);
        let out = op.infer_shape(std::slice::from_ref(&x)).unwrap();
        let bwd = backward_ops(&op, &[x], &out);
        assert_eq!(bwd[0].0.kind, OpKind::InstanceNormBackward);
        let reg = registry();
        let bout = bwd[0].0.infer_shape(&bwd[0].1).unwrap();
        let kernels = bwd[0].0.lower(&bwd[0].1, &bout, OpPhase::Backward, &reg);
        assert!(kernels
            .iter()
            .any(|k| k.name.as_ref() == "batch_norm_backward_cuda_template"));
        assert!(kernels.iter().all(|k| k.config.block == 512));
    }

    #[test]
    fn reshape_lowers_to_no_kernels() {
        let reg = registry();
        let op = Op::new(OpKind::Reshape).with_out_shape([16, 4]);
        let input = TensorMeta::new([64]);
        let out = op.infer_shape(std::slice::from_ref(&input)).unwrap();
        assert!(op.lower(&[input], &out, OpPhase::Forward, &reg).is_empty());
    }

    #[test]
    fn elementwise_kernels_are_named_by_op_and_phase() {
        let reg = registry();
        let op = Op::new(OpKind::Relu);
        let input = TensorMeta::new([1024]);
        let out = op.infer_shape(std::slice::from_ref(&input)).unwrap();
        let fwd = op.lower(std::slice::from_ref(&input), &out, OpPhase::Forward, &reg);
        assert_eq!(fwd[0].name.as_ref(), "vectorized_elementwise_kernel<relu>");
        let bwd = op.lower(std::slice::from_ref(&input), &out, OpPhase::Backward, &reg);
        assert_eq!(
            bwd[0].name.as_ref(),
            "vectorized_elementwise_kernel<relu_backward>"
        );
    }

    #[test]
    fn cast_kernel_carries_cast_profile() {
        use deepcontext_core::StallReason;
        let reg = registry();
        let op = Op::new(OpKind::Cast).with_target_dtype(DType::F16);
        let input = TensorMeta::new([4096]);
        let out = op.infer_shape(std::slice::from_ref(&input)).unwrap();
        let k = &op.lower(std::slice::from_ref(&input), &out, OpPhase::Forward, &reg)[0];
        assert!(k.instruction_profile.instrs().iter().any(|i| i
            .stall_mix
            .iter()
            .any(|(r, _)| *r == StallReason::ConstantMemory)));
    }

    #[test]
    fn backward_names_match_forward_operator() {
        assert_eq!(OpKind::IndexBackward.name(), "aten::index");
        assert_eq!(OpKind::Conv2dBackward.name(), "aten::conv2d");
        assert_eq!(OpKind::InstanceNormBackward.name(), "aten::instance_norm");
    }

    #[test]
    fn elementwise_classification() {
        assert!(OpKind::Relu.is_elementwise());
        assert!(OpKind::Cast.is_elementwise());
        assert!(!OpKind::MatMul.is_elementwise());
        assert!(!OpKind::Softmax.is_elementwise());
    }
}
