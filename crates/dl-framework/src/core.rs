//! Shared engine infrastructure.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use deepcontext_core::{OpPhase, TimeNs};
use sim_gpu::{DeviceId, GpuRuntime, StreamId};
use sim_runtime::{
    CpuWork, FunctionInfo, LibraryInfo, NativeFrameGuard, NativeFrameInfo, RuntimeEnv, ThreadCtx,
    ThreadRegistry,
};

use crate::callbacks::{CallbackRegistry, OpEvent, Site};
use crate::error::FrameworkError;
use crate::ops::Op;
use crate::pyscope::PythonSim;
use crate::registry::KernelRegistry;
use crate::tensor::TensorMeta;

/// Everything both engines share: the process environment, the GPU
/// runtime, kernel/callback registries, the simulated CPython runtime and
/// the framework's own native libraries.
#[derive(Debug)]
pub struct FrameworkCore {
    env: RuntimeEnv,
    gpu: Arc<GpuRuntime>,
    device: DeviceId,
    stream: StreamId,
    kernels: Arc<KernelRegistry>,
    callbacks: Arc<CallbackRegistry>,
    python: Arc<PythonSim>,
    framework_lib: LibraryInfo,
    fn_cache: Mutex<HashMap<String, FunctionInfo>>,
    /// CPU cost of dispatching one operator.
    dispatch_cost: TimeNs,
    /// CPU cost of preparing one kernel launch.
    launch_prep_cost: TimeNs,
}

impl FrameworkCore {
    /// Builds the shared core.
    ///
    /// `cpu_lib` is the framework's host library (e.g. `libtorch_cpu.so`)
    /// and `gpu_module` the module kernels are attributed to (e.g.
    /// `libtorch_cuda.so` / `libxla.so`). `dispatch_cost` models the
    /// per-operator host overhead — eager dispatchers pay more than
    /// compiled executors.
    pub fn new(
        env: RuntimeEnv,
        gpu: Arc<GpuRuntime>,
        device: DeviceId,
        cpu_lib: &str,
        gpu_module: &str,
        dispatch_cost: TimeNs,
    ) -> Arc<Self> {
        let framework_lib = env.load_library(cpu_lib, 0x100_0000);
        let python = Arc::new(PythonSim::new(&env));
        Arc::new(FrameworkCore {
            env,
            gpu,
            device,
            stream: StreamId(0),
            kernels: Arc::new(KernelRegistry::new(gpu_module)),
            callbacks: CallbackRegistry::new(),
            python,
            framework_lib,
            fn_cache: Mutex::new(HashMap::new()),
            dispatch_cost,
            launch_prep_cost: TimeNs(1_000),
        })
    }

    /// The simulated process environment.
    pub fn env(&self) -> &RuntimeEnv {
        &self.env
    }

    /// The GPU runtime.
    pub fn gpu(&self) -> &Arc<GpuRuntime> {
        &self.gpu
    }

    /// The device this engine targets.
    pub fn device(&self) -> DeviceId {
        self.device
    }

    /// The stream used for launches.
    pub fn stream(&self) -> StreamId {
        self.stream
    }

    /// The kernel registry.
    pub fn kernels(&self) -> &Arc<KernelRegistry> {
        &self.kernels
    }

    /// The framework callback registry.
    pub fn callbacks(&self) -> &Arc<CallbackRegistry> {
        &self.callbacks
    }

    /// The simulated CPython runtime.
    pub fn python(&self) -> &Arc<PythonSim> {
        &self.python
    }

    /// The framework's host library.
    pub fn framework_lib(&self) -> &LibraryInfo {
        &self.framework_lib
    }

    /// Resolves (defining on first use) a native function of the framework
    /// library.
    pub fn native_fn(&self, name: &str) -> FunctionInfo {
        let mut cache = self.fn_cache.lock();
        if let Some(f) = cache.get(name) {
            return f.clone();
        }
        let f = self
            .env
            .define_function(&self.framework_lib, name, 0x100, None);
        cache.insert(name.to_owned(), f.clone());
        f
    }

    /// The simulated thread bound to this OS thread.
    ///
    /// # Errors
    ///
    /// Returns [`FrameworkError::NoCurrentThread`] when the caller forgot
    /// to bind one (see [`ThreadRegistry::bind_current`]).
    pub fn current_thread(&self) -> Result<Arc<ThreadCtx>, FrameworkError> {
        ThreadRegistry::current().ok_or(FrameworkError::NoCurrentThread)
    }

    /// The shared operator execution path used by the eager dispatcher,
    /// the backward worker, and the compiled-graph executor: fires
    /// framework callbacks, maintains native dispatcher frames, spends
    /// simulated CPU time, and launches the lowered kernels.
    pub fn dispatch(
        &self,
        op: &Op,
        inputs: &[TensorMeta],
        phase: OpPhase,
        seq_id: Option<u64>,
    ) -> Result<TensorMeta, FrameworkError> {
        let thread = self.current_thread()?;
        let output = op.infer_shape(inputs)?;
        let name: Arc<str> = Arc::from(op.name());

        self.callbacks.fire_op(&OpEvent {
            name: Arc::clone(&name),
            phase,
            seq_id,
            site: Site::Enter,
            thread: Arc::clone(&thread),
            inputs: inputs.to_vec(),
        });

        // Native dispatcher frames a real unwind would see.
        let dispatcher = self.native_fn("c10::Dispatcher::call");
        let _g1 = NativeFrameGuard::enter(
            thread.native(),
            NativeFrameInfo::new(&dispatcher.library, dispatcher.addr, &dispatcher.name),
        );
        let impl_name = format!("at::native::{}", op.name().trim_start_matches("aten::"));
        let impl_fn = self.native_fn(&impl_name);
        let _g2 = NativeFrameGuard::enter(
            thread.native(),
            NativeFrameInfo::new(&impl_fn.library, impl_fn.addr, &impl_fn.name),
        );

        self.env
            .do_cpu_work(&thread, CpuWork::compute(self.dispatch_cost));

        // Honour explicit placement (multi-GPU / multi-stream workloads),
        // defaulting to the engine's device and stream.
        let device = op.attrs.device.unwrap_or(self.device);
        let stream = op.attrs.stream.unwrap_or(self.stream);
        for kernel in op.lower(inputs, &output, phase, &self.kernels) {
            self.env
                .do_cpu_work(&thread, CpuWork::compute(self.launch_prep_cost));
            self.gpu.launch_kernel(device, stream, Arc::new(kernel))?;
        }

        self.callbacks.fire_op(&OpEvent {
            name,
            phase,
            seq_id,
            site: Site::Exit,
            thread,
            inputs: Vec::new(),
        });
        Ok(output)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::OpKind;
    use deepcontext_core::{ThreadRole, VirtualClock};
    use sim_gpu::DeviceSpec;

    fn core() -> (Arc<FrameworkCore>, RuntimeEnv) {
        let env = RuntimeEnv::new();
        let gpu = GpuRuntime::new(env.clock().clone(), vec![DeviceSpec::a100_sxm()]);
        let core = FrameworkCore::new(
            env.clone(),
            gpu,
            DeviceId(0),
            "/lib/libtorch_cpu.so",
            "libtorch_cuda.so",
            TimeNs(3_000),
        );
        (core, env)
    }

    #[test]
    fn dispatch_requires_bound_thread() {
        let (core, _env) = core();
        let err = core
            .dispatch(
                &Op::new(OpKind::Relu),
                &[TensorMeta::new([8])],
                OpPhase::Forward,
                None,
            )
            .unwrap_err();
        assert!(matches!(err, FrameworkError::NoCurrentThread));
    }

    #[test]
    fn dispatch_fires_callbacks_and_launches_kernels() {
        let (core, env) = core();
        let t = env.threads().spawn(ThreadRole::Main);
        let _bind = ThreadRegistry::bind_current(&t);
        let events = Arc::new(Mutex::new(Vec::new()));
        let e = Arc::clone(&events);
        core.callbacks().on_op(move |ev| {
            e.lock().push((ev.name.to_string(), ev.site));
        });
        let out = core
            .dispatch(
                &Op::new(OpKind::Relu),
                &[TensorMeta::new([1 << 16])],
                OpPhase::Forward,
                Some(1),
            )
            .unwrap();
        assert_eq!(out.shape, vec![1 << 16]);
        let ev = events.lock().clone();
        assert_eq!(ev[0], ("aten::relu".to_owned(), Site::Enter));
        assert_eq!(ev[1], ("aten::relu".to_owned(), Site::Exit));
        assert_eq!(core.gpu().kernel_count(DeviceId(0)).unwrap(), 1);
        // CPU time was spent and the clock advanced.
        assert!(env.clock().now() > deepcontext_core::TimeNs::ZERO);
        // Native dispatcher frames were popped on exit.
        assert!(t.native().is_empty());
    }

    #[test]
    fn native_fn_is_cached() {
        let (core, _env) = core();
        let a = core.native_fn("c10::Dispatcher::call");
        let b = core.native_fn("c10::Dispatcher::call");
        assert_eq!(a.addr, b.addr);
    }

    #[test]
    fn clock_is_shared_between_env_and_gpu() {
        let env = RuntimeEnv::new();
        let gpu = GpuRuntime::new(env.clock().clone(), vec![DeviceSpec::a100_sxm()]);
        let c1: &VirtualClock = env.clock();
        let c2 = gpu.clock();
        c1.advance(TimeNs(5));
        assert_eq!(c2.now(), TimeNs(5));
    }
}
