//! Asynchronous activity records (the CUPTI Activity API analogue).
//!
//! GPU metrics "are gathered asynchronously without blocking GPU API calls
//! from the CPU. When the GPU buffer storing metrics is full, DeepContext
//! flushes the metrics, using the correlation ID to link and aggregate
//! them with the corresponding call path" (paper §4.2). The runtime
//! buffers [`Activity`] records and hands full buffers to the registered
//! handler, mirroring `cuptiActivityRegisterCallbacks`.

use std::sync::Arc;

use deepcontext_core::TimeNs;

use crate::runtime::{CorrelationId, DeviceId, StreamId};
use crate::sampling::PcSample;

/// One asynchronous activity record.
#[derive(Debug, Clone)]
pub struct Activity {
    /// Correlation id linking back to the launching API call.
    pub correlation_id: CorrelationId,
    /// Device the activity ran on.
    pub device: DeviceId,
    /// What happened.
    pub kind: ActivityKind,
}

/// Payload of an activity record.
#[derive(Debug, Clone)]
pub enum ActivityKind {
    /// A kernel execution.
    Kernel {
        /// Kernel name.
        name: Arc<str>,
        /// Module providing the kernel.
        module: Arc<str>,
        /// Kernel entry address.
        entry_pc: u64,
        /// Stream it ran on.
        stream: StreamId,
        /// Device-side start time.
        start: TimeNs,
        /// Device-side end time.
        end: TimeNs,
        /// Blocks launched.
        blocks: u32,
        /// Warps launched.
        warps: u64,
        /// Achieved occupancy 0..=1.
        occupancy: f64,
        /// Shared memory per block, bytes.
        shared_mem_per_block: u64,
        /// Registers per thread.
        registers_per_thread: u32,
    },
    /// An async memcpy.
    Memcpy {
        /// Bytes moved.
        bytes: u64,
        /// Stream used.
        stream: StreamId,
        /// Start time.
        start: TimeNs,
        /// End time.
        end: TimeNs,
    },
    /// A device allocation.
    Malloc {
        /// Bytes allocated.
        bytes: u64,
        /// Time of the call.
        at: TimeNs,
    },
    /// A device free.
    Free {
        /// Bytes released.
        bytes: u64,
        /// Time of the call.
        at: TimeNs,
    },
    /// A batch of instruction samples for one kernel execution.
    PcSampling {
        /// Kernel name the samples belong to.
        name: Arc<str>,
        /// Samples.
        samples: Vec<PcSample>,
    },
}

impl Activity {
    /// End (completion) time of the activity, if it has a duration.
    pub fn end_time(&self) -> Option<TimeNs> {
        match &self.kind {
            ActivityKind::Kernel { end, .. } | ActivityKind::Memcpy { end, .. } => Some(*end),
            ActivityKind::Malloc { at, .. } | ActivityKind::Free { at, .. } => Some(*at),
            ActivityKind::PcSampling { .. } => None,
        }
    }

    /// Duration, when meaningful.
    pub fn duration(&self) -> Option<TimeNs> {
        match &self.kind {
            ActivityKind::Kernel { start, end, .. } | ActivityKind::Memcpy { start, end, .. } => {
                Some(*end - *start)
            }
            _ => None,
        }
    }

    /// Kernel name for kernel/sampling records.
    pub fn kernel_name(&self) -> Option<&str> {
        match &self.kind {
            ActivityKind::Kernel { name, .. } | ActivityKind::PcSampling { name, .. } => Some(name),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kernel_activity(start: u64, end: u64) -> Activity {
        Activity {
            correlation_id: CorrelationId(1),
            device: DeviceId(0),
            kind: ActivityKind::Kernel {
                name: Arc::from("sgemm"),
                module: Arc::from("m.so"),
                entry_pc: 0x10,
                stream: StreamId(0),
                start: TimeNs(start),
                end: TimeNs(end),
                blocks: 8,
                warps: 64,
                occupancy: 0.5,
                shared_mem_per_block: 0,
                registers_per_thread: 32,
            },
        }
    }

    #[test]
    fn duration_and_end_time() {
        let a = kernel_activity(100, 350);
        assert_eq!(a.duration(), Some(TimeNs(250)));
        assert_eq!(a.end_time(), Some(TimeNs(350)));
        assert_eq!(a.kernel_name(), Some("sgemm"));
    }

    #[test]
    fn malloc_has_no_duration() {
        let a = Activity {
            correlation_id: CorrelationId(2),
            device: DeviceId(0),
            kind: ActivityKind::Malloc {
                bytes: 1024,
                at: TimeNs(5),
            },
        };
        assert_eq!(a.duration(), None);
        assert_eq!(a.end_time(), Some(TimeNs(5)));
        assert_eq!(a.kernel_name(), None);
    }
}
