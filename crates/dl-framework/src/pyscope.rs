//! Simulated Python execution scopes.
//!
//! Workload "model code" is Rust, but it executes as if run by CPython:
//! entering a [`PyScope`] pushes a simulated interpreter frame *and* the
//! corresponding `_PyEval_EvalFrameDefault` native frame inside
//! `libpython.so` — the marker DLMonitor's integration algorithm uses to
//! cut over from the native call path to the Python call path (paper
//! §4.1, "Call Path Integration").

use std::sync::Arc;

use sim_runtime::{
    LibraryInfo, NativeFrameGuard, NativeFrameInfo, PyFrameGuard, PyFrameInfo, RuntimeEnv,
    ThreadCtx,
};

/// The simulated CPython runtime: owns `libpython.so` and its interpreter
/// entry symbol.
#[derive(Debug)]
pub struct PythonSim {
    lib: LibraryInfo,
    eval_pc: u64,
}

impl PythonSim {
    /// Loads `libpython3.11.so` into the environment and registers the
    /// frame-evaluation symbol.
    pub fn new(env: &RuntimeEnv) -> Self {
        let lib = env.load_library("/usr/lib/libpython3.11.so", 0x40_0000);
        let eval = env.define_function(&lib, "_PyEval_EvalFrameDefault", 0x4000, None);
        PythonSim {
            lib,
            eval_pc: eval.addr + 0x100,
        }
    }

    /// The libpython mapping.
    pub fn library(&self) -> &LibraryInfo {
        &self.lib
    }

    /// The PC native interpreter frames carry (inside libpython).
    pub fn eval_pc(&self) -> u64 {
        self.eval_pc
    }

    /// Enters a Python function on `thread`, pushing both the interpreter
    /// frame and the native eval frame. Dropping the returned scope exits
    /// the function.
    pub fn frame(&self, thread: &Arc<ThreadCtx>, file: &str, line: u32, function: &str) -> PyScope {
        let py = PyFrameGuard::enter(thread.python(), PyFrameInfo::new(file, line, function));
        let native = NativeFrameGuard::enter(
            thread.native(),
            NativeFrameInfo::new(&self.lib.path, self.eval_pc, "_PyEval_EvalFrameDefault"),
        );
        PyScope {
            _py: py,
            _native: native,
        }
    }
}

/// RAII scope representing one simulated Python call frame.
#[derive(Debug)]
pub struct PyScope {
    _py: PyFrameGuard,
    _native: NativeFrameGuard,
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepcontext_core::ThreadRole;

    #[test]
    fn frame_pushes_python_and_native_eval_frames() {
        let env = RuntimeEnv::new();
        let sim = PythonSim::new(&env);
        let t = env.threads().spawn(ThreadRole::Main);
        {
            let _main = sim.frame(&t, "train.py", 10, "main");
            let _inner = sim.frame(&t, "model.py", 42, "forward");
            assert_eq!(t.python().depth(), 2);
            assert_eq!(t.native().depth(), 2);
            let native = t.native().walk();
            assert!(env.libraries().is_python_pc(native[0].pc));
            assert_eq!(native[0].symbol.as_ref(), "_PyEval_EvalFrameDefault");
            let py = t.python().walk();
            assert_eq!(py[1].function.as_ref(), "forward");
        }
        assert!(t.python().is_empty());
        assert!(t.native().is_empty());
    }

    #[test]
    fn eval_pc_is_inside_libpython() {
        let env = RuntimeEnv::new();
        let sim = PythonSim::new(&env);
        assert!(sim.library().contains(sim.eval_pc()));
        assert!(env.libraries().is_python_pc(sim.eval_pc()));
    }
}
