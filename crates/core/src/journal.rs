//! The incident journal's persistent form.
//!
//! The live journal — a bounded, lock-striped ring of structured
//! lifecycle events — lives in `deepcontext-telemetry`. Its *stored*
//! shape lives here, next to [`StoredTimeline`](crate::StoredTimeline)
//! and for the same reason: [`ProfileDb`](crate::ProfileDb) embeds the
//! journal tail so a saved run carries its own incident history
//! (supervisor transitions, shard quarantines, drop storms, store
//! retries, failpoint fires), and the database crate cannot depend on
//! the telemetry machinery without a cycle. The telemetry crate converts
//! to this form (`JournalSnapshot::to_stored`) and the analyzer reads it
//! back to correlate incidents with profile artifacts.

use std::sync::Arc;

/// One journaled lifecycle event in its persistent form: the sequence
/// number and monotonic timestamp it was recorded with, its severity,
/// the site name (an index into [`StoredJournal::names`]) and the
/// structured key/value fields the site attached.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoredJournalEvent {
    /// Global sequence number: the total order events were recorded in,
    /// across every ring stripe.
    pub seq: u64,
    /// Nanoseconds since the journal's epoch (the telemetry epoch when
    /// telemetry is on, so incidents line up with self-timeline
    /// intervals).
    pub ts_ns: u64,
    /// Severity: 0 = info, 1 = warning, 2 = error (see
    /// [`severity_label`]).
    pub severity: u8,
    /// Site name, as an index into [`StoredJournal::names`].
    pub site: u32,
    /// Structured evidence fields, in the order the site recorded them.
    pub fields: Vec<(String, String)>,
}

/// Renders a [`StoredJournalEvent::severity`] byte as its stable label.
/// Unknown bytes render as `"info"` — a forward-compatibility choice,
/// not an error: an old reader must not refuse a newer run.
pub fn severity_label(severity: u8) -> &'static str {
    match severity {
        1 => "warn",
        2 => "error",
        _ => "info",
    }
}

/// A journal in its persistent form: the kept event tail (seq-ordered),
/// the site-name table events resolve against, and the conservation
/// counters (`recorded == kept + evicted` — when `evicted` is non-zero
/// the stored tail is a trailing window of the run's incidents, not the
/// whole history).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StoredJournal {
    /// Kept events, ascending by `seq`.
    pub events: Vec<StoredJournalEvent>,
    /// The site-name table: `StoredJournalEvent::site` indexes into
    /// this vector. Out-of-range indices simply fail to resolve.
    pub names: Vec<Arc<str>>,
    /// Events recorded over the run (kept + evicted).
    pub recorded: u64,
    /// Events evicted by ring overflow.
    pub evicted: u64,
}

impl StoredJournal {
    /// Resolves an event's site name against the captured name table.
    pub fn site_name(&self, event: &StoredJournalEvent) -> Option<&str> {
        self.names.get(event.site as usize).map(|s| s.as_ref())
    }

    /// Kept events.
    pub fn event_count(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing was kept.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Whether any kept event was recorded at the named site — the
    /// incident-kind predicate store listings filter on.
    pub fn has_site(&self, site: &str) -> bool {
        self.events.iter().any(|e| self.site_name(e) == Some(site))
    }

    /// Kept events recorded at the named site, in seq order.
    pub fn events_at<'a>(&'a self, site: &'a str) -> impl Iterator<Item = &'a StoredJournalEvent> {
        self.events
            .iter()
            .filter(move |e| self.site_name(e) == Some(site))
    }

    /// The distinct site names of the kept events, sorted — the
    /// `journal.sites` metadata stamp header-only listings filter on.
    pub fn site_summary(&self) -> Vec<&str> {
        let mut sites: Vec<&str> = self
            .events
            .iter()
            .filter_map(|e| self.site_name(e))
            .collect();
        sites.sort_unstable();
        sites.dedup();
        sites
    }

    /// Renders the kept events as JSON Lines: one object per event with
    /// `seq`, `ts_ns`, `severity`, `site` and (when present) `fields`,
    /// in seq order. Every line is a complete JSON document, so the
    /// output streams into `jq`/log pipelines without a wrapping array.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for event in &self.events {
            out.push_str(&format!(
                "{{\"seq\":{},\"ts_ns\":{},\"severity\":\"{}\",\"site\":\"{}\"",
                event.seq,
                event.ts_ns,
                severity_label(event.severity),
                escape_json(self.site_name(event).unwrap_or("<unknown>")),
            ));
            if !event.fields.is_empty() {
                out.push_str(",\"fields\":{");
                for (idx, (key, value)) in event.fields.iter().enumerate() {
                    if idx > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!(
                        "\"{}\":\"{}\"",
                        escape_json(key),
                        escape_json(value)
                    ));
                }
                out.push('}');
            }
            out.push_str("}\n");
        }
        out
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control bytes).
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn journal() -> StoredJournal {
        StoredJournal {
            events: vec![
                StoredJournalEvent {
                    seq: 1,
                    ts_ns: 10,
                    severity: 1,
                    site: 0,
                    fields: vec![("shard".into(), "0".into())],
                },
                StoredJournalEvent {
                    seq: 2,
                    ts_ns: 20,
                    severity: 2,
                    site: 1,
                    fields: Vec::new(),
                },
                StoredJournalEvent {
                    seq: 3,
                    ts_ns: 30,
                    severity: 0,
                    site: 0,
                    fields: Vec::new(),
                },
            ],
            names: vec![Arc::from("shard.quarantine"), Arc::from("store.retry")],
            recorded: 5,
            evicted: 2,
        }
    }

    #[test]
    fn site_resolution_and_filters() {
        let j = journal();
        assert_eq!(j.event_count(), 3);
        assert!(!j.is_empty());
        assert!(j.has_site("shard.quarantine"));
        assert!(j.has_site("store.retry"));
        assert!(!j.has_site("supervisor.transition"));
        assert_eq!(j.events_at("shard.quarantine").count(), 2);
        assert_eq!(j.site_summary(), vec!["shard.quarantine", "store.retry"]);
        // Conservation: what the ring kept plus what it evicted is what
        // was recorded.
        assert_eq!(j.recorded, j.event_count() as u64 + j.evicted);
    }

    #[test]
    fn out_of_range_site_indices_fail_softly() {
        let mut j = journal();
        j.events[0].site = 99;
        assert_eq!(j.site_name(&j.events[0]), None);
        assert_eq!(j.events_at("shard.quarantine").count(), 1);
    }

    #[test]
    fn severity_labels_are_stable_and_forward_compatible() {
        assert_eq!(severity_label(0), "info");
        assert_eq!(severity_label(1), "warn");
        assert_eq!(severity_label(2), "error");
        assert_eq!(severity_label(200), "info");
    }

    #[test]
    fn jsonl_is_one_valid_object_per_event_with_escaping() {
        let mut j = journal();
        j.events[1].fields = vec![("error".into(), "disk \"full\"\n".into())];
        let jsonl = j.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(
            lines[0],
            "{\"seq\":1,\"ts_ns\":10,\"severity\":\"warn\",\"site\":\"shard.quarantine\",\
             \"fields\":{\"shard\":\"0\"}}"
        );
        assert!(
            lines[1].contains("\\\"full\\\"\\n"),
            "escaped: {}",
            lines[1]
        );
        // Fieldless events omit the fields object entirely.
        assert!(!lines[2].contains("fields"));
    }
}
