//! End-to-end profile store tests: a finished profiler run persists to a
//! store directory with its timeline intact, corrupt files surface as
//! `CoreError`s instead of panics, cross-run trend queries follow the
//! metric across stored runs, and the `store-regression` rule flags an
//! injected regression against the stored baseline.

use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use deepcontext::prelude::*;
use deepcontext::profiler::TimelineConfig;
use proptest::prelude::*;

fn temp_store() -> (PathBuf, ProfileStore) {
    static NEXT: AtomicU32 = AtomicU32::new(0);
    let dir = std::env::temp_dir().join(format!(
        "deepcontext-store-e2e-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let store = ProfileStore::open(&dir).expect("store opens");
    (dir, store)
}

/// A full profiler run over the multi-device multi-stream workload with
/// the timeline recorder on, finished into a `ProfileDb`.
fn profile_multi_stream(iterations: u32) -> ProfileDb {
    let bed = TestBed::with_devices(vec![DeviceSpec::a100_sxm(), DeviceSpec::a100_sxm()]);
    let monitor = DlMonitor::init(bed.env(), Interner::new());
    monitor.attach_framework(bed.eager().core().callbacks());
    monitor.attach_gpu(bed.gpu());
    let profiler = Profiler::attach(
        ProfilerConfig {
            timeline: TimelineConfig::enabled(),
            ..ProfilerConfig::deepcontext()
        },
        bed.env(),
        &monitor,
        bed.gpu(),
    );
    bed.run_eager(
        &MultiStream::default(),
        &WorkloadOptions::default(),
        iterations,
    )
    .expect("workload run");
    profiler.finish(ProfileMeta {
        workload: "multi-stream".into(),
        framework: "eager".into(),
        platform: "nvidia-a100".into(),
        host: "ci-host".into(),
        model: "multi-stream-v1".into(),
        config: "default".into(),
        iterations: u64::from(iterations),
        ..Default::default()
    })
}

#[test]
fn finished_run_reloads_from_the_store_with_timeline_intact() {
    let db = profile_multi_stream(2);
    let timeline = db.timeline().expect("finish persisted the timeline");
    assert!(timeline.interval_count() > 0);

    let (dir, store) = temp_store();
    let id = store.save(&db).unwrap();
    let back = store.load(&id).unwrap();

    assert_eq!(back.meta(), db.meta());
    assert_eq!(
        back.cct().semantic_diff(db.cct()),
        None,
        "reloaded tree must be semantically identical"
    );
    let reloaded = back.timeline().expect("timeline survives the store");
    assert_eq!(reloaded, timeline);
    // The run's wall-clock window was stamped into both the meta and the
    // timeline, so edge idle stays measurable after a reload.
    assert_eq!(
        reloaded.window,
        Some((db.meta().started, db.meta().ended)),
        "stored window matches the stamped run window"
    );
    assert!(db.meta().ended > db.meta().started);
    // Every interval still resolves its name and its context. Self
    // intervals (present when the DEEPCONTEXT_TELEMETRY matrix runs this
    // suite with the self-timeline on) carry no workload context by
    // design, so only their names are checked.
    for interval in &reloaded.intervals {
        assert!(reloaded.name_of(interval.name).is_some());
        if interval.track.is_self() {
            assert!(
                interval.context.is_none(),
                "self intervals have no CCT node"
            );
            continue;
        }
        let context = interval.context.expect("contexts resolved");
        assert!(context.index() < back.cct().node_count());
    }
    fs::remove_dir_all(dir).unwrap();
}

#[test]
fn corrupt_and_truncated_store_files_error_not_panic() {
    let db = profile_multi_stream(1);
    let mut buf = Vec::new();
    db.save(&mut buf).unwrap();
    let text = String::from_utf8(buf).unwrap();
    let (dir, store) = temp_store();

    // Wrong container version: rewrite whatever version the header
    // line carries (v2 plain, v3 when a journal rode along) to a
    // future one.
    let header_end = text.find('\n').expect("container has a header line");
    assert!(
        text[..header_end].starts_with("deepcontext-profile v"),
        "header is the version magic"
    );
    fs::write(
        dir.join("wrong-version.dcprof"),
        format!("deepcontext-profile v9{}", &text[header_end..]),
    )
    .unwrap();
    assert!(store.load("wrong-version").is_err());

    // Truncations at every section boundary and a few interior cuts.
    let lines: Vec<&str> = text.lines().collect();
    assert!(lines.last() == Some(&"end"), "container ends with end");
    for keep in [1, lines.len() / 4, lines.len() / 2, lines.len() - 1] {
        let name = format!("truncated-{keep}");
        fs::write(dir.join(format!("{name}.dcprof")), lines[..keep].join("\n")).unwrap();
        assert!(
            store.load(&name).is_err(),
            "truncation to {keep} lines must error, not panic"
        );
    }

    // Garbage body after a valid magic.
    fs::write(
        dir.join("garbage.dcprof"),
        "deepcontext-profile v2\nnot\ta\tvalid\tsection\n",
    )
    .unwrap();
    assert!(store.load("garbage").is_err());

    // The intact run still loads from the same directory.
    let id = store.save(&db).unwrap();
    assert!(store.load(&id).is_ok());
    fs::remove_dir_all(dir).unwrap();
}

#[test]
fn trend_and_regression_rule_flag_an_injected_regression() {
    let (dir, store) = temp_store();
    // Three healthy baseline runs (the sim is deterministic, so their
    // totals agree exactly).
    for _ in 0..3 {
        store.save(&profile_multi_stream(2)).unwrap();
    }
    let filter = RunFilter::any().workload("multi-stream");
    let trend = store.trend(&filter, MetricKind::GpuTime).unwrap();
    assert_eq!(trend.len(), 3);
    assert!(trend[0].total > 0.0);
    assert_eq!(trend[0].total, trend[1].total);
    assert_eq!(trend[1].total, trend[2].total);

    let rule = RegressionRule::from_store(&store, &filter, MetricKind::GpuTime)
        .unwrap()
        .expect("store has baseline runs");
    assert_eq!(rule.baseline_runs(), 3);
    assert_eq!(rule.baseline_total(), trend[0].total);

    // Injected regression: triple the iterations, ~3x the GPU time.
    let regressed = profile_multi_stream(6);
    let mut analyzer = Analyzer::new();
    analyzer.add_rule(rule.clone());
    let report = analyzer.analyze(&regressed);
    let issues = report.by_rule("store-regression");
    assert!(
        issues
            .iter()
            .any(|i| i.severity == Severity::Critical && i.call_path == "<whole run>"),
        "whole-run regression must be flagged: {report}"
    );
    assert!(
        issues.iter().any(|i| i.call_path != "<whole run>"),
        "at least one regressed context is pinpointed"
    );

    // A healthy run of the same shape stays clean against the baseline.
    let healthy = profile_multi_stream(2);
    let mut clean_analyzer = Analyzer::new();
    clean_analyzer.add_rule(rule);
    assert!(clean_analyzer
        .analyze(&healthy)
        .by_rule("store-regression")
        .is_empty());

    // The mapped diff against a stored baseline run shows the growth.
    let baseline_run = store.load(&trend[0].id).unwrap();
    let diff = ProfileDiff::compare_mapped(&baseline_run, &regressed, MetricKind::GpuTime);
    let (base_total, cand_total) = diff.totals();
    assert!(cand_total > 2.0 * base_total);
    assert!(!diff.entries().is_empty());
    assert!(diff.entries().iter().all(|e| e.delta() != 0.0));
    fs::remove_dir_all(dir).unwrap();
}

// ---------------------------------------------------------------------
// Property: persisting two profiles through the store and diffing the
// reloads gives exactly the in-memory diff — even though reloaded trees
// use fresh interners.
// ---------------------------------------------------------------------

fn arb_frame(interner: Arc<Interner>) -> impl Strategy<Value = Frame> {
    let i2 = Arc::clone(&interner);
    let i3 = Arc::clone(&interner);
    prop_oneof![
        (0u8..4, 1u32..5, 0u8..3).prop_map(move |(f, line, func)| Frame::python(
            &format!("file{f}.py"),
            line,
            &format!("fn{func}"),
            &interner
        )),
        (0u8..5).prop_map(move |n| Frame::operator(&format!("aten::op{n}"), &i2)),
        (0u8..4, 0u64..4).prop_map(move |(k, pc)| Frame::gpu_kernel(
            &format!("kernel{k}"),
            "module.so",
            pc * 0x100,
            &i3
        )),
    ]
}

fn arb_profile() -> impl Strategy<Value = ProfileDb> {
    let interner = Interner::new();
    let frames = arb_frame(Arc::clone(&interner));
    let paths = prop::collection::vec(prop::collection::vec(frames, 1..6), 1..20);
    let values = prop::collection::vec(0.0f64..1e6, 1..20);
    (paths, values).prop_map(move |(paths, values)| {
        let mut cct = CallingContextTree::with_interner(Arc::clone(&interner));
        for (p, v) in paths.iter().zip(values.iter().cycle()) {
            let leaf = cct.insert_path(p);
            cct.attribute(leaf, MetricKind::GpuTime, *v);
        }
        ProfileDb::new(
            ProfileMeta {
                workload: "prop".into(),
                framework: "eager".into(),
                platform: "sim".into(),
                ..Default::default()
            },
            cct,
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn store_then_diff_equals_in_memory_diff(
        base in arb_profile(),
        cand in arb_profile(),
    ) {
        let in_memory = ProfileDiff::compare_mapped(&base, &cand, MetricKind::GpuTime);

        let (dir, store) = temp_store();
        let base_id = store.save(&base).unwrap();
        let cand_id = store.save(&cand).unwrap();
        let stored = ProfileDiff::compare_mapped(
            &store.load(&base_id).unwrap(),
            &store.load(&cand_id).unwrap(),
            MetricKind::GpuTime,
        );
        fs::remove_dir_all(dir).unwrap();

        prop_assert_eq!(stored.totals(), in_memory.totals());
        prop_assert_eq!(stored.entries().len(), in_memory.entries().len());
        for (s, m) in stored.entries().iter().zip(in_memory.entries()) {
            prop_assert_eq!(&s.path, &m.path);
            prop_assert_eq!(s.baseline, m.baseline);
            prop_assert_eq!(s.candidate, m.candidate);
        }
    }
}
