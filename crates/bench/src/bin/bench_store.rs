//! Emits `BENCH_store.json`: the persistent profile container's
//! save+load throughput (intervals+nodes per second through a full
//! round trip) and the mapped diff's speedup over the label-path diff
//! on a large, mostly-unchanged profile pair.
//!
//! Acceptance bars (checked by `bench_check`):
//! * `save_load_events_per_sec` ≥ target — archiving a run is cheap;
//! * `warm_diff_speedup` ≥ target — `compare_mapped` renders only the
//!   changed subtree, so cross-run diffs against a warm baseline beat
//!   the full path-hash diff.
//!
//! Run from the repo root: `cargo run --release -p deepcontext-bench
//! --bin bench_store`.

use std::io::Write;

use deepcontext_bench::store::{build_profile, measure, regress};

const HOT_SCOPES: usize = 64;
const OPS_PER_SCOPE: usize = 16;
const INTERVALS: usize = 20_000;
const CHANGED_SCOPES: usize = 2;
const REPEATS: usize = 7;
const TARGET_SAVE_LOAD_EVENTS_PER_SEC: f64 = 200_000.0;
const TARGET_WARM_DIFF_SPEEDUP: f64 = 1.5;

fn main() {
    let parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    eprintln!(
        "measuring store round-trip and mapped-diff speedup ({HOT_SCOPES}x{OPS_PER_SCOPE} \
         contexts, {INTERVALS} intervals, {CHANGED_SCOPES} regressed scopes, host parallelism \
         {parallelism}, best of {REPEATS})..."
    );
    let base = build_profile(HOT_SCOPES, OPS_PER_SCOPE, INTERVALS);
    let cand = regress(&base, CHANGED_SCOPES);
    let point = measure(&base, &cand, REPEATS);
    let speedup = point.warm_diff_speedup();

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"store\",\n");
    json.push_str("  \"baseline\": \"label-path diff rendering every context on both sides\",\n");
    json.push_str(&format!(
        "  \"contexts\": {},\n",
        HOT_SCOPES * OPS_PER_SCOPE
    ));
    json.push_str(&format!("  \"intervals\": {INTERVALS},\n"));
    json.push_str(&format!("  \"changed_scopes\": {CHANGED_SCOPES},\n"));
    json.push_str(&format!("  \"repeats\": {REPEATS},\n"));
    json.push_str(&format!("  \"host_parallelism\": {parallelism},\n"));
    json.push_str(&format!(
        "  \"container_bytes\": {},\n",
        point.container_bytes
    ));
    json.push_str(&format!(
        "  \"changed_entries\": {},\n",
        point.changed_entries
    ));
    json.push_str(&format!("  \"full_diff_ns\": {:.0},\n", point.full_diff_ns));
    json.push_str(&format!(
        "  \"mapped_diff_ns\": {:.0},\n",
        point.mapped_diff_ns
    ));
    json.push_str(&format!(
        "  \"save_load_events_per_sec\": {:.0},\n",
        point.save_load_events_per_sec
    ));
    json.push_str(&format!(
        "  \"target_save_load_events_per_sec\": {TARGET_SAVE_LOAD_EVENTS_PER_SEC:.0},\n"
    ));
    json.push_str(&format!("  \"warm_diff_speedup\": {speedup:.3},\n"));
    json.push_str(&format!(
        "  \"target_warm_diff_speedup\": {TARGET_WARM_DIFF_SPEEDUP}\n"
    ));
    json.push_str("}\n");

    let mut file = std::fs::File::create("BENCH_store.json").expect("create BENCH_store.json");
    file.write_all(json.as_bytes()).expect("write bench json");
    eprintln!("{json}");
    eprintln!(
        "store: {:.2}M events/s through save+load, mapped diff {speedup:.2}x over full diff \
         ({} changed entries rendered)",
        point.save_load_events_per_sec / 1e6,
        point.changed_entries
    );
}
