//! Workload implementations and shared building blocks.

mod llm;
mod multi_stream;
mod recommendation;
mod speech_text;
mod vision;

pub use llm::{Gemma, Llama3, NanoGpt};
pub use multi_stream::MultiStream;
pub use recommendation::{DlrmSmall, Gnn};
pub use speech_text::{Conformer, TransformerBig};
pub use vision::{ResNet, UNet, ViT};

use dl_framework::{FrameworkError, Layout, Op, OpKind, TensorMeta};

use crate::{ModelCtx, Workload};

/// Every paper workload, in Figure 6 order.
pub fn all_workloads() -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(Conformer),
        Box::new(DlrmSmall),
        Box::new(UNet),
        Box::new(Gnn),
        Box::new(ResNet),
        Box::new(ViT),
        Box::new(TransformerBig),
        Box::new(Llama3),
        Box::new(Gemma),
        Box::new(NanoGpt),
    ]
}

/// Looks up a workload by its `name()`.
pub fn workload_by_name(name: &str) -> Option<Box<dyn Workload>> {
    all_workloads().into_iter().find(|w| w.name() == name)
}

// ---------------------------------------------------------------------
// Shared layers.
// ---------------------------------------------------------------------

/// Linear layer: matmul against a `[in, out]` weight plus a bias add.
pub(crate) fn linear(
    ctx: &mut ModelCtx<'_>,
    x: &TensorMeta,
    out_features: usize,
) -> Result<TensorMeta, FrameworkError> {
    let in_features = *x.shape.last().expect("linear input has features");
    let w = TensorMeta::new([in_features, out_features]).with_dtype(x.dtype);
    let h = ctx.op(Op::new(OpKind::MatMul), &[x.clone(), w])?;
    ctx.op(Op::new(OpKind::Add), &[h.clone(), h])
}

/// Multi-head self-attention over `[B, L, D]`.
pub(crate) fn attention(
    ctx: &mut ModelCtx<'_>,
    x: &TensorMeta,
) -> Result<TensorMeta, FrameworkError> {
    let _scope = ctx.scope("attention.py", 51, "self_attention");
    let (b, l, d) = (x.shape[0], x.shape[1], x.shape[2]);
    let q = linear(ctx, x, d)?;
    let k = linear(ctx, x, d)?;
    let v = linear(ctx, x, d)?;
    let k_t = TensorMeta {
        shape: vec![b, d, l],
        ..k
    };
    let scores = ctx.op(Op::new(OpKind::MatMul), &[q, k_t])?;
    let probs = ctx.op(Op::new(OpKind::Softmax), &[scores])?;
    let out = ctx.op(Op::new(OpKind::MatMul), &[probs, v])?;
    linear(ctx, &out, d)
}

/// Two-layer MLP with an activation.
pub(crate) fn mlp(
    ctx: &mut ModelCtx<'_>,
    x: &TensorMeta,
    hidden: usize,
    activation: OpKind,
) -> Result<TensorMeta, FrameworkError> {
    let _scope = ctx.scope("mlp.py", 12, "feed_forward");
    let out_features = *x.shape.last().expect("mlp input has features");
    let h = linear(ctx, x, hidden)?;
    let a = ctx.op(Op::new(activation), &[h])?;
    linear(ctx, &a, out_features)
}

/// Which normalisation a conv block uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum NormKind {
    Batch,
    Instance,
}

/// Conv3x3 + norm + relu. Honours the channels_last option (§6.2) and the
/// norm CTA-size option (§6.5).
pub(crate) fn conv_block(
    ctx: &mut ModelCtx<'_>,
    x: &TensorMeta,
    out_channels: usize,
    norm: NormKind,
) -> Result<TensorMeta, FrameworkError> {
    let _scope = ctx.scope("conv.py", 27, "conv_block");
    let in_channels = x.shape[1];
    let conv = Op::new(OpKind::Conv2d).with_weight([out_channels, in_channels, 3, 3]);
    let y = ctx.op(conv, std::slice::from_ref(x))?;
    let norm_kind = match norm {
        NormKind::Batch => OpKind::BatchNorm,
        NormKind::Instance => OpKind::InstanceNorm,
    };
    let mut norm_op = Op::new(norm_kind);
    if let Some(tpb) = ctx.opts.norm_threads_per_block {
        norm_op = norm_op.with_threads_per_block(tpb);
    }
    let n = ctx.op(norm_op, &[y])?;
    ctx.op(Op::new(OpKind::Relu), &[n])
}

/// Input image batch honouring the layout option.
pub(crate) fn image_input(ctx: &ModelCtx<'_>, shape: [usize; 4]) -> TensorMeta {
    let layout = if ctx.opts.channels_last {
        Layout::ChannelsLast
    } else {
        Layout::ChannelsFirst
    };
    TensorMeta::new(shape.to_vec()).with_layout(layout)
}

/// Cross-entropy-style loss: the paper's three small kernels (softmax,
/// copy, nll_loss) — or the fused single kernel when the §6.3 fix is on.
pub(crate) fn loss(
    ctx: &mut ModelCtx<'_>,
    logits: &TensorMeta,
) -> Result<TensorMeta, FrameworkError> {
    let _scope = ctx.scope("train.py", 58, "loss_fn");
    if ctx.opts.fused_loss {
        ctx.op(Op::new(OpKind::NllLoss), std::slice::from_ref(logits))
    } else {
        let probs = ctx.op(Op::new(OpKind::Softmax), std::slice::from_ref(logits))?;
        let copied = ctx.op(Op::new(OpKind::Copy), &[probs])?;
        ctx.op(Op::new(OpKind::NllLoss), &[copied])
    }
}

/// One optimizer step covering the model's parameters.
pub(crate) fn optimizer_step(
    ctx: &mut ModelCtx<'_>,
    param_bytes: u64,
) -> Result<(), FrameworkError> {
    let _scope = ctx.scope("optimizer.py", 77, "adam_step");
    let params = TensorMeta::new([(param_bytes / 4).max(1) as usize]);
    ctx.op(Op::new(OpKind::AdamStep), &[params])?;
    Ok(())
}

#[cfg(test)]
pub(crate) mod testutil {
    use sim_gpu::DeviceSpec;

    use crate::{RunStats, TestBed, Workload, WorkloadOptions};

    /// Runs one eager iteration on an A100 bed, returning stats.
    pub fn smoke_eager(workload: &dyn Workload, opts: &WorkloadOptions) -> RunStats {
        let bed = TestBed::new(DeviceSpec::a100_sxm());
        bed.run_eager(workload, opts, 1).expect("run")
    }

    /// Runs one JIT iteration on an A100 bed.
    pub fn smoke_jit(workload: &dyn Workload, opts: &WorkloadOptions) -> RunStats {
        let bed = TestBed::new(DeviceSpec::a100_sxm());
        bed.run_jit(workload, opts, 1).expect("run")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WorkloadOptions;

    #[test]
    fn registry_contains_all_ten_workloads() {
        let all = all_workloads();
        assert_eq!(all.len(), 10);
        let names: Vec<_> = all.iter().map(|w| w.name()).collect();
        for expected in [
            "conformer",
            "dlrm-small",
            "unet",
            "gnn",
            "resnet",
            "vit",
            "transformer-big",
            "llama3-8b",
            "gemma-7b",
            "nanogpt",
        ] {
            assert!(names.contains(&expected), "missing {expected}");
        }
    }

    #[test]
    fn lookup_by_name_round_trips() {
        for w in all_workloads() {
            let found = workload_by_name(w.name()).expect("lookup");
            assert_eq!(found.name(), w.name());
            assert_eq!(found.training(), w.training());
        }
        assert!(workload_by_name("nonexistent").is_none());
    }

    #[test]
    fn every_workload_runs_one_eager_iteration() {
        let opts = WorkloadOptions::default();
        for w in all_workloads() {
            let stats = testutil::smoke_eager(w.as_ref(), &opts);
            assert!(stats.kernels > 0, "{} launched no kernels", w.name());
            assert!(stats.wall.as_nanos() > 0, "{} took no time", w.name());
        }
    }

    #[test]
    fn every_workload_runs_one_jit_iteration() {
        let opts = WorkloadOptions::default();
        for w in all_workloads() {
            let stats = testutil::smoke_jit(w.as_ref(), &opts);
            assert!(stats.kernels > 0, "{} launched no kernels", w.name());
        }
    }

    #[test]
    fn jit_launches_fewer_kernels_than_eager() {
        // The §6.6 comparison: XLA fusion reduces kernel counts.
        let opts = WorkloadOptions::default();
        for w in all_workloads() {
            let eager = testutil::smoke_eager(w.as_ref(), &opts);
            let jit = testutil::smoke_jit(w.as_ref(), &opts);
            assert!(
                jit.kernels <= eager.kernels,
                "{}: jit {} > eager {}",
                w.name(),
                jit.kernels,
                eager.kernels
            );
        }
    }

    #[test]
    fn llms_launch_many_small_kernels() {
        // The Figure 6 shape driver: LLM workloads are launch-dominated.
        let opts = WorkloadOptions::default();
        let llama = testutil::smoke_eager(&Llama3, &opts);
        let resnet = testutil::smoke_eager(&ResNet, &opts);
        let llama_mean = llama.gpu_busy.as_nanos() as f64 / llama.kernels as f64;
        let resnet_mean = resnet.gpu_busy.as_nanos() as f64 / resnet.kernels as f64;
        assert!(
            llama_mean < resnet_mean,
            "llama mean kernel {llama_mean}ns !< resnet {resnet_mean}ns"
        );
    }
}
