//! The eager (PyTorch-like) engine.
//!
//! Operators execute immediately through the shared dispatcher. With grad
//! enabled, every differentiable operator is taped with a fresh
//! **sequence id**; `backward()` replays the tape in reverse **on a
//! dedicated real OS thread** whose simulated thread context has no
//! Python frames — exactly the situation that makes backward kernels
//! unattributable without DeepContext's sequence-id association
//! (paper §4.1 "Forward and backward operator association", Figure 7).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use crossbeam::channel::{unbounded, Sender};
use parking_lot::Mutex;

use deepcontext_core::{OpPhase, ThreadRole};
use sim_runtime::{NativeFrameGuard, NativeFrameInfo, ThreadRegistry};

use crate::callbacks::{FrameworkCallbackId, MemEvent, OpEvent};
use crate::core::FrameworkCore;
use crate::error::FrameworkError;
use crate::ops::{backward_ops, Op};
use crate::tensor::TensorMeta;

/// One taped forward operator.
#[derive(Debug, Clone)]
struct TapeEntry {
    op: Op,
    inputs: Vec<TensorMeta>,
    output: TensorMeta,
    seq_id: u64,
}

enum BackwardMsg {
    Run(Vec<TapeEntry>, Sender<Result<(), FrameworkError>>),
    Stop,
}

struct BackwardWorker {
    sender: Sender<BackwardMsg>,
    join: Option<std::thread::JoinHandle<()>>,
}

/// The eager execution engine.
///
/// # Examples
///
/// ```
/// use dl_framework::{EagerEngine, FrameworkCore, Op, OpKind, TensorMeta};
/// use deepcontext_core::{ThreadRole, TimeNs};
/// use sim_gpu::{DeviceId, DeviceSpec, GpuRuntime};
/// use sim_runtime::{RuntimeEnv, ThreadRegistry};
///
/// let env = RuntimeEnv::new();
/// let gpu = GpuRuntime::new(env.clock().clone(), vec![DeviceSpec::a100_sxm()]);
/// let core = FrameworkCore::new(env.clone(), gpu, DeviceId(0),
///     "/lib/libtorch_cpu.so", "libtorch_cuda.so", TimeNs(3_000));
/// let engine = EagerEngine::new(core);
///
/// let main = env.threads().spawn(ThreadRole::Main);
/// let _bind = ThreadRegistry::bind_current(&main);
///
/// engine.set_grad_enabled(true);
/// let x = TensorMeta::new([128, 64]);
/// let w = TensorMeta::new([64, 32]);
/// let y = engine.op(Op::new(OpKind::MatMul), &[x, w])?;
/// assert_eq!(y.shape, vec![128, 32]);
/// engine.backward()?;
/// # Ok::<(), dl_framework::FrameworkError>(())
/// ```
pub struct EagerEngine {
    core: Arc<FrameworkCore>,
    grad_enabled: AtomicBool,
    seq: AtomicU64,
    tape: Mutex<Vec<TapeEntry>>,
    backward: Mutex<Option<BackwardWorker>>,
}

impl EagerEngine {
    /// Creates an eager engine over the shared core.
    pub fn new(core: Arc<FrameworkCore>) -> Arc<Self> {
        Arc::new(EagerEngine {
            core,
            grad_enabled: AtomicBool::new(false),
            seq: AtomicU64::new(0),
            tape: Mutex::new(Vec::new()),
            backward: Mutex::new(None),
        })
    }

    /// The shared core (for profilers needing env/gpu access).
    pub fn core(&self) -> &Arc<FrameworkCore> {
        &self.core
    }

    /// Registers a global operator callback — the
    /// `aten::addGlobalCallback` interception point DLMonitor uses.
    pub fn add_global_callback(
        &self,
        cb: impl Fn(&OpEvent) + Send + Sync + 'static,
    ) -> FrameworkCallbackId {
        self.core.callbacks().on_op(cb)
    }

    /// Enables or disables autograd taping.
    pub fn set_grad_enabled(&self, enabled: bool) {
        self.grad_enabled.store(enabled, Ordering::SeqCst);
    }

    /// Whether autograd taping is on.
    pub fn grad_enabled(&self) -> bool {
        self.grad_enabled.load(Ordering::SeqCst)
    }

    /// Executes one operator eagerly, returning its output tensor.
    ///
    /// # Errors
    ///
    /// Propagates shape-inference and GPU failures; requires a bound
    /// simulated thread.
    pub fn op(&self, op: Op, inputs: &[TensorMeta]) -> Result<TensorMeta, FrameworkError> {
        let taping = self.grad_enabled() && op.kind.differentiable();
        let seq_id = taping.then(|| self.seq.fetch_add(1, Ordering::SeqCst) + 1);
        let output = self.core.dispatch(&op, inputs, OpPhase::Forward, seq_id)?;
        if let Some(seq_id) = seq_id {
            self.tape.lock().push(TapeEntry {
                op,
                inputs: inputs.to_vec(),
                output: output.clone(),
                seq_id,
            });
        }
        Ok(output)
    }

    /// Number of taped operators awaiting backward.
    pub fn tape_len(&self) -> usize {
        self.tape.lock().len()
    }

    /// Clears the tape without running backward.
    pub fn zero_tape(&self) {
        self.tape.lock().clear();
    }

    /// Runs backward over the taped operators on the dedicated backward
    /// thread, blocking until complete (like `loss.backward()`).
    ///
    /// # Errors
    ///
    /// Propagates dispatch failures from the backward thread.
    pub fn backward(&self) -> Result<(), FrameworkError> {
        let entries: Vec<TapeEntry> = std::mem::take(&mut *self.tape.lock());
        if entries.is_empty() {
            return Ok(());
        }
        let sender = {
            let mut guard = self.backward.lock();
            if guard.is_none() {
                *guard = Some(self.spawn_backward_worker());
            }
            guard.as_ref().expect("just created").sender.clone()
        };
        let (reply_tx, reply_rx) = unbounded();
        sender
            .send(BackwardMsg::Run(entries, reply_tx))
            .map_err(|_| FrameworkError::BackwardEngineDown)?;
        reply_rx
            .recv()
            .map_err(|_| FrameworkError::BackwardEngineDown)?
    }

    fn spawn_backward_worker(&self) -> BackwardWorker {
        let core = Arc::clone(&self.core);
        let (tx, rx) = unbounded::<BackwardMsg>();
        let join = std::thread::Builder::new()
            .name("autograd-backward".into())
            .spawn(move || {
                // A fresh simulated thread: no Python frames, ever.
                let ctx = core.env().threads().spawn(ThreadRole::Backward);
                let _bind = ThreadRegistry::bind_current(&ctx);
                let engine_fn = core.native_fn("torch::autograd::Engine::thread_main");
                let _root = NativeFrameGuard::enter(
                    ctx.native(),
                    NativeFrameInfo::new(&engine_fn.library, engine_fn.addr, &engine_fn.name),
                );
                while let Ok(msg) = rx.recv() {
                    match msg {
                        BackwardMsg::Stop => break,
                        BackwardMsg::Run(entries, reply) => {
                            let mut result = Ok(());
                            'outer: for entry in entries.iter().rev() {
                                for (bop, binputs) in
                                    backward_ops(&entry.op, &entry.inputs, &entry.output)
                                {
                                    if let Err(e) = core.dispatch(
                                        &bop,
                                        &binputs,
                                        OpPhase::Backward,
                                        Some(entry.seq_id),
                                    ) {
                                        result = Err(e);
                                        break 'outer;
                                    }
                                }
                            }
                            let _ = reply.send(result);
                        }
                    }
                }
            })
            .expect("spawn backward thread");
        BackwardWorker {
            sender: tx,
            join: Some(join),
        }
    }

    /// Allocates device storage for a tensor, firing the framework memory
    /// event DLMonitor intercepts.
    ///
    /// # Errors
    ///
    /// Propagates device OOM.
    pub fn alloc_tensor(&self, meta: &TensorMeta) -> Result<sim_gpu::DevicePtr, FrameworkError> {
        let bytes = meta.bytes() as u64;
        let ptr = self.core.gpu().malloc(self.core.device(), bytes)?;
        self.core.callbacks().fire_mem(&MemEvent::Alloc {
            tensor: meta.clone(),
            bytes,
        });
        Ok(ptr)
    }

    /// Frees tensor storage.
    ///
    /// # Errors
    ///
    /// Propagates invalid frees.
    pub fn free_tensor(&self, ptr: sim_gpu::DevicePtr, bytes: u64) -> Result<(), FrameworkError> {
        self.core.gpu().free(self.core.device(), ptr)?;
        self.core.callbacks().fire_mem(&MemEvent::Free { bytes });
        Ok(())
    }
}

impl Drop for EagerEngine {
    fn drop(&mut self) {
        if let Some(mut worker) = self.backward.lock().take() {
            let _ = worker.sender.send(BackwardMsg::Stop);
            if let Some(join) = worker.join.take() {
                let _ = join.join();
            }
        }
    }
}

impl std::fmt::Debug for EagerEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EagerEngine")
            .field("grad_enabled", &self.grad_enabled())
            .field("tape_len", &self.tape_len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::OpKind;
    use deepcontext_core::TimeNs;
    use sim_gpu::{DeviceId, DeviceSpec, GpuRuntime};
    use sim_runtime::RuntimeEnv;

    fn engine() -> (Arc<EagerEngine>, RuntimeEnv) {
        let env = RuntimeEnv::new();
        let gpu = GpuRuntime::new(env.clock().clone(), vec![DeviceSpec::a100_sxm()]);
        let core = FrameworkCore::new(
            env.clone(),
            gpu,
            DeviceId(0),
            "/lib/libtorch_cpu.so",
            "libtorch_cuda.so",
            TimeNs(3_000),
        );
        (EagerEngine::new(core), env)
    }

    #[test]
    fn ops_tape_only_with_grad_enabled() {
        let (e, env) = engine();
        let t = env.threads().spawn(ThreadRole::Main);
        let _bind = ThreadRegistry::bind_current(&t);
        e.op(Op::new(OpKind::Relu), &[TensorMeta::new([64])])
            .unwrap();
        assert_eq!(e.tape_len(), 0);
        e.set_grad_enabled(true);
        e.op(Op::new(OpKind::Relu), &[TensorMeta::new([64])])
            .unwrap();
        assert_eq!(e.tape_len(), 1);
        // Non-differentiable ops never tape.
        e.op(Op::new(OpKind::SgdStep), &[TensorMeta::new([64])])
            .unwrap();
        assert_eq!(e.tape_len(), 1);
    }

    #[test]
    fn backward_runs_on_dedicated_thread_with_matching_seq_ids() {
        let (e, env) = engine();
        let t = env.threads().spawn(ThreadRole::Main);
        let _bind = ThreadRegistry::bind_current(&t);
        e.set_grad_enabled(true);

        let events = Arc::new(Mutex::new(Vec::new()));
        let ev = Arc::clone(&events);
        e.add_global_callback(move |op_ev| {
            if op_ev.site == crate::callbacks::Site::Enter {
                ev.lock().push((
                    op_ev.name.to_string(),
                    op_ev.phase,
                    op_ev.seq_id,
                    op_ev.thread.role(),
                ));
            }
        });

        e.op(
            Op::new(OpKind::Index).with_duplicates(8.0),
            &[TensorMeta::new([1000, 16]), TensorMeta::new([64])],
        )
        .unwrap();
        e.backward().unwrap();

        let events = events.lock().clone();
        let fwd: Vec<_> = events.iter().filter(|e| e.1 == OpPhase::Forward).collect();
        let bwd: Vec<_> = events.iter().filter(|e| e.1 == OpPhase::Backward).collect();
        assert_eq!(fwd.len(), 1);
        assert_eq!(bwd.len(), 1);
        // Same operator name and sequence id; different thread role.
        assert_eq!(fwd[0].0, "aten::index");
        assert_eq!(bwd[0].0, "aten::index");
        assert_eq!(fwd[0].2, bwd[0].2);
        assert_eq!(fwd[0].3, ThreadRole::Main);
        assert_eq!(bwd[0].3, ThreadRole::Backward);
    }

    #[test]
    fn backward_drains_tape_and_is_reentrant() {
        let (e, env) = engine();
        let t = env.threads().spawn(ThreadRole::Main);
        let _bind = ThreadRegistry::bind_current(&t);
        e.set_grad_enabled(true);
        for _ in 0..3 {
            e.op(Op::new(OpKind::Relu), &[TensorMeta::new([64])])
                .unwrap();
        }
        assert_eq!(e.tape_len(), 3);
        e.backward().unwrap();
        assert_eq!(e.tape_len(), 0);
        // Second backward with empty tape is a no-op.
        e.backward().unwrap();
        // Tape again: the worker is reused.
        e.op(Op::new(OpKind::Relu), &[TensorMeta::new([64])])
            .unwrap();
        e.backward().unwrap();
    }

    #[test]
    fn backward_thread_has_no_python_context() {
        let (e, env) = engine();
        let t = env.threads().spawn(ThreadRole::Main);
        let _bind = ThreadRegistry::bind_current(&t);
        let _py = e.core().python().frame(&t, "train.py", 5, "step");
        e.set_grad_enabled(true);

        let bwd_py_depth = Arc::new(Mutex::new(Vec::new()));
        let d = Arc::clone(&bwd_py_depth);
        e.add_global_callback(move |ev| {
            if ev.phase == OpPhase::Backward {
                d.lock().push(ev.thread.python().depth());
            }
        });

        e.op(Op::new(OpKind::Relu), &[TensorMeta::new([64])])
            .unwrap();
        e.backward().unwrap();
        let depths = bwd_py_depth.lock().clone();
        assert!(!depths.is_empty());
        assert!(
            depths.iter().all(|d| *d == 0),
            "backward thread saw Python frames"
        );
    }

    #[test]
    fn alloc_and_free_fire_memory_events() {
        let (e, env) = engine();
        let t = env.threads().spawn(ThreadRole::Main);
        let _bind = ThreadRegistry::bind_current(&t);
        let events = Arc::new(Mutex::new(0usize));
        let ev = Arc::clone(&events);
        e.core().callbacks().on_mem(move |_| {
            *ev.lock() += 1;
        });
        let meta = TensorMeta::new([1024]);
        let ptr = e.alloc_tensor(&meta).unwrap();
        e.free_tensor(ptr, meta.bytes() as u64).unwrap();
        assert_eq!(*events.lock(), 2);
    }
}
