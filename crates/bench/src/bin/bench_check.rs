//! Regression gate over the committed benchmark scoreboards.
//!
//! Scans the working directory for `BENCH_*.json`, pairs every
//! top-level `target_<metric>` field with its recorded `<metric>`, and
//! fails (exit 1) when a recorded value misses its target. The
//! direction of "misses" is keyed off the metric name:
//!
//! * names containing `overhead` or `ratio` are *lower-is-better* —
//!   the recorded value must be `<=` the target;
//! * names containing `speedup` or `events_per_sec` are
//!   *higher-is-better* — the recorded value must be `>=` the target;
//! * anything else is an error: name the metric so the direction is
//!   self-evident, or the gate refuses to guess.
//!
//! The scoreboards are committed, so this runs against the numbers the
//! tree actually claims — CI re-checking them catches both a stale
//! scoreboard and a target edit that quietly loosens the bar.
//!
//! Run from the repo root: `cargo run --release -p deepcontext-bench
//! --bin bench_check`.

use std::process::ExitCode;

/// Extracts top-level `"key": <number>` fields. Nested containers
/// (`points` arrays and any objects inside them) are skipped by depth
/// tracking — targets live at the top level by convention. The scanner
/// tolerates everything else in the file (strings, booleans, arrays).
fn top_level_numbers(text: &str) -> Vec<(String, f64)> {
    let bytes = text.as_bytes();
    let mut fields = Vec::new();
    let mut depth = 0i32;
    let mut i = 0usize;
    while i < bytes.len() {
        match bytes[i] {
            b'{' | b'[' => {
                depth += 1;
                i += 1;
            }
            b'}' | b']' => {
                depth -= 1;
                i += 1;
            }
            b'"' => {
                // A string: either a key (at depth 1, followed by ':')
                // or a value; scan it whole either way so braces inside
                // strings never confuse the depth counter.
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] != b'"' {
                    if bytes[j] == b'\\' {
                        j += 1;
                    }
                    j += 1;
                }
                let key = &text[start..j.min(text.len())];
                i = j + 1;
                if depth != 1 {
                    continue;
                }
                // Key position: skip whitespace, expect ':'.
                let mut k = i;
                while k < bytes.len() && (bytes[k] as char).is_whitespace() {
                    k += 1;
                }
                if bytes.get(k) != Some(&b':') {
                    continue;
                }
                k += 1;
                while k < bytes.len() && (bytes[k] as char).is_whitespace() {
                    k += 1;
                }
                let num_start = k;
                while k < bytes.len()
                    && matches!(bytes[k], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
                {
                    k += 1;
                }
                if k > num_start {
                    if let Ok(value) = text[num_start..k].parse::<f64>() {
                        fields.push((key.to_string(), value));
                        i = k;
                    }
                }
            }
            _ => i += 1,
        }
    }
    fields
}

/// Whether `value` satisfies the target for `metric`, or `None` when
/// the metric name encodes no direction.
fn satisfies(metric: &str, value: f64, target: f64) -> Option<bool> {
    if metric.contains("overhead") || metric.contains("ratio") {
        Some(value <= target)
    } else if metric.contains("speedup") || metric.contains("events_per_sec") {
        Some(value >= target)
    } else {
        None
    }
}

fn main() -> ExitCode {
    let mut scoreboards: Vec<std::path::PathBuf> = std::fs::read_dir(".")
        .expect("read working directory")
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|path| {
            path.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        })
        .collect();
    scoreboards.sort();
    if scoreboards.is_empty() {
        eprintln!("bench-check: no BENCH_*.json in the working directory (run from the repo root)");
        return ExitCode::FAILURE;
    }

    let mut checked = 0usize;
    let mut failures = 0usize;
    for path in &scoreboards {
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(err) => {
                eprintln!("FAIL {name}: unreadable ({err})");
                failures += 1;
                continue;
            }
        };
        let fields = top_level_numbers(&text);
        for (key, target) in &fields {
            let Some(metric) = key.strip_prefix("target_") else {
                continue;
            };
            let Some((_, value)) = fields.iter().find(|(k, _)| k == metric) else {
                eprintln!("FAIL {name}: {key} has no recorded \"{metric}\" to check");
                failures += 1;
                continue;
            };
            checked += 1;
            match satisfies(metric, *value, *target) {
                Some(true) => eprintln!("  ok {name}: {metric} {value} vs target {target}"),
                Some(false) => {
                    eprintln!("FAIL {name}: {metric} {value} misses target {target}");
                    failures += 1;
                }
                None => {
                    eprintln!(
                        "FAIL {name}: metric \"{metric}\" encodes no direction \
                         (expected overhead/ratio or speedup/events_per_sec in the name)"
                    );
                    failures += 1;
                }
            }
        }
    }
    if checked == 0 {
        eprintln!("bench-check: no target_* fields found in any scoreboard");
        return ExitCode::FAILURE;
    }
    if failures > 0 {
        eprintln!("bench-check: {failures} failure(s) over {checked} checked target(s)");
        return ExitCode::FAILURE;
    }
    eprintln!(
        "bench-check: {checked} target(s) satisfied across {} scoreboard(s)",
        scoreboards.len()
    );
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scanner_reads_top_level_numbers_only() {
        let text = r#"{
  "bench": "timeline",
  "max_overhead": 1.171,
  "points": [
    {"scenario": "a", "producer_ns_per_event": 500}
  ],
  "target_max_overhead": 1.25
}"#;
        let fields = top_level_numbers(text);
        assert_eq!(
            fields,
            vec![
                ("max_overhead".to_string(), 1.171),
                ("target_max_overhead".to_string(), 1.25)
            ]
        );
    }

    #[test]
    fn direction_is_keyed_off_the_metric_name() {
        assert_eq!(satisfies("max_overhead", 1.1, 1.25), Some(true));
        assert_eq!(satisfies("max_overhead", 1.3, 1.25), Some(false));
        assert_eq!(satisfies("producer_speedup", 7.0, 5.0), Some(true));
        assert_eq!(satisfies("producer_speedup", 3.0, 5.0), Some(false));
        assert_eq!(satisfies("mystery_metric", 1.0, 1.0), None);
    }
}
